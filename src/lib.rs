//! # cubefit
//!
//! Facade crate for the CubeFit workspace: a reproduction of *"Robust
//! Multi-Tenant Server Consolidation in the Cloud for Data Analytics
//! Workloads"* (Mate, Daudjee, Kamali — ICDCS 2017).
//!
//! This crate re-exports the public APIs of every workspace member so that
//! examples and downstream users can depend on a single crate:
//!
//! * [`core`] — the CubeFit algorithm and placement substrate;
//! * [`baselines`] — RFI and classic bin-packing baselines;
//! * [`workload`] — tenant load distributions and sequence generators;
//! * [`cluster`] — the discrete-event cluster simulator;
//! * [`sim`] — experiment runners, statistics, and the cost model;
//! * [`defrag`] — robustness-preserving defragmentation and migration
//!   planning;
//! * [`analysis`] — competitive-ratio tooling (Theorem 2).
//!
//! ```
//! use cubefit::core::{Consolidator, CubeFit, CubeFitConfig, Load, Tenant};
//!
//! # fn main() -> Result<(), cubefit::core::Error> {
//! let mut cubefit = CubeFit::new(CubeFitConfig::default());
//! cubefit.place(Tenant::with_load(Load::new(0.4)?))?;
//! assert!(cubefit.placement().is_robust());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cubefit_analysis as analysis;
pub use cubefit_baselines as baselines;
pub use cubefit_cluster as cluster;
pub use cubefit_core as core;
pub use cubefit_defrag as defrag;
pub use cubefit_sim as sim;
pub use cubefit_workload as workload;
