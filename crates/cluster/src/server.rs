//! Processor-sharing server model.

/// A job executing on a server: a (possibly mirrored) query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Job {
    /// Stable identifier within the owning server.
    pub id: u64,
    /// Issuing client (global index), or `None` for mirrored update work.
    pub client: Option<u32>,
    /// Remaining work in server-seconds at full capacity.
    pub remaining: f64,
    /// Simulation time at which the query was issued.
    pub issued_at: f64,
}

/// A server as a processor-sharing queue with static background overhead.
///
/// With `n` active jobs and overhead `h` (the per-tenant load overhead `β`
/// expressed in client-equivalents), each job progresses at rate
/// `1 / (n + h)` server-seconds per second. This realizes the paper's
/// linear load model: a server at load `L` has equivalent concurrency
/// `L/δ`, and query latency scales linearly with it.
#[derive(Debug, Clone, Default)]
pub struct ServerSim {
    jobs: Vec<Job>,
    /// Client-equivalent background overhead (Σ β/(δγ) over hosted replicas).
    overhead: f64,
    /// Last simulation time at which `jobs` was advanced.
    last_advance: f64,
    /// Sequence number for lazy event invalidation.
    seq: u64,
    next_job_id: u64,
    failed: bool,
}

impl ServerSim {
    /// Creates an idle server with the given background overhead.
    #[must_use]
    pub fn new(overhead: f64) -> Self {
        ServerSim { overhead, ..ServerSim::default() }
    }

    /// Current number of active jobs.
    #[must_use]
    pub fn active_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// The background overhead in client-equivalents.
    #[must_use]
    pub fn overhead(&self) -> f64 {
        self.overhead
    }

    /// Adds background overhead (e.g. when failover moves a tenant here).
    pub fn add_overhead(&mut self, extra: f64) {
        self.overhead += extra;
    }

    /// Whether the server has been failed.
    #[must_use]
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Marks the server failed and drops its jobs. Returns the clients
    /// whose in-flight queries were lost (mirror jobs are discarded).
    pub fn fail(&mut self, now: f64) -> Vec<u32> {
        self.advance(now);
        self.failed = true;
        self.seq += 1;
        let clients = self.jobs.iter().filter_map(|j| j.client).collect();
        self.jobs.clear();
        clients
    }

    /// Event-invalidation sequence number; bumped whenever the set of jobs
    /// changes so stale scheduled completions can be skipped.
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The processor-sharing rate divisor (`jobs + overhead`, at least 1).
    fn divisor(&self) -> f64 {
        (self.jobs.len() as f64 + self.overhead).max(1.0)
    }

    /// Advances all jobs to time `now`, consuming earned service.
    pub fn advance(&mut self, now: f64) {
        let elapsed = now - self.last_advance;
        debug_assert!(elapsed >= -1e-9, "time went backwards");
        if elapsed > 0.0 && !self.jobs.is_empty() {
            let served = elapsed / self.divisor();
            for job in &mut self.jobs {
                job.remaining -= served;
            }
        }
        self.last_advance = now;
    }

    /// Starts a job at time `now`; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the server has been failed.
    pub fn start_job(&mut self, now: f64, client: Option<u32>, work: f64) -> u64 {
        assert!(!self.failed, "cannot start jobs on a failed server");
        self.advance(now);
        self.seq += 1;
        let id = self.next_job_id;
        self.next_job_id += 1;
        self.jobs.push(Job { id, client, remaining: work, issued_at: now });
        id
    }

    /// The absolute time at which the next job would complete if the job
    /// set stays unchanged, with the id of that job.
    #[must_use]
    pub fn next_completion(&self) -> Option<(f64, u64)> {
        let min = self.jobs.iter().min_by(|a, b| a.remaining.total_cmp(&b.remaining))?;
        Some((self.last_advance + min.remaining.max(0.0) * self.divisor(), min.id))
    }

    /// Completes job `job_id` at time `now`, returning it.
    ///
    /// Returns `None` if the job no longer exists (stale event).
    pub fn complete_job(&mut self, now: f64, job_id: u64) -> Option<Job> {
        self.advance(now);
        let idx = self.jobs.iter().position(|j| j.id == job_id)?;
        self.seq += 1;
        Some(self.jobs.swap_remove(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_job_runs_at_full_rate_without_overhead() {
        let mut s = ServerSim::new(0.0);
        s.start_job(0.0, Some(0), 2.0);
        let (t, id) = s.next_completion().unwrap();
        assert!((t - 2.0).abs() < 1e-12);
        let job = s.complete_job(t, id).unwrap();
        assert!(job.remaining.abs() < 1e-9);
        assert_eq!(s.active_jobs(), 0);
    }

    #[test]
    fn two_jobs_share_capacity() {
        let mut s = ServerSim::new(0.0);
        s.start_job(0.0, Some(0), 1.0);
        s.start_job(0.0, Some(1), 1.0);
        // Each gets half rate: completion at t = 2.
        let (t, _) = s.next_completion().unwrap();
        assert!((t - 2.0).abs() < 1e-12);
    }

    #[test]
    fn overhead_slows_jobs() {
        let mut s = ServerSim::new(1.0);
        s.start_job(0.0, Some(0), 1.0);
        // Divisor 1 + 1 = 2 → completion at t = 2.
        let (t, _) = s.next_completion().unwrap();
        assert!((t - 2.0).abs() < 1e-12);
    }

    #[test]
    fn later_arrival_slows_earlier_job() {
        let mut s = ServerSim::new(0.0);
        s.start_job(0.0, Some(0), 1.0);
        // At t=0.5 half the work is done; a second job halves the rate.
        s.start_job(0.5, Some(1), 10.0);
        let (t, id) = s.next_completion().unwrap();
        assert!((t - 1.5).abs() < 1e-12);
        let job = s.complete_job(t, id).unwrap();
        assert_eq!(job.client, Some(0));
    }

    #[test]
    fn completion_of_unknown_job_is_stale() {
        let mut s = ServerSim::new(0.0);
        let id = s.start_job(0.0, Some(0), 1.0);
        assert!(s.complete_job(1.0, id).is_some());
        assert!(s.complete_job(1.0, id).is_none());
    }

    #[test]
    fn seq_changes_on_every_mutation() {
        let mut s = ServerSim::new(0.0);
        let s0 = s.seq();
        let id = s.start_job(0.0, None, 1.0);
        assert_ne!(s.seq(), s0);
        let s1 = s.seq();
        s.complete_job(0.5, id);
        assert_ne!(s.seq(), s1);
    }

    #[test]
    fn failing_returns_affected_clients() {
        let mut s = ServerSim::new(0.5);
        s.start_job(0.0, Some(3), 1.0);
        s.start_job(0.0, None, 1.0); // mirror work has no client
        s.start_job(0.0, Some(8), 1.0);
        let mut clients = s.fail(0.1);
        clients.sort_unstable();
        assert_eq!(clients, vec![3, 8]);
        assert!(s.is_failed());
        assert_eq!(s.active_jobs(), 0);
        assert!(s.next_completion().is_none());
    }

    #[test]
    #[should_panic(expected = "failed server")]
    fn starting_on_failed_server_panics() {
        let mut s = ServerSim::new(0.0);
        s.fail(0.0);
        s.start_job(0.0, Some(0), 1.0);
    }
}
