//! Latency recording and percentile reports.
//!
//! Recording is backed by the workspace-wide log-bucketed
//! [`Histogram`](cubefit_telemetry::Histogram): constant memory regardless
//! of simulation length, exact count/sum/min/max, and quantiles within
//! ≈2.2% relative error — far inside the slack of every latency assertion
//! in the DES (the SLA threshold itself is a 5 s cliff).

use cubefit_telemetry::{Histogram, HistogramSnapshot};

/// Collects per-server query latencies during the measurement window and
/// produces percentile summaries.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    overall: Histogram,
    /// Per-server histograms, indexed by server.
    per_server: Vec<Histogram>,
    recording: bool,
}

impl LatencyRecorder {
    /// Creates a recorder (initially not recording — warm-up).
    #[must_use]
    pub fn new() -> Self {
        LatencyRecorder::default()
    }

    /// Starts recording (end of warm-up).
    pub fn start(&mut self) {
        self.recording = true;
    }

    /// Stops recording.
    pub fn stop(&mut self) {
        self.recording = false;
    }

    /// Records one latency measured on `server` if recording is active.
    pub fn record(&mut self, server: usize, latency: f64) {
        if self.recording {
            self.overall.record(latency);
            if server >= self.per_server.len() {
                self.per_server.resize_with(server + 1, Histogram::new);
            }
            self.per_server[server].record(latency);
        }
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.overall.count() as usize
    }

    /// Whether no samples were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.overall.count() == 0
    }

    /// Finalizes into a cluster report.
    #[must_use]
    pub fn finish(self) -> ClusterReport {
        ClusterReport {
            overall: LatencyReport::from_histogram(self.overall),
            per_server: self.per_server.into_iter().map(LatencyReport::from_histogram).collect(),
        }
    }
}

/// Latency percentiles for a whole measurement window: cluster-wide and
/// per server.
///
/// The paper's SLA is *per server* (§IV: a server's capacity must keep the
/// p99 within 5 s), so Fig. 5-style experiments read
/// [`Self::worst_server_p99`]; cluster-wide percentiles are also exposed
/// for context.
#[derive(Debug, Clone, Default)]
pub struct ClusterReport {
    /// Percentiles over every query in the cluster.
    pub overall: LatencyReport,
    /// Percentiles per server (empty reports for idle servers).
    pub per_server: Vec<LatencyReport>,
}

impl ClusterReport {
    /// The highest per-server p99 — the SLA-relevant latency.
    #[must_use]
    pub fn worst_server_p99(&self) -> f64 {
        self.per_server.iter().map(LatencyReport::p99).fold(0.0, f64::max)
    }

    /// The server with the highest p99, if any samples exist.
    #[must_use]
    pub fn hottest_server(&self) -> Option<usize> {
        self.per_server
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.is_empty())
            .max_by(|a, b| a.1.p99().total_cmp(&b.1.p99()))
            .map(|(i, _)| i)
    }

    /// Cluster-wide p99 (shorthand for `overall.p99()`).
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.overall.p99()
    }

    /// Cluster-wide mean (shorthand for `overall.mean()`).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.overall.mean()
    }

    /// Whether no samples were recorded anywhere.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.overall.is_empty()
    }

    /// Whether any server's p99 exceeds the SLA (the paper's violation
    /// criterion).
    #[must_use]
    pub fn violates_sla(&self, sla_seconds: f64) -> bool {
        self.worst_server_p99() > sla_seconds
    }
}

/// Latency distribution with percentile accessors, backed by a
/// log-bucketed histogram (quantiles within ≈2.2% relative error;
/// count/sum/min/max exact).
#[derive(Debug, Clone, Default)]
pub struct LatencyReport {
    histogram: Histogram,
}

impl LatencyReport {
    /// Builds a report from raw samples.
    #[must_use]
    pub fn from_samples(samples: Vec<f64>) -> Self {
        let histogram = Histogram::new();
        for sample in samples {
            histogram.record(sample);
        }
        LatencyReport { histogram }
    }

    /// Builds a report from an already-populated histogram.
    #[must_use]
    pub fn from_histogram(histogram: Histogram) -> Self {
        LatencyReport { histogram }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.histogram.count() as usize
    }

    /// Whether the report is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.histogram.count() == 0
    }

    /// A serializable snapshot of the underlying histogram.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.histogram.snapshot()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) using the nearest-rank method;
    /// 0 for empty reports.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        self.histogram.quantile(q)
    }

    /// Median latency.
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile latency.
    #[must_use]
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile latency — the paper's SLA metric.
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Maximum latency (exact).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.histogram.max()
    }

    /// Mean latency (exact).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.histogram.mean()
    }

    /// Whether the p99 exceeds the given SLA.
    #[must_use]
    pub fn violates_sla(&self, sla_seconds: f64) -> bool {
        self.p99() > sla_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_ignores_warmup() {
        let mut r = LatencyRecorder::new();
        r.record(0, 100.0); // warm-up, dropped
        r.start();
        r.record(0, 1.0);
        r.record(1, 2.0);
        r.stop();
        r.record(0, 200.0); // after stop, dropped
        assert_eq!(r.len(), 2);
        let report = r.finish();
        assert_eq!(report.overall.len(), 2);
        assert!((report.mean() - 1.5).abs() < 1e-12);
        assert_eq!(report.per_server.len(), 2);
        assert_eq!(report.per_server[0].len(), 1);
    }

    #[test]
    fn cluster_report_worst_server() {
        let mut r = LatencyRecorder::new();
        r.start();
        for _ in 0..100 {
            r.record(0, 1.0);
        }
        for _ in 0..100 {
            r.record(2, 6.0);
        }
        let report = r.finish();
        // Server 2 violates alone; the cluster-wide p99 sees it too here,
        // but the SLA criterion is the per-server worst.
        assert_eq!(report.hottest_server(), Some(2));
        assert!((report.worst_server_p99() - 6.0).abs() < 1e-12);
        assert!(report.violates_sla(5.0));
        assert!(!report.per_server[1].is_empty() || report.per_server[1].is_empty());
    }

    #[test]
    fn empty_cluster_report() {
        let report = LatencyRecorder::new().finish();
        assert!(report.is_empty());
        assert_eq!(report.worst_server_p99(), 0.0);
        assert_eq!(report.hottest_server(), None);
        assert!(!report.violates_sla(5.0));
    }

    #[test]
    fn percentiles_nearest_rank() {
        // Histogram-backed quantiles carry ≤2.2% relative bucket error;
        // min/max are tracked exactly.
        let report = LatencyReport::from_samples((1..=100).map(f64::from).collect());
        let approx = |got: f64, exact: f64| (got - exact).abs() <= exact * 0.03;
        assert!(approx(report.p50(), 50.0), "p50 {}", report.p50());
        assert!(approx(report.p95(), 95.0), "p95 {}", report.p95());
        assert!(approx(report.p99(), 99.0), "p99 {}", report.p99());
        assert_eq!(report.max(), 100.0);
        assert!(approx(report.quantile(0.0), 1.0), "q0 {}", report.quantile(0.0));
        assert!(approx(report.quantile(1.0), 100.0), "q1 {}", report.quantile(1.0));
    }

    #[test]
    fn single_sample_every_quantile() {
        let report = LatencyReport::from_samples(vec![4.2]);
        assert_eq!(report.p50(), 4.2);
        assert_eq!(report.p99(), 4.2);
    }

    #[test]
    fn empty_report_is_zero() {
        let report = LatencyReport::default();
        assert!(report.is_empty());
        assert_eq!(report.p99(), 0.0);
        assert_eq!(report.mean(), 0.0);
        assert_eq!(report.max(), 0.0);
        assert!(!report.violates_sla(5.0));
    }

    #[test]
    fn sla_violation_detection() {
        let report =
            LatencyReport::from_samples(vec![1.0; 98].into_iter().chain([6.0, 7.0]).collect());
        assert!(report.violates_sla(5.0));
        let ok = LatencyReport::from_samples(vec![1.0; 100]);
        assert!(!ok.violates_sla(5.0));
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_range_checked() {
        let _ = LatencyReport::from_samples(vec![1.0]).quantile(1.5);
    }
}
