//! # cubefit-cluster
//!
//! Discrete-event simulation of the paper's 73-machine evaluation cluster
//! (§IV–V.B).
//!
//! The paper runs TPC-H against PostgreSQL instances on 69 data-store
//! servers and measures 99th-percentile latency before and after worst-case
//! server failures. Its own system model reduces a server to a *linear load
//! model* — `load = δ·c + β`, with load 1.0 corresponding to the 5-second
//! p99 SLA — so this crate simulates exactly that abstraction:
//!
//! * servers are **processor-sharing** queues ([`server`]): `n` concurrent
//!   queries each progress at rate `1/(n + overhead)`;
//! * each tenant's clients run a **closed loop** over a TPC-H-like query
//!   mix ([`query`]): 22 templates, 95% reads / 5% updates, with the work
//!   distribution calibrated so that a fully loaded server (load = 1.0)
//!   shows exactly the SLA p99;
//! * update queries (5% of the mix) execute against every replica in the
//!   real system; like the paper's empirical `δ`/`β` calibration, that
//!   write traffic is folded into the per-client load constant rather than
//!   simulated as explicit mirrored work (see `DESIGN.md` §3);
//! * failing a server redistributes its clients evenly across the surviving
//!   replicas of each tenant ([`sim::ClusterSim::fail_servers`]);
//! * latency percentiles are measured after a warm-up window
//!   ([`metrics`]), mirroring the paper's 5-minute warm-up + 5-minute
//!   measurement protocol.
//!
//! ```
//! use cubefit_cluster::{ClusterSim, QueryMix, SimConfig, TenantAssignment};
//! use cubefit_workload::LoadModel;
//!
//! let model = LoadModel::tpch_xeon();
//! let mix = QueryMix::tpch_like(&model, 5.0);
//! // One tenant, 26 clients, replicated on servers 0 and 1.
//! let assignments = vec![TenantAssignment::new(0, 26, vec![0, 1])];
//! let mut sim = ClusterSim::new(2, assignments, &mix, &model, SimConfig::quick(7));
//! let report = sim.run();
//! // Half-loaded servers stay well inside the 5 s SLA.
//! assert!(report.p99() < 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod metrics;
pub mod query;
pub mod server;
pub mod sim;

pub use metrics::{ClusterReport, LatencyReport};
pub use query::{QueryMix, QueryTemplate};
pub use sim::{ClusterSim, SimConfig, TenantAssignment};
