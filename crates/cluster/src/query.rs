//! The TPC-H-like analytic query mix (paper §IV–V.A).
//!
//! The paper scales TPC-H to 95% read / 5% update queries. What matters to
//! the placement problem is only the *load* clients place on servers, so
//! the mix here is a synthetic 22-template distribution with a long-tailed
//! work profile, **calibrated** so that a server at load 1.0 (e.g. 52
//! clients under the paper's model) shows a p99 latency of exactly the SLA
//! (5 seconds). See `DESIGN.md` §3 for the substitution argument.

use cubefit_workload::LoadModel;
use rand::Rng;

/// Fraction of update queries in the mix (the paper scales TPC-H to 95%
/// reads / 5% updates).
pub const UPDATE_FRACTION: f64 = 0.05;

/// One query template: an amount of *work* (server-seconds at full
/// capacity) and whether it is an update (mirrored to all replicas).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryTemplate {
    /// Template index (1-based, mirroring TPC-H Q1..Q22).
    pub id: u32,
    /// Work in server-seconds at full, uncontended capacity.
    pub work: f64,
    /// Relative selection weight.
    pub weight: f64,
}

/// A calibrated query mix.
///
/// Sampling returns `(work, is_update)`; updates are drawn independently of
/// the template with probability [`UPDATE_FRACTION`].
#[derive(Debug, Clone)]
pub struct QueryMix {
    templates: Vec<QueryTemplate>,
    /// Cumulative weights for sampling.
    cumulative: Vec<f64>,
    sla_seconds: f64,
}

impl QueryMix {
    /// Builds the synthetic TPC-H-like mix calibrated against `model`:
    /// the weighted p99 of the work distribution is scaled to
    /// `sla_seconds × δ`, so a server whose load is exactly 1.0 (equivalent
    /// concurrency `1/δ`) shows a p99 latency of `sla_seconds` under
    /// processor sharing.
    ///
    /// # Panics
    ///
    /// Panics if `sla_seconds` is not positive.
    #[must_use]
    pub fn tpch_like(model: &LoadModel, sla_seconds: f64) -> Self {
        assert!(sla_seconds > 0.0, "SLA must be positive");
        // 22 templates with a log-spread work profile: many quick scans, a
        // few heavy joins/aggregations — the shape of TPC-H runtimes.
        // Weights make light queries common and heavy ones rare.
        let mut templates: Vec<QueryTemplate> = (1..=22u32)
            .map(|id| {
                let t = f64::from(id - 1) / 21.0; // 0..1
                QueryTemplate {
                    id,
                    // work spans 1.5 decades before calibration
                    work: 10f64.powf(-1.5 + 1.5 * t),
                    // heavier queries are rarer (weight halves per decade)
                    weight: 2f64.powf(-2.0 * t),
                }
            })
            .collect();

        // Calibrate: find the weighted p99 of the work distribution and
        // scale every template so that p99(work) = sla × δ.
        let p99 = weighted_percentile(&templates, 0.99);
        let target = sla_seconds * model.delta();
        let scale = target / p99;
        for t in &mut templates {
            t.work *= scale;
        }

        let mut cumulative = Vec::with_capacity(templates.len());
        let mut acc = 0.0;
        for t in &templates {
            acc += t.weight;
            cumulative.push(acc);
        }
        QueryMix { templates, cumulative, sla_seconds }
    }

    /// The templates after calibration.
    #[must_use]
    pub fn templates(&self) -> &[QueryTemplate] {
        &self.templates
    }

    /// The SLA the mix was calibrated against, in seconds.
    #[must_use]
    pub fn sla_seconds(&self) -> f64 {
        self.sla_seconds
    }

    /// Weighted p99 of the work distribution (server-seconds).
    #[must_use]
    pub fn p99_work(&self) -> f64 {
        weighted_percentile(&self.templates, 0.99)
    }

    /// Mean work per query (server-seconds).
    #[must_use]
    pub fn mean_work(&self) -> f64 {
        let total_weight: f64 = self.templates.iter().map(|t| t.weight).sum();
        self.templates.iter().map(|t| t.work * t.weight).sum::<f64>() / total_weight
    }

    /// Draws one query: its work and whether it is an update.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (f64, bool) {
        let total = *self.cumulative.last().expect("non-empty mix");
        let pick: f64 = rng.gen::<f64>() * total;
        let idx = self.cumulative.partition_point(|&c| c < pick);
        let idx = idx.min(self.templates.len() - 1);
        let is_update = rng.gen::<f64>() < UPDATE_FRACTION;
        (self.templates[idx].work, is_update)
    }
}

/// Weighted percentile of template works (sorted by work ascending).
fn weighted_percentile(templates: &[QueryTemplate], q: f64) -> f64 {
    let mut sorted: Vec<&QueryTemplate> = templates.iter().collect();
    sorted.sort_by(|a, b| a.work.total_cmp(&b.work));
    let total: f64 = sorted.iter().map(|t| t.weight).sum();
    let mut acc = 0.0;
    for t in &sorted {
        acc += t.weight;
        if acc >= q * total {
            return t.work;
        }
    }
    sorted.last().expect("non-empty mix").work
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn mix() -> QueryMix {
        QueryMix::tpch_like(&LoadModel::tpch_xeon(), 5.0)
    }

    #[test]
    fn has_22_templates_like_tpch() {
        assert_eq!(mix().templates().len(), 22);
    }

    #[test]
    fn calibration_sets_p99_work() {
        let m = mix();
        // p99(work) × (1/δ) = SLA: a load-1.0 server shows p99 = 5 s.
        let equivalent_concurrency = 1.0 / LoadModel::tpch_xeon().delta();
        assert!((m.p99_work() * equivalent_concurrency - 5.0).abs() < 1e-9);
    }

    #[test]
    fn calibration_respects_other_slas() {
        let m = QueryMix::tpch_like(&LoadModel::normalized(52), 2.0);
        assert!((m.p99_work() * 52.0 - 2.0).abs() < 1e-9);
        assert_eq!(m.sla_seconds(), 2.0);
    }

    #[test]
    fn work_profile_is_long_tailed() {
        let m = mix();
        let works: Vec<f64> = m.templates().iter().map(|t| t.work).collect();
        let max = works.iter().cloned().fold(0.0, f64::max);
        let min = works.iter().cloned().fold(f64::INFINITY, f64::min);
        // ~1.5 decades of spread survive calibration.
        assert!(max / min > 20.0);
        assert!(m.mean_work() < m.p99_work());
    }

    #[test]
    fn sampling_matches_update_fraction() {
        let m = mix();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 100_000;
        let updates = (0..n).filter(|_| m.sample(&mut rng).1).count();
        let frac = updates as f64 / n as f64;
        assert!((frac - UPDATE_FRACTION).abs() < 0.005, "fraction {frac}");
    }

    #[test]
    fn sampling_prefers_light_queries() {
        let m = mix();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let median_template = m.templates()[10].work;
        let n = 50_000;
        let light = (0..n).filter(|_| m.sample(&mut rng).0 <= median_template).count();
        assert!(light as f64 / n as f64 > 0.6);
    }

    #[test]
    fn sampled_works_come_from_templates() {
        let m = mix();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..1000 {
            let (work, _) = m.sample(&mut rng);
            assert!(m.templates().iter().any(|t| (t.work - work).abs() < 1e-15));
        }
    }

    #[test]
    #[should_panic(expected = "SLA")]
    fn rejects_non_positive_sla() {
        let _ = QueryMix::tpch_like(&LoadModel::tpch_xeon(), 0.0);
    }
}
