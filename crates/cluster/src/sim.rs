//! The cluster discrete-event simulator.

use crate::metrics::{ClusterReport, LatencyRecorder};
use crate::query::QueryMix;
use crate::server::ServerSim;
use cubefit_workload::LoadModel;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One tenant's client population and replica servers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantAssignment {
    /// Tenant identifier (reporting only).
    pub tenant_id: u64,
    /// Number of concurrent closed-loop clients.
    pub clients: u32,
    /// Indices of the servers hosting the tenant's replicas.
    pub servers: Vec<usize>,
}

impl TenantAssignment {
    /// Creates an assignment.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty or contains duplicates.
    #[must_use]
    pub fn new(tenant_id: u64, clients: u32, servers: Vec<usize>) -> Self {
        assert!(!servers.is_empty(), "a tenant needs at least one replica");
        let mut dedup = servers.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), servers.len(), "replica servers must be distinct");
        TenantAssignment { tenant_id, clients, servers }
    }
}

/// Simulation window configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Warm-up duration (seconds of simulated time, not recorded).
    pub warmup_seconds: f64,
    /// Measurement duration (seconds of simulated time).
    pub measure_seconds: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SimConfig {
    /// The paper's protocol: 5 minutes warm-up, 5 minutes measurement.
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        SimConfig { warmup_seconds: 300.0, measure_seconds: 300.0, seed }
    }

    /// A fast configuration for tests and examples: 2 s warm-up, 10 s
    /// measurement.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        SimConfig { warmup_seconds: 2.0, measure_seconds: 10.0, seed }
    }
}

/// A fractional, pinned client.
///
/// The paper's model shares each tenant's workload evenly across its `γ`
/// replicas (a replica of size `x` carries load `x/γ`, §II). Each real
/// client is therefore simulated as `γ` *sub-clients* of weight `1/γ`, one
/// pinned to each replica. A sub-client of weight `w` runs a closed loop
/// with think time `latency × (1−w)/w`, so its time-averaged presence on
/// its server is exactly `w` — reproducing the linear load model without
/// the bottleneck-drift a shared closed-loop client population would
/// introduce.
#[derive(Debug, Clone, Copy)]
struct SubClient {
    tenant: usize,
    server: usize,
    weight: f64,
    active: bool,
}

/// A scheduled event (min-heap by time).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time: f64,
    order: u64,
    kind: EventKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// A job may finish on `server` (stale unless `seq` still matches).
    Complete { server: usize, seq: u64, job: u64 },
    /// A sub-client's think time expires and it issues its next query.
    Issue { client: u32 },
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; tie-break on insertion order for
        // determinism.
        other.time.total_cmp(&self.time).then_with(|| other.order.cmp(&self.order))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The cluster simulator: processor-sharing servers, closed-loop clients,
/// failure injection, and latency percentiles.
///
/// See the crate docs for the modelling rationale. Typical use: build from
/// a placement, optionally [`Self::fail_servers`], then [`Self::run`].
#[derive(Debug)]
pub struct ClusterSim {
    servers: Vec<ServerSim>,
    clients: Vec<SubClient>,
    /// Tenants that still have at least one live replica.
    tenant_available: Vec<bool>,
    tenants: Vec<TenantAssignment>,
    mix: QueryMix,
    config: SimConfig,
    rng: ChaCha8Rng,
    queue: BinaryHeap<Event>,
    now: f64,
    event_order: u64,
    recorder: LatencyRecorder,
    started: bool,
    unavailable_clients: usize,
    /// Per-tenant, per-server overhead in client-equivalents.
    overhead_share: f64,
}

impl ClusterSim {
    /// Builds a simulator over `server_count` servers.
    ///
    /// Per-replica background overhead is `β/(δ·γ)` client-equivalents,
    /// where `γ` is taken per tenant from its replica count, so that a
    /// server's equivalent concurrency matches the paper's linear load
    /// model exactly.
    ///
    /// # Panics
    ///
    /// Panics if an assignment references a server index out of range.
    #[must_use]
    pub fn new(
        server_count: usize,
        assignments: Vec<TenantAssignment>,
        mix: &QueryMix,
        model: &LoadModel,
        config: SimConfig,
    ) -> Self {
        let overhead_share = model.beta() / model.delta();
        let mut servers: Vec<ServerSim> = (0..server_count).map(|_| ServerSim::new(0.0)).collect();
        let mut clients = Vec::new();
        for (tenant_idx, assignment) in assignments.iter().enumerate() {
            let gamma = assignment.servers.len();
            for &s in &assignment.servers {
                assert!(s < server_count, "server index {s} out of range");
                servers[s].add_overhead(overhead_share / gamma as f64);
            }
            // One sub-client of weight 1/γ per (client, replica) pair.
            for _ in 0..assignment.clients {
                for &server in &assignment.servers {
                    clients.push(SubClient {
                        tenant: tenant_idx,
                        server,
                        weight: 1.0 / gamma as f64,
                        active: true,
                    });
                }
            }
        }
        ClusterSim {
            servers,
            clients,
            tenant_available: vec![true; assignments.len()],
            tenants: assignments,
            mix: mix.clone(),
            rng: ChaCha8Rng::seed_from_u64(config.seed),
            config,
            queue: BinaryHeap::new(),
            now: 0.0,
            event_order: 0,
            recorder: LatencyRecorder::new(),
            started: false,
            unavailable_clients: 0,
            overhead_share,
        }
    }

    /// Number of servers (including failed ones).
    #[must_use]
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Clients whose tenant lost every replica.
    #[must_use]
    pub fn unavailable_clients(&self) -> usize {
        self.unavailable_clients
    }

    /// Equivalent concurrency of server `s`: the total weight of active
    /// sub-clients pinned to it plus the background overhead. Multiplying
    /// by the model's `δ` yields the server's load in the paper's linear
    /// model.
    #[must_use]
    pub fn equivalent_concurrency(&self, s: usize) -> f64 {
        let assigned: f64 =
            self.clients.iter().filter(|c| c.active && c.server == s).map(|c| c.weight).sum();
        assigned + self.servers[s].overhead()
    }

    /// Fails the given servers simultaneously: the failed replicas'
    /// sub-clients redistribute evenly across each tenant's surviving
    /// replicas, and the failed replicas' share of tenant overhead moves
    /// with them (paper §IV semantics).
    ///
    /// Tenants with no surviving replica become unavailable; their clients
    /// stop issuing queries.
    pub fn fail_servers(&mut self, failed: &[usize]) {
        let mut lost_clients: Vec<u32> = Vec::new();
        let mut newly_failed: Vec<usize> = Vec::new();
        for &s in failed {
            if self.servers[s].is_failed() {
                continue;
            }
            lost_clients.extend(self.servers[s].fail(self.now));
            newly_failed.push(s);
        }
        // Move overhead: each tenant replica on a *newly* failed server
        // shifts its overhead share onto the surviving replicas. Replicas
        // that failed in an earlier call already moved their share then —
        // re-counting them would inflate survivor overhead on every call.
        for tenant in &self.tenants {
            let gamma = tenant.servers.len();
            let share = self.overhead_share / gamma as f64;
            let fresh = tenant.servers.iter().filter(|s| newly_failed.contains(s)).count();
            let survivors: Vec<usize> =
                tenant.servers.iter().copied().filter(|&s| !self.servers[s].is_failed()).collect();
            if fresh == 0 || survivors.is_empty() {
                continue;
            }
            let moved = share * fresh as f64 / survivors.len() as f64;
            for &s in &survivors {
                self.servers[s].add_overhead(moved);
            }
        }
        // Re-pin sub-clients from failed servers round-robin over each
        // tenant's survivors (the even split of §IV); deactivate tenants
        // with no survivors.
        let mut cursor: Vec<usize> = vec![0; self.tenants.len()];
        for i in 0..self.clients.len() {
            let sub = self.clients[i];
            if !sub.active || !self.servers[sub.server].is_failed() {
                continue;
            }
            let survivors: Vec<usize> = self.tenants[sub.tenant]
                .servers
                .iter()
                .copied()
                .filter(|&s| !self.servers[s].is_failed())
                .collect();
            if survivors.is_empty() {
                self.clients[i].active = false;
                if self.tenant_available[sub.tenant] {
                    self.tenant_available[sub.tenant] = false;
                    self.unavailable_clients += self.tenants[sub.tenant].clients as usize;
                }
                continue;
            }
            let c = &mut cursor[sub.tenant];
            self.clients[i].server = survivors[*c % survivors.len()];
            *c += 1;
        }
        // Sub-clients whose in-flight query died with a failed server
        // reissue immediately on their new replica; surviving servers'
        // schedules are unaffected. (Sub-clients that were thinking keep
        // their scheduled issue event and pick up the new pin then.)
        if self.started {
            for client in lost_clients {
                self.issue_query(client);
            }
        }
    }

    fn schedule(&mut self, server: usize) {
        if let Some((time, job)) = self.servers[server].next_completion() {
            self.event_order += 1;
            self.queue.push(Event {
                time: time.max(self.now),
                order: self.event_order,
                kind: EventKind::Complete { server, seq: self.servers[server].seq(), job },
            });
        }
    }

    fn schedule_issue(&mut self, client: u32, at: f64) {
        self.event_order += 1;
        self.queue.push(Event {
            time: at.max(self.now),
            order: self.event_order,
            kind: EventKind::Issue { client },
        });
    }

    fn issue_query(&mut self, client: u32) {
        let state = self.clients[client as usize];
        if !state.active {
            return;
        }
        if self.servers[state.server].is_failed() {
            // A think-time wake-up raced a failure before re-pinning; skip
            // this cycle (fail_servers re-pins active sub-clients).
            return;
        }
        // Update queries (5% of the mix) execute against all replicas in
        // the real system (§IV); the paper's δ/β calibration folds that
        // write traffic into the per-client load constant, and so does this
        // simulator — mirroring work explicitly would couple a server's
        // load to its siblings' *throughput*, which the linear load model
        // deliberately abstracts away (see DESIGN.md §3).
        let (work, _is_update) = self.mix.sample(&mut self.rng);
        self.servers[state.server].start_job(self.now, Some(client), work);
        self.schedule(state.server);
    }

    /// Think time for a sub-client of weight `w` after a query of latency
    /// `latency`: presence fraction per cycle is exactly `w`.
    fn think_time(weight: f64, latency: f64) -> f64 {
        if weight >= 1.0 {
            0.0
        } else {
            latency * (1.0 - weight) / weight
        }
    }

    fn bootstrap(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        // Stationary-ish start: a sub-client of weight w is in service with
        // probability w, otherwise it wakes up somewhere inside an
        // estimated think window. This avoids a synchronized burst of γ×
        // the steady-state concurrency at t = 0.
        let est_latency: Vec<f64> = (0..self.servers.len())
            .map(|s| self.mix.mean_work() * self.equivalent_concurrency(s).max(1.0))
            .collect();
        for i in 0..self.clients.len() {
            let sub = self.clients[i];
            if !sub.active || self.servers[sub.server].is_failed() {
                continue;
            }
            let u: f64 = rand::Rng::gen(&mut self.rng);
            if u < sub.weight {
                self.issue_query(i as u32);
            } else {
                let think = Self::think_time(sub.weight, est_latency[sub.server]);
                let offset: f64 = rand::Rng::gen(&mut self.rng);
                self.schedule_issue(i as u32, self.now + offset * think.max(1e-6));
            }
        }
    }

    /// Processes events until simulated time `until`.
    fn run_until(&mut self, until: f64) {
        while let Some(&event) = self.queue.peek() {
            if event.time > until {
                break;
            }
            let event = self.queue.pop().expect("peeked");
            match event.kind {
                EventKind::Complete { server, seq, job } => {
                    if self.servers[server].is_failed() || self.servers[server].seq() != seq {
                        continue; // stale
                    }
                    self.now = event.time;
                    let Some(job) = self.servers[server].complete_job(self.now, job) else {
                        continue;
                    };
                    self.schedule(server);
                    if let Some(client) = job.client {
                        let latency = self.now - job.issued_at;
                        self.recorder.record(server, latency);
                        let weight = self.clients[client as usize].weight;
                        let think = Self::think_time(weight, latency);
                        if think <= 0.0 {
                            self.issue_query(client);
                        } else {
                            self.schedule_issue(client, self.now + think);
                        }
                    }
                }
                EventKind::Issue { client } => {
                    self.now = event.time;
                    self.issue_query(client);
                }
            }
        }
        self.now = until;
    }

    /// Runs warm-up then measurement, returning the latency report for the
    /// measurement window.
    ///
    /// May be called once; subsequent calls return an empty report.
    pub fn run(&mut self) -> ClusterReport {
        self.bootstrap();
        self.run_until(self.config.warmup_seconds);
        self.recorder.start();
        self.run_until(self.config.warmup_seconds + self.config.measure_seconds);
        self.recorder.stop();
        std::mem::take(&mut self.recorder).finish()
    }
}

/// Builds [`TenantAssignment`]s from a placement and the client counts of
/// its tenants.
///
/// `clients_of` maps tenant ids to their client counts (e.g. from
/// `cubefit_workload::TenantSpec`). Bin indices become server indices.
#[must_use]
pub fn assignments_from_placement(
    placement: &cubefit_core::Placement,
    clients_of: &dyn Fn(cubefit_core::TenantId) -> u32,
) -> Vec<TenantAssignment> {
    placement
        .tenants()
        .map(|(id, _, bins)| {
            TenantAssignment::new(
                id.get(),
                clients_of(id),
                bins.iter().map(|b| b.index()).collect(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> QueryMix {
        QueryMix::tpch_like(&LoadModel::tpch_xeon(), 5.0)
    }

    fn model() -> LoadModel {
        LoadModel::tpch_xeon()
    }

    #[test]
    fn half_loaded_server_meets_sla() {
        // 26 clients over two servers: load ≈ 0.26 each → p99 ≈ 1.3 s.
        let assignments = vec![TenantAssignment::new(0, 26, vec![0, 1])];
        let mut sim = ClusterSim::new(2, assignments, &mix(), &model(), SimConfig::quick(1));
        let report = sim.run();
        assert!(!report.is_empty());
        assert!(report.p99() < 5.0, "p99 {}", report.p99());
        assert!(report.p99() > 0.5, "p99 {}", report.p99());
    }

    #[test]
    fn fully_loaded_server_sits_at_the_sla_boundary() {
        // One dedicated tenant with 52 clients on a single replica pair is
        // not expressible (replicas split clients), so use two tenants
        // whose replicas stack to load 1.0 on server 0: tenant A on (0,1),
        // tenant B on (0,2), 52 clients each → 26+26 clients + 2×1
        // overhead = 54 equivalents = 1/δ on server 0.
        let assignments = vec![
            TenantAssignment::new(0, 52, vec![0, 1]),
            TenantAssignment::new(1, 52, vec![0, 2]),
        ];
        let mut sim = ClusterSim::new(3, assignments, &mix(), &model(), SimConfig::quick(2));
        assert!((sim.equivalent_concurrency(0) - 54.0).abs() < 1e-9);
        let report = sim.run();
        // p99 close to the SLA (hot server dominates the tail).
        assert!(report.p99() > 3.5, "p99 {}", report.p99());
        assert!(report.p99() < 6.5, "p99 {}", report.p99());
    }

    #[test]
    fn overloaded_server_violates_sla() {
        // ~80 client-equivalents on server 0: load ≈ 1.5 → p99 ≈ 7.5 s.
        let assignments = vec![
            TenantAssignment::new(0, 52, vec![0, 1]),
            TenantAssignment::new(1, 52, vec![0, 2]),
            TenantAssignment::new(2, 52, vec![0, 3]),
        ];
        let mut sim = ClusterSim::new(4, assignments, &mix(), &model(), SimConfig::quick(3));
        let report = sim.run();
        assert!(report.violates_sla(5.0), "p99 {}", report.p99());
    }

    #[test]
    fn failure_moves_clients_to_survivors() {
        let assignments = vec![TenantAssignment::new(0, 20, vec![0, 1, 2])];
        let mut sim = ClusterSim::new(3, assignments, &mix(), &model(), SimConfig::quick(4));
        let before = sim.equivalent_concurrency(0);
        sim.fail_servers(&[2]);
        let after = sim.equivalent_concurrency(0);
        // Server 2's ~6-7 clients split between servers 0 and 1, plus a
        // share of the moved overhead.
        assert!(after > before + 2.0, "before {before}, after {after}");
        assert_eq!(sim.unavailable_clients(), 0);
        let report = sim.run();
        assert!(!report.is_empty());
    }

    #[test]
    fn repeated_fail_servers_does_not_double_count_overhead() {
        let assignments = vec![TenantAssignment::new(0, 20, vec![0, 1, 2])];
        let mut sim = ClusterSim::new(3, assignments, &mix(), &model(), SimConfig::quick(4));
        sim.fail_servers(&[2]);
        let after_first = sim.equivalent_concurrency(0);
        // Failing the same server again must be a complete no-op: the
        // replica's overhead share already moved in the first call.
        sim.fail_servers(&[2]);
        assert!(
            (sim.equivalent_concurrency(0) - after_first).abs() < 1e-12,
            "repeat call changed overhead: {} vs {after_first}",
            sim.equivalent_concurrency(0)
        );
        // An incremental second failure moves only the newly failed
        // replica's base share (1/3 of the tenant overhead) onto the last
        // survivor — not the previously failed replica's share again.
        let share = model().beta() / model().delta() / 3.0;
        let before_second = sim.equivalent_concurrency(0);
        sim.fail_servers(&[1]);
        // Server 1 held its 20 original sub-clients plus 10 re-pinned from
        // server 2, each of weight 1/3 — all land on the last survivor.
        let clients_moved: f64 = 30.0 / 3.0;
        let gained = sim.equivalent_concurrency(0) - before_second;
        assert!(
            (gained - (share + clients_moved)).abs() < 1e-9,
            "gained {gained}, expected {}",
            share + clients_moved
        );
    }

    #[test]
    fn failure_of_all_replicas_makes_tenant_unavailable() {
        let assignments = vec![
            TenantAssignment::new(0, 10, vec![0, 1]),
            TenantAssignment::new(1, 10, vec![2, 3]),
        ];
        let mut sim = ClusterSim::new(4, assignments, &mix(), &model(), SimConfig::quick(5));
        sim.fail_servers(&[0, 1]);
        assert_eq!(sim.unavailable_clients(), 10);
        let report = sim.run();
        // Only tenant 1's clients produce samples.
        assert!(!report.is_empty());
    }

    #[test]
    fn post_failure_overload_shows_in_latency() {
        // Two tenants, each 52 clients, replicated across disjoint pairs
        // sharing server 0... rather: both tenants on servers (0,1) and
        // (0,2). Failing server 1 pushes tenant 0 entirely onto server 0.
        let assignments = vec![
            TenantAssignment::new(0, 52, vec![0, 1]),
            TenantAssignment::new(1, 52, vec![0, 2]),
        ];
        let healthy = {
            let mut sim =
                ClusterSim::new(3, assignments.clone(), &mix(), &model(), SimConfig::quick(6));
            sim.run().p99()
        };
        let failed = {
            let mut sim = ClusterSim::new(3, assignments, &mix(), &model(), SimConfig::quick(6));
            sim.fail_servers(&[1]);
            sim.run().p99()
        };
        assert!(failed > healthy, "healthy {healthy}, failed {failed}");
        assert!(failed > 5.0, "post-failure p99 {failed} should break SLA");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let assignments = vec![TenantAssignment::new(0, 13, vec![0, 1])];
            let mut sim = ClusterSim::new(2, assignments, &mix(), &model(), SimConfig::quick(seed));
            sim.run().p99()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn latency_scales_roughly_linearly_with_load() {
        // The core claim of the linear load model: p99 ∝ equivalent
        // concurrency.
        let p99_at = |clients: u32| {
            let assignments = vec![TenantAssignment::new(0, clients, vec![0, 1])];
            let mut sim = ClusterSim::new(2, assignments, &mix(), &model(), SimConfig::quick(10));
            sim.run().p99()
        };
        let low = p99_at(10);
        let high = p99_at(40);
        let ratio = high / low;
        // 4× the clients ≈ 4× the latency, with slack for overhead and
        // sampling noise.
        assert!(ratio > 2.0 && ratio < 6.0, "ratio {ratio}");
    }

    #[test]
    fn assignments_from_placement_maps_bins() {
        use cubefit_core::{Load, Placement, Tenant, TenantId};
        let mut p = Placement::new(2);
        let a = p.open_bin(None);
        let b = p.open_bin(None);
        p.place_tenant(&Tenant::new(TenantId::new(5), Load::new(0.5).unwrap()), &[a, b]).unwrap();
        let assignments = assignments_from_placement(&p, &|_| 12);
        assert_eq!(assignments.len(), 1);
        assert_eq!(assignments[0].tenant_id, 5);
        assert_eq!(assignments[0].clients, 12);
        assert_eq!(assignments[0].servers, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_replica_servers_rejected() {
        let _ = TenantAssignment::new(0, 5, vec![1, 1]);
    }
}
