//! Diagnostic: verifies the simulator's core contract — a server's p99
//! latency tracks `SLA × load` linearly across the load range, for both
//! replication factors. Run with `cargo run --release -p cubefit-cluster
//! --example linearity`.

use cubefit_cluster::{ClusterSim, QueryMix, SimConfig, TenantAssignment};
use cubefit_workload::LoadModel;

fn main() {
    let model = LoadModel::tpch_xeon();
    for gamma in [2usize, 3] {
        let mix = QueryMix::tpch_like(&model, 5.0);
        for target in [0.5, 0.75, 0.9, 1.0, 1.1] {
            let mut assignments = Vec::new();
            let mut equiv = 0.0f64;
            let mut i = 1usize;
            let per_tenant = 8.0 / gamma as f64 + 2.0 / gamma as f64;
            let need = target / model.delta();
            while equiv + per_tenant <= need {
                let mut servers = vec![0usize];
                for k in 0..gamma - 1 {
                    servers.push(i + k);
                }
                i += gamma - 1;
                assignments.push(TenantAssignment::new(i as u64, 8, servers));
                equiv += per_tenant;
            }
            let n = i + 1;
            let mut sim = ClusterSim::new(
                n,
                assignments,
                &mix,
                &model,
                SimConfig { warmup_seconds: 60.0, measure_seconds: 120.0, seed: 42 },
            );
            let load = sim.equivalent_concurrency(0) * model.delta();
            let report = sim.run();
            println!("γ={gamma} target={target:.2} load={load:.3} server0_p99={:.2} (linear would be {:.2})",
                report.per_server[0].p99(), 5.0 * load);
        }
    }
}
