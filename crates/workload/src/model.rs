//! The linear clients→load model (paper §IV).

use cubefit_core::Load;

/// Linear tenant utilization model `load = δ·c + β`.
///
/// `δ` is the per-client capacity cost, `β` the fixed per-tenant overhead,
/// and `max_clients` (`C` in the paper) the largest client count a
/// dedicated server can sustain at the SLA. A load of `1.0` corresponds to
/// the SLA boundary (p99 latency of 5 s in the paper's calibration).
///
/// ```
/// use cubefit_workload::LoadModel;
///
/// let model = LoadModel::tpch_xeon();
/// // 52 clients on one tenant saturate a server exactly.
/// assert!((model.load(52).get() - 1.0).abs() < 1e-12);
/// assert!(model.load(1).get() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LoadModel {
    delta: f64,
    beta: f64,
    max_clients: u32,
}

impl LoadModel {
    /// Creates a model from explicit `δ`, `β`, and `C`.
    ///
    /// # Panics
    ///
    /// Panics if parameters are non-positive/negative or if a single client
    /// would already overload a server (`δ + β > 1`).
    #[must_use]
    pub fn new(delta: f64, beta: f64, max_clients: u32) -> Self {
        assert!(delta > 0.0, "per-client cost must be positive");
        assert!(beta >= 0.0, "per-tenant overhead cannot be negative");
        assert!(max_clients >= 1, "a server must support at least one client");
        assert!(delta + beta <= 1.0 + 1e-12, "a single client may not overload a server");
        LoadModel { delta, beta, max_clients }
    }

    /// The calibration of the paper's testbed (Intel Xeon, 12 cores, 32 GB,
    /// TPC-H, 5 s p99 SLA): `C = 52` clients saturate a server, with a
    /// per-tenant overhead equivalent to two clients —
    /// `δ = 1/54`, `β = 2/54`, so `load(52) = 1.0` exactly.
    #[must_use]
    pub fn tpch_xeon() -> Self {
        LoadModel::new(1.0 / 54.0, 2.0 / 54.0, 52)
    }

    /// The normalized model of the §V.C simulations: `load = c / C` with no
    /// overhead (`δ = 1/C`, `β = 0`).
    #[must_use]
    pub fn normalized(max_clients: u32) -> Self {
        assert!(max_clients >= 1);
        LoadModel::new(1.0 / f64::from(max_clients), 0.0, max_clients)
    }

    /// Per-client capacity cost `δ`.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Per-tenant overhead `β`.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Maximum clients a dedicated server sustains at the SLA (`C`).
    #[must_use]
    pub fn max_clients(&self) -> u32 {
        self.max_clients
    }

    /// The load a tenant with `clients` concurrent clients places on a
    /// server, clamped to the valid `(0, 1]` range.
    ///
    /// The paper's model can exceed `1.0` for over-provisioned tenants;
    /// placement requires loads in `(0, 1]`, so callers should keep client
    /// counts within [`Self::max_clients`]. Values are clamped rather than
    /// rejected so that distribution tails cannot crash an experiment.
    #[must_use]
    pub fn load(&self, clients: u32) -> Load {
        let raw = self.delta * f64::from(clients) + self.beta;
        Load::new(raw.clamp(f64::MIN_POSITIVE, 1.0)).expect("clamped into (0, 1]")
    }

    /// The raw (unclamped) model value `δ·c + β`; values above `1.0` mean
    /// the configuration violates the SLA on a dedicated server.
    #[must_use]
    pub fn raw_load(&self, clients: u32) -> f64 {
        self.delta * f64::from(clients) + self.beta
    }

    /// The largest client count whose load stays within `budget`.
    ///
    /// Inverse of [`Self::load`], useful for capacity planning and for the
    /// cluster simulator's admission checks.
    #[must_use]
    pub fn clients_within(&self, budget: f64) -> u32 {
        if budget <= self.beta {
            return 0;
        }
        ((budget - self.beta) / self.delta).floor() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpch_calibration_saturates_at_52() {
        let m = LoadModel::tpch_xeon();
        assert!((m.load(52).get() - 1.0).abs() < 1e-12);
        assert!(m.raw_load(53) > 1.0);
        assert_eq!(m.max_clients(), 52);
    }

    #[test]
    fn normalized_model_is_linear_fraction() {
        let m = LoadModel::normalized(52);
        assert!((m.load(13).get() - 0.25).abs() < 1e-12);
        assert!((m.load(52).get() - 1.0).abs() < 1e-12);
        assert_eq!(m.beta(), 0.0);
    }

    #[test]
    fn load_is_clamped_to_valid_range() {
        let m = LoadModel::normalized(10);
        assert_eq!(m.load(25).get(), 1.0);
    }

    #[test]
    fn clients_within_inverts_load() {
        let m = LoadModel::tpch_xeon();
        for c in 1..=52 {
            let load = m.raw_load(c);
            assert_eq!(m.clients_within(load + 1e-9), c);
        }
        assert_eq!(m.clients_within(0.0), 0);
        assert_eq!(m.clients_within(m.beta()), 0);
    }

    #[test]
    #[should_panic(expected = "overload")]
    fn rejects_oversized_single_client() {
        let _ = LoadModel::new(0.9, 0.2, 10);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_delta() {
        let _ = LoadModel::new(0.0, 0.1, 10);
    }
}
