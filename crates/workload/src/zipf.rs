//! Zipfian sampling over `1..=n`.

use rand::Rng;

/// Precomputed zipfian distribution over `1..=n` with exponent `s`:
/// `P(k) ∝ k^(−s)`.
///
/// The paper's zipfian experiments sample client counts from `1..=C`
/// (`C = 52`) with exponent 3 (§V.A) and exponents swept in §V.C. A
/// cumulative table plus binary search gives exact sampling in `O(log n)`.
///
/// ```
/// use cubefit_workload::ZipfTable;
/// use rand::SeedableRng;
///
/// let zipf = ZipfTable::new(52, 3.0);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let k = zipf.sample(&mut rng);
/// assert!((1..=52).contains(&k));
/// ```
#[derive(Debug, Clone)]
pub struct ZipfTable {
    /// `cdf[i]` = P(k ≤ i+1), normalized so the last entry is 1.0.
    cdf: Vec<f64>,
    exponent: f64,
}

impl ZipfTable {
    /// Builds the table for values `1..=n` with the given exponent.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `exponent` is negative or non-finite
    /// (`exponent == 0` is allowed and degenerates to discrete uniform).
    #[must_use]
    pub fn new(n: u32, exponent: f64) -> Self {
        assert!(n >= 1, "zipf needs at least one value");
        assert!(
            exponent.is_finite() && exponent >= 0.0,
            "zipf exponent must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += f64::from(k).powf(-exponent);
            cdf.push(acc);
        }
        let total = acc;
        for entry in &mut cdf {
            *entry /= total;
        }
        ZipfTable { cdf, exponent }
    }

    /// Number of values in the support.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.cdf.len() as u32
    }

    /// The exponent `s`.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability of value `k` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside `1..=n`.
    #[must_use]
    pub fn pmf(&self, k: u32) -> f64 {
        assert!((1..=self.n()).contains(&k), "value out of support");
        let i = (k - 1) as usize;
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }

    /// Draws one value from `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let u: f64 = rng.gen();
        // partition_point returns the count of entries < u, i.e. the index
        // of the first cdf entry ≥ u; +1 converts to the 1-based value.
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx.min(self.cdf.len() - 1) + 1) as u32
    }

    /// The distribution mean `Σ k·P(k)`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        (1..=self.n()).map(|k| f64::from(k) * self.pmf(k)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn pmf_sums_to_one() {
        for s in [0.0, 1.0, 2.0, 3.0] {
            let z = ZipfTable::new(52, s);
            let total: f64 = (1..=52).map(|k| z.pmf(k)).sum();
            assert!((total - 1.0).abs() < 1e-9, "s={s}: total {total}");
        }
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = ZipfTable::new(10, 0.0);
        for k in 1..=10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn higher_exponent_concentrates_on_one() {
        let z1 = ZipfTable::new(52, 1.0);
        let z3 = ZipfTable::new(52, 3.0);
        assert!(z3.pmf(1) > z1.pmf(1));
        assert!(z3.pmf(52) < z1.pmf(52));
        // Exponent 3 over 1..=52 puts over 80% of mass on k=1.
        assert!(z3.pmf(1) > 0.8);
    }

    #[test]
    fn samples_match_pmf() {
        let z = ZipfTable::new(8, 2.0);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 200_000;
        let mut counts = [0usize; 8];
        for _ in 0..n {
            counts[(z.sample(&mut rng) - 1) as usize] += 1;
        }
        for k in 1..=8u32 {
            let expected = z.pmf(k);
            let observed = counts[(k - 1) as usize] as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "k={k}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn samples_stay_in_support() {
        let z = ZipfTable::new(3, 1.5);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..10_000 {
            assert!((1..=3).contains(&z.sample(&mut rng)));
        }
    }

    #[test]
    fn mean_decreases_with_exponent() {
        let m0 = ZipfTable::new(52, 0.0).mean();
        let m1 = ZipfTable::new(52, 1.0).mean();
        let m3 = ZipfTable::new(52, 3.0).mean();
        assert!(m0 > m1 && m1 > m3);
        assert!((m0 - 26.5).abs() < 1e-9);
        assert!(m3 < 1.5);
    }

    #[test]
    #[should_panic(expected = "support")]
    fn pmf_out_of_support_panics() {
        let _ = ZipfTable::new(5, 1.0).pmf(6);
    }
}
