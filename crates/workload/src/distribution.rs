//! Client-count distributions (paper §V).

use crate::zipf::ZipfTable;
use rand::RngCore;

/// A distribution over per-tenant concurrent client counts.
///
/// All of the paper's workloads are expressed as client counts which a
/// [`crate::LoadModel`] then converts to loads; implementations must return
/// counts of at least 1.
///
/// The trait is object-safe so experiment configurations can hold
/// heterogeneous distribution lists.
pub trait ClientDistribution: std::fmt::Debug + Send + Sync {
    /// Draws one client count (≥ 1).
    fn sample_clients(&self, rng: &mut dyn RngCore) -> u32;

    /// Largest client count the distribution can produce.
    fn max_clients(&self) -> u32;

    /// Human-readable description, used to label experiment outputs.
    fn label(&self) -> String;
}

/// Discrete uniform client counts over `min..=max` — the paper's first
/// cluster experiment uses `UniformClients::new(1, 15)` (§V.A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformClients {
    min: u32,
    max: u32,
}

impl UniformClients {
    /// Creates a uniform distribution over `min..=max` clients.
    ///
    /// # Panics
    ///
    /// Panics if `min == 0` or `min > max`.
    #[must_use]
    pub fn new(min: u32, max: u32) -> Self {
        assert!(min >= 1, "tenants have at least one client");
        assert!(min <= max, "empty client range");
        UniformClients { min, max }
    }
}

impl ClientDistribution for UniformClients {
    fn sample_clients(&self, rng: &mut dyn RngCore) -> u32 {
        let span = u64::from(self.max - self.min) + 1;
        self.min + (rng.next_u64() % span) as u32
    }

    fn max_clients(&self) -> u32 {
        self.max
    }

    fn label(&self) -> String {
        format!("uniform({}..={})", self.min, self.max)
    }
}

/// Zipfian client counts over `1..=max` with exponent `s` — the paper's
/// second cluster experiment uses `ZipfClients::new(3.0, 52)` (§V.A).
#[derive(Debug, Clone)]
pub struct ZipfClients {
    table: ZipfTable,
}

impl ZipfClients {
    /// Creates a zipfian distribution with the given exponent over
    /// `1..=max` clients.
    #[must_use]
    pub fn new(exponent: f64, max: u32) -> Self {
        ZipfClients { table: ZipfTable::new(max, exponent) }
    }

    /// The underlying probability table.
    #[must_use]
    pub fn table(&self) -> &ZipfTable {
        &self.table
    }
}

impl ClientDistribution for ZipfClients {
    fn sample_clients(&self, rng: &mut dyn RngCore) -> u32 {
        self.table.sample(rng)
    }

    fn max_clients(&self) -> u32 {
        self.table.n()
    }

    fn label(&self) -> String {
        format!("zipf(s={}, 1..={})", self.table.exponent(), self.table.n())
    }
}

/// Constant client count; useful for worked examples and unit tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstantClients(u32);

impl ConstantClients {
    /// Creates a distribution that always returns `clients`.
    ///
    /// # Panics
    ///
    /// Panics if `clients == 0`.
    #[must_use]
    pub fn new(clients: u32) -> Self {
        assert!(clients >= 1);
        ConstantClients(clients)
    }
}

impl ClientDistribution for ConstantClients {
    fn sample_clients(&self, _rng: &mut dyn RngCore) -> u32 {
        self.0
    }

    fn max_clients(&self) -> u32 {
        self.0
    }

    fn label(&self) -> String {
        format!("constant({})", self.0)
    }
}

/// Weighted mixture of component distributions; models heterogeneous tenant
/// populations (e.g. a bimodal small/large split).
#[derive(Debug)]
pub struct MixtureClients {
    components: Vec<(f64, Box<dyn ClientDistribution>)>,
    total_weight: f64,
}

impl MixtureClients {
    /// Creates a mixture from `(weight, distribution)` components.
    ///
    /// # Panics
    ///
    /// Panics if no components are given or any weight is non-positive.
    #[must_use]
    pub fn new(components: Vec<(f64, Box<dyn ClientDistribution>)>) -> Self {
        assert!(!components.is_empty(), "mixture needs components");
        assert!(
            components.iter().all(|(w, _)| *w > 0.0 && w.is_finite()),
            "weights must be positive"
        );
        let total_weight = components.iter().map(|(w, _)| w).sum();
        MixtureClients { components, total_weight }
    }
}

impl ClientDistribution for MixtureClients {
    fn sample_clients(&self, rng: &mut dyn RngCore) -> u32 {
        // Map 53 random bits to [0, total_weight).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let mut pick = unit * self.total_weight;
        for (weight, dist) in &self.components {
            if pick < *weight {
                return dist.sample_clients(rng);
            }
            pick -= weight;
        }
        self.components.last().expect("validated non-empty").1.sample_clients(rng)
    }

    fn max_clients(&self) -> u32 {
        self.components.iter().map(|(_, d)| d.max_clients()).max().expect("validated non-empty")
    }

    fn label(&self) -> String {
        let parts: Vec<String> = self
            .components
            .iter()
            .map(|(w, d)| format!("{:.2}×{}", w / self.total_weight, d.label()))
            .collect();
        format!("mixture({})", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(1234)
    }

    #[test]
    fn uniform_stays_in_range_and_covers_it() {
        let d = UniformClients::new(1, 15);
        let mut rng = rng();
        let mut seen = [false; 16];
        for _ in 0..10_000 {
            let c = d.sample_clients(&mut rng);
            assert!((1..=15).contains(&c));
            seen[c as usize] = true;
        }
        assert!(seen[1..=15].iter().all(|&s| s));
        assert_eq!(d.max_clients(), 15);
    }

    #[test]
    fn uniform_is_roughly_flat() {
        let d = UniformClients::new(1, 4);
        let mut rng = rng();
        let mut counts = [0usize; 5];
        let n = 100_000;
        for _ in 0..n {
            counts[d.sample_clients(&mut rng) as usize] += 1;
        }
        for c in 1..=4 {
            let freq = counts[c] as f64 / n as f64;
            assert!((freq - 0.25).abs() < 0.01, "clients={c}: {freq}");
        }
    }

    #[test]
    fn zipf_skews_small() {
        let d = ZipfClients::new(3.0, 52);
        let mut rng = rng();
        let n = 10_000;
        let ones = (0..n).filter(|_| d.sample_clients(&mut rng) == 1).count();
        assert!(ones as f64 / n as f64 > 0.75);
        assert_eq!(d.max_clients(), 52);
    }

    #[test]
    fn constant_always_same() {
        let d = ConstantClients::new(7);
        let mut rng = rng();
        for _ in 0..100 {
            assert_eq!(d.sample_clients(&mut rng), 7);
        }
    }

    #[test]
    fn mixture_draws_from_all_components() {
        let d = MixtureClients::new(vec![
            (1.0, Box::new(ConstantClients::new(2)) as Box<dyn ClientDistribution>),
            (1.0, Box::new(ConstantClients::new(40))),
        ]);
        let mut rng = rng();
        let mut small = 0;
        let mut large = 0;
        for _ in 0..10_000 {
            match d.sample_clients(&mut rng) {
                2 => small += 1,
                40 => large += 1,
                other => panic!("unexpected sample {other}"),
            }
        }
        let ratio = small as f64 / (small + large) as f64;
        assert!((ratio - 0.5).abs() < 0.05);
        assert_eq!(d.max_clients(), 40);
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(UniformClients::new(1, 15).label(), "uniform(1..=15)");
        assert_eq!(ZipfClients::new(3.0, 52).label(), "zipf(s=3, 1..=52)");
        assert_eq!(ConstantClients::new(5).label(), "constant(5)");
        let m = MixtureClients::new(vec![(
            1.0,
            Box::new(ConstantClients::new(5)) as Box<dyn ClientDistribution>,
        )]);
        assert!(m.label().starts_with("mixture("));
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn uniform_rejects_zero_min() {
        let _ = UniformClients::new(0, 5);
    }

    #[test]
    fn distributions_are_object_safe() {
        let list: Vec<Box<dyn ClientDistribution>> = vec![
            Box::new(UniformClients::new(1, 15)),
            Box::new(ZipfClients::new(3.0, 52)),
            Box::new(ConstantClients::new(3)),
        ];
        let mut rng = rng();
        for d in &list {
            assert!(d.sample_clients(&mut rng) >= 1);
        }
    }
}
