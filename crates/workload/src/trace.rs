//! Trace record/replay for tenant sequences.
//!
//! Experiments must be reproducible and shareable: this module serializes a
//! [`TenantSequence`] to a compact binary wire format (and, with the `serde`
//! feature, to JSON via `serde`). The binary layout is
//!
//! ```text
//! magic  "CFT1"            4 bytes
//! count  u32 little-endian
//! per tenant:
//!   id       u64 LE
//!   clients  u32 LE
//!   load     f64 LE bits
//! ```

use crate::generator::{TenantSequence, TenantSpec};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use cubefit_core::{Load, Tenant, TenantId};
use std::fmt;

/// Magic prefix of the binary trace format (version 1).
pub const MAGIC: &[u8; 4] = b"CFT1";

/// Errors produced when decoding a binary trace.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// The buffer does not start with the `CFT1` magic.
    BadMagic,
    /// The buffer ended before the declared number of records.
    Truncated,
    /// A record carried a load outside `(0, 1]`.
    InvalidLoad {
        /// Index of the offending record.
        index: usize,
    },
    /// Trailing bytes after the declared number of records.
    TrailingBytes {
        /// Number of unexpected trailing bytes.
        extra: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "trace does not start with the CFT1 magic"),
            TraceError::Truncated => write!(f, "trace ended before the declared record count"),
            TraceError::InvalidLoad { index } => {
                write!(f, "record {index} carries a load outside (0, 1]")
            }
            TraceError::TrailingBytes { extra } => {
                write!(f, "{extra} unexpected trailing bytes after the last record")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Serializes a sequence to the binary trace format.
#[must_use]
pub fn encode(sequence: &TenantSequence) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + sequence.len() * 20);
    buf.put_slice(MAGIC);
    buf.put_u32_le(sequence.len() as u32);
    for spec in sequence.specs() {
        buf.put_u64_le(spec.tenant.id().get());
        buf.put_u32_le(spec.clients);
        buf.put_f64_le(spec.tenant.load().get());
    }
    buf.freeze()
}

/// Decodes a binary trace produced by [`encode`].
///
/// # Errors
///
/// Returns a [`TraceError`] when the buffer is malformed; see the variants
/// for the specific conditions.
pub fn decode(mut buf: impl Buf) -> Result<TenantSequence, TraceError> {
    if buf.remaining() < MAGIC.len() + 4 {
        return Err(TraceError::BadMagic);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(TraceError::BadMagic);
    }
    let count = buf.get_u32_le() as usize;
    let mut specs = Vec::with_capacity(count.min(1 << 20));
    for index in 0..count {
        if buf.remaining() < 20 {
            return Err(TraceError::Truncated);
        }
        let id = buf.get_u64_le();
        let clients = buf.get_u32_le();
        let load = buf.get_f64_le();
        let load = Load::new(load).map_err(|_| TraceError::InvalidLoad { index })?;
        specs.push(TenantSpec { tenant: Tenant::new(TenantId::new(id), load), clients });
    }
    if buf.has_remaining() {
        return Err(TraceError::TrailingBytes { extra: buf.remaining() });
    }
    Ok(TenantSequence::from_specs(specs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::UniformClients;
    use crate::generator::SequenceBuilder;
    use crate::model::LoadModel;

    fn sample_sequence() -> TenantSequence {
        SequenceBuilder::new(UniformClients::new(1, 15), LoadModel::tpch_xeon())
            .count(25)
            .seed(99)
            .build()
    }

    #[test]
    fn roundtrip_preserves_sequence() {
        let seq = sample_sequence();
        let decoded = decode(encode(&seq)).unwrap();
        assert_eq!(decoded, seq);
    }

    #[test]
    fn roundtrip_empty() {
        let seq = TenantSequence::default();
        assert_eq!(decode(encode(&seq)).unwrap(), seq);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode(&sample_sequence()).to_vec();
        bytes[0] = b'X';
        assert_eq!(decode(&bytes[..]), Err(TraceError::BadMagic));
        assert_eq!(decode(&b"ab"[..]), Err(TraceError::BadMagic));
    }

    #[test]
    fn rejects_truncated() {
        let bytes = encode(&sample_sequence());
        let cut = &bytes[..bytes.len() - 5];
        assert_eq!(decode(cut), Err(TraceError::Truncated));
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = encode(&sample_sequence()).to_vec();
        bytes.push(0);
        assert_eq!(decode(&bytes[..]), Err(TraceError::TrailingBytes { extra: 1 }));
    }

    #[test]
    fn rejects_invalid_load() {
        let seq = sample_sequence();
        let mut bytes = encode(&seq).to_vec();
        // Overwrite the first record's load (offset 8 + 12) with 2.0.
        let offset = 8 + 12;
        bytes[offset..offset + 8].copy_from_slice(&2.0f64.to_le_bytes());
        assert_eq!(decode(&bytes[..]), Err(TraceError::InvalidLoad { index: 0 }));
    }

    #[test]
    fn error_display_messages() {
        assert!(!TraceError::BadMagic.to_string().is_empty());
        assert!(TraceError::TrailingBytes { extra: 3 }.to_string().contains('3'));
    }

    #[cfg(feature = "serde")]
    #[test]
    fn json_roundtrip() {
        let seq = sample_sequence();
        let json = serde_json::to_string(&seq).unwrap();
        let back: TenantSequence = serde_json::from_str(&json).unwrap();
        assert_eq!(back, seq);
    }
}
