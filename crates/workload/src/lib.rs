//! # cubefit-workload
//!
//! Tenant workload generation for the CubeFit experiments.
//!
//! The paper's system model (§IV) reduces a tenant to the in-memory load it
//! places on a server via the linear model `load = δ·c + β`, where `c` is
//! the tenant's number of concurrent clients. This crate layers:
//!
//! * [`LoadModel`] — the linear clients→load mapping, with the calibration
//!   used in the paper's testbed (52 clients saturate a server at the 5 s
//!   p99 SLA) and a *normalized* variant (`load = c/C`) used by the §V.C
//!   simulation experiments;
//! * [`ClientDistribution`] implementations — discrete uniform and zipfian
//!   client counts (plus constants and mixtures) matching §V's
//!   configurations;
//! * [`SequenceBuilder`] — deterministic, seeded generation of tenant
//!   arrival sequences;
//! * [`DriftEngine`] — seeded per-tenant load drift (client-count random
//!   walks and burst/decay profiles) emitting timestamped [`LoadUpdate`]
//!   events for `Consolidator::update_load`;
//! * [`trace`] — record/replay of generated sequences in JSON or a compact
//!   binary format.
//!
//! ```
//! use cubefit_workload::{LoadModel, SequenceBuilder, UniformClients};
//!
//! // The paper's first cluster experiment: clients uniform in 1..=15.
//! let sequence = SequenceBuilder::new(UniformClients::new(1, 15), LoadModel::tpch_xeon())
//!     .count(100)
//!     .seed(42)
//!     .build();
//! assert_eq!(sequence.len(), 100);
//! assert!(sequence.specs().iter().all(|s| s.clients >= 1 && s.clients <= 15));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod distribution;
pub mod drift;
pub mod generator;
pub mod model;
pub mod trace;
pub mod zipf;

pub use distribution::{
    ClientDistribution, ConstantClients, MixtureClients, UniformClients, ZipfClients,
};
pub use drift::{DriftEngine, DriftProfile, LoadUpdate};
pub use generator::{SequenceBuilder, TenantSequence, TenantSpec};
pub use model::LoadModel;
pub use zipf::ZipfTable;
