//! Deterministic tenant-sequence generation.

use crate::distribution::ClientDistribution;
use crate::model::LoadModel;
use cubefit_core::{Load, Tenant, TenantId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One generated tenant: its placement-facing [`Tenant`] plus the client
/// count the cluster simulator drives it with.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TenantSpec {
    /// The tenant (id + load).
    pub tenant: Tenant,
    /// Concurrent clients generating the tenant's load.
    pub clients: u32,
}

impl TenantSpec {
    /// The tenant's load.
    #[must_use]
    pub fn load(&self) -> Load {
        self.tenant.load()
    }
}

/// An ordered tenant arrival sequence.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TenantSequence {
    specs: Vec<TenantSpec>,
}

impl TenantSequence {
    /// Wraps an explicit list of specs.
    #[must_use]
    pub fn from_specs(specs: Vec<TenantSpec>) -> Self {
        TenantSequence { specs }
    }

    /// The specs in arrival order.
    #[must_use]
    pub fn specs(&self) -> &[TenantSpec] {
        &self.specs
    }

    /// Number of tenants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the sequence is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Iterates over the placement-facing tenants in arrival order.
    pub fn tenants(&self) -> impl Iterator<Item = Tenant> + '_ {
        self.specs.iter().map(|s| s.tenant)
    }

    /// Sum of all tenant loads.
    #[must_use]
    pub fn total_load(&self) -> f64 {
        self.specs.iter().map(|s| s.tenant.load().get()).sum()
    }
}

impl FromIterator<TenantSpec> for TenantSequence {
    fn from_iter<I: IntoIterator<Item = TenantSpec>>(iter: I) -> Self {
        TenantSequence { specs: iter.into_iter().collect() }
    }
}

impl<'a> IntoIterator for &'a TenantSequence {
    type Item = &'a TenantSpec;
    type IntoIter = std::slice::Iter<'a, TenantSpec>;

    fn into_iter(self) -> Self::IntoIter {
        self.specs.iter()
    }
}

/// Builder producing deterministic, seeded [`TenantSequence`]s from a
/// [`ClientDistribution`] and a [`LoadModel`].
///
/// Tenant ids are assigned densely starting from [`Self::first_id`]
/// (default 0). The RNG is a fixed-algorithm ChaCha8 stream, so a given
/// `(distribution, model, count, seed)` quadruple generates the same
/// sequence on every platform and release.
///
/// ```
/// use cubefit_workload::{LoadModel, SequenceBuilder, ZipfClients};
///
/// let a = SequenceBuilder::new(ZipfClients::new(3.0, 52), LoadModel::tpch_xeon())
///     .count(10)
///     .seed(7)
///     .build();
/// let b = SequenceBuilder::new(ZipfClients::new(3.0, 52), LoadModel::tpch_xeon())
///     .count(10)
///     .seed(7)
///     .build();
/// assert_eq!(a, b);
/// ```
#[derive(Debug)]
pub struct SequenceBuilder<D> {
    distribution: D,
    model: LoadModel,
    count: usize,
    seed: u64,
    first_id: u64,
}

impl<D: ClientDistribution> SequenceBuilder<D> {
    /// Starts a builder with defaults `count = 0`, `seed = 0`,
    /// `first_id = 0`.
    #[must_use]
    pub fn new(distribution: D, model: LoadModel) -> Self {
        SequenceBuilder { distribution, model, count: 0, seed: 0, first_id: 0 }
    }

    /// Sets the number of tenants to generate.
    #[must_use]
    pub fn count(mut self, count: usize) -> Self {
        self.count = count;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the id of the first generated tenant.
    #[must_use]
    pub fn first_id(mut self, first_id: u64) -> Self {
        self.first_id = first_id;
        self
    }

    /// Generates the sequence.
    #[must_use]
    pub fn build(&self) -> TenantSequence {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let specs = (0..self.count)
            .map(|i| {
                let clients = self.distribution.sample_clients(&mut rng);
                TenantSpec {
                    tenant: Tenant::new(
                        TenantId::new(self.first_id + i as u64),
                        self.model.load(clients),
                    ),
                    clients,
                }
            })
            .collect();
        TenantSequence { specs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{ConstantClients, UniformClients, ZipfClients};

    #[test]
    fn generates_requested_count_with_dense_ids() {
        let seq = SequenceBuilder::new(UniformClients::new(1, 15), LoadModel::tpch_xeon())
            .count(50)
            .seed(3)
            .build();
        assert_eq!(seq.len(), 50);
        for (i, spec) in seq.specs().iter().enumerate() {
            assert_eq!(spec.tenant.id(), TenantId::new(i as u64));
        }
    }

    #[test]
    fn same_seed_same_sequence_different_seed_differs() {
        let build = |seed| {
            SequenceBuilder::new(UniformClients::new(1, 52), LoadModel::normalized(52))
                .count(100)
                .seed(seed)
                .build()
        };
        assert_eq!(build(9), build(9));
        assert_ne!(build(9), build(10));
    }

    #[test]
    fn loads_follow_model() {
        let model = LoadModel::normalized(52);
        let seq = SequenceBuilder::new(ConstantClients::new(13), model).count(5).build();
        for spec in &seq {
            assert_eq!(spec.clients, 13);
            assert!((spec.load().get() - 0.25).abs() < 1e-12);
        }
        assert!((seq.total_load() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn first_id_offsets_ids() {
        let seq = SequenceBuilder::new(ConstantClients::new(1), LoadModel::normalized(10))
            .count(3)
            .first_id(100)
            .build();
        let ids: Vec<u64> = seq.specs().iter().map(|s| s.tenant.id().get()).collect();
        assert_eq!(ids, vec![100, 101, 102]);
    }

    #[test]
    fn zipf_sequences_have_small_mean_load() {
        let seq = SequenceBuilder::new(ZipfClients::new(3.0, 52), LoadModel::normalized(52))
            .count(2000)
            .seed(5)
            .build();
        let mean = seq.total_load() / seq.len() as f64;
        // zipf(3) mean client count ≈ 1.22 → mean load ≈ 0.023.
        assert!(mean < 0.05, "mean load {mean}");
    }

    #[test]
    fn collection_traits() {
        let seq = SequenceBuilder::new(ConstantClients::new(2), LoadModel::normalized(4))
            .count(4)
            .build();
        let filtered: TenantSequence =
            seq.specs().iter().copied().filter(|s| s.tenant.id().get() % 2 == 0).collect();
        assert_eq!(filtered.len(), 2);
        assert!(!filtered.is_empty());
        let tenants: Vec<Tenant> = seq.tenants().collect();
        assert_eq!(tenants.len(), 4);
    }

    #[test]
    fn empty_sequence() {
        let seq = TenantSequence::default();
        assert!(seq.is_empty());
        assert_eq!(seq.total_load(), 0.0);
    }
}
