//! Seeded per-tenant load-drift processes.
//!
//! The paper's system model treats a tenant's load as a *measurement* of
//! the linear model `load = δ·c + β` at its current client count `c`
//! (§IV). Client counts are not static: analytics tenants ramp up, burst,
//! and cool down. This module generates deterministic, seeded drift
//! processes over client counts and maps them through a [`LoadModel`] into
//! timestamped [`LoadUpdate`] events that a consolidator replays via
//! `Consolidator::update_load`.
//!
//! Two profiles are provided:
//!
//! * [`DriftProfile::RandomWalk`] — every step moves each tenant's client
//!   count by a uniform amount in `[-max_step, +max_step]`, clamped to
//!   `[1, C]`. Models slow organic growth/decline.
//! * [`DriftProfile::Burst`] — with probability `probability` a tenant
//!   jumps `magnitude` clients above its baseline (a flash crowd); on
//!   non-burst steps the count decays halfway back toward the baseline.
//!   Models spiky dashboards-at-9am workloads.
//!
//! ```
//! use cubefit_workload::{DriftEngine, DriftProfile, LoadModel};
//! use cubefit_core::TenantId;
//!
//! let mut engine = DriftEngine::new(
//!     LoadModel::normalized(52),
//!     DriftProfile::RandomWalk { max_step: 3 },
//!     42,
//! );
//! engine.track(TenantId::new(0), 26);
//! let updates = engine.step();
//! for update in &updates {
//!     assert!(update.load > 0.0 && update.load <= 1.0);
//! }
//! ```

use crate::generator::TenantSequence;
use crate::model::LoadModel;
use cubefit_core::TenantId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One timestamped load-drift event: at step `at`, `tenant`'s client count
/// became `clients`, so its measured load became `load`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LoadUpdate {
    /// Logical timestamp: the engine step that produced this event.
    pub at: u64,
    /// The drifting tenant.
    pub tenant: TenantId,
    /// The tenant's new client count.
    pub clients: u32,
    /// The new load, mapped through the engine's [`LoadModel`] (always in
    /// `(0, 1]`).
    pub load: f64,
}

/// How client counts evolve from one step to the next.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DriftProfile {
    /// Symmetric random walk: each step the count moves by a uniform
    /// amount in `[-max_step, +max_step]`, clamped to `[1, C]`.
    RandomWalk {
        /// Largest per-step client-count change.
        max_step: u32,
    },
    /// Burst/decay: with probability `probability` the count jumps to
    /// `baseline + magnitude` (clamped to `C`); otherwise it halves its
    /// distance to the baseline (rounding the remaining distance down, so
    /// decay always completes).
    Burst {
        /// Clients added above the baseline when a burst fires.
        magnitude: u32,
        /// Per-step probability of a burst, in `[0, 1]`.
        probability: f64,
    },
}

#[derive(Debug, Clone, Copy)]
struct TenantDrift {
    tenant: TenantId,
    baseline: u32,
    clients: u32,
}

/// Deterministic, seeded drift generator over a set of tracked tenants.
///
/// The engine owns a fixed-algorithm ChaCha8 stream, so a given
/// `(model, profile, seed, track-order)` quadruple replays the same drift
/// history on every platform. Tenants are stepped in tracking order; each
/// [`Self::step`] advances the logical clock by one and returns an event
/// for every tenant whose *load* actually changed (a client-count move too
/// small to change the measured load is not reported).
#[derive(Debug, Clone)]
pub struct DriftEngine {
    model: LoadModel,
    profile: DriftProfile,
    rng: ChaCha8Rng,
    tenants: Vec<TenantDrift>,
    clock: u64,
}

impl DriftEngine {
    /// Creates an engine with no tracked tenants.
    ///
    /// # Panics
    ///
    /// Panics if the profile's burst `probability` is outside `[0, 1]`.
    #[must_use]
    pub fn new(model: LoadModel, profile: DriftProfile, seed: u64) -> Self {
        if let DriftProfile::Burst { probability, .. } = profile {
            assert!((0.0..=1.0).contains(&probability), "burst probability must lie in [0, 1]");
        }
        DriftEngine {
            model,
            profile,
            rng: ChaCha8Rng::seed_from_u64(seed),
            tenants: Vec::new(),
            clock: 0,
        }
    }

    /// The engine's clients→load model.
    #[must_use]
    pub fn model(&self) -> &LoadModel {
        &self.model
    }

    /// Starts drifting `tenant` from `clients` (also its burst baseline).
    /// Re-tracking a tenant resets its state.
    pub fn track(&mut self, tenant: TenantId, clients: u32) {
        let clients = clients.clamp(1, self.model.max_clients());
        self.forget(tenant);
        self.tenants.push(TenantDrift { tenant, baseline: clients, clients });
    }

    /// Tracks every tenant of a generated arrival sequence at its generated
    /// client count.
    pub fn track_sequence(&mut self, sequence: &TenantSequence) {
        for spec in sequence {
            self.track(spec.tenant.id(), spec.clients);
        }
    }

    /// Stops drifting `tenant` (e.g. after a churn departure). Unknown
    /// tenants are ignored.
    pub fn forget(&mut self, tenant: TenantId) {
        self.tenants.retain(|t| t.tenant != tenant);
    }

    /// Number of tenants currently drifting.
    #[must_use]
    pub fn tracked(&self) -> usize {
        self.tenants.len()
    }

    /// The logical clock: how many steps have run.
    #[must_use]
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Advances every tracked tenant by one drift step, returning an event
    /// for each tenant whose measured load changed.
    pub fn step(&mut self) -> Vec<LoadUpdate> {
        self.clock += 1;
        let max_clients = self.model.max_clients();
        let mut updates = Vec::new();
        // Split borrows: the profile/model are Copy, the RNG is stepped
        // once per tenant regardless of outcome so drift histories stay
        // aligned when tenants depart.
        let profile = self.profile;
        for state in &mut self.tenants {
            let next = match profile {
                DriftProfile::RandomWalk { max_step } => {
                    if max_step == 0 {
                        state.clients
                    } else {
                        let offset = self.rng.gen_range(0..=2 * max_step);
                        // offset in [0, 2s] maps to a move in [-s, +s].
                        (state.clients + offset).saturating_sub(max_step)
                    }
                }
                DriftProfile::Burst { magnitude, probability } => {
                    if self.rng.gen_bool(probability) {
                        state.baseline.saturating_add(magnitude)
                    } else if state.clients > state.baseline {
                        state.baseline + (state.clients - state.baseline) / 2
                    } else {
                        state.baseline - (state.baseline - state.clients) / 2
                    }
                }
            };
            let next = next.clamp(1, max_clients);
            if next == state.clients {
                continue;
            }
            let old_load = self.model.load(state.clients).get();
            state.clients = next;
            let load = self.model.load(next).get();
            if (load - old_load).abs() > f64::EPSILON {
                updates.push(LoadUpdate {
                    at: self.clock,
                    tenant: state.tenant,
                    clients: next,
                    load,
                });
            }
        }
        updates
    }

    /// Runs `steps` steps, concatenating all events in timestamp order.
    pub fn run(&mut self, steps: u64) -> Vec<LoadUpdate> {
        let mut all = Vec::new();
        for _ in 0..steps {
            all.extend(self.step());
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::UniformClients;
    use crate::generator::SequenceBuilder;

    fn engine(profile: DriftProfile, seed: u64) -> DriftEngine {
        DriftEngine::new(LoadModel::normalized(52), profile, seed)
    }

    #[test]
    fn random_walk_is_deterministic_and_in_range() {
        let build = |seed| {
            let mut e = engine(DriftProfile::RandomWalk { max_step: 4 }, seed);
            for id in 0..20 {
                e.track(TenantId::new(id), 10 + (id as u32 % 30));
            }
            e.run(50)
        };
        let a = build(7);
        assert_eq!(a, build(7));
        assert_ne!(a, build(8));
        assert!(!a.is_empty());
        for update in &a {
            assert!(update.load > 0.0 && update.load <= 1.0, "load {}", update.load);
            assert!(update.clients >= 1 && update.clients <= 52);
            assert!(update.at >= 1 && update.at <= 50);
        }
        // Timestamps are non-decreasing.
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn burst_profile_jumps_and_decays() {
        let mut e = engine(DriftProfile::Burst { magnitude: 20, probability: 1.0 }, 3);
        e.track(TenantId::new(1), 5);
        let up = e.step();
        assert_eq!(up.len(), 1);
        assert_eq!(up[0].clients, 25);

        let mut e = engine(DriftProfile::Burst { magnitude: 20, probability: 0.0 }, 3);
        e.track(TenantId::new(1), 5);
        assert!(e.step().is_empty(), "at baseline with no burst, nothing drifts");
    }

    #[test]
    fn burst_decay_returns_to_baseline() {
        let mut e = engine(DriftProfile::Burst { magnitude: 16, probability: 0.0 }, 0);
        e.track(TenantId::new(1), 8);
        // Force the tenant off baseline by re-tracking at the burst peak…
        e.track(TenantId::new(1), 8);
        e.tenants[0].clients = 24;
        let mut last = 24;
        for _ in 0..10 {
            e.step();
            let now = e.tenants[0].clients;
            assert!(now <= last, "decay is monotone toward baseline");
            last = now;
        }
        assert_eq!(last, 8, "decay completes");
    }

    #[test]
    fn forget_stops_and_track_resets() {
        let mut e = engine(DriftProfile::RandomWalk { max_step: 3 }, 1);
        e.track(TenantId::new(1), 10);
        e.track(TenantId::new(2), 10);
        assert_eq!(e.tracked(), 2);
        e.forget(TenantId::new(1));
        assert_eq!(e.tracked(), 1);
        let updates = e.run(20);
        assert!(updates.iter().all(|u| u.tenant == TenantId::new(2)));
        // Re-tracking replaces, not duplicates.
        e.track(TenantId::new(2), 30);
        assert_eq!(e.tracked(), 1);
    }

    #[test]
    fn tracks_generated_sequences_and_clamps() {
        let seq = SequenceBuilder::new(UniformClients::new(1, 15), LoadModel::normalized(52))
            .count(30)
            .seed(11)
            .build();
        let mut e = engine(DriftProfile::RandomWalk { max_step: 52 }, 5);
        e.track_sequence(&seq);
        assert_eq!(e.tracked(), 30);
        for update in e.run(10) {
            assert!(update.clients >= 1 && update.clients <= 52);
            assert!(update.load > 0.0 && update.load <= 1.0);
        }
        assert_eq!(e.clock(), 10);
    }

    #[test]
    fn zero_step_walk_never_drifts() {
        let mut e = engine(DriftProfile::RandomWalk { max_step: 0 }, 9);
        e.track(TenantId::new(4), 26);
        assert!(e.run(25).is_empty());
    }
}
