//! Property tests for the lease ledger (satellite of the renting PR).
//!
//! Two contracts, under arbitrary open/close schedules:
//!
//! 1. **Conservation**: total rent accrued equals the sum of per-lease
//!    block rents computed independently from each lease's residency
//!    interval — the ledger neither invents nor loses blocks.
//! 2. **Closing is never retroactive**: accrued rent is monotone
//!    non-decreasing across advances, and once a server closes its lease
//!    contributes exactly what it had already billed, forever.

use cubefit_core::BinId;
use cubefit_economics::{CostModel, LeaseLedger, LeaseTerms};
use proptest::prelude::*;

const SERVERS: usize = 8;

/// One schedule step: the clock advance and which of the 8 servers are
/// open during it.
fn step_strategy() -> impl Strategy<Value = (u64, u8)> {
    (0u64..5_000, any::<u8>())
}

fn open_set(mask: u8) -> Vec<BinId> {
    (0..SERVERS).filter(|i| mask & (1 << i) != 0).map(BinId::new).collect()
}

/// Replays the schedule while independently tracking every lease's
/// residency `[opened, closed-or-now]`; returns the expected total
/// blocks. Mirrors the billing rule: ⌈residency / block⌉, at least 1.
fn expected_blocks(terms: LeaseTerms, schedule: &[(u64, u8)]) -> u64 {
    let mut now = 0u64;
    let mut open_since: [Option<u64>; SERVERS] = [None; SERVERS];
    let mut total = 0u64;
    for &(dt, mask) in schedule {
        now += dt;
        for (i, since) in open_since.iter_mut().enumerate() {
            let open = mask & (1 << i) != 0;
            match (*since, open) {
                (None, true) => *since = Some(now),
                (Some(opened), false) => {
                    // Retired at this advance: billed through `now`.
                    total += terms.blocks_for(now - opened);
                    *since = None;
                }
                _ => {}
            }
        }
    }
    for since in open_since.into_iter().flatten() {
        total += terms.blocks_for(now - since);
    }
    total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation: ledger total == Σ independently-computed per-lease
    /// block rents.
    #[test]
    fn accrual_conserves_per_lease_blocks(
        schedule in proptest::collection::vec(step_strategy(), 1..40),
        block_ms in 1u64..20_000,
        rate in 1u32..500,
    ) {
        let terms = LeaseTerms::new(block_ms, CostModel::with_hourly_usd(f64::from(rate) / 100.0));
        let mut ledger = LeaseLedger::new(terms);
        let mut now = 0u64;
        for &(dt, mask) in &schedule {
            now += dt;
            ledger.advance(now, open_set(mask));
        }
        let expected = expected_blocks(terms, &schedule);
        prop_assert_eq!(ledger.blocks_billed(), expected);
        let expected_usd = expected as f64 * terms.block_usd();
        prop_assert!((ledger.accrued_usd() - expected_usd).abs() < 1e-9 * expected_usd.max(1.0));
    }

    /// Monotone accrual, and closing a server never retroactively
    /// changes rent already accrued: after the close, re-running the
    /// clock forward leaves the closed lease's contribution fixed.
    #[test]
    fn closing_never_retroacts(
        schedule in proptest::collection::vec(step_strategy(), 1..40),
        block_ms in 1u64..20_000,
        idle_ms in 1u64..100_000,
    ) {
        let terms = LeaseTerms::new(block_ms, CostModel::c4_4xlarge());
        let mut ledger = LeaseLedger::new(terms);
        let mut now = 0u64;
        let mut last_accrued = 0.0f64;
        for &(dt, mask) in &schedule {
            now += dt;
            ledger.advance(now, open_set(mask));
            let accrued = ledger.accrued_usd();
            prop_assert!(accrued >= last_accrued, "accrual must be monotone");
            last_accrued = accrued;
        }
        // Close everything; idle time afterwards accrues nothing at all.
        ledger.advance(now, []);
        let at_close = ledger.accrued_usd();
        prop_assert!(at_close >= last_accrued);
        ledger.advance(now + idle_ms, []);
        prop_assert_eq!(ledger.accrued_usd(), at_close);
        prop_assert_eq!(ledger.active_leases(), 0);
    }
}
