//! The EC2 cost model behind Table I.

/// Hours in the paper's "continuous server operation" year.
pub const HOURS_PER_YEAR: f64 = 8_760.0;

/// Hourly price of an EC2 `c4.4xlarge` instance (the machine class the
/// paper matches to its testbed servers, §V.C).
pub const C4_4XLARGE_HOURLY_USD: f64 = 0.822;

/// Converts server counts into yearly dollar costs.
///
/// ```
/// use cubefit_economics::CostModel;
///
/// let model = CostModel::c4_4xlarge();
/// // Table I, uniform row: 2,506 servers saved → ≈ $18.0 M per year.
/// let savings = model.yearly_cost(2_506);
/// assert!((savings - 18_045_004.0).abs() < 1_000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CostModel {
    hourly_usd: f64,
}

impl CostModel {
    /// Model priced at the paper's `c4.4xlarge` rate.
    #[must_use]
    pub fn c4_4xlarge() -> Self {
        CostModel { hourly_usd: C4_4XLARGE_HOURLY_USD }
    }

    /// Model with a custom hourly price.
    ///
    /// # Panics
    ///
    /// Panics if the price is not positive and finite.
    #[must_use]
    pub fn with_hourly_usd(hourly_usd: f64) -> Self {
        assert!(hourly_usd > 0.0 && hourly_usd.is_finite());
        CostModel { hourly_usd }
    }

    /// Hourly price per server.
    #[must_use]
    pub fn hourly_usd(&self) -> f64 {
        self.hourly_usd
    }

    /// Yearly cost of operating `servers` machines continuously.
    #[must_use]
    pub fn yearly_cost(&self, servers: usize) -> f64 {
        self.hourly_usd * HOURS_PER_YEAR * servers as f64
    }

    /// Yearly savings from using `candidate` instead of `baseline`
    /// servers, **clamped to 0** when the candidate uses more — this is
    /// the Table-I convention ("savings" never go negative in the paper's
    /// presentation). Use [`CostModel::yearly_delta`] when a regression
    /// must show up as a signed loss instead of being hidden by the
    /// clamp.
    #[must_use]
    pub fn yearly_savings(&self, baseline: usize, candidate: usize) -> f64 {
        self.yearly_cost(baseline.saturating_sub(candidate))
    }

    /// Signed yearly delta from using `candidate` instead of `baseline`
    /// servers: positive when the candidate saves money, **negative when
    /// it uses more servers than the baseline**.
    #[must_use]
    pub fn yearly_delta(&self, baseline: usize, candidate: usize) -> f64 {
        if candidate <= baseline {
            self.yearly_cost(baseline - candidate)
        } else {
            -self.yearly_cost(candidate - baseline)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_uniform_row() {
        // RFI 10,951 servers; CubeFit saves 2,506 → $18,045,004.
        let model = CostModel::c4_4xlarge();
        let savings = model.yearly_savings(10_951, 10_951 - 2_506);
        assert!((savings - 18_045_004.0).abs() < 1_000.0, "savings {savings}");
    }

    #[test]
    fn table1_zipfian_row() {
        // RFI 2,218 servers; CubeFit saves 496 → $3,571,557.
        let model = CostModel::c4_4xlarge();
        let savings = model.yearly_savings(2_218, 2_218 - 496);
        assert!((savings - 3_571_557.0).abs() < 1_000.0, "savings {savings}");
    }

    #[test]
    fn candidate_worse_than_baseline_saves_nothing() {
        let model = CostModel::c4_4xlarge();
        assert_eq!(model.yearly_savings(10, 20), 0.0);
    }

    #[test]
    fn yearly_delta_is_signed() {
        let model = CostModel::with_hourly_usd(1.0);
        assert_eq!(model.yearly_delta(10, 7), 3.0 * HOURS_PER_YEAR);
        assert_eq!(model.yearly_delta(7, 10), -3.0 * HOURS_PER_YEAR);
        assert_eq!(model.yearly_delta(5, 5), 0.0);
    }

    #[test]
    fn delta_and_savings_agree_when_candidate_wins() {
        let model = CostModel::c4_4xlarge();
        assert_eq!(model.yearly_delta(100, 80), model.yearly_savings(100, 80));
    }

    #[test]
    fn custom_rate() {
        let model = CostModel::with_hourly_usd(1.0);
        assert_eq!(model.yearly_cost(1), HOURS_PER_YEAR);
        assert_eq!(model.hourly_usd(), 1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_non_positive_rate() {
        let _ = CostModel::with_hourly_usd(0.0);
    }
}
