//! Degraded-window migration-cost constants.
//!
//! These used to live (only) in `sim::churn`; the economics crate needs
//! them too — a migration's streamed load is priced from the same model
//! that sizes the degraded window — so this is now their single home.
//! `cubefit_sim::churn` re-exports them, keeping existing import paths
//! valid.

/// Modeled seconds of fixed per-replica restore work (catalog updates,
/// opening the replication stream, warming the page cache).
pub const REPLICA_RESTORE_SECONDS: f64 = 30.0;

/// Modeled seconds to stream one full server's worth of normalized load
/// (load 1.0) to its new home; a replica of load `ℓ` streams in `ℓ ×` this.
pub const LOAD_TRANSFER_SECONDS: f64 = 600.0;

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the shared degraded-window constants. The churn harness's
    /// degraded-window model, the migration pricing defaults, and every
    /// recorded benchmark baseline assume exactly these values; changing
    /// them silently would skew cost comparisons across PRs.
    #[test]
    fn degraded_window_constants_are_pinned() {
        assert_eq!(REPLICA_RESTORE_SECONDS, 30.0);
        assert_eq!(LOAD_TRANSFER_SECONDS, 600.0);
    }
}
