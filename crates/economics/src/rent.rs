//! How a simulation maps operations onto rented time.

use crate::lease::LeaseTerms;
use crate::pricing::MigrationPricing;

/// Default simulated milliseconds per operation (one op per minute).
pub const DEFAULT_MS_PER_OP: u64 = 60_000;

/// Default planning horizon for marginal-cost queries (two hours).
pub const DEFAULT_HORIZON_MS: u64 = 7_200_000;

/// Renting configuration for a simulation run: lease terms, migration
/// pricing, the op→time mapping, and the horizon economic planners score
/// drains against.
///
/// Simulated time advances `ms_per_op` per operation; the ledger is
/// reconciled against the open-bin set after every op, so rent accrual is
/// a pure function of the (seeded) op sequence.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RentConfig {
    /// Lease terms rent is billed under.
    pub terms: LeaseTerms,
    /// Migration streaming prices (independent of the rent rate — see
    /// [`MigrationPricing`]).
    pub pricing: MigrationPricing,
    /// Simulated milliseconds each operation advances the clock.
    pub ms_per_op: u64,
    /// Horizon for "what does keeping this bin open cost?" queries.
    pub horizon_ms: u64,
}

impl RentConfig {
    /// Renting at the paper's `c4.4xlarge` rate with the given block
    /// duration, reference migration pricing, and default op clock.
    ///
    /// # Panics
    ///
    /// Panics if `block_ms` is zero.
    #[must_use]
    pub fn c4_4xlarge(block_ms: u64) -> Self {
        RentConfig {
            terms: LeaseTerms::new(block_ms, crate::CostModel::c4_4xlarge()),
            pricing: MigrationPricing::reference(),
            ms_per_op: DEFAULT_MS_PER_OP,
            horizon_ms: DEFAULT_HORIZON_MS,
        }
    }

    /// Same terms with a different op clock.
    #[must_use]
    pub fn with_ms_per_op(mut self, ms_per_op: u64) -> Self {
        assert!(ms_per_op > 0, "the op clock must advance");
        self.ms_per_op = ms_per_op;
        self
    }

    /// Same terms with a different planning horizon.
    #[must_use]
    pub fn with_horizon_ms(mut self, horizon_ms: u64) -> Self {
        self.horizon_ms = horizon_ms;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_json() {
        let config = RentConfig::c4_4xlarge(600_000);
        let json = serde_json::to_string(&config).unwrap();
        let back: RentConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
        assert_eq!(back.ms_per_op, DEFAULT_MS_PER_OP);
        assert_eq!(back.horizon_ms, DEFAULT_HORIZON_MS);
        assert_eq!(back.pricing, MigrationPricing::reference());
    }

    #[test]
    fn builder_overrides() {
        let config = RentConfig::c4_4xlarge(600_000).with_ms_per_op(1_000).with_horizon_ms(5);
        assert_eq!(config.terms.block_ms(), 600_000);
        assert_eq!(config.ms_per_op, 1_000);
        assert_eq!(config.horizon_ms, 5);
    }
}
