//! The lease ledger: per-server rental blocks and marginal-cost queries.

use crate::cost::CostModel;
use cubefit_core::BinId;

/// Milliseconds per hour — the conversion between [`CostModel`] hourly
/// rates and the millisecond clock simulations run on.
pub const MS_PER_HOUR: f64 = 3_600_000.0;

/// Rental terms: servers are rented in blocks of `block_ms` simulated
/// milliseconds, priced at the [`CostModel`]'s hourly rate. A block is
/// paid in full the moment it starts — the renting model of Kamali &
/// López-Ortiz, where closing a server mid-block refunds nothing.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LeaseTerms {
    block_ms: u64,
    cost: CostModel,
}

impl LeaseTerms {
    /// Terms with the given block duration and cost model.
    ///
    /// # Panics
    ///
    /// Panics if `block_ms` is zero.
    #[must_use]
    pub fn new(block_ms: u64, cost: CostModel) -> Self {
        assert!(block_ms > 0, "lease blocks must have positive duration");
        LeaseTerms { block_ms, cost }
    }

    /// One-hour blocks at the paper's `c4.4xlarge` rate.
    #[must_use]
    pub fn c4_4xlarge_hourly() -> Self {
        LeaseTerms::new(3_600_000, CostModel::c4_4xlarge())
    }

    /// Block duration in simulated milliseconds.
    #[must_use]
    pub fn block_ms(&self) -> u64 {
        self.block_ms
    }

    /// The cost model pricing each block.
    #[must_use]
    pub fn cost(&self) -> CostModel {
        self.cost
    }

    /// Price of one rental block.
    #[must_use]
    pub fn block_usd(&self) -> f64 {
        self.cost.hourly_usd() * self.block_ms as f64 / MS_PER_HOUR
    }

    /// Blocks needed to cover `duration_ms` of residency (at least one —
    /// renting a server at all pays for a full block).
    #[must_use]
    pub fn blocks_for(&self, duration_ms: u64) -> u64 {
        duration_ms.div_ceil(self.block_ms).max(1)
    }
}

/// One server's active rental.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
struct ActiveLease {
    /// Index of the rented bin.
    bin: usize,
    /// Simulated time the lease (and its first block) started.
    opened_ms: u64,
    /// Blocks billed so far; the lease is paid through
    /// `opened_ms + blocks * block_ms`.
    blocks: u64,
}

/// Tracks rent for every server a simulation opens.
///
/// The ledger observes the set of open bins at each [`LeaseLedger::advance`]
/// call. A bin entering the set starts a lease (and pays its first block
/// immediately); a bin leaving the set retires its lease, keeping every
/// block already billed — closing is never retroactive. While a lease is
/// active, enough blocks are billed to cover the elapsed residency, so
/// accrued rent is a monotone, deterministic function of the advance
/// history.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LeaseLedger {
    terms: LeaseTerms,
    now_ms: u64,
    /// Active leases, kept sorted by bin index for deterministic
    /// iteration and binary-search lookups.
    active: Vec<ActiveLease>,
    /// Blocks billed on leases already retired.
    retired_blocks: u64,
    /// Distinct leases ever opened (a bin reopening counts again).
    leases_opened: u64,
    /// High-water mark of concurrently active leases.
    peak_active: usize,
}

impl LeaseLedger {
    /// An empty ledger at simulated time 0.
    #[must_use]
    pub fn new(terms: LeaseTerms) -> Self {
        LeaseLedger {
            terms,
            now_ms: 0,
            active: Vec::new(),
            retired_blocks: 0,
            leases_opened: 0,
            peak_active: 0,
        }
    }

    /// The terms this ledger bills under.
    #[must_use]
    pub fn terms(&self) -> LeaseTerms {
        self.terms
    }

    /// Current simulated time.
    #[must_use]
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Advances simulated time to `now_ms` and reconciles against the
    /// current set of open bins; returns the number of blocks newly
    /// billed. Bins newly present start leases (first block billed
    /// up front); bins newly absent retire theirs — billed through this
    /// advance, since the ledger only observes closure here. Time must
    /// not move backwards.
    ///
    /// # Panics
    ///
    /// Panics if `now_ms` is earlier than the ledger's current time.
    pub fn advance<I>(&mut self, now_ms: u64, open: I) -> u64
    where
        I: IntoIterator<Item = BinId>,
    {
        assert!(now_ms >= self.now_ms, "simulated time must be monotone");
        self.now_ms = now_ms;
        let mut newly_billed = 0;

        // Bill every active lease through the new time *before* looking at
        // the open set: a lease retiring at this advance still pays for the
        // residency since the previous one.
        for lease in &mut self.active {
            let needed = self.terms.blocks_for(now_ms - lease.opened_ms);
            if needed > lease.blocks {
                newly_billed += needed - lease.blocks;
                lease.blocks = needed;
            }
        }

        let mut open: Vec<usize> = open.into_iter().map(BinId::index).collect();
        open.sort_unstable();
        open.dedup();
        // Retire leases for bins no longer open. Their blocks stay billed.
        let retired_blocks = &mut self.retired_blocks;
        self.active.retain(|lease| {
            if open.binary_search(&lease.bin).is_ok() {
                true
            } else {
                *retired_blocks += lease.blocks;
                false
            }
        });
        // Open leases for bins seen for the first time; the first block is
        // billed immediately (rent is paid at block start).
        for idx in open {
            if let Err(pos) = self.active.binary_search_by_key(&idx, |l| l.bin) {
                self.active.insert(pos, ActiveLease { bin: idx, opened_ms: now_ms, blocks: 1 });
                self.leases_opened += 1;
                newly_billed += 1;
            }
        }
        self.peak_active = self.peak_active.max(self.active.len());
        newly_billed
    }

    /// Total blocks billed so far (active + retired leases).
    #[must_use]
    pub fn blocks_billed(&self) -> u64 {
        self.retired_blocks + self.active.iter().map(|l| l.blocks).sum::<u64>()
    }

    /// Total rent accrued so far.
    #[must_use]
    pub fn accrued_usd(&self) -> f64 {
        self.blocks_billed() as f64 * self.terms.block_usd()
    }

    /// Distinct leases ever opened.
    #[must_use]
    pub fn leases_opened(&self) -> u64 {
        self.leases_opened
    }

    /// Currently active leases.
    #[must_use]
    pub fn active_leases(&self) -> usize {
        self.active.len()
    }

    /// High-water mark of concurrently active leases.
    #[must_use]
    pub fn peak_active(&self) -> usize {
        self.peak_active
    }

    /// Blocks billed so far on `bin`'s active lease (`None` if the bin
    /// has no active lease).
    #[must_use]
    pub fn lease_blocks(&self, bin: BinId) -> Option<u64> {
        self.lease(bin).map(|l| l.blocks)
    }

    fn lease(&self, bin: BinId) -> Option<&ActiveLease> {
        self.active.binary_search_by_key(&bin.index(), |l| l.bin).ok().map(|pos| &self.active[pos])
    }

    /// Marginal cost of keeping `bin` rented from now until
    /// `now + horizon_ms`: the price of the *additional* blocks that
    /// residency requires beyond what is already paid. Zero when the
    /// current paid block already covers the horizon — which is exactly
    /// when closing the bin saves nothing. For a bin with no active lease
    /// this is the cost of renting fresh for the horizon.
    #[must_use]
    pub fn keep_open_usd(&self, bin: BinId, horizon_ms: u64) -> f64 {
        let target = self.now_ms + horizon_ms;
        let Some(lease) = self.lease(bin) else {
            return self.terms.blocks_for(horizon_ms) as f64 * self.terms.block_usd();
        };
        let paid_through = lease.opened_ms + lease.blocks * self.terms.block_ms;
        if target <= paid_through {
            return 0.0;
        }
        (target - paid_through).div_ceil(self.terms.block_ms) as f64 * self.terms.block_usd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terms(block_ms: u64, hourly: f64) -> LeaseTerms {
        LeaseTerms::new(block_ms, CostModel::with_hourly_usd(hourly))
    }

    fn bins(ids: &[usize]) -> Vec<BinId> {
        ids.iter().map(|&i| BinId::new(i)).collect()
    }

    #[test]
    fn first_block_is_billed_at_open() {
        let mut ledger = LeaseLedger::new(terms(1_000, 3.6));
        let billed = ledger.advance(0, bins(&[0, 1]));
        assert_eq!(billed, 2);
        assert_eq!(ledger.blocks_billed(), 2);
        assert_eq!(ledger.leases_opened(), 2);
        // 1000 ms block at $3.6/h → $0.001 per block.
        assert!((ledger.accrued_usd() - 0.002).abs() < 1e-12);
    }

    #[test]
    fn residency_bills_one_block_per_started_block() {
        let mut ledger = LeaseLedger::new(terms(1_000, 3.6));
        ledger.advance(0, bins(&[0]));
        // Exactly one block elapsed: still covered by the first block.
        assert_eq!(ledger.advance(1_000, bins(&[0])), 0);
        // One ms into the second block: a new block is billed.
        assert_eq!(ledger.advance(1_001, bins(&[0])), 1);
        assert_eq!(ledger.blocks_billed(), 2);
    }

    #[test]
    fn closing_keeps_billed_blocks_and_stops_future_billing() {
        let mut ledger = LeaseLedger::new(terms(1_000, 3.6));
        ledger.advance(0, bins(&[0]));
        ledger.advance(2_500, bins(&[0])); // 3 blocks deep
        let before = ledger.accrued_usd();
        assert_eq!(ledger.blocks_billed(), 3);
        ledger.advance(3_000, bins(&[])); // closes bin 0 (billed through 3000)
        let at_close = ledger.accrued_usd();
        assert!(at_close >= before, "closing never refunds rent");
        ledger.advance(100_000, bins(&[]));
        assert_eq!(ledger.accrued_usd(), at_close, "retired leases accrue nothing");
        assert_eq!(ledger.active_leases(), 0);
    }

    #[test]
    fn reopening_a_bin_starts_a_fresh_lease() {
        let mut ledger = LeaseLedger::new(terms(1_000, 3.6));
        ledger.advance(0, bins(&[0]));
        ledger.advance(1_500, bins(&[])); // close: 2 blocks retired
        let retired = ledger.blocks_billed();
        ledger.advance(5_000, bins(&[0])); // reopen: new lease, new block
        assert_eq!(ledger.blocks_billed(), retired + 1);
        assert_eq!(ledger.leases_opened(), 2);
        assert_eq!(ledger.lease_blocks(BinId::new(0)), Some(1));
    }

    #[test]
    fn keep_open_is_zero_inside_the_paid_block() {
        let mut ledger = LeaseLedger::new(terms(10_000, 3.6));
        ledger.advance(0, bins(&[0]));
        // Paid through 10 000 ms; now 2 000 ms; horizon 5 000 ms → covered.
        ledger.advance(2_000, bins(&[0]));
        assert_eq!(ledger.keep_open_usd(BinId::new(0), 5_000), 0.0);
        // Horizon 9 000 ms reaches 11 000 ms → one more block.
        let block_usd = ledger.terms().block_usd();
        assert!((ledger.keep_open_usd(BinId::new(0), 9_000) - block_usd).abs() < 1e-12);
        // Horizon far out: ceil((32 000 − 10 000) / 10 000) = 3 blocks.
        assert!((ledger.keep_open_usd(BinId::new(0), 30_000) - 3.0 * block_usd).abs() < 1e-12);
    }

    #[test]
    fn keep_open_for_unleased_bin_prices_a_fresh_rental() {
        let ledger = LeaseLedger::new(terms(10_000, 3.6));
        let block_usd = ledger.terms().block_usd();
        assert!((ledger.keep_open_usd(BinId::new(7), 1) - block_usd).abs() < 1e-12);
        assert!((ledger.keep_open_usd(BinId::new(7), 25_000) - 3.0 * block_usd).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn time_must_not_move_backwards() {
        let mut ledger = LeaseLedger::new(terms(1_000, 3.6));
        ledger.advance(5_000, bins(&[0]));
        ledger.advance(4_999, bins(&[0]));
    }

    #[test]
    #[should_panic]
    fn zero_block_duration_is_rejected() {
        let _ = terms(0, 1.0);
    }

    #[test]
    fn ledger_round_trips_through_json() {
        let mut ledger = LeaseLedger::new(terms(1_000, 3.6));
        ledger.advance(0, bins(&[0, 3]));
        ledger.advance(2_500, bins(&[3]));
        let json = serde_json::to_string(&ledger).unwrap();
        let back: LeaseLedger = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ledger);
    }
}
