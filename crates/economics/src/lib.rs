//! Server-renting economics for consolidation planners.
//!
//! The paper's Table I prices servers as if every open bin runs
//! continuously for a year, which makes keeping a nearly-empty bin open
//! *free* in every planner built on it. Real clusters rent machines in
//! duration blocks and pay rent per started block — the setting of
//! Kamali & López-Ortiz, "Efficient Online Strategies for Renting
//! Servers in the Cloud". This crate supplies the economic substrate the
//! rest of the workspace plans against:
//!
//! - [`CostModel`] — the EC2 `c4.4xlarge` cost model (moved here from
//!   `cubefit-sim`, which re-exports it), extended with the signed
//!   [`CostModel::yearly_delta`].
//! - [`LeaseTerms`] / [`LeaseLedger`] — per-server rental blocks of a
//!   configurable duration; rent accrues as simulated time advances, and
//!   the ledger answers the marginal-cost query a planner needs: *what
//!   does keeping this bin open until horizon H cost?*
//! - [`MigrationPricing`] — prices a migration's streamed load using the
//!   degraded-window constants ([`REPLICA_RESTORE_SECONDS`],
//!   [`LOAD_TRANSFER_SECONDS`]) shared with `sim::churn`.
//! - [`CostReport`] — the realized-cost summary attached to churn/soak
//!   reports: rent, migration spend, and the integrals the renting
//!   competitive-ratio probe in `cubefit-analysis` needs to compute a
//!   clairvoyant lower bound.
//! - [`RentConfig`] — how a simulation maps ops onto wall-clock time and
//!   which lease terms / migration prices apply.
//!
//! Everything here is deterministic: ledgers are pure functions of the
//! `advance` calls they observe, so seeded simulations produce
//! bit-identical cost reports.

mod constants;
mod cost;
mod lease;
mod pricing;
mod rent;
mod report;

pub use constants::{LOAD_TRANSFER_SECONDS, REPLICA_RESTORE_SECONDS};
pub use cost::{CostModel, C4_4XLARGE_HOURLY_USD, HOURS_PER_YEAR};
pub use lease::{LeaseLedger, LeaseTerms, MS_PER_HOUR};
pub use pricing::MigrationPricing;
pub use rent::RentConfig;
pub use report::CostReport;
