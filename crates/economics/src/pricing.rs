//! Pricing a migration's streamed load.

use crate::constants::{LOAD_TRANSFER_SECONDS, REPLICA_RESTORE_SECONDS};
use crate::cost::C4_4XLARGE_HOURLY_USD;

const SECONDS_PER_HOUR: f64 = 3_600.0;

/// Converts migration volume (replicas moved, load streamed) into
/// dollars, using the degraded-window model shared with `sim::churn`:
/// each replica pays [`REPLICA_RESTORE_SECONDS`] of fixed setup and
/// streams its load at [`LOAD_TRANSFER_SECONDS`] per unit.
///
/// Streaming is an *operational* cost priced at a fixed reference rate,
/// deliberately independent of the rent rate in [`crate::LeaseTerms`]:
/// raising the rent makes keeping bins open more expensive without making
/// migrations cheaper or dearer, which is what gives the economic defrag
/// planner its monotone response to rent (and the property test that
/// pins it).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MigrationPricing {
    usd_per_replica: f64,
    usd_per_unit_load: f64,
}

impl MigrationPricing {
    /// Pricing with explicit per-replica and per-unit-load rates.
    ///
    /// # Panics
    ///
    /// Panics if either rate is negative or non-finite.
    #[must_use]
    pub fn new(usd_per_replica: f64, usd_per_unit_load: f64) -> Self {
        assert!(usd_per_replica >= 0.0 && usd_per_replica.is_finite());
        assert!(usd_per_unit_load >= 0.0 && usd_per_unit_load.is_finite());
        MigrationPricing { usd_per_replica, usd_per_unit_load }
    }

    /// Pricing derived from the degraded-window constants at an hourly
    /// machine rate: a migration occupies source and destination for its
    /// modeled duration, so its cost is that duration at the given rate.
    #[must_use]
    pub fn at_hourly_rate(hourly_usd: f64) -> Self {
        MigrationPricing::new(
            REPLICA_RESTORE_SECONDS / SECONDS_PER_HOUR * hourly_usd,
            LOAD_TRANSFER_SECONDS / SECONDS_PER_HOUR * hourly_usd,
        )
    }

    /// The default: degraded-window pricing at the `c4.4xlarge` reference
    /// rate (see [`crate::CostModel::c4_4xlarge`]), independent of lease
    /// terms.
    #[must_use]
    pub fn reference() -> Self {
        MigrationPricing::at_hourly_rate(C4_4XLARGE_HOURLY_USD)
    }

    /// Fixed cost per replica moved.
    #[must_use]
    pub fn usd_per_replica(&self) -> f64 {
        self.usd_per_replica
    }

    /// Cost per unit of normalized load streamed.
    #[must_use]
    pub fn usd_per_unit_load(&self) -> f64 {
        self.usd_per_unit_load
    }

    /// Cost of moving `replicas` replicas carrying `moved_load` total
    /// normalized load.
    #[must_use]
    pub fn migration_usd(&self, replicas: usize, moved_load: f64) -> f64 {
        replicas as f64 * self.usd_per_replica + moved_load * self.usd_per_unit_load
    }
}

impl Default for MigrationPricing {
    fn default() -> Self {
        MigrationPricing::reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_pricing_matches_degraded_window_at_c4_rate() {
        let pricing = MigrationPricing::reference();
        // 30 s at $0.822/h and 600 s at $0.822/h.
        assert!((pricing.usd_per_replica() - 30.0 / 3_600.0 * 0.822).abs() < 1e-12);
        assert!((pricing.usd_per_unit_load() - 600.0 / 3_600.0 * 0.822).abs() < 1e-12);
    }

    #[test]
    fn migration_cost_is_linear_in_volume() {
        let pricing = MigrationPricing::new(0.5, 2.0);
        assert!((pricing.migration_usd(3, 0.25) - (1.5 + 0.5)).abs() < 1e-12);
        assert_eq!(pricing.migration_usd(0, 0.0), 0.0);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_rates() {
        let _ = MigrationPricing::new(-0.1, 1.0);
    }
}
