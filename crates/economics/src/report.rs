//! The realized-cost summary attached to simulation reports.

use crate::lease::{LeaseLedger, MS_PER_HOUR};

/// What a run actually spent, split into rent and migration streaming,
/// plus the load integrals a clairvoyant lower bound is computed from.
///
/// Attached to churn/soak reports when renting is enabled; compared
/// across defrag policies by the `rent` bench and turned into a
/// competitive ratio by `cubefit-analysis`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CostReport {
    /// Lease block duration the run was billed under.
    pub block_ms: u64,
    /// Hourly rent per server.
    pub hourly_usd: f64,
    /// Simulated milliseconds per operation.
    pub ms_per_op: u64,
    /// Total simulated time covered by the run.
    pub sim_ms: u64,
    /// Rent accrued across all leases.
    pub rent_usd: f64,
    /// Rental blocks billed.
    pub blocks_billed: u64,
    /// Distinct leases opened (a reopened server counts again).
    pub leases_opened: u64,
    /// High-water mark of concurrently rented servers.
    pub peak_servers: usize,
    /// Streaming cost of planner-driven migrations (defrag/mitigation).
    pub defrag_migration_usd: f64,
    /// Streaming cost of failure-recovery re-replication.
    pub recovery_migration_usd: f64,
    /// Rent the economic planner predicted its drains would save.
    pub predicted_savings_usd: f64,
    /// Rent those drains were worth against the live ledger at apply
    /// time (the "realized" side of predicted-vs-realized accounting).
    pub realized_savings_usd: f64,
    /// ∫ L(t) dt in load·milliseconds — total demand volume.
    pub load_ms_integral: f64,
    /// ∫ ⌈L(t)⌉ dt in server·milliseconds: at every instant any feasible
    /// schedule keeps at least ⌈L(t)⌉ servers rented, so this integral
    /// times the hourly rate is a clairvoyant lower bound on rent.
    pub need_ms_integral: f64,
    /// Rent + defrag streaming + recovery streaming.
    pub total_usd: f64,
}

impl CostReport {
    /// Builds a report from a finished ledger plus the migration spend
    /// and integrals the simulation accumulated.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn from_ledger(
        ledger: &LeaseLedger,
        ms_per_op: u64,
        defrag_migration_usd: f64,
        recovery_migration_usd: f64,
        predicted_savings_usd: f64,
        realized_savings_usd: f64,
        load_ms_integral: f64,
        need_ms_integral: f64,
    ) -> Self {
        let rent_usd = ledger.accrued_usd();
        CostReport {
            block_ms: ledger.terms().block_ms(),
            hourly_usd: ledger.terms().cost().hourly_usd(),
            ms_per_op,
            sim_ms: ledger.now_ms(),
            rent_usd,
            blocks_billed: ledger.blocks_billed(),
            leases_opened: ledger.leases_opened(),
            peak_servers: ledger.peak_active(),
            defrag_migration_usd,
            recovery_migration_usd,
            predicted_savings_usd,
            realized_savings_usd,
            load_ms_integral,
            need_ms_integral,
            total_usd: rent_usd + defrag_migration_usd + recovery_migration_usd,
        }
    }

    /// The clairvoyant lower bound on rent for the demand this run
    /// served: no schedule — even one that knows the future — can rent
    /// fewer than ⌈L(t)⌉ servers at time `t`, and rental blocks only
    /// round cost *up* from the continuous integral.
    #[must_use]
    pub fn clairvoyant_lower_bound_usd(&self) -> f64 {
        self.need_ms_integral / MS_PER_HOUR * self.hourly_usd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::lease::LeaseTerms;
    use cubefit_core::BinId;

    #[test]
    fn report_totals_rent_and_migrations() {
        let mut ledger = LeaseLedger::new(LeaseTerms::new(1_000, CostModel::with_hourly_usd(3.6)));
        ledger.advance(0, [BinId::new(0), BinId::new(1)]);
        ledger.advance(2_500, [BinId::new(0)]);
        let report = CostReport::from_ledger(&ledger, 500, 0.25, 0.1, 0.0, 0.0, 900.0, 1_800.0);
        assert_eq!(report.sim_ms, 2_500);
        assert!((report.rent_usd - ledger.accrued_usd()).abs() < 1e-12);
        assert!((report.total_usd - (report.rent_usd + 0.35)).abs() < 1e-12);
        // 1 800 server·ms at $3.6/h → 1 800 / 3 600 000 × 3.6 = $0.0018.
        assert!((report.clairvoyant_lower_bound_usd() - 0.0018).abs() < 1e-12);
        let json = serde_json::to_string(&report).unwrap();
        let back: CostReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
