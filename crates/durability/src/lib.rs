//! # cubefit-durability
//!
//! Crash-safe durability for CubeFit placements: a write-ahead journal,
//! periodic checkpoints, and deterministic recovery.
//!
//! The layer sits between a harness and any [`cubefit_core::Consolidator`]:
//!
//! * [`Journal`] — an append-only log of mutation records as
//!   length-prefixed, CRC-checksummed frames, with a tunable
//!   [`FsyncPolicy`] and a clean-shutdown seal;
//! * [`JournaledConsolidator`] — a transparent wrapper that journals
//!   every successful mutation (place/remove/update-load/migrate/recover,
//!   and the batch variants as single atomic frames) *after* it applied
//!   and *before* the caller is acknowledged;
//! * [`Journal::checkpoint`] — snapshots the placement as a
//!   [`cubefit_core::PlacementDump`] (atomic temp-file + rename) and
//!   truncates the log, bounding replay work;
//! * [`recover`] / [`recover_up_to`] — load the latest valid checkpoint
//!   and replay the journal tail, tolerating a torn final frame (the
//!   expected signature of a crash mid-append: truncated with a warning,
//!   never a panic) while refusing mid-log corruption with a typed
//!   [`DurabilityError::CorruptFrame`] naming the byte offset.
//!
//! The recovery invariant, exercised by the crash-injection harness in
//! `cubefit-sim` and the differential proptests in `crates/audit`: for a
//! crash at *any* byte of the log, the recovered placement is
//! bit-identical (as a serialized dump) to the state whose last mutation
//! was durably acknowledged, and passes the differential audit oracle.
//!
//! ## Quickstart
//!
//! ```
//! use cubefit_durability::{recover, FsyncPolicy, Journal, JournaledConsolidator};
//! use cubefit_core::{Consolidator, CubeFit, CubeFitConfig, Load, Tenant};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dir = std::env::temp_dir().join("cubefit-durability-doc");
//! # let _ = std::fs::remove_dir_all(&dir);
//! let journal = Journal::create(&dir, 2, FsyncPolicy::Interval(64))?;
//! let config = CubeFitConfig::builder().replication(2).classes(5).build()?;
//! let mut consolidator =
//!     JournaledConsolidator::new(Box::new(CubeFit::new(config)), journal.clone());
//!
//! for load in [0.6, 0.3, 0.78, 0.12] {
//!     consolidator.place(Tenant::with_load(Load::new(load)?))?;
//! }
//! journal.checkpoint(consolidator.placement())?;
//! consolidator.place(Tenant::with_load(Load::new(0.5)?))?;
//! // ... crash here: no seal, maybe even a torn final frame ...
//!
//! let recovered = recover(&dir)?;
//! assert_eq!(
//!     serde_json::to_string(&recovered.dump())?,
//!     serde_json::to_string(&cubefit_core::PlacementDump::from_placement(
//!         consolidator.placement()
//!     ))?,
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod error;
pub mod frame;
pub mod journal;
pub mod record;
pub mod recover;
pub mod wrapper;

pub use error::{DurabilityError, Result};
pub use journal::{CheckpointInfo, FsyncPolicy, Journal, CHECKPOINT_FILE, WAL_FILE};
pub use record::{BatchOp, JournalRecord, RecoveryMove};
pub use recover::{recover, recover_up_to, recover_with, RecoveredState};
pub use wrapper::JournaledConsolidator;
