//! The logical journal records and their replay semantics.
//!
//! Every mutation primitive of the [`cubefit_core::Consolidator`] trait
//! has a record, written *after* the mutation was applied in memory and
//! *before* the caller is acknowledged. Replay therefore reconstructs
//! "the state after the last durable frame" — exactly what a crashed
//! process had acknowledged.
//!
//! Records replay at the [`Placement`] level, not through the placing
//! algorithm: the journal stores the *decisions* (which servers each
//! mutation touched), so recovery needs no algorithm state, RNG, or
//! configuration — only the substrate. Mutations that can open servers
//! carry `servers_after`, the total servers ever created once the
//! mutation finished, so replay opens the same bins before applying.

use crate::error::{DurabilityError, Result};
use cubefit_core::{BinId, Load, Placement, PlacementDump, Tenant, TenantId};

/// One replica move performed by a failure recovery.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RecoveryMove {
    /// The tenant whose replica moved.
    pub tenant: u64,
    /// The failed server the replica was orphaned on.
    pub from: usize,
    /// The surviving (or freshly opened) server it landed on.
    pub to: usize,
}

/// One mutation inside an atomic [`JournalRecord::Batch`]. A separate
/// type (rather than nesting [`JournalRecord`]) keeps the format flat:
/// batches never nest, and only the three batched primitives appear.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum BatchOp {
    /// A placement inside the batch.
    Place {
        /// Tenant id.
        tenant: u64,
        /// Full tenant load in `(0, 1]`.
        load: f64,
        /// The γ servers chosen for its replicas.
        servers: Vec<usize>,
    },
    /// A removal inside the batch.
    Remove {
        /// Tenant id.
        tenant: u64,
    },
    /// A load re-estimate inside the batch.
    UpdateLoad {
        /// Tenant id.
        tenant: u64,
        /// The re-estimated full load.
        load: f64,
    },
}

/// One durable frame's payload: a mutation the consolidator applied.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum JournalRecord {
    /// A tenant was placed on `servers`.
    Place {
        /// Tenant id.
        tenant: u64,
        /// Full tenant load in `(0, 1]`.
        load: f64,
        /// The γ servers chosen for its replicas.
        servers: Vec<usize>,
        /// Servers ever created once this placement finished.
        servers_after: usize,
    },
    /// A tenant departed.
    Remove {
        /// Tenant id.
        tenant: u64,
    },
    /// A tenant's load was re-estimated in place.
    UpdateLoad {
        /// Tenant id.
        tenant: u64,
        /// The re-estimated full load.
        load: f64,
    },
    /// A planned migration moved one replica.
    Migrate {
        /// Tenant id.
        tenant: u64,
        /// Source server.
        from: usize,
        /// Destination server.
        to: usize,
    },
    /// A failure recovery re-homed every orphaned replica.
    Recover {
        /// The servers that failed.
        failed: Vec<usize>,
        /// Every replica move the recovery performed.
        moves: Vec<RecoveryMove>,
        /// Servers ever created once recovery finished.
        servers_after: usize,
    },
    /// An atomic batch of mutations (the PR 7 batch API). The whole batch
    /// is one frame: replay applies all of it or — if the frame is torn —
    /// none of it.
    Batch {
        /// The mutations, in execution order.
        ops: Vec<BatchOp>,
        /// Servers ever created once the batch finished.
        servers_after: usize,
    },
    /// A full state snapshot embedded in the log. Written when a batch
    /// fails partway (fail-fast leaves a prefix applied whose per-op
    /// outcomes the error path cannot report), so the journal stays
    /// truthful without replaying the failure.
    Snapshot {
        /// The complete placement state.
        dump: PlacementDump,
    },
    /// Clean-shutdown marker: everything before this frame is complete
    /// and the process exited on purpose.
    Seal,
}

/// Appends `v` in serde_json's float form: shortest round-trip (`{:?}`),
/// `null` when non-finite.
pub(crate) fn push_f64(out: &mut String, v: f64) {
    use std::fmt::Write;
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

pub(crate) fn push_usize_array(out: &mut String, items: &[usize]) {
    use std::fmt::Write;
    out.push('[');
    for (i, v) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

// ---- binary payload encoding ----
//
// Frame payloads use a compact binary encoding, not JSON: one record is
// appended per acknowledged mutation, so payload bytes are hot-path
// bytes — fewer to format, fewer to checksum, fewer to hand to
// `write(2)`, and fewer dirty pages for the kernel to write back. A
// binary `Place` is ~17 bytes where its JSON form was ~85. Integers are
// LEB128 varints, floats are IEEE-754 bits little-endian, and the rare
// [`JournalRecord::Snapshot`] embeds the checkpoint's JSON dump
// verbatim (it already has a pinned serde format and never rides the
// hot path). Integrity is the frame CRC's job; decode errors past a
// valid checksum mean version skew or a writer bug, not disk damage.

const TAG_PLACE: u8 = 1;
const TAG_REMOVE: u8 = 2;
const TAG_UPDATE_LOAD: u8 = 3;
const TAG_MIGRATE: u8 = 4;
const TAG_RECOVER: u8 = 5;
const TAG_BATCH: u8 = 6;
const TAG_SNAPSHOT: u8 = 7;
const TAG_SEAL: u8 = 8;

fn put_uv(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

fn put_us(out: &mut Vec<u8>, v: usize) {
    put_uv(out, v as u64);
}

fn put_bits(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_us_slice(out: &mut Vec<u8>, items: &[usize]) {
    put_us(out, items.len());
    for &v in items {
        put_us(out, v);
    }
}

/// Bounds-checked reader over one payload. Every method reports *what*
/// ran short, so a `BadRecord` names the missing field rather than a
/// bare offset.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn byte(&mut self, what: &str) -> std::result::Result<u8, String> {
        let b = *self.buf.get(self.pos).ok_or_else(|| format!("payload ends inside {what}"))?;
        self.pos += 1;
        Ok(b)
    }

    fn uv(&mut self, what: &str) -> std::result::Result<u64, String> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.byte(what)?;
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(format!("varint for {what} runs past 64 bits"))
    }

    fn us(&mut self, what: &str) -> std::result::Result<usize, String> {
        usize::try_from(self.uv(what)?).map_err(|_| format!("{what} overflows usize"))
    }

    /// A `Vec` length; capped by the bytes actually present (each
    /// element costs ≥ 1 byte) so a skewed count cannot ask the decoder
    /// to pre-allocate unbounded memory.
    fn len(&mut self, what: &str) -> std::result::Result<usize, String> {
        let n = self.us(what)?;
        if n > self.remaining() {
            return Err(format!(
                "{what} claims {n} elements but only {} bytes remain",
                self.remaining()
            ));
        }
        Ok(n)
    }

    fn bits(&mut self, what: &str) -> std::result::Result<f64, String> {
        let end = self.pos + 8;
        let bytes =
            self.buf.get(self.pos..end).ok_or_else(|| format!("payload ends inside {what}"))?;
        self.pos = end;
        Ok(f64::from_bits(u64::from_le_bytes(bytes.try_into().expect("8 bytes"))))
    }

    fn rest(self) -> &'a [u8] {
        &self.buf[self.pos..]
    }

    fn finish(self) -> std::result::Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!("{} trailing bytes after the record", self.buf.len() - self.pos))
        }
    }
}

fn batch_op_encode(out: &mut Vec<u8>, op: &BatchOp) {
    match op {
        BatchOp::Place { tenant, load, servers } => {
            out.push(TAG_PLACE);
            put_uv(out, *tenant);
            put_bits(out, *load);
            put_us_slice(out, servers);
        }
        BatchOp::Remove { tenant } => {
            out.push(TAG_REMOVE);
            put_uv(out, *tenant);
        }
        BatchOp::UpdateLoad { tenant, load } => {
            out.push(TAG_UPDATE_LOAD);
            put_uv(out, *tenant);
            put_bits(out, *load);
        }
    }
}

fn decode_us_vec(c: &mut Cursor<'_>, what: &str) -> std::result::Result<Vec<usize>, String> {
    let n = c.len(what)?;
    let mut items = Vec::with_capacity(n);
    for _ in 0..n {
        items.push(c.us(what)?);
    }
    Ok(items)
}

fn batch_op_decode(c: &mut Cursor<'_>) -> std::result::Result<BatchOp, String> {
    match c.byte("batch op tag")? {
        TAG_PLACE => Ok(BatchOp::Place {
            tenant: c.uv("batch place tenant")?,
            load: c.bits("batch place load")?,
            servers: decode_us_vec(c, "batch place servers")?,
        }),
        TAG_REMOVE => Ok(BatchOp::Remove { tenant: c.uv("batch remove tenant")? }),
        TAG_UPDATE_LOAD => Ok(BatchOp::UpdateLoad {
            tenant: c.uv("batch update tenant")?,
            load: c.bits("batch update load")?,
        }),
        other => Err(format!("unknown batch op tag {other}")),
    }
}

impl JournalRecord {
    /// Appends this record's binary payload to `out` (format above).
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        match self {
            JournalRecord::Place { tenant, load, servers, servers_after } => {
                out.push(TAG_PLACE);
                put_uv(out, *tenant);
                put_bits(out, *load);
                put_us_slice(out, servers);
                put_us(out, *servers_after);
            }
            JournalRecord::Remove { tenant } => {
                out.push(TAG_REMOVE);
                put_uv(out, *tenant);
            }
            JournalRecord::UpdateLoad { tenant, load } => {
                out.push(TAG_UPDATE_LOAD);
                put_uv(out, *tenant);
                put_bits(out, *load);
            }
            JournalRecord::Migrate { tenant, from, to } => {
                out.push(TAG_MIGRATE);
                put_uv(out, *tenant);
                put_us(out, *from);
                put_us(out, *to);
            }
            JournalRecord::Recover { failed, moves, servers_after } => {
                out.push(TAG_RECOVER);
                put_us_slice(out, failed);
                put_us(out, moves.len());
                for m in moves {
                    put_uv(out, m.tenant);
                    put_us(out, m.from);
                    put_us(out, m.to);
                }
                put_us(out, *servers_after);
            }
            JournalRecord::Batch { ops, servers_after } => {
                out.push(TAG_BATCH);
                put_us(out, ops.len());
                for op in ops {
                    batch_op_encode(out, op);
                }
                put_us(out, *servers_after);
            }
            JournalRecord::Snapshot { dump } => {
                out.push(TAG_SNAPSHOT);
                out.extend_from_slice(
                    serde_json::to_string(dump).expect("dumps always serialize").as_bytes(),
                );
            }
            JournalRecord::Seal => out.push(TAG_SEAL),
        }
    }

    /// Decodes one payload. The error string names the field that was
    /// short or skewed.
    ///
    /// # Errors
    ///
    /// On truncated fields, unknown tags, or trailing bytes — all of
    /// which mean version skew or a writer bug, since the frame CRC has
    /// already vouched for the bytes.
    pub(crate) fn decode(payload: &[u8]) -> std::result::Result<JournalRecord, String> {
        let mut c = Cursor::new(payload);
        let record = match c.byte("record tag")? {
            TAG_PLACE => JournalRecord::Place {
                tenant: c.uv("place tenant")?,
                load: c.bits("place load")?,
                servers: decode_us_vec(&mut c, "place servers")?,
                servers_after: c.us("place servers_after")?,
            },
            TAG_REMOVE => JournalRecord::Remove { tenant: c.uv("remove tenant")? },
            TAG_UPDATE_LOAD => JournalRecord::UpdateLoad {
                tenant: c.uv("update tenant")?,
                load: c.bits("update load")?,
            },
            TAG_MIGRATE => JournalRecord::Migrate {
                tenant: c.uv("migrate tenant")?,
                from: c.us("migrate from")?,
                to: c.us("migrate to")?,
            },
            TAG_RECOVER => {
                let failed = decode_us_vec(&mut c, "recover failed")?;
                let n = c.len("recover moves")?;
                let mut moves = Vec::with_capacity(n);
                for _ in 0..n {
                    moves.push(RecoveryMove {
                        tenant: c.uv("recovery move tenant")?,
                        from: c.us("recovery move from")?,
                        to: c.us("recovery move to")?,
                    });
                }
                JournalRecord::Recover {
                    failed,
                    moves,
                    servers_after: c.us("recover servers_after")?,
                }
            }
            TAG_BATCH => {
                let n = c.len("batch ops")?;
                let mut ops = Vec::with_capacity(n);
                for _ in 0..n {
                    ops.push(batch_op_decode(&mut c)?);
                }
                JournalRecord::Batch { ops, servers_after: c.us("batch servers_after")? }
            }
            TAG_SNAPSHOT => {
                let text = std::str::from_utf8(c.rest())
                    .map_err(|e| format!("snapshot dump is not UTF-8: {e}"))?;
                let dump = serde_json::from_str(text)
                    .map_err(|e| format!("snapshot dump does not parse: {e}"))?;
                return Ok(JournalRecord::Snapshot { dump });
            }
            TAG_SEAL => JournalRecord::Seal,
            other => return Err(format!("unknown record tag {other}")),
        };
        c.finish()?;
        Ok(record)
    }
}

/// Opens fresh bins until the placement has created `servers_after`
/// total, mirroring the bins the original mutation opened.
fn raise_servers(placement: &mut Placement, servers_after: usize) {
    while placement.created_bins() < servers_after {
        placement.open_bin(None);
    }
}

fn bad(seq: u64, detail: impl std::fmt::Display) -> DurabilityError {
    DurabilityError::BadRecord { seq, detail: detail.to_string() }
}

fn apply_place(
    placement: &mut Placement,
    seq: u64,
    tenant: u64,
    load: f64,
    servers: &[usize],
) -> Result<()> {
    let load = Load::new(load).map_err(|e| bad(seq, e))?;
    let bins: Vec<BinId> = servers.iter().map(|&s| BinId::new(s)).collect();
    placement
        .place_tenant(&Tenant::new(TenantId::new(tenant), load), &bins)
        .map_err(|e| bad(seq, e))
}

impl JournalRecord {
    /// Replays this record onto `placement`.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::BadRecord`] when the record cannot apply to the
    /// state the replay has built — version skew or a writer bug, never
    /// an expected crash artifact (torn frames are filtered out before
    /// replay reaches them).
    pub fn apply(&self, placement: &mut Placement, seq: u64) -> Result<()> {
        match self {
            JournalRecord::Place { tenant, load, servers, servers_after } => {
                raise_servers(placement, *servers_after);
                apply_place(placement, seq, *tenant, *load, servers)
            }
            JournalRecord::Remove { tenant } => {
                placement.remove_tenant(TenantId::new(*tenant)).map_err(|e| bad(seq, e))?;
                Ok(())
            }
            JournalRecord::UpdateLoad { tenant, load } => {
                placement.update_load(TenantId::new(*tenant), *load).map_err(|e| bad(seq, e))?;
                Ok(())
            }
            JournalRecord::Migrate { tenant, from, to } => placement
                .move_replica(TenantId::new(*tenant), BinId::new(*from), BinId::new(*to))
                .map_err(|e| bad(seq, e)),
            JournalRecord::Recover { moves, servers_after, .. } => {
                raise_servers(placement, *servers_after);
                for m in moves {
                    placement
                        .move_replica(TenantId::new(m.tenant), BinId::new(m.from), BinId::new(m.to))
                        .map_err(|e| bad(seq, e))?;
                }
                Ok(())
            }
            JournalRecord::Batch { ops, servers_after } => {
                raise_servers(placement, *servers_after);
                for op in ops {
                    match op {
                        BatchOp::Place { tenant, load, servers } => {
                            apply_place(placement, seq, *tenant, *load, servers)?;
                        }
                        BatchOp::Remove { tenant } => {
                            placement
                                .remove_tenant(TenantId::new(*tenant))
                                .map_err(|e| bad(seq, e))?;
                        }
                        BatchOp::UpdateLoad { tenant, load } => {
                            placement
                                .update_load(TenantId::new(*tenant), *load)
                                .map_err(|e| bad(seq, e))?;
                        }
                    }
                }
                Ok(())
            }
            JournalRecord::Snapshot { dump } => {
                *placement = dump.to_placement().map_err(|e| bad(seq, e))?;
                Ok(())
            }
            JournalRecord::Seal => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dump_json(placement: &Placement) -> String {
        serde_json::to_string(&PlacementDump::from_placement(placement)).unwrap()
    }

    #[test]
    fn records_round_trip_through_json() {
        let records = vec![
            JournalRecord::Place { tenant: 7, load: 0.25, servers: vec![0, 1], servers_after: 2 },
            JournalRecord::Remove { tenant: 7 },
            JournalRecord::UpdateLoad { tenant: 8, load: 0.5 },
            JournalRecord::Migrate { tenant: 8, from: 0, to: 3 },
            JournalRecord::Recover {
                failed: vec![2],
                moves: vec![RecoveryMove { tenant: 9, from: 2, to: 4 }],
                servers_after: 5,
            },
            JournalRecord::Batch {
                ops: vec![
                    BatchOp::Place { tenant: 10, load: 0.125, servers: vec![0, 1] },
                    BatchOp::Remove { tenant: 10 },
                    BatchOp::UpdateLoad { tenant: 8, load: 0.75 },
                ],
                servers_after: 5,
            },
            JournalRecord::Snapshot {
                dump: PlacementDump { gamma: 2, servers: 0, tenants: vec![] },
            },
            JournalRecord::Seal,
        ];
        for record in records {
            let json = serde_json::to_string(&record).unwrap();
            let back: JournalRecord = serde_json::from_str(&json).unwrap();
            assert_eq!(back, record, "round trip failed for {json}");
        }
    }

    /// Every variant survives the wire: encode then decode is identity,
    /// including the empty-collection and max-value edges.
    #[test]
    fn binary_encoding_round_trips_every_variant() {
        let records = vec![
            JournalRecord::Place {
                tenant: 7,
                load: 0.25,
                servers: vec![0, 1, 5],
                servers_after: 6,
            },
            JournalRecord::Place { tenant: 0, load: 1.0, servers: vec![], servers_after: 0 },
            JournalRecord::Remove { tenant: u64::MAX },
            JournalRecord::UpdateLoad { tenant: 8, load: 0.123_456_789_012_345_6 },
            JournalRecord::UpdateLoad { tenant: 9, load: 1e-9 },
            JournalRecord::Migrate { tenant: 8, from: 0, to: 3 },
            JournalRecord::Recover { failed: vec![], moves: vec![], servers_after: 0 },
            JournalRecord::Recover {
                failed: vec![2, 7],
                moves: vec![
                    RecoveryMove { tenant: 9, from: 2, to: 4 },
                    RecoveryMove { tenant: 3, from: 7, to: 0 },
                ],
                servers_after: 8,
            },
            JournalRecord::Batch { ops: vec![], servers_after: 1 },
            JournalRecord::Batch {
                ops: vec![
                    BatchOp::Place { tenant: 10, load: 0.125, servers: vec![0, 1] },
                    BatchOp::Remove { tenant: 10 },
                    BatchOp::UpdateLoad { tenant: 8, load: 0.75 },
                ],
                servers_after: 5,
            },
            JournalRecord::Snapshot {
                dump: PlacementDump { gamma: 2, servers: 0, tenants: vec![] },
            },
            JournalRecord::Seal,
        ];
        for record in records {
            let mut bytes = Vec::new();
            record.encode(&mut bytes);
            let back = JournalRecord::decode(&bytes).unwrap();
            assert_eq!(back, record, "wire round trip failed for {record:?}");
        }
    }

    /// Pinned wire bytes: the on-disk record format must never drift
    /// (existing journals would stop replaying).
    #[test]
    fn wire_format_is_pinned() {
        let mut bytes = Vec::new();
        JournalRecord::Place { tenant: 7, load: 0.25, servers: vec![0, 1], servers_after: 2 }
            .encode(&mut bytes);
        // tag | tenant | f64 bits LE | server count | servers | after
        assert_eq!(bytes, [1, 7, 0, 0, 0, 0, 0, 0, 0xD0, 0x3F, 2, 0, 1, 2]);

        bytes.clear();
        // Varints: 300 = 0b1_0101100 → 0xAC 0x02.
        JournalRecord::Remove { tenant: 300 }.encode(&mut bytes);
        assert_eq!(bytes, [2, 0xAC, 0x02]);

        bytes.clear();
        JournalRecord::Seal.encode(&mut bytes);
        assert_eq!(bytes, [8]);
    }

    #[test]
    fn decoder_rejects_damage_with_named_fields() {
        let mut bytes = Vec::new();
        JournalRecord::Place { tenant: 7, load: 0.25, servers: vec![0, 1], servers_after: 2 }
            .encode(&mut bytes);

        // Truncated mid-float: the error names the field.
        let err = JournalRecord::decode(&bytes[..5]).unwrap_err();
        assert!(err.contains("place load"), "{err}");

        // Trailing garbage is version skew, not silently ignored.
        bytes.push(0);
        let err = JournalRecord::decode(&bytes).unwrap_err();
        assert!(err.contains("trailing"), "{err}");

        // Unknown tag.
        let err = JournalRecord::decode(&[99]).unwrap_err();
        assert!(err.contains("unknown record tag 99"), "{err}");

        // A length claiming more elements than bytes remain must not
        // drive a pre-allocation.
        let err = JournalRecord::decode(&[2 + 3, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F]).unwrap_err();
        assert!(err.contains("elements"), "{err}");
    }

    #[test]
    fn replay_reconstructs_a_mutation_stream() {
        // Live side: apply mutations directly.
        let mut live = Placement::new(2);
        let a = live.open_bin(None);
        let b = live.open_bin(None);
        let c = live.open_bin(None);
        live.place_tenant(&Tenant::new(TenantId::new(1), Load::new(0.4).unwrap()), &[a, b])
            .unwrap();
        live.place_tenant(&Tenant::new(TenantId::new(2), Load::new(0.2).unwrap()), &[a, c])
            .unwrap();
        live.update_load(TenantId::new(1), 0.6).unwrap();
        live.move_replica(TenantId::new(2), a, b).unwrap();
        live.remove_tenant(TenantId::new(1)).unwrap();

        // Journal side: the records those mutations would have produced.
        let records = [
            JournalRecord::Place { tenant: 1, load: 0.4, servers: vec![0, 1], servers_after: 2 },
            JournalRecord::Place { tenant: 2, load: 0.2, servers: vec![0, 2], servers_after: 3 },
            JournalRecord::UpdateLoad { tenant: 1, load: 0.6 },
            JournalRecord::Migrate { tenant: 2, from: 0, to: 1 },
            JournalRecord::Remove { tenant: 1 },
        ];
        let mut replayed = Placement::new(2);
        for (i, record) in records.iter().enumerate() {
            record.apply(&mut replayed, i as u64 + 1).unwrap();
        }
        assert_eq!(dump_json(&replayed), dump_json(&live), "replay must be bit-identical");
    }

    #[test]
    fn batch_and_snapshot_replay() {
        let mut placement = Placement::new(2);
        JournalRecord::Batch {
            ops: vec![
                BatchOp::Place { tenant: 1, load: 0.4, servers: vec![0, 1] },
                BatchOp::Place { tenant: 2, load: 0.2, servers: vec![0, 1] },
                BatchOp::UpdateLoad { tenant: 1, load: 0.5 },
                BatchOp::Remove { tenant: 2 },
            ],
            servers_after: 2,
        }
        .apply(&mut placement, 1)
        .unwrap();
        assert_eq!(placement.tenant_count(), 1);
        assert!((placement.tenant_load(TenantId::new(1)).unwrap() - 0.5).abs() < 1e-12);

        // A snapshot replaces the whole state.
        let mut other = Placement::new(2);
        other.open_bin(None);
        other.open_bin(None);
        other
            .place_tenant(
                &Tenant::new(TenantId::new(9), Load::new(0.3).unwrap()),
                &[BinId::new(0), BinId::new(1)],
            )
            .unwrap();
        JournalRecord::Snapshot { dump: PlacementDump::from_placement(&other) }
            .apply(&mut placement, 2)
            .unwrap();
        assert_eq!(dump_json(&placement), dump_json(&other));
    }

    #[test]
    fn unreplayable_records_carry_their_seq() {
        let mut placement = Placement::new(2);
        let err = JournalRecord::Remove { tenant: 42 }.apply(&mut placement, 17).unwrap_err();
        assert!(matches!(err, DurabilityError::BadRecord { seq: 17, .. }), "{err}");
    }
}
