//! Typed failures of the journal, checkpoint, and recovery paths.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, DurabilityError>;

/// Everything that can go wrong between a mutation and its durable
/// record — and between a crash and the recovered placement.
///
/// The torn-tail case is deliberately *not* here: an incomplete final
/// frame is the expected signature of a crash mid-append and recovery
/// tolerates it (truncate-and-warn). Only damage that loses
/// already-acknowledged state is an error.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DurabilityError {
    /// An operating-system I/O failure.
    Io {
        /// Path the operation touched.
        path: String,
        /// The underlying error text.
        detail: String,
    },
    /// The write-ahead log's header is missing, truncated, or not a
    /// CubeFit journal.
    BadHeader {
        /// Path of the offending log.
        path: String,
        /// What was wrong with it.
        detail: String,
    },
    /// A complete frame in the middle of the log failed its CRC (or
    /// declared an implausible length): bits rotted or were flipped
    /// *after* the frame was acknowledged. Unlike a torn tail this loses
    /// acknowledged state, so it is a hard error.
    CorruptFrame {
        /// Byte offset of the frame within the log file.
        offset: u64,
        /// What the check found.
        detail: String,
    },
    /// The checkpoint file exists but cannot be parsed or rebuilt.
    BadCheckpoint {
        /// Path of the checkpoint file.
        path: String,
        /// What was wrong with it.
        detail: String,
    },
    /// A frame decoded cleanly (CRC passed) but its record could not be
    /// deserialized or replayed — a version skew or a writer bug.
    BadRecord {
        /// Journal sequence number of the record.
        seq: u64,
        /// What failed.
        detail: String,
    },
    /// An append was attempted after the journal was sealed.
    Sealed,
    /// The journal was asked to do something its configuration cannot
    /// support (e.g. journaling a γ < 2 placement, which the checkpoint
    /// format cannot round-trip).
    Unsupported {
        /// Why the request was refused.
        detail: String,
    },
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io { path, detail } => write!(f, "journal I/O on {path}: {detail}"),
            DurabilityError::BadHeader { path, detail } => {
                write!(f, "bad journal header in {path}: {detail}")
            }
            DurabilityError::CorruptFrame { offset, detail } => {
                write!(f, "corrupt journal frame at byte {offset}: {detail}")
            }
            DurabilityError::BadCheckpoint { path, detail } => {
                write!(f, "bad checkpoint {path}: {detail}")
            }
            DurabilityError::BadRecord { seq, detail } => {
                write!(f, "unreplayable journal record (seq {seq}): {detail}")
            }
            DurabilityError::Sealed => write!(f, "journal is sealed"),
            DurabilityError::Unsupported { detail } => write!(f, "journal unsupported: {detail}"),
        }
    }
}

impl std::error::Error for DurabilityError {}

impl From<DurabilityError> for cubefit_core::Error {
    fn from(e: DurabilityError) -> Self {
        cubefit_core::Error::Durability { detail: e.to_string() }
    }
}

impl DurabilityError {
    /// Wraps an I/O error with the path it hit.
    pub(crate) fn io(path: impl AsRef<std::path::Path>, e: &std::io::Error) -> Self {
        DurabilityError::Io { path: path.as_ref().display().to_string(), detail: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_converts_to_core_error() {
        let errors = [
            DurabilityError::Io { path: "wal.log".into(), detail: "disk full".into() },
            DurabilityError::BadHeader { path: "wal.log".into(), detail: "bad magic".into() },
            DurabilityError::CorruptFrame { offset: 128, detail: "crc mismatch".into() },
            DurabilityError::BadCheckpoint { path: "checkpoint.json".into(), detail: "eof".into() },
            DurabilityError::BadRecord { seq: 7, detail: "unknown variant".into() },
            DurabilityError::Sealed,
            DurabilityError::Unsupported { detail: "γ must be ≥ 2".into() },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
            let core: cubefit_core::Error = e.clone().into();
            assert!(core.to_string().contains("durability failure"));
        }
        let corrupt = DurabilityError::CorruptFrame { offset: 128, detail: "crc".into() };
        assert!(corrupt.to_string().contains("byte 128"), "errors must name the byte offset");
    }
}
