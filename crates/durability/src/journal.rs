//! The write-ahead journal: append, fsync policy, checkpoint, seal.

use crate::error::{DurabilityError, Result};
use crate::frame::{self, HEADER_LEN};
use crate::record::JournalRecord;
use cubefit_core::{Placement, PlacementDump};
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// File name of the write-ahead log inside a journal directory.
pub const WAL_FILE: &str = "wal.log";
/// File name of the checkpoint inside a journal directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.json";

/// When appended frames are forced to stable storage.
///
/// Checkpoints and seals always fsync regardless of policy — only the
/// per-append cost is tunable. `Never` bounds loss to the OS page cache
/// (a *process* crash loses nothing; only a machine crash can), which is
/// the right trade for soak benchmarking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every append: at most zero acknowledged mutations are
    /// lost to a machine crash.
    Always,
    /// Fsync every N appends: bounded loss window, amortized cost.
    Interval(u64),
    /// Never fsync on append (the OS flushes when it likes).
    Never,
}

impl FsyncPolicy {
    /// Parses `always`, `never`, or `interval:N`.
    ///
    /// # Errors
    ///
    /// Returns a usage message for anything else.
    pub fn parse(text: &str) -> std::result::Result<Self, String> {
        match text {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            other => {
                if let Some(n) = other.strip_prefix("interval:") {
                    let n: u64 = n
                        .parse()
                        .map_err(|_| format!("--fsync interval:N needs an integer, got {n:?}"))?;
                    if n == 0 {
                        return Err("--fsync interval:N needs N >= 1".to_owned());
                    }
                    Ok(FsyncPolicy::Interval(n))
                } else {
                    Err(format!("--fsync expects always|interval:N|never, got {other:?}"))
                }
            }
        }
    }

    /// The string [`FsyncPolicy::parse`] accepts for this policy.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            FsyncPolicy::Always => "always".to_owned(),
            FsyncPolicy::Interval(n) => format!("interval:{n}"),
            FsyncPolicy::Never => "never".to_owned(),
        }
    }
}

/// What a checkpoint retired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointInfo {
    /// Highest journal sequence number the checkpoint covers.
    pub seq: u64,
    /// Write-ahead-log payload bytes the checkpoint truncated away.
    pub wal_bytes: u64,
}

/// On-disk checkpoint format: the snapshot plus the journal sequence
/// number it covers. Frames with `seq ≤` this are skipped on replay, so
/// a crash between writing the checkpoint and truncating the log recovers
/// correctly in every interleaving.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub(crate) struct CheckpointFile {
    /// Highest sequence number folded into the snapshot.
    pub seq: u64,
    /// The placement snapshot.
    pub dump: PlacementDump,
}

impl CheckpointFile {
    /// The exact compact JSON [`serde_json::to_string`] produces
    /// (byte-for-byte; enforced by test). Checkpoints serialize the whole
    /// placement at every stride, so this skips the `Value` tree the
    /// generic serializer builds — on a few-hundred-tenant placement that
    /// tree costs more than the fsyncs the checkpoint performs.
    pub(crate) fn to_compact_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(64 + self.dump.tenants.len() * 64);
        let _ = write!(
            &mut out,
            "{{\"seq\":{},\"dump\":{{\"gamma\":{},\"servers\":{},\"tenants\":[",
            self.seq, self.dump.gamma, self.dump.servers
        );
        for (i, entry) in self.dump.tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(&mut out, "{{\"tenant\":{},\"load\":", entry.tenant);
            crate::record::push_f64(&mut out, entry.load);
            out.push_str(",\"servers\":");
            crate::record::push_usize_array(&mut out, &entry.servers);
            out.push('}');
        }
        out.push_str("]}}");
        out
    }
}

#[derive(Debug)]
struct JournalInner {
    dir: PathBuf,
    wal: File,
    gamma: usize,
    policy: FsyncPolicy,
    /// Last sequence number assigned (0 = nothing journaled yet).
    seq: u64,
    appends_since_sync: u64,
    wal_bytes: u64,
    /// Frame bytes ever appended — monotonic, unlike `wal_bytes`, which
    /// checkpoint truncation resets.
    appended_bytes: u64,
    sealed: bool,
    /// Reused serialization buffers: one frame is appended per
    /// acknowledged mutation, so the hot path must not allocate.
    payload_buf: Vec<u8>,
    frame_buf: Vec<u8>,
}

/// A shared handle to one journal directory. Clones share the underlying
/// log (and its mutex), so a harness can hand the journal to a wrapper
/// consolidator and still checkpoint/seal it from the outside.
#[derive(Debug, Clone)]
pub struct Journal {
    inner: Arc<Mutex<JournalInner>>,
}

impl Journal {
    /// Starts a **fresh** journal in `dir` (created if missing): a new
    /// write-ahead log containing only the header, and no checkpoint. Any
    /// previous journal in the directory is discarded — recover it first
    /// if it matters.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Unsupported`] for γ < 2 (the checkpoint format
    /// rebuilds through [`PlacementDump::to_placement`], which enforces
    /// the paper's replication floor), and I/O errors creating the files.
    pub fn create(dir: impl AsRef<Path>, gamma: usize, policy: FsyncPolicy) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        if gamma < 2 {
            return Err(DurabilityError::Unsupported {
                detail: format!("journaling requires γ ≥ 2 (checkpoint format floor), got {gamma}"),
            });
        }
        fs::create_dir_all(&dir).map_err(|e| DurabilityError::io(&dir, &e))?;
        let checkpoint = dir.join(CHECKPOINT_FILE);
        if checkpoint.exists() {
            fs::remove_file(&checkpoint).map_err(|e| DurabilityError::io(&checkpoint, &e))?;
        }
        let wal_path = dir.join(WAL_FILE);
        let mut wal = File::create(&wal_path).map_err(|e| DurabilityError::io(&wal_path, &e))?;
        wal.write_all(&frame::encode_header(gamma))
            .and_then(|()| wal.sync_all())
            .map_err(|e| DurabilityError::io(&wal_path, &e))?;
        Ok(Journal {
            inner: Arc::new(Mutex::new(JournalInner {
                dir,
                wal,
                gamma,
                policy,
                seq: 0,
                appends_since_sync: 0,
                wal_bytes: HEADER_LEN as u64,
                appended_bytes: 0,
                sealed: false,
                payload_buf: Vec::new(),
                frame_buf: Vec::new(),
            })),
        })
    }

    /// Appends one record as a checksummed frame, fsyncing per the
    /// policy. Returns the sequence number the frame was journaled under.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Sealed`] after [`Journal::seal`], and I/O
    /// failures (the caller must treat the mutation as not durable).
    pub fn append(&self, record: &JournalRecord) -> Result<u64> {
        let mut inner = self.lock();
        if inner.sealed {
            return Err(DurabilityError::Sealed);
        }
        inner.write_record(record)
    }

    /// Takes a checkpoint of `placement`: writes the snapshot atomically
    /// (temp file + fsync + rename), then truncates the log to a fresh
    /// header. Recovery loads the snapshot and replays only frames newer
    /// than it, so a crash anywhere in this sequence is safe.
    ///
    /// # Errors
    ///
    /// I/O failures; the previous checkpoint/log stay recoverable.
    pub fn checkpoint(&self, placement: &Placement) -> Result<CheckpointInfo> {
        let mut inner = self.lock();
        let dir = inner.dir.clone();
        let wal_path = dir.join(WAL_FILE);
        // 1. The snapshot, atomically. The WAL itself is *not* synced
        //    first: every frame the log holds is ≤ the checkpoint's seq,
        //    so once the snapshot is durable those frames are covered by
        //    it — replay never reads them. Skipping the sync avoids a
        //    full writeback of the retiring log on every checkpoint.
        let file =
            CheckpointFile { seq: inner.seq, dump: PlacementDump::from_placement(placement) };
        let json = file.to_compact_json();
        let checkpoint_path = dir.join(CHECKPOINT_FILE);
        cubefit_core::write_atomic(&checkpoint_path, json)
            .map_err(|e| DurabilityError::io(&checkpoint_path, &e))?;
        // 2. A fresh header-only log, swapped in atomically. The old
        //    frames are all ≤ the checkpoint's seq, so losing them is the
        //    point; keeping them (crash before the rename) is also fine —
        //    replay skips them.
        let tmp = dir.join(format!(".{WAL_FILE}.{}.tmp", std::process::id()));
        let mut fresh = File::create(&tmp).map_err(|e| DurabilityError::io(&tmp, &e))?;
        fresh
            .write_all(&frame::encode_header(inner.gamma))
            .and_then(|()| fresh.sync_all())
            .and_then(|()| fs::rename(&tmp, &wal_path))
            .map_err(|e| {
                let _ = fs::remove_file(&tmp);
                DurabilityError::io(&wal_path, &e)
            })?;
        let retired = inner.wal_bytes - HEADER_LEN as u64;
        inner.wal = fresh;
        inner.wal_bytes = HEADER_LEN as u64;
        // The durable snapshot covers every frame appended so far, so the
        // fsync-policy loss window restarts here.
        inner.appends_since_sync = 0;
        Ok(CheckpointInfo { seq: file.seq, wal_bytes: retired })
    }

    /// Seals the journal: appends the clean-shutdown marker and fsyncs
    /// everything, regardless of policy. Idempotent — sealing twice is a
    /// no-op. Further appends fail with [`DurabilityError::Sealed`].
    ///
    /// # Errors
    ///
    /// I/O failures writing or syncing the marker.
    pub fn seal(&self) -> Result<()> {
        let mut inner = self.lock();
        if inner.sealed {
            return Ok(());
        }
        inner.write_record(&JournalRecord::Seal)?;
        let wal_path = inner.dir.join(WAL_FILE);
        inner.wal.sync_all().map_err(|e| DurabilityError::io(&wal_path, &e))?;
        inner.sealed = true;
        Ok(())
    }

    /// Forces everything appended so far to stable storage.
    ///
    /// # Errors
    ///
    /// The underlying fsync failure.
    pub fn sync(&self) -> Result<()> {
        let mut inner = self.lock();
        let wal_path = inner.dir.join(WAL_FILE);
        inner.wal.sync_all().map_err(|e| DurabilityError::io(&wal_path, &e))?;
        inner.appends_since_sync = 0;
        Ok(())
    }

    /// Last sequence number assigned (0 before the first append).
    #[must_use]
    pub fn last_seq(&self) -> u64 {
        self.lock().seq
    }

    /// Bytes in the current write-ahead log, header included.
    #[must_use]
    pub fn wal_bytes(&self) -> u64 {
        self.lock().wal_bytes
    }

    /// Frame bytes ever appended across the journal's lifetime —
    /// monotonic where [`Journal::wal_bytes`] resets at each checkpoint
    /// truncation, so it measures journaling write volume (bytes per
    /// mutation) rather than the current log size.
    #[must_use]
    pub fn appended_bytes(&self) -> u64 {
        self.lock().appended_bytes
    }

    /// Whether [`Journal::seal`] ran.
    #[must_use]
    pub fn is_sealed(&self) -> bool {
        self.lock().sealed
    }

    /// Replication factor the journal was created for.
    #[must_use]
    pub fn gamma(&self) -> usize {
        self.lock().gamma
    }

    /// The journal directory.
    #[must_use]
    pub fn dir(&self) -> PathBuf {
        self.lock().dir.clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, JournalInner> {
        // A poisoned mutex means another thread panicked mid-append; the
        // in-memory bookkeeping is still sound (writes are single calls),
        // so continue rather than cascading the panic.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl JournalInner {
    fn write_record(&mut self, record: &JournalRecord) -> Result<u64> {
        let seq = self.seq + 1;
        self.payload_buf.clear();
        record.encode(&mut self.payload_buf);
        self.frame_buf.clear();
        frame::encode_frame_into(&mut self.frame_buf, seq, &self.payload_buf);
        self.wal
            .write_all(&self.frame_buf)
            .map_err(|e| DurabilityError::io(self.dir.join(WAL_FILE), &e))?;
        self.seq = seq;
        self.wal_bytes += self.frame_buf.len() as u64;
        self.appended_bytes += self.frame_buf.len() as u64;
        self.appends_since_sync += 1;
        let sync_due = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::Interval(n) => self.appends_since_sync >= n,
            FsyncPolicy::Never => false,
        };
        if sync_due {
            self.wal.sync_data().map_err(|e| DurabilityError::io(self.dir.join(WAL_FILE), &e))?;
            self.appends_since_sync = 0;
        }
        Ok(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cubefit-journal-tests").join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fsync_policy_parses_and_labels() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("never").unwrap(), FsyncPolicy::Never);
        assert_eq!(FsyncPolicy::parse("interval:64").unwrap(), FsyncPolicy::Interval(64));
        for bad in ["interval:0", "interval:x", "sometimes", ""] {
            assert!(FsyncPolicy::parse(bad).is_err(), "{bad:?} must be rejected");
        }
        for policy in [FsyncPolicy::Always, FsyncPolicy::Interval(7), FsyncPolicy::Never] {
            assert_eq!(FsyncPolicy::parse(&policy.label()).unwrap(), policy);
        }
    }

    #[test]
    fn create_append_seal_lifecycle() {
        let dir = tmp_dir("lifecycle");
        let journal = Journal::create(&dir, 2, FsyncPolicy::Always).unwrap();
        assert_eq!(journal.last_seq(), 0);
        assert_eq!(journal.gamma(), 2);
        let seq = journal
            .append(&JournalRecord::Place {
                tenant: 1,
                load: 0.25,
                servers: vec![0, 1],
                servers_after: 2,
            })
            .unwrap();
        assert_eq!(seq, 1);
        assert_eq!(journal.append(&JournalRecord::Remove { tenant: 1 }).unwrap(), 2);
        journal.seal().unwrap();
        journal.seal().unwrap(); // idempotent
        assert!(journal.is_sealed());
        assert_eq!(
            journal.append(&JournalRecord::Remove { tenant: 2 }).unwrap_err(),
            DurabilityError::Sealed
        );
        // The log on disk holds the header plus three frames (incl. Seal).
        let bytes = fs::read(dir.join(WAL_FILE)).unwrap();
        assert_eq!(frame::parse_header(&bytes).unwrap(), 2);
        assert!(bytes.len() as u64 == journal.wal_bytes());
    }

    #[test]
    fn rejects_gamma_below_two() {
        let err = Journal::create(tmp_dir("gamma1"), 1, FsyncPolicy::Never).unwrap_err();
        assert!(matches!(err, DurabilityError::Unsupported { .. }), "{err}");
    }

    #[test]
    fn checkpoint_truncates_the_log_and_records_the_seq() {
        let dir = tmp_dir("checkpoint");
        let journal = Journal::create(&dir, 2, FsyncPolicy::Never).unwrap();
        let mut placement = Placement::new(2);
        let a = placement.open_bin(None);
        let b = placement.open_bin(None);
        placement
            .place_tenant(
                &cubefit_core::Tenant::new(
                    cubefit_core::TenantId::new(1),
                    cubefit_core::Load::new(0.25).unwrap(),
                ),
                &[a, b],
            )
            .unwrap();
        journal
            .append(&JournalRecord::Place {
                tenant: 1,
                load: 0.25,
                servers: vec![0, 1],
                servers_after: 2,
            })
            .unwrap();
        let before = journal.wal_bytes();
        assert!(before > HEADER_LEN as u64);
        let info = journal.checkpoint(&placement).unwrap();
        assert_eq!(info.seq, 1);
        assert_eq!(info.wal_bytes, before - HEADER_LEN as u64);
        assert_eq!(journal.wal_bytes(), HEADER_LEN as u64, "log truncated to a bare header");
        let checkpoint = fs::read_to_string(dir.join(CHECKPOINT_FILE)).unwrap();
        let parsed: CheckpointFile = serde_json::from_str(&checkpoint).unwrap();
        assert_eq!(parsed.seq, 1);
        assert_eq!(parsed.dump.tenants.len(), 1);
        // Appends continue with the global sequence, into the fresh log.
        assert_eq!(journal.append(&JournalRecord::Remove { tenant: 1 }).unwrap(), 2);
        let bytes = fs::read(dir.join(WAL_FILE)).unwrap();
        let frame::FrameParse::Frame { seq, .. } = frame::next_frame(&bytes, HEADER_LEN) else {
            panic!("fresh log must hold the post-checkpoint frame");
        };
        assert_eq!(seq, 2);
    }

    /// The hand-rolled checkpoint serializer must stay byte-identical to
    /// the derive-driven one — recovery parses checkpoints with the
    /// generic deserializer.
    #[test]
    fn checkpoint_compact_json_matches_the_generic_serializer() {
        for file in [
            CheckpointFile {
                seq: 0,
                dump: PlacementDump { gamma: 2, servers: 0, tenants: vec![] },
            },
            CheckpointFile {
                seq: u64::MAX,
                dump: PlacementDump {
                    gamma: 3,
                    servers: 4,
                    tenants: vec![
                        cubefit_core::DumpEntry { tenant: 1, load: 0.25, servers: vec![0, 1, 3] },
                        cubefit_core::DumpEntry {
                            tenant: 9,
                            load: 0.123_456_789_012_345_6,
                            servers: vec![2, 1, 0],
                        },
                    ],
                },
            },
        ] {
            assert_eq!(
                file.to_compact_json(),
                serde_json::to_string(&file).unwrap(),
                "checkpoint format drift"
            );
        }
    }

    #[test]
    fn create_discards_a_previous_journal() {
        let dir = tmp_dir("fresh");
        let journal = Journal::create(&dir, 2, FsyncPolicy::Never).unwrap();
        journal
            .append(&JournalRecord::Place {
                tenant: 1,
                load: 0.5,
                servers: vec![0, 1],
                servers_after: 2,
            })
            .unwrap();
        journal.checkpoint(&Placement::new(2)).unwrap();
        drop(journal);
        let journal = Journal::create(&dir, 3, FsyncPolicy::Never).unwrap();
        assert_eq!(journal.last_seq(), 0);
        assert!(!dir.join(CHECKPOINT_FILE).exists(), "stale checkpoint must be removed");
        let bytes = fs::read(dir.join(WAL_FILE)).unwrap();
        assert_eq!(frame::parse_header(&bytes).unwrap(), 3);
        assert_eq!(bytes.len(), HEADER_LEN);
    }
}
