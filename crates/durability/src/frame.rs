//! On-disk framing of the write-ahead log.
//!
//! Layout:
//!
//! ```text
//! header:  magic "CUBEWAL1" (8) | version u32 LE (4) | gamma u32 LE (4)
//! frame:   len u32 LE (4) | seq u64 LE (8) | crc u32 LE (4) | payload (len)
//! ```
//!
//! `len` counts only the payload. The CRC (IEEE 802.3 / zlib polynomial)
//! covers the little-endian `seq` bytes followed by the payload, so a
//! frame whose body was written under a different sequence number — the
//! classic misdirected-write failure — fails its checksum even when the
//! payload itself is intact.
//!
//! The reader distinguishes two kinds of damage:
//!
//! - a frame that does not fit in the remaining bytes is a **torn
//!   tail** — the expected signature of a crash mid-append, tolerated by
//!   recovery (the unacknowledged suffix is discarded with a warning);
//! - a frame that is fully present but fails its CRC (or declares an
//!   implausible length) is **corruption** — acknowledged state was
//!   damaged, surfaced as a typed error naming the byte offset.

/// File magic opening every write-ahead log.
pub const MAGIC: &[u8; 8] = b"CUBEWAL1";
/// Format version written into the header.
pub const VERSION: u32 = 1;
/// Bytes of header before the first frame.
pub const HEADER_LEN: usize = 16;
/// Per-frame framing overhead (len + seq + crc) in bytes.
pub const FRAME_OVERHEAD: usize = 16;
/// Upper bound on a plausible payload. Journal records are small binary
/// blobs (even a million-tenant checkpoint snapshot lives in the
/// checkpoint file, not the log), so a length beyond this is read as
/// corruption of the length field rather than a genuinely huge frame.
pub const MAX_PAYLOAD_LEN: u32 = 1 << 26;

/// IEEE CRC-32 lookup tables for slicing-by-8, built at compile time.
/// Table 0 is the classic byte-at-a-time table; table `t` advances a
/// byte through `t` extra zero bytes, letting the checksum consume eight
/// input bytes per step with one XOR tree.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
};

const CRC_TABLE: [u32; 256] = CRC_TABLES[0];

fn crc_step8(crc: u32, bytes: [u8; 8]) -> u32 {
    let lo = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) ^ crc;
    let hi = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    CRC_TABLES[7][(lo & 0xFF) as usize]
        ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
        ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
        ^ CRC_TABLES[4][(lo >> 24) as usize]
        ^ CRC_TABLES[3][(hi & 0xFF) as usize]
        ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
        ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
        ^ CRC_TABLES[0][(hi >> 24) as usize]
}

/// CRC-32 (IEEE) over the frame body: `seq` as little-endian bytes, then
/// the payload. Slicing-by-8: the checksum runs once per acknowledged
/// mutation, so the byte-at-a-time loop only mops up the tail.
#[must_use]
pub fn frame_crc(seq: u64, payload: &[u8]) -> u32 {
    let mut crc = crc_step8(0xFFFF_FFFF, seq.to_le_bytes());
    let mut chunks = payload.chunks_exact(8);
    for chunk in &mut chunks {
        crc = crc_step8(crc, chunk.try_into().expect("8-byte chunk"));
    }
    for &byte in chunks.remainder() {
        crc = CRC_TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Encodes the log header for a journal tracking a γ-replicated
/// placement.
#[must_use]
pub fn encode_header(gamma: usize) -> [u8; HEADER_LEN] {
    let mut header = [0u8; HEADER_LEN];
    header[..8].copy_from_slice(MAGIC);
    header[8..12].copy_from_slice(&VERSION.to_le_bytes());
    header[12..16].copy_from_slice(&(gamma as u32).to_le_bytes());
    header
}

/// Parses a log header, returning the γ it was written for.
///
/// # Errors
///
/// Returns a description of what was wrong (truncated, bad magic,
/// unknown version).
pub fn parse_header(bytes: &[u8]) -> Result<usize, String> {
    if bytes.len() < HEADER_LEN {
        return Err(format!("{} bytes is shorter than the {HEADER_LEN}-byte header", bytes.len()));
    }
    if &bytes[..8] != MAGIC {
        return Err("bad magic (not a CubeFit write-ahead log)".to_owned());
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != VERSION {
        return Err(format!("unsupported log version {version} (this build reads {VERSION})"));
    }
    Ok(u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as usize)
}

/// Encodes one frame.
#[must_use]
pub fn encode_frame(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    encode_frame_into(&mut frame, seq, payload);
    frame
}

/// Appends one encoded frame to `out` — the allocation-free variant the
/// journal's append hot path uses with a reused buffer.
pub fn encode_frame_into(out: &mut Vec<u8>, seq: u64, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&frame_crc(seq, payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// One step of the frame reader.
#[derive(Debug, PartialEq)]
pub enum FrameParse<'a> {
    /// A complete, checksum-verified frame.
    Frame {
        /// Journal sequence number.
        seq: u64,
        /// The record payload (binary record bytes).
        payload: &'a [u8],
        /// Offset of the *next* frame.
        next: usize,
    },
    /// Clean end of log: no bytes remain.
    End,
    /// The remaining bytes cannot hold a complete frame — the torn tail
    /// of a crash mid-append.
    TornTail {
        /// Offset the incomplete frame starts at.
        offset: usize,
        /// Bytes discarded with it.
        discarded: usize,
    },
    /// A complete frame failed verification.
    Corrupt {
        /// Offset the frame starts at.
        offset: usize,
        /// What failed.
        detail: String,
    },
}

/// Reads the frame starting at `pos` in `buf` (which includes the file
/// header; the first frame lives at [`HEADER_LEN`]).
#[must_use]
pub fn next_frame(buf: &[u8], pos: usize) -> FrameParse<'_> {
    let remaining = buf.len().saturating_sub(pos);
    if remaining == 0 {
        return FrameParse::End;
    }
    if remaining < FRAME_OVERHEAD {
        return FrameParse::TornTail { offset: pos, discarded: remaining };
    }
    let len = u32::from_le_bytes([buf[pos], buf[pos + 1], buf[pos + 2], buf[pos + 3]]);
    if len > MAX_PAYLOAD_LEN {
        return FrameParse::Corrupt {
            offset: pos,
            detail: format!("declared payload length {len} exceeds the {MAX_PAYLOAD_LEN} cap"),
        };
    }
    let needed = FRAME_OVERHEAD + len as usize;
    if remaining < needed {
        return FrameParse::TornTail { offset: pos, discarded: remaining };
    }
    let seq = u64::from_le_bytes(buf[pos + 4..pos + 12].try_into().expect("8 bytes"));
    let stored_crc =
        u32::from_le_bytes([buf[pos + 12], buf[pos + 13], buf[pos + 14], buf[pos + 15]]);
    let payload = &buf[pos + FRAME_OVERHEAD..pos + needed];
    let computed = frame_crc(seq, payload);
    if computed != stored_crc {
        return FrameParse::Corrupt {
            offset: pos,
            detail: format!("crc mismatch (stored {stored_crc:#010x}, computed {computed:#010x})"),
        };
    }
    FrameParse::Frame { seq, payload, next: pos + needed }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pinned IEEE CRC-32 vectors (zlib polynomial): the on-disk format
    /// must never drift.
    #[test]
    fn crc_matches_known_vectors() {
        // crc32(b"123456789") = 0xCBF43926 with a zero seed; our frame
        // CRC prefixes the seq bytes, so check via seq = 0 equivalence:
        // frame_crc(0, p) == crc32(le(0) ++ p).
        let mut crc = 0xFFFF_FFFFu32;
        for &b in [0u8; 8].iter().chain(b"123456789".iter()) {
            crc = CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
        }
        assert_eq!(frame_crc(0, b"123456789"), !crc);
        // And the standalone table is the IEEE one.
        assert_eq!(CRC_TABLE[1], 0x7707_3096);
        assert_eq!(CRC_TABLE[255], 0x2D02_EF8D);
    }

    #[test]
    fn header_round_trips_and_rejects_damage() {
        let header = encode_header(12);
        assert_eq!(parse_header(&header).unwrap(), 12);
        assert!(parse_header(&header[..10]).unwrap_err().contains("shorter"));
        let mut bad_magic = header;
        bad_magic[0] ^= 0xFF;
        assert!(parse_header(&bad_magic).unwrap_err().contains("magic"));
        let mut bad_version = header;
        bad_version[8] = 99;
        assert!(parse_header(&bad_version).unwrap_err().contains("version"));
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = encode_header(2).to_vec();
        buf.extend_from_slice(&encode_frame(1, b"{\"a\":1}"));
        buf.extend_from_slice(&encode_frame(2, b"{\"b\":2}"));
        let FrameParse::Frame { seq, payload, next } = next_frame(&buf, HEADER_LEN) else {
            panic!("first frame must parse");
        };
        assert_eq!((seq, payload), (1, b"{\"a\":1}".as_slice()));
        let FrameParse::Frame { seq, next, .. } = next_frame(&buf, next) else {
            panic!("second frame must parse");
        };
        assert_eq!(seq, 2);
        assert_eq!(next_frame(&buf, next), FrameParse::End);
    }

    #[test]
    fn torn_tail_is_distinguished_from_corruption() {
        let mut buf = encode_header(2).to_vec();
        buf.extend_from_slice(&encode_frame(1, b"{\"a\":1}"));
        let frame2 = encode_frame(2, b"{\"b\":2}");
        let second_at = buf.len();
        buf.extend_from_slice(&frame2[..frame2.len() - 3]); // torn mid-payload

        let FrameParse::Frame { next, .. } = next_frame(&buf, HEADER_LEN) else {
            panic!("intact frame must parse");
        };
        assert!(matches!(
            next_frame(&buf, next),
            FrameParse::TornTail { offset, .. } if offset == second_at
        ));

        // Flip one payload bit of a *complete* frame: corruption, not tear.
        let mut flipped = encode_header(2).to_vec();
        flipped.extend_from_slice(&encode_frame(1, b"{\"a\":1}"));
        let bit = HEADER_LEN + FRAME_OVERHEAD + 2;
        flipped[bit] ^= 0x01;
        assert!(matches!(
            next_frame(&flipped, HEADER_LEN),
            FrameParse::Corrupt { offset: 16, ref detail } if detail.contains("crc mismatch")
        ));
    }

    #[test]
    fn implausible_length_reads_as_corruption() {
        let mut buf = encode_header(2).to_vec();
        let mut frame = encode_frame(1, b"{}");
        frame[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&frame);
        assert!(matches!(
            next_frame(&buf, HEADER_LEN),
            FrameParse::Corrupt { ref detail, .. } if detail.contains("cap")
        ));
    }

    #[test]
    fn crc_binds_the_sequence_number() {
        // Same payload journaled under a different seq must not verify:
        // catches a frame body landing at the wrong log position.
        let frame = encode_frame(5, b"{\"x\":1}");
        let mut buf = encode_header(2).to_vec();
        let mut renumbered = frame;
        renumbered[4..12].copy_from_slice(&6u64.to_le_bytes());
        buf.extend_from_slice(&renumbered);
        assert!(matches!(next_frame(&buf, HEADER_LEN), FrameParse::Corrupt { .. }));
    }
}
