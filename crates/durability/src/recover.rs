//! Crash recovery: load the latest valid checkpoint, replay the journal
//! tail, tolerate a torn final frame, and refuse silently-corrupted
//! acknowledged state.

use crate::error::{DurabilityError, Result};
use crate::frame::{self, FrameParse, HEADER_LEN};
use crate::journal::{CheckpointFile, CHECKPOINT_FILE, WAL_FILE};
use crate::record::JournalRecord;
use cubefit_core::{Placement, PlacementDump};
use cubefit_telemetry::{Recorder, TraceEvent};
use std::fs;
use std::path::Path;

/// The outcome of recovering a journal directory.
#[derive(Debug)]
pub struct RecoveredState {
    /// The reconstructed placement.
    pub placement: Placement,
    /// Replication factor the journal was written for.
    pub gamma: usize,
    /// Sequence number the loaded checkpoint covered (0 = no checkpoint).
    pub checkpoint_seq: u64,
    /// Highest sequence number folded into the recovered state.
    pub last_seq: u64,
    /// Frames replayed from the write-ahead log tail.
    pub frames_replayed: u64,
    /// Whether the log ended with a clean-shutdown seal.
    pub sealed: bool,
    /// Whether an incomplete final frame was discarded.
    pub torn_tail: bool,
    /// Human-readable notes about tolerated anomalies (torn tail,
    /// records after a seal). Empty for a pristine log.
    pub warnings: Vec<String>,
}

impl RecoveredState {
    /// The recovered placement as a dump, for writing out or comparing
    /// bit-for-bit against a live run.
    #[must_use]
    pub fn dump(&self) -> PlacementDump {
        PlacementDump::from_placement(&self.placement)
    }
}

/// Recovers the full journal in `dir`: checkpoint plus every durable
/// frame after it.
///
/// # Errors
///
/// See [`recover_up_to`].
pub fn recover(dir: impl AsRef<Path>) -> Result<RecoveredState> {
    recover_inner(dir.as_ref(), u64::MAX, None)
}

/// [`recover`], emitting a [`TraceEvent::RecoveryReplayed`] event.
///
/// # Errors
///
/// See [`recover_up_to`].
pub fn recover_with(dir: impl AsRef<Path>, recorder: &Recorder) -> Result<RecoveredState> {
    recover_inner(dir.as_ref(), u64::MAX, Some(recorder))
}

/// Recovers only up to sequence number `max_seq` (inclusive) — the state
/// the system had acknowledged at that point. The crash harness uses this
/// to compare a recovered journal against every prefix of a live run.
///
/// # Errors
///
/// - [`DurabilityError::Io`] / [`DurabilityError::BadHeader`] when the
///   log is unreadable or not a journal;
/// - [`DurabilityError::BadCheckpoint`] when the checkpoint file exists
///   but cannot be parsed or rebuilt, or predates γ changes;
/// - [`DurabilityError::CorruptFrame`] when a *complete* frame fails its
///   CRC or the sequence numbers skip — acknowledged state was damaged
///   (a torn final frame is NOT this: it is tolerated with a warning);
/// - [`DurabilityError::BadRecord`] when a checksummed record cannot be
///   deserialized or replayed;
/// - [`DurabilityError::Unsupported`] when `max_seq` predates the
///   checkpoint (the journal no longer holds those frames).
pub fn recover_up_to(dir: impl AsRef<Path>, max_seq: u64) -> Result<RecoveredState> {
    recover_inner(dir.as_ref(), max_seq, None)
}

fn recover_inner(dir: &Path, max_seq: u64, recorder: Option<&Recorder>) -> Result<RecoveredState> {
    let wal_path = dir.join(WAL_FILE);
    let bytes = fs::read(&wal_path).map_err(|e| DurabilityError::io(&wal_path, &e))?;
    let gamma = parse_gamma(&wal_path, &bytes)?;

    let (mut placement, checkpoint_seq) = load_checkpoint(dir, gamma)?;
    if checkpoint_seq > max_seq {
        return Err(DurabilityError::Unsupported {
            detail: format!(
                "cannot recover to seq {max_seq}: the checkpoint already covers seq \
                 {checkpoint_seq} and earlier frames were truncated"
            ),
        });
    }

    let mut state = RecoveredState {
        placement: Placement::new(gamma),
        gamma,
        checkpoint_seq,
        last_seq: checkpoint_seq,
        frames_replayed: 0,
        sealed: false,
        torn_tail: false,
        warnings: Vec::new(),
    };

    let mut pos = HEADER_LEN;
    let mut prev_seq: Option<u64> = None;
    loop {
        match frame::next_frame(&bytes, pos) {
            FrameParse::End => break,
            FrameParse::TornTail { offset, discarded } => {
                state.torn_tail = true;
                state.warnings.push(format!(
                    "torn final frame at byte {offset} ({discarded} bytes discarded) — \
                     expected after a crash mid-append; the unacknowledged suffix is dropped"
                ));
                break;
            }
            FrameParse::Corrupt { offset, detail } => {
                return Err(DurabilityError::CorruptFrame { offset: offset as u64, detail });
            }
            FrameParse::Frame { seq, payload, next } => {
                if let Some(prev) = prev_seq {
                    if seq != prev + 1 {
                        return Err(DurabilityError::CorruptFrame {
                            offset: pos as u64,
                            detail: format!(
                                "sequence jumped from {prev} to {seq}: a frame is missing"
                            ),
                        });
                    }
                }
                prev_seq = Some(seq);
                if seq > max_seq {
                    break;
                }
                if state.sealed {
                    state.warnings.push(format!(
                        "frame seq {seq} follows a seal — appended by a buggy or racing writer"
                    ));
                }
                // Frames at or below the checkpoint seq are already folded
                // into the snapshot (the crash window between writing the
                // checkpoint and truncating the log leaves them behind).
                if seq > checkpoint_seq {
                    let record = decode(seq, payload)?;
                    if record == JournalRecord::Seal {
                        state.sealed = true;
                    } else {
                        record.apply(&mut placement, seq)?;
                        state.frames_replayed += 1;
                    }
                    state.last_seq = seq;
                }
                pos = next;
            }
        }
    }

    state.placement = placement;
    if let Some(recorder) = recorder {
        recorder.emit(|| TraceEvent::RecoveryReplayed {
            checkpoint_seq: state.checkpoint_seq,
            frames_replayed: state.frames_replayed,
            torn_tail: state.torn_tail,
        });
    }
    Ok(state)
}

fn parse_gamma(wal_path: &Path, bytes: &[u8]) -> Result<usize> {
    let gamma = frame::parse_header(bytes).map_err(|detail| DurabilityError::BadHeader {
        path: wal_path.display().to_string(),
        detail,
    })?;
    if gamma < 2 {
        return Err(DurabilityError::BadHeader {
            path: wal_path.display().to_string(),
            detail: format!("header declares γ = {gamma}, below the replication floor of 2"),
        });
    }
    Ok(gamma)
}

fn load_checkpoint(dir: &Path, gamma: usize) -> Result<(Placement, u64)> {
    let path = dir.join(CHECKPOINT_FILE);
    if !path.exists() {
        return Ok((Placement::new(gamma), 0));
    }
    let bad = |detail: String| DurabilityError::BadCheckpoint {
        path: path.display().to_string(),
        detail,
    };
    let json = fs::read_to_string(&path).map_err(|e| DurabilityError::io(&path, &e))?;
    let file: CheckpointFile = serde_json::from_str(&json).map_err(|e| bad(e.to_string()))?;
    if file.dump.gamma != gamma {
        return Err(bad(format!(
            "checkpoint γ = {} does not match the log header's γ = {gamma}",
            file.dump.gamma
        )));
    }
    let placement = file.dump.to_placement().map_err(|e| bad(e.to_string()))?;
    Ok((placement, file.seq))
}

fn decode(seq: u64, payload: &[u8]) -> Result<JournalRecord> {
    JournalRecord::decode(payload).map_err(|detail| DurabilityError::BadRecord { seq, detail })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{FsyncPolicy, Journal};
    use cubefit_core::{BinId, Load, Tenant, TenantId};
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cubefit-recover-tests").join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn dump_json(placement: &Placement) -> String {
        serde_json::to_string(&PlacementDump::from_placement(placement)).unwrap()
    }

    /// Drives a small mutation stream through both a live placement and a
    /// journal, returning (dir, live).
    fn journaled_stream(name: &str, checkpoint_after: Option<usize>) -> (PathBuf, Placement) {
        let dir = tmp_dir(name);
        let journal = Journal::create(&dir, 2, FsyncPolicy::Never).unwrap();
        let mut live = Placement::new(2);
        let a = live.open_bin(None);
        let b = live.open_bin(None);
        let records = [
            JournalRecord::Place { tenant: 1, load: 0.4, servers: vec![0, 1], servers_after: 2 },
            JournalRecord::Place { tenant: 2, load: 0.2, servers: vec![0, 1], servers_after: 2 },
            JournalRecord::UpdateLoad { tenant: 1, load: 0.55 },
            JournalRecord::Remove { tenant: 2 },
        ];
        live.place_tenant(&Tenant::new(TenantId::new(1), Load::new(0.4).unwrap()), &[a, b])
            .unwrap();
        live.place_tenant(&Tenant::new(TenantId::new(2), Load::new(0.2).unwrap()), &[a, b])
            .unwrap();
        journal.append(&records[0]).unwrap();
        journal.append(&records[1]).unwrap();
        if checkpoint_after == Some(2) {
            journal.checkpoint(&live).unwrap();
        }
        live.update_load(TenantId::new(1), 0.55).unwrap();
        journal.append(&records[2]).unwrap();
        live.remove_tenant(TenantId::new(2)).unwrap();
        journal.append(&records[3]).unwrap();
        journal.seal().unwrap();
        (dir, live)
    }

    #[test]
    fn recovers_a_sealed_log_bit_identically() {
        let (dir, live) = journaled_stream("sealed", None);
        let state = recover(&dir).unwrap();
        assert!(state.sealed);
        assert!(!state.torn_tail);
        assert!(state.warnings.is_empty());
        assert_eq!(state.frames_replayed, 4);
        assert_eq!(state.last_seq, 5); // 4 mutations + seal
        assert_eq!(serde_json::to_string(&state.dump()).unwrap(), dump_json(&live));
    }

    #[test]
    fn recovers_through_a_checkpoint() {
        let (dir, live) = journaled_stream("checkpointed", Some(2));
        let state = recover(&dir).unwrap();
        assert_eq!(state.checkpoint_seq, 2);
        assert_eq!(state.frames_replayed, 2, "only the post-checkpoint tail replays");
        assert_eq!(serde_json::to_string(&state.dump()).unwrap(), dump_json(&live));
    }

    #[test]
    fn tolerates_a_torn_tail_with_a_warning() {
        let (dir, _live) = journaled_stream("torn", None);
        let wal = dir.join(WAL_FILE);
        let mut bytes = fs::read(&wal).unwrap();
        // Tear mid-way through the final (seal) frame.
        bytes.truncate(bytes.len() - 3);
        fs::write(&wal, &bytes).unwrap();
        let state = recover(&dir).unwrap();
        assert!(state.torn_tail);
        assert!(!state.sealed, "the seal frame was the torn one");
        assert_eq!(state.frames_replayed, 4);
        assert_eq!(state.warnings.len(), 1);
        assert!(state.warnings[0].contains("torn final frame"), "{}", state.warnings[0]);
    }

    #[test]
    fn mid_log_bit_flip_is_a_typed_corruption_error() {
        let (dir, _live) = journaled_stream("bitflip", None);
        let wal = dir.join(WAL_FILE);
        let mut bytes = fs::read(&wal).unwrap();
        // Flip a payload bit of the FIRST frame — damage in acknowledged
        // territory, not the tail.
        let offset = HEADER_LEN + frame::FRAME_OVERHEAD + 3;
        bytes[offset] ^= 0x40;
        fs::write(&wal, &bytes).unwrap();
        let err = recover(&dir).unwrap_err();
        assert!(
            matches!(err, DurabilityError::CorruptFrame { offset, .. } if offset == HEADER_LEN as u64),
            "{err}"
        );
        assert!(err.to_string().contains(&format!("byte {HEADER_LEN}")));
    }

    #[test]
    fn recover_up_to_reconstructs_each_prefix() {
        let (dir, _live) = journaled_stream("prefix", None);
        let after_one = recover_up_to(&dir, 1).unwrap();
        assert_eq!(after_one.frames_replayed, 1);
        assert_eq!(after_one.placement.tenant_count(), 1);
        let after_two = recover_up_to(&dir, 2).unwrap();
        assert_eq!(after_two.placement.tenant_count(), 2);
        let after_four = recover_up_to(&dir, 4).unwrap();
        assert_eq!(after_four.placement.tenant_count(), 1);
        assert!(!after_four.sealed, "seal is seq 5, past the cap");
    }

    #[test]
    fn recover_up_to_before_the_checkpoint_is_refused() {
        let (dir, _live) = journaled_stream("precheckpoint", Some(2));
        let err = recover_up_to(&dir, 1).unwrap_err();
        assert!(matches!(err, DurabilityError::Unsupported { .. }), "{err}");
    }

    #[test]
    fn sequence_gaps_are_corruption() {
        let (dir, _live) = journaled_stream("gap", None);
        let wal = dir.join(WAL_FILE);
        let bytes = fs::read(&wal).unwrap();
        // Remove the second frame wholesale, splicing first and third.
        let FrameParse::Frame { next: first_end, .. } = frame::next_frame(&bytes, HEADER_LEN)
        else {
            panic!("first frame parses");
        };
        let FrameParse::Frame { next: second_end, .. } = frame::next_frame(&bytes, first_end)
        else {
            panic!("second frame parses");
        };
        let mut spliced = bytes[..first_end].to_vec();
        spliced.extend_from_slice(&bytes[second_end..]);
        fs::write(&wal, &spliced).unwrap();
        let err = recover(&dir).unwrap_err();
        assert!(
            matches!(err, DurabilityError::CorruptFrame { .. })
                && err.to_string().contains("jumped"),
            "{err}"
        );
    }

    #[test]
    fn missing_log_and_foreign_file_are_typed_errors() {
        let dir = tmp_dir("absent");
        assert!(matches!(recover(&dir).unwrap_err(), DurabilityError::Io { .. }));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(WAL_FILE), b"this is not a journal, honest").unwrap();
        assert!(matches!(recover(&dir).unwrap_err(), DurabilityError::BadHeader { .. }));
    }

    #[test]
    fn recovery_emits_a_trace_event() {
        use cubefit_telemetry::{TraceSink, VecSink};
        use std::sync::Arc;
        struct Shared(Arc<VecSink>);
        impl TraceSink for Shared {
            fn record(&self, event: &TraceEvent) {
                self.0.record(event);
            }
        }
        let (dir, _live) = journaled_stream("traced", Some(2));
        let sink = Arc::new(VecSink::new());
        let recorder = Recorder::with_sink(Shared(Arc::clone(&sink)));
        let state = recover_with(&dir, &recorder).unwrap();
        let replayed = sink
            .events()
            .into_iter()
            .find_map(|e| match e {
                TraceEvent::RecoveryReplayed { checkpoint_seq, frames_replayed, torn_tail } => {
                    Some((checkpoint_seq, frames_replayed, torn_tail))
                }
                _ => None,
            })
            .expect("a RecoveryReplayed event");
        assert_eq!(replayed, (state.checkpoint_seq, state.frames_replayed, state.torn_tail));
    }

    #[test]
    fn oracle_accepts_the_recovered_placement() {
        let (dir, _live) = journaled_stream("oracle", None);
        let state = recover(&dir).unwrap();
        let audit = cubefit_core::oracle::audit(&state.placement);
        assert!(audit.is_ok(), "recovered state must be audit-clean: {audit:?}");
        // Consistency: every tenant still holds γ distinct replicas.
        for (_, _, bins) in state.placement.tenants() {
            assert_eq!(bins.len(), 2);
            assert_ne!(bins[0], bins[1]);
        }
        let _ = BinId::new(0); // keep the import honest if assertions above change
    }
}
