//! [`JournaledConsolidator`]: a transparent [`Consolidator`] wrapper that
//! journals every successful mutation before returning it to the caller.
//!
//! Write ordering is journal-**after**-apply, journal-**before**-ack: a
//! mutation that errors is never journaled (the algorithm's fail-fast
//! contract means it left no trace to record), and a mutation whose
//! journal append fails is reported as a durability error even though it
//! applied in memory — the caller must not act on unjournaled state.

use crate::journal::Journal;
use crate::record::{BatchOp, JournalRecord, RecoveryMove};
use cubefit_core::{
    BinId, Consolidator, LoadUpdateOutcome, Placement, PlacementDump, PlacementOutcome,
    RecoveryReport, RemovalOutcome, Result, Tenant, TenantId,
};
use cubefit_telemetry::Recorder;

/// Wraps any consolidator so each acknowledged mutation is durable.
pub struct JournaledConsolidator {
    inner: Box<dyn Consolidator>,
    journal: Journal,
}

impl std::fmt::Debug for JournaledConsolidator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JournaledConsolidator")
            .field("algorithm", &self.inner.name())
            .field("journal_dir", &self.journal.dir())
            .finish()
    }
}

impl JournaledConsolidator {
    /// Wraps `inner` so every mutation appends to `journal` before the
    /// outcome is returned.
    #[must_use]
    pub fn new(inner: Box<dyn Consolidator>, journal: Journal) -> Self {
        JournaledConsolidator { inner, journal }
    }

    /// The shared journal handle (for checkpointing or sealing from the
    /// harness).
    #[must_use]
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Unwraps back into the inner consolidator.
    #[must_use]
    pub fn into_inner(self) -> Box<dyn Consolidator> {
        self.inner
    }

    fn snapshot_fallback(&self, original: cubefit_core::Error) -> cubefit_core::Error {
        // A failed batch leaves its fail-fast prefix applied, but the
        // error path carries no per-op outcomes to journal. Embed a full
        // snapshot so the journal stays truthful, then surface the
        // original error. If even the snapshot cannot be journaled, the
        // durability failure wins — the in-memory state is unackable.
        let dump = PlacementDump::from_placement(self.inner.placement());
        match self.journal.append(&JournalRecord::Snapshot { dump }) {
            Ok(_) => original,
            Err(e) => e.into(),
        }
    }
}

impl Consolidator for JournaledConsolidator {
    fn place(&mut self, tenant: Tenant) -> Result<PlacementOutcome> {
        let load = tenant.load().get();
        let outcome = self.inner.place(tenant)?;
        self.journal.append(&JournalRecord::Place {
            tenant: outcome.tenant.get(),
            load,
            servers: outcome.bins.iter().map(|b| b.index()).collect(),
            servers_after: self.inner.placement().created_bins(),
        })?;
        Ok(outcome)
    }

    fn remove(&mut self, tenant: TenantId) -> Result<RemovalOutcome> {
        let outcome = self.inner.remove(tenant)?;
        self.journal.append(&JournalRecord::Remove { tenant: outcome.tenant.get() })?;
        Ok(outcome)
    }

    fn recover(&mut self, failed: &[BinId]) -> Result<RecoveryReport> {
        // The report carries only counts; reconstruct the actual replica
        // moves by diffing each orphaned tenant's bins across the call.
        // The affected set comes from the failed bins' resident lists —
        // O(orphaned replicas), where a `recovery::orphans` call would
        // rescan every placed tenant on each failure event.
        let placement = self.inner.placement();
        let mut affected: Vec<TenantId> = failed
            .iter()
            .filter(|bin| bin.index() < placement.created_bins())
            .flat_map(|&bin| placement.bin(bin).contents().iter().map(|&(tenant, _)| tenant))
            .collect();
        affected.sort_unstable();
        affected.dedup();
        let before: Vec<(TenantId, Vec<BinId>)> = affected
            .iter()
            .map(|&t| (t, self.inner.placement().tenant_bins(t).unwrap_or(&[]).to_vec()))
            .collect();

        let report = self.inner.recover(failed)?;

        let mut moves = Vec::new();
        let mut diffable = true;
        for (tenant, bins_before) in &before {
            let bins_after = self.inner.placement().tenant_bins(*tenant).unwrap_or(&[]).to_vec();
            let sources: Vec<BinId> =
                bins_before.iter().copied().filter(|b| !bins_after.contains(b)).collect();
            let dests: Vec<BinId> =
                bins_after.iter().copied().filter(|b| !bins_before.contains(b)).collect();
            if sources.len() != dests.len() {
                diffable = false;
                break;
            }
            // Recovery never changes a tenant's replica count, so vacated
            // sources pair 1:1 with fresh destinations; the moves are
            // independent (distinct bins), so the pairing order is free.
            moves.extend(sources.iter().zip(dests.iter()).map(|(from, to)| RecoveryMove {
                tenant: tenant.get(),
                from: from.index(),
                to: to.index(),
            }));
        }
        let record = if diffable {
            JournalRecord::Recover {
                failed: failed.iter().map(|b| b.index()).collect(),
                moves,
                servers_after: self.inner.placement().created_bins(),
            }
        } else {
            // Replica counts changed across recovery — outside the diff
            // model. Journal the full state instead of guessing.
            JournalRecord::Snapshot { dump: PlacementDump::from_placement(self.inner.placement()) }
        };
        self.journal.append(&record)?;
        Ok(report)
    }

    fn update_load(&mut self, tenant: TenantId, new_load: f64) -> Result<LoadUpdateOutcome> {
        let outcome = self.inner.update_load(tenant, new_load)?;
        self.journal.append(&JournalRecord::UpdateLoad {
            tenant: outcome.tenant.get(),
            load: outcome.new_load,
        })?;
        Ok(outcome)
    }

    fn place_batch(&mut self, tenants: Vec<Tenant>) -> Result<Vec<PlacementOutcome>> {
        let loads: Vec<(u64, f64)> =
            tenants.iter().map(|t| (t.id().get(), t.load().get())).collect();
        match self.inner.place_batch(tenants) {
            Ok(outcomes) => {
                let ops = outcomes
                    .iter()
                    .zip(loads.iter())
                    .map(|(outcome, &(_, load))| BatchOp::Place {
                        tenant: outcome.tenant.get(),
                        load,
                        servers: outcome.bins.iter().map(|b| b.index()).collect(),
                    })
                    .collect();
                self.journal.append(&JournalRecord::Batch {
                    ops,
                    servers_after: self.inner.placement().created_bins(),
                })?;
                Ok(outcomes)
            }
            Err(e) => Err(self.snapshot_fallback(e)),
        }
    }

    fn remove_batch(&mut self, tenants: &[TenantId]) -> Result<Vec<RemovalOutcome>> {
        match self.inner.remove_batch(tenants) {
            Ok(outcomes) => {
                let ops = outcomes
                    .iter()
                    .map(|outcome| BatchOp::Remove { tenant: outcome.tenant.get() })
                    .collect();
                self.journal.append(&JournalRecord::Batch {
                    ops,
                    servers_after: self.inner.placement().created_bins(),
                })?;
                Ok(outcomes)
            }
            Err(e) => Err(self.snapshot_fallback(e)),
        }
    }

    fn update_load_batch(&mut self, updates: &[(TenantId, f64)]) -> Result<Vec<LoadUpdateOutcome>> {
        match self.inner.update_load_batch(updates) {
            Ok(outcomes) => {
                let ops = outcomes
                    .iter()
                    .map(|outcome| BatchOp::UpdateLoad {
                        tenant: outcome.tenant.get(),
                        load: outcome.new_load,
                    })
                    .collect();
                self.journal.append(&JournalRecord::Batch {
                    ops,
                    servers_after: self.inner.placement().created_bins(),
                })?;
                Ok(outcomes)
            }
            Err(e) => Err(self.snapshot_fallback(e)),
        }
    }

    fn set_shards(&mut self, shards: usize) {
        self.inner.set_shards(shards);
    }

    fn migrate(&mut self, tenant: TenantId, from: BinId, to: BinId) -> Result<()> {
        self.inner.migrate(tenant, from, to)?;
        self.journal.append(&JournalRecord::Migrate {
            tenant: tenant.get(),
            from: from.index(),
            to: to.index(),
        })?;
        Ok(())
    }

    fn clone_box(&self) -> Box<dyn Consolidator> {
        // Clones back tentative probing (defrag planning, overflow
        // checks): mutations applied to the clone are hypothetical and
        // must NOT reach the journal, so the clone is the bare inner
        // algorithm.
        self.inner.clone_box()
    }

    fn placement(&self) -> &Placement {
        self.inner.placement()
    }

    fn gamma(&self) -> usize {
        self.inner.gamma()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        self.inner.set_recorder(recorder);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::FsyncPolicy;
    use crate::recover::recover;
    use cubefit_baselines::FirstFit;
    use cubefit_core::Load;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cubefit-wrapper-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn journaled(name: &str, gamma: usize) -> JournaledConsolidator {
        let journal = Journal::create(tmp_dir(name), gamma, FsyncPolicy::Never).unwrap();
        JournaledConsolidator::new(Box::new(FirstFit::new(gamma).unwrap()), journal)
    }

    fn dump_json(placement: &Placement) -> String {
        serde_json::to_string(&PlacementDump::from_placement(placement)).unwrap()
    }

    fn tenant(id: u64, load: f64) -> Tenant {
        Tenant::new(TenantId::new(id), Load::new(load).unwrap())
    }

    #[test]
    fn every_primitive_recovers_bit_identically() {
        let mut consolidator = journaled("primitives", 2);
        for id in 1..=6u64 {
            consolidator.place(tenant(id, 0.1 * id as f64)).unwrap();
        }
        consolidator.remove(TenantId::new(3)).unwrap();
        consolidator.update_load(TenantId::new(4), 0.77).unwrap();
        let bins = consolidator.placement().tenant_bins(TenantId::new(1)).unwrap().to_vec();
        let dest = consolidator
            .placement()
            .bins()
            .map(|b| b.id())
            .find(|b| !bins.contains(b))
            .expect("a bin not hosting tenant 1");
        consolidator.migrate(TenantId::new(1), bins[0], dest).unwrap();

        let state = recover(consolidator.journal().dir()).unwrap();
        assert_eq!(
            serde_json::to_string(&state.dump()).unwrap(),
            dump_json(consolidator.placement()),
        );
    }

    #[test]
    fn recovery_mutation_is_journaled_as_moves() {
        let mut consolidator = journaled("recover-op", 2);
        for id in 1..=8u64 {
            consolidator.place(tenant(id, 0.2)).unwrap();
        }
        let failed = vec![BinId::new(0)];
        let report = consolidator.recover(&failed).unwrap();
        assert!(report.replicas_migrated > 0, "bin 0 hosted replicas");
        let state = recover(consolidator.journal().dir()).unwrap();
        assert_eq!(
            serde_json::to_string(&state.dump()).unwrap(),
            dump_json(consolidator.placement()),
        );
    }

    #[test]
    fn batches_are_one_atomic_frame() {
        let mut consolidator = journaled("batch", 2);
        consolidator.place_batch((1..=5).map(|id| tenant(id, 0.15)).collect()).unwrap();
        consolidator
            .update_load_batch(&[(TenantId::new(1), 0.3), (TenantId::new(2), 0.25)])
            .unwrap();
        consolidator.remove_batch(&[TenantId::new(4), TenantId::new(5)]).unwrap();
        assert_eq!(consolidator.journal().last_seq(), 3, "three batches, three frames");
        let state = recover(consolidator.journal().dir()).unwrap();
        assert_eq!(
            serde_json::to_string(&state.dump()).unwrap(),
            dump_json(consolidator.placement()),
        );
    }

    #[test]
    fn failed_mutations_are_not_journaled() {
        let mut consolidator = journaled("failed", 2);
        consolidator.place(tenant(1, 0.4)).unwrap();
        let before = consolidator.journal().last_seq();
        assert!(consolidator.remove(TenantId::new(99)).is_err());
        assert!(consolidator.update_load(TenantId::new(99), 0.5).is_err());
        assert_eq!(consolidator.journal().last_seq(), before, "failures must not journal");
    }

    #[test]
    fn failed_batch_journals_a_snapshot_of_the_applied_prefix() {
        let mut consolidator = journaled("failed-batch", 2);
        consolidator.place(tenant(1, 0.4)).unwrap();
        // Second op fails (tenant 99 unknown); fail-fast leaves the first
        // removal applied.
        let err = consolidator.remove_batch(&[TenantId::new(1), TenantId::new(99)]);
        assert!(err.is_err());
        let state = recover(consolidator.journal().dir()).unwrap();
        assert_eq!(
            serde_json::to_string(&state.dump()).unwrap(),
            dump_json(consolidator.placement()),
            "the snapshot frame must capture the fail-fast prefix"
        );
    }

    #[test]
    fn clones_do_not_journal() {
        let mut consolidator = journaled("clones", 2);
        consolidator.place(tenant(1, 0.4)).unwrap();
        let before = consolidator.journal().last_seq();
        let mut probe = consolidator.clone_box();
        probe.place(tenant(2, 0.3)).unwrap();
        assert_eq!(
            consolidator.journal().last_seq(),
            before,
            "tentative probe mutations must not reach the journal"
        );
    }
}
