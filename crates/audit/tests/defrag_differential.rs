//! Defrag differential suite: fragment every algorithm's placement with
//! departure-heavy churn, then plan and apply a defragmentation round and
//! check each migration against the from-scratch oracle.
//!
//! The churn suite (`churn_differential.rs`) covers `remove`/`recover`;
//! this suite targets the *migration* path added by the defrag engine —
//! [`Consolidator::migrate`] must re-key every derived index, each planned
//! step must satisfy [`move_feasible`] in the state it executes in, the
//! placement must hold the γ−1 reserve after **every** step, and a defrag
//! round must never increase the open-bin count.

use cubefit_audit::{algorithms, audited_algorithms};
use cubefit_core::recovery::move_feasible;
use cubefit_core::{BinId, Consolidator, Load, Oracle, Tenant, TenantId};
use cubefit_defrag::{apply, apply_economic, plan, plan_economic, DefragPlan, MigrationBudget};
use cubefit_economics::{CostModel, LeaseLedger, LeaseTerms, MigrationPricing};
use cubefit_telemetry::Recorder;
use proptest::prelude::*;

/// RFI only promises a single-failure reserve, so it is the one algorithm
/// allowed to produce non-robust placements for `γ > 2`.
fn must_be_robust(name: &str, gamma: usize) -> bool {
    name != "rfi" || gamma == 2
}

/// Self-contained LCG so the op interleaving is a pure function of the
/// proptest-drawn seed (the shim draws only scalars, not op sequences).
struct OpRng(u64);

impl OpRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }

    fn unit(&mut self) -> f64 {
        (self.next() % (1u64 << 53)) as f64 / (1u64 << 53) as f64
    }
}

/// Fragments `algo`: `arrivals` seeded placements followed by removing
/// roughly 40% of the tenants, which strands low-fill servers.
fn fragment(algo: &mut dyn Consolidator, arrivals: usize, seed: u64, max_load: f64) {
    let mut rng = OpRng(seed | 1);
    let mut alive: Vec<TenantId> = Vec::new();
    for id in 0..arrivals as u64 {
        let load = (rng.unit() * max_load).max(1e-4);
        let tenant = Tenant::new(TenantId::new(id), Load::new(load).unwrap());
        algo.place(tenant).expect("arrivals must place");
        alive.push(tenant.id());
    }
    let departures = (arrivals * 2) / 5;
    for _ in 0..departures.min(alive.len().saturating_sub(1)) {
        let idx = rng.below(alive.len());
        algo.remove(alive.swap_remove(idx)).expect("alive tenants must be removable");
    }
}

/// Draws a migration budget from the seed: unlimited, move-capped, or
/// load-capped, so all three budget paths see proptest coverage.
fn budget_for(seed: u64) -> MigrationBudget {
    match seed % 3 {
        0 => MigrationBudget::unlimited(),
        1 => MigrationBudget::moves(8 + (seed % 24) as usize),
        _ => MigrationBudget::load(0.5 + (seed % 8) as f64 * 0.5),
    }
}

/// A lease ledger with every currently open bin rented, advanced to
/// `now_ms` on one-minute billing blocks at the reference hourly rate —
/// short blocks with a long horizon make stranded servers genuinely
/// worth draining, so economic plans have real work to validate.
fn costed_ledger(algo: &dyn Consolidator, now_ms: u64) -> LeaseLedger {
    let terms = LeaseTerms::new(60_000, CostModel::with_hourly_usd(0.822));
    let mut ledger = LeaseLedger::new(terms);
    let open: Vec<BinId> =
        algo.placement().bins().filter(|b| b.level() > 0.0).map(|b| b.id()).collect();
    ledger.advance(now_ms, open);
    ledger
}

/// Replays `algo`'s defrag plan step by step, asserting the Theorem-1
/// migration predicate, the γ−1 reserve, and monotone open-bin count after
/// every single move — then checks the final state against the oracle.
fn defrag_stepwise(algo: &mut dyn Consolidator, budget: MigrationBudget, expect_robust: bool) {
    let defrag = plan(algo.placement(), budget);
    replay_stepwise(algo, &defrag, expect_robust);
}

/// The stepwise replay shared by the bin-count and cost-objective suites.
fn replay_stepwise(algo: &mut dyn Consolidator, defrag: &DefragPlan, expect_robust: bool) {
    let mut open_bins = algo.placement().fragmentation().open_bins;
    for (index, step) in defrag.steps.iter().enumerate() {
        assert!(
            move_feasible(algo.placement(), step.tenant, step.from, step.to),
            "{}: step {index} of the plan is infeasible in the state it executes in",
            algo.name()
        );
        algo.migrate(step.tenant, step.from, step.to).expect("feasible migrations must apply");
        if expect_robust {
            assert!(
                algo.placement().is_robust(),
                "{}: placement lost the γ−1 reserve after defrag step {index}",
                algo.name()
            );
        }
        let now_open = algo.placement().fragmentation().open_bins;
        assert!(
            now_open <= open_bins,
            "{}: defrag step {index} increased open bins ({open_bins} -> {now_open})",
            algo.name()
        );
        open_bins = now_open;
    }
    assert_eq!(
        algo.placement().fragmentation().open_bins,
        defrag.open_bins_after,
        "{}: plan's predicted open-bin count diverged from replay",
        algo.name()
    );
    let oracle = Oracle::rebuild(algo.placement());
    assert_eq!(
        algo.placement().is_robust(),
        oracle.is_robust(),
        "{}: robustness verdict diverged after defrag",
        algo.name()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Paper-range replication: every algorithm's fragmented placement can
    /// be defragmented step-by-robust-step under any budget flavor, with
    /// bookkeeping audited against the oracle after every migration.
    #[test]
    fn defrag_is_stepwise_robust_at_paper_gammas(
        gamma in 2usize..=3,
        arrivals in 20usize..70,
        seed in any::<u64>(),
    ) {
        for mut algo in audited_algorithms(gamma, seed) {
            let expect_robust = must_be_robust(algo.name(), gamma);
            fragment(&mut algo, arrivals, seed, 1.0);
            defrag_stepwise(&mut algo, budget_for(seed), expect_robust);
        }
    }

    /// Dense small-load fragmentation at the top of the γ range — migration
    /// re-keying walks the same wide-sibling shared-load paths where
    /// fixed-size fast-path buffers used to truncate silently.
    #[test]
    fn large_gamma_defrag_stays_sound(
        gamma in 10usize..=16,
        arrivals in 15usize..50,
        seed in any::<u64>(),
    ) {
        for mut algo in audited_algorithms(gamma, seed) {
            let expect_robust = must_be_robust(algo.name(), gamma);
            fragment(&mut algo, arrivals, seed, 0.12);
            defrag_stepwise(&mut algo, budget_for(seed), expect_robust);
        }
    }

    /// Cost-objective plans replay under the identical safety story —
    /// every step feasible in the state it executes in, γ−1 reserve after
    /// every move, monotone open bins, oracle agreement at the end — and
    /// the attached forecast must balance (net = rent − migration) and
    /// never be negative, because unprofitable drains are skipped, not
    /// committed.
    #[test]
    fn economic_defrag_is_stepwise_robust_at_paper_gammas(
        gamma in 2usize..=3,
        arrivals in 20usize..70,
        seed in any::<u64>(),
    ) {
        let horizon_ms = 600_000 + (seed % 5) * 600_000;
        for mut algo in audited_algorithms(gamma, seed) {
            let expect_robust = must_be_robust(algo.name(), gamma);
            fragment(&mut algo, arrivals, seed, 1.0);
            let ledger = costed_ledger(&algo, (seed % 7) * 20_000);
            let defrag = plan_economic(
                algo.placement(),
                budget_for(seed),
                &ledger,
                &MigrationPricing::reference(),
                horizon_ms,
            );
            let forecast = defrag.economics.expect("economic plans carry a forecast");
            prop_assert!(
                forecast.net_usd >= 0.0,
                "{}: committed drains must be profitable", algo.name()
            );
            prop_assert!(
                (forecast.rent_saved_usd - forecast.migration_usd - forecast.net_usd).abs()
                    < 1e-9,
                "{}: forecast must balance", algo.name()
            );
            replay_stepwise(&mut algo, &defrag, expect_robust);
        }
    }

    /// Remove→re-add cycles neither break robustness nor leak bins: after
    /// departures and equivalent re-arrivals the departed tenants are fully
    /// gone, every survivor holds exactly γ replicas, and an unlimited
    /// defrag round brings the open-bin count back to within one server of
    /// the pre-cycle count (the cycle's fragmentation is recoverable, not
    /// permanently leaked capacity).
    #[test]
    fn remove_then_readd_cycle_does_not_leak_bins(
        gamma in 2usize..=3,
        loads in prop::collection::vec(0.02f64..0.6, 8..40),
        seed in any::<u64>(),
    ) {
        for mut algo in algorithms(gamma, seed) {
            let mut rng = OpRng(seed | 1);
            for (i, &load) in loads.iter().enumerate() {
                let tenant = Tenant::new(TenantId::new(i as u64), Load::new(load).unwrap());
                algo.place(tenant).unwrap();
            }
            // Remove a random half, then re-add tenants with the same loads
            // under fresh ids.
            let mut alive: Vec<usize> = (0..loads.len()).collect();
            let mut removed_loads: Vec<f64> = Vec::new();
            for _ in 0..loads.len() / 2 {
                let idx = rng.below(alive.len());
                let victim = alive.swap_remove(idx);
                removed_loads.push(loads[victim]);
                algo.remove(TenantId::new(victim as u64)).unwrap();
                prop_assert!(
                    algo.placement().tenant_bins(TenantId::new(victim as u64)).is_none(),
                    "{}: departed tenant still placed", algo.name()
                );
            }
            for (j, &load) in removed_loads.iter().enumerate() {
                let id = TenantId::new((loads.len() + j) as u64);
                algo.place(Tenant::new(id, Load::new(load).unwrap())).unwrap();
                prop_assert_eq!(
                    algo.placement().tenant_bins(id).map(<[_]>::len),
                    Some(gamma),
                    "{}: re-added tenant not fully replicated", algo.name()
                );
            }
            if must_be_robust(algo.name(), gamma) {
                prop_assert!(
                    algo.placement().is_robust(),
                    "{}: remove/re-add cycle broke the γ−1 reserve", algo.name()
                );
            }
            // Defrag must be able to recover the cycle's fragmentation.
            let open_before_defrag = algo.placement().fragmentation().open_bins;
            let defrag = plan(algo.placement(), MigrationBudget::unlimited());
            let outcome = apply(&mut *algo, &defrag, &Recorder::disabled()).unwrap();
            prop_assert!(!outcome.aborted, "{}: fresh plan may not abort", algo.name());
            prop_assert!(
                algo.placement().fragmentation().open_bins <= open_before_defrag,
                "{}: defrag increased open bins after a remove/re-add cycle", algo.name()
            );
        }
    }
}

/// Deterministic regression: an economic plan applied fresh (nothing
/// drifted between plan and apply) settles exactly — the predicted net
/// saving matches the ledger-realized net within floating-point
/// tolerance, for every audited algorithm on the pinned fragmented seed.
#[test]
fn fresh_economic_plan_settles_predicted_against_ledger_realized() {
    let horizon_ms = 3_600_000;
    for mut algo in audited_algorithms(2, 17) {
        fragment(&mut algo, 60, 17, 1.0);
        let ledger = costed_ledger(&algo, 45_000);
        let pricing = MigrationPricing::reference();
        let defrag = plan_economic(
            algo.placement(),
            MigrationBudget::moves(64),
            &ledger,
            &pricing,
            horizon_ms,
        );
        assert!(
            defrag.servers_closed() >= 1,
            "{}: pinned seed must leave profitable drains on 1-minute blocks",
            algo.name()
        );
        let outcome = apply_economic(&mut algo, &defrag, &ledger, &pricing, &Recorder::disabled())
            .expect("fresh plans apply");
        assert!(!outcome.aborted, "{}", algo.name());
        let econ = outcome.economics.expect("economic applies settle accounting");
        assert!(
            (econ.predicted_net_usd - econ.realized_net_usd).abs() < 1e-9,
            "{}: fresh apply must realize exactly what it predicted ({} vs {})",
            algo.name(),
            econ.predicted_net_usd,
            econ.realized_net_usd
        );
        assert!(econ.realized_net_usd > 0.0, "{}: the drains must pay for themselves", algo.name());
        assert!(algo.placement().is_robust(), "{}", algo.name());
        let oracle = Oracle::rebuild(algo.placement());
        assert!(oracle.is_robust(), "{}: oracle must confirm the post-apply reserve", algo.name());
    }
}

/// Deterministic regression: an economic plan made stale between plan and
/// apply rolls back atomically — every rollback migration replays through
/// the auditing oracle, the placement ends robust, and the settled
/// accounting realizes exactly zero on both sides.
#[test]
fn stale_economic_plan_rolls_back_and_realizes_nothing() {
    for mut algo in audited_algorithms(2, 17) {
        fragment(&mut algo, 60, 17, 1.0);
        let ledger = costed_ledger(&algo, 45_000);
        let pricing = MigrationPricing::reference();
        let defrag = plan_economic(
            algo.placement(),
            MigrationBudget::moves(64),
            &ledger,
            &pricing,
            3_600_000,
        );
        assert!(defrag.steps.len() >= 2, "{}: need a multi-step plan", algo.name());
        // Remove the last step's tenant after planning: the feasibility
        // re-check fails mid-plan and the rollback path runs — with the
        // audited consolidator checking every inverse migration too.
        let victim = defrag.steps.last().unwrap().tenant;
        algo.remove(victim).expect("planned tenants are alive");
        let levels_before: Vec<f64> = algo.placement().bins().map(|b| b.level()).collect();
        let outcome = apply_economic(&mut algo, &defrag, &ledger, &pricing, &Recorder::disabled())
            .expect("stale plans abort, not error");
        assert!(outcome.aborted, "{}", algo.name());
        assert_eq!(outcome.applied_steps, 0, "{}", algo.name());
        let econ = outcome.economics.expect("aborted applies still settle");
        assert_eq!(econ.realized_rent_saved_usd, 0.0, "{}", algo.name());
        assert_eq!(econ.realized_migration_usd, 0.0, "{}", algo.name());
        assert_eq!(econ.realized_net_usd, 0.0, "{}", algo.name());
        let levels_after: Vec<f64> = algo.placement().bins().map(|b| b.level()).collect();
        for (a, b) in levels_before.iter().zip(&levels_after) {
            assert!((a - b).abs() < 1e-12, "{}: rollback must restore levels", algo.name());
        }
        assert!(algo.placement().is_robust(), "{}", algo.name());
        let oracle = Oracle::rebuild(algo.placement());
        assert!(oracle.is_robust(), "{}: oracle must confirm the rollback", algo.name());
    }
}

/// Deterministic regression pinning a fragmented seed: CubeFit at γ = 2
/// after 60 arrivals and 24 departures strands enough low-fill servers that
/// a finite-budget defrag closes at least one of them, and the executor's
/// outcome matches the plan it was handed.
#[test]
fn pinned_fragmented_seed_closes_a_server_under_finite_budget() {
    for mut algo in audited_algorithms(2, 17) {
        fragment(&mut algo, 60, 17, 1.0);
        let before = algo.placement().fragmentation();
        let defrag = plan(algo.placement(), MigrationBudget::moves(64));
        assert!(
            defrag.servers_closed() >= 1,
            "{}: pinned seed no longer fragments into a closable state",
            algo.name()
        );
        let outcome = apply(&mut algo, &defrag, &Recorder::disabled()).unwrap();
        assert!(!outcome.aborted, "{}", algo.name());
        assert_eq!(outcome.applied_steps, defrag.steps.len(), "{}", algo.name());
        assert_eq!(outcome.servers_closed, defrag.servers_closed(), "{}", algo.name());
        let after = algo.placement().fragmentation();
        assert_eq!(after.open_bins, before.open_bins - outcome.servers_closed, "{}", algo.name());
        assert!(after.fragmentation_ratio <= before.fragmentation_ratio, "{}", algo.name());
        assert!(algo.placement().is_robust(), "{}", algo.name());
    }
}
