//! Recovery differential suite: crash-safe durability against the oracle.
//!
//! Every algorithm runs a seeded *mixed* mutation stream (arrivals,
//! departures, load updates, migrations, failure/recovery events) behind a
//! [`JournaledConsolidator`], snapshotting the live [`PlacementDump`]
//! after every acknowledged mutation. The suite then treats **every**
//! journal sequence number as a crash point: `recover_up_to(dir, seq)`
//! must reconstruct the snapshot byte-for-byte (serialized JSON equality)
//! and pass the from-scratch oracle. A checkpointed variant proves the
//! same through a checkpoint + tail replay.
//!
//! Two pinned regression fixtures cover the byte-level failure modes: a
//! torn final frame (tolerated, rewound to the last durable frame) and a
//! mid-log bit flip (refused with a typed error naming the byte offset).

use cubefit_audit::algorithms;
use cubefit_core::{oracle, BinId, Consolidator, Load, PlacementDump, Tenant, TenantId};
use cubefit_durability::{
    recover, recover_up_to, FsyncPolicy, Journal, JournaledConsolidator, WAL_FILE,
};
use proptest::prelude::*;
use std::path::PathBuf;

/// The replication factors the suite sweeps: the paper's γ=2 and γ=3,
/// plus a deep-replication stress point.
const GAMMAS: &[usize] = &[2, 3, 12];

/// Self-contained LCG so the op interleaving is a pure function of the
/// seed (the proptest shim draws only scalars, not op sequences).
struct OpRng(u64);

impl OpRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }

    fn unit(&mut self) -> f64 {
        (self.next() % (1u64 << 53)) as f64 / (1u64 << 53) as f64
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cubefit-recovery-differential").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dump_json(algo: &dyn Consolidator) -> String {
    serde_json::to_string(&PlacementDump::from_placement(algo.placement()))
        .expect("dumps serialize")
}

/// Drives `ops` seeded mixed mutations through `algo` (already wrapped in
/// a [`JournaledConsolidator`]), returning `(seq, dump)` snapshots taken
/// after every acknowledged mutation. Op mix: ~10% failure/recovery
/// events, ~10% migrations, ~15% load updates, ~20% departures, the rest
/// arrivals.
fn journaled_stream(
    algo: &mut JournaledConsolidator,
    journal: &Journal,
    ops: usize,
    seed: u64,
    base_id: u64,
) -> Vec<(u64, String)> {
    let mut rng = OpRng(seed | 1);
    let mut alive: Vec<TenantId> = Vec::new();
    let mut next_id = base_id;
    let gamma = algo.gamma();
    let mut snapshots = Vec::with_capacity(ops);
    for _ in 0..ops {
        let roll = rng.below(100);
        let loaded: Vec<BinId> =
            algo.placement().bins().filter(|b| b.level() > 0.0).map(|b| b.id()).collect();
        if roll < 10 && !loaded.is_empty() {
            let cap = (gamma - 1).min(loaded.len()).min(3);
            let count = 1 + rng.below(cap);
            let mut pool = loaded;
            let mut failed = Vec::with_capacity(count);
            for _ in 0..count {
                failed.push(pool.swap_remove(rng.below(pool.len())));
            }
            algo.recover(&failed).expect("recovery must succeed");
        } else if roll < 20 && !alive.is_empty() {
            // Migrate one replica of a live tenant to a bin not hosting it.
            let tenant = alive[rng.below(alive.len())];
            let hosts: Vec<BinId> =
                algo.placement().tenant_bins(tenant).map(<[BinId]>::to_vec).unwrap_or_default();
            let spare: Vec<BinId> =
                algo.placement().bins().map(|b| b.id()).filter(|id| !hosts.contains(id)).collect();
            if hosts.is_empty() || spare.is_empty() {
                continue;
            }
            let from = hosts[rng.below(hosts.len())];
            let to = spare[rng.below(spare.len())];
            if algo.migrate(tenant, from, to).is_err() {
                continue; // a refused move is not journaled; nothing to snapshot
            }
        } else if roll < 35 && !alive.is_empty() {
            let tenant = alive[rng.below(alive.len())];
            let load = (rng.unit() * 0.9).max(1e-4);
            algo.update_load(tenant, load).expect("live tenants must update");
        } else if roll < 55 && !alive.is_empty() {
            let idx = rng.below(alive.len());
            let tenant = alive.swap_remove(idx);
            algo.remove(tenant).expect("alive tenants must be removable");
        } else {
            let load = (rng.unit() * 0.6).max(1e-4);
            let tenant = Tenant::new(TenantId::new(next_id), Load::new(load).unwrap());
            next_id += 1;
            algo.place(tenant).expect("arrivals must place");
            alive.push(tenant.id());
        }
        snapshots.push((journal.last_seq(), dump_json(algo)));
    }
    snapshots
}

/// Runs the stream for one algorithm and asserts every journal prefix —
/// every possible crash point — recovers byte-identically and
/// oracle-clean.
fn assert_every_crash_point_recovers(
    inner: Box<dyn Consolidator>,
    dir: &PathBuf,
    ops: usize,
    seed: u64,
) {
    let gamma = inner.gamma();
    let journal = Journal::create(dir, gamma, FsyncPolicy::Never).expect("journal creates");
    let mut algo = JournaledConsolidator::new(inner, journal.clone());
    let name = algo.name().to_owned();
    let mut snapshots = journaled_stream(&mut algo, &journal, ops, seed, 0);
    // The live run is gone after this (simulated kill: no seal).
    drop(algo);
    snapshots.dedup_by_key(|(seq, _)| *seq);
    for (seq, expected) in &snapshots {
        let state = recover_up_to(dir, *seq)
            .unwrap_or_else(|e| panic!("{name}: recovery at seq {seq} failed: {e}"));
        assert_eq!(
            &serde_json::to_string(&state.dump()).expect("dumps serialize"),
            expected,
            "{name}: crash at seq {seq} did not recover bit-identically"
        );
        assert!(
            oracle::audit(&state.placement).is_ok(),
            "{name}: recovered state at seq {seq} fails the oracle"
        );
    }
}

/// The checkpointed variant: run a stream, checkpoint, run more, then
/// verify every post-checkpoint crash point recovers through the
/// checkpoint + journal tail.
fn assert_checkpointed_recovery(
    inner: Box<dyn Consolidator>,
    dir: &PathBuf,
    ops: usize,
    seed: u64,
) {
    let gamma = inner.gamma();
    let journal = Journal::create(dir, gamma, FsyncPolicy::Never).expect("journal creates");
    let mut algo = JournaledConsolidator::new(inner, journal.clone());
    let name = algo.name().to_owned();
    let head = journaled_stream(&mut algo, &journal, ops, seed, 0);
    let info = journal.checkpoint(algo.placement()).expect("checkpoint succeeds");
    let tail = journaled_stream(&mut algo, &journal, ops / 2, seed ^ 0x9e37, 1_000_000);
    drop(algo);
    let checkpoint_dump = head.last().expect("head is non-empty").1.clone();
    // Crash exactly at the checkpoint: nothing to replay.
    let state = recover_up_to(dir, info.seq).expect("recovery at the checkpoint");
    assert_eq!(
        serde_json::to_string(&state.dump()).unwrap(),
        checkpoint_dump,
        "{name}: checkpoint alone must reproduce the state it captured"
    );
    assert_eq!(state.frames_replayed, 0, "{name}: no frames precede the checkpoint");
    // Every later crash point replays the tail on top of the checkpoint.
    let mut tail = tail;
    tail.dedup_by_key(|(seq, _)| *seq);
    for (seq, expected) in &tail {
        let state = recover_up_to(dir, *seq)
            .unwrap_or_else(|e| panic!("{name}: tail recovery at seq {seq} failed: {e}"));
        assert_eq!(state.checkpoint_seq, info.seq, "{name}: recovery must start at the checkpoint");
        assert_eq!(
            &serde_json::to_string(&state.dump()).unwrap(),
            expected,
            "{name}: post-checkpoint crash at seq {seq} did not recover bit-identically"
        );
        assert!(
            oracle::audit(&state.placement).is_ok(),
            "{name}: recovered state at seq {seq} fails the oracle"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every algorithm × every crash point: a journaled mixed mutation
    /// stream recovers byte-identically and oracle-clean from any prefix.
    #[test]
    fn every_crash_point_recovers_bit_identically(
        gamma_idx in 0usize..3,
        ops in 25usize..60,
        seed in any::<u64>(),
    ) {
        let gamma = GAMMAS[gamma_idx];
        for (idx, inner) in algorithms(gamma, seed).into_iter().enumerate() {
            let dir = scratch(&format!("plain-g{gamma}-a{idx}-{seed:x}"));
            assert_every_crash_point_recovers(inner, &dir, ops, seed);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    /// The same property through a mid-stream checkpoint: recovery composes
    /// the checkpoint with the journal tail.
    #[test]
    fn crash_points_after_a_checkpoint_recover(
        gamma_idx in 0usize..3,
        ops in 20usize..40,
        seed in any::<u64>(),
    ) {
        let gamma = GAMMAS[gamma_idx];
        for (idx, inner) in algorithms(gamma, seed).into_iter().enumerate() {
            let dir = scratch(&format!("ckpt-g{gamma}-a{idx}-{seed:x}"));
            assert_checkpointed_recovery(inner, &dir, ops, seed);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Pinned regression: a torn final frame (half the last frame's bytes
/// missing, the classic power-cut artefact) is tolerated — recovery warns,
/// discards the tear, and lands exactly on the previous durable state.
#[test]
fn pinned_torn_tail_rewinds_to_the_last_durable_frame() {
    let dir = scratch("pinned-torn");
    let journal = Journal::create(&dir, 2, FsyncPolicy::Never).unwrap();
    let inner = algorithms(2, 7).remove(0); // cubefit
    let mut algo = JournaledConsolidator::new(inner, journal.clone());
    let snapshots = journaled_stream(&mut algo, &journal, 30, 7, 0);
    drop(algo);
    let wal = dir.join(WAL_FILE);
    let bytes = std::fs::read(&wal).unwrap();
    // Tear the last frame in half. Frames are length-prefixed, so walk the
    // framing to find where the final frame starts.
    let mut pos = 16; // header
    let mut last_start = pos;
    while pos + 16 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let next = pos + 16 + len;
        if next > bytes.len() {
            break;
        }
        last_start = pos;
        pos = next;
    }
    std::fs::write(&wal, &bytes[..last_start + (bytes.len() - last_start) / 2]).unwrap();

    let state = recover(&dir).unwrap();
    assert!(state.torn_tail, "the tear must be reported");
    assert!(!state.warnings.is_empty(), "torn tails warn");
    let (expected_seq, expected_dump) = &snapshots[snapshots.len() - 2];
    assert_eq!(state.last_seq, *expected_seq);
    assert_eq!(&serde_json::to_string(&state.dump()).unwrap(), expected_dump);
    assert!(oracle::audit(&state.placement).is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Pinned regression: a single flipped bit mid-log is *not* silently
/// replayed — recovery refuses with a typed error naming the byte offset
/// of the corrupt frame.
#[test]
fn pinned_bit_flip_is_refused_with_the_byte_offset() {
    let dir = scratch("pinned-flip");
    let journal = Journal::create(&dir, 3, FsyncPolicy::Never).unwrap();
    let inner = algorithms(3, 11).remove(0);
    let mut algo = JournaledConsolidator::new(inner, journal.clone());
    journaled_stream(&mut algo, &journal, 25, 11, 0);
    drop(algo);
    let wal = dir.join(WAL_FILE);
    let mut bytes = std::fs::read(&wal).unwrap();
    let mid = 16 + (bytes.len() - 16) / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&wal, bytes).unwrap();

    let err = recover(&dir).expect_err("a mid-log flip must be refused");
    let message = err.to_string();
    assert!(message.contains("corrupt journal frame at byte"), "{message}");
    let _ = std::fs::remove_dir_all(&dir);
}
