//! Drift differential suite: tenant loads change *in place* via
//! [`Consolidator::update_load`], and every piece of incremental
//! bookkeeping — levels, pairwise shared loads, fragmentation statistics,
//! the monitor's violated set — must keep agreeing with a from-scratch
//! oracle recompute.
//!
//! The churn suite covers `remove`/`recover` and the defrag suite covers
//! `migrate`; this suite targets the *re-estimation* path added by the
//! drift engine, plus the mitigation planner's graceful-degradation
//! contract: a drifted placement that provably violates Theorem 1 must be
//! fully repaired under a sufficient migration budget, and under an
//! insufficient one the planner must not panic and its [`ResidualRisk`]
//! must name exactly the servers the validity oracle still flags.

use cubefit_audit::audited_algorithms;
use cubefit_core::monitor::{classify, DEFAULT_AT_RISK_SLACK};
use cubefit_core::{
    validity, AuditedConsolidator, BinId, Consolidator, CubeFit, CubeFitConfig, FragmentationStats,
    Load, Oracle, Placement, Tenant, TenantId, EPSILON,
};
use cubefit_defrag::{apply_mitigation, plan_mitigation, plan_mitigation_with, MigrationBudget};
use cubefit_telemetry::Recorder;
use cubefit_workload::{DriftEngine, DriftProfile, LoadModel};
use proptest::prelude::*;
use std::collections::HashMap;

/// Self-contained LCG so the op interleaving is a pure function of the
/// proptest-drawn seed (the shim draws only scalars, not op sequences).
struct OpRng(u64);

impl OpRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }

    fn unit(&mut self) -> f64 {
        (self.next() % (1u64 << 53)) as f64 / (1u64 << 53) as f64
    }
}

/// Recomputes [`Placement::fragmentation`] from first principles: walk the
/// tenant records, accrue `load/γ` per hosting bin, and apply the
/// documented formulas to the from-scratch levels.
fn fragmentation_oracle(placement: &Placement) -> FragmentationStats {
    let gamma = placement.gamma() as f64;
    let mut levels: HashMap<BinId, f64> = HashMap::new();
    let mut total_load = 0.0;
    for (_, load, bins) in placement.tenants() {
        total_load += load;
        for &bin in bins {
            *levels.entry(bin).or_insert(0.0) += load / gamma;
        }
    }
    let mut fills: Vec<f64> = levels.values().copied().collect();
    fills.sort_by(f64::total_cmp);
    let open_bins = fills.len();
    let mean_fill = if open_bins == 0 { 0.0 } else { total_load / open_bins as f64 };
    let p10_fill = if open_bins == 0 {
        0.0
    } else {
        let rank = ((open_bins as f64) * 0.10).ceil().max(1.0) as usize;
        fills[rank - 1]
    };
    let floor = total_load.ceil().max(1.0);
    let fragmentation_ratio = if open_bins == 0 { 1.0 } else { open_bins as f64 / floor };
    FragmentationStats { open_bins, total_load, mean_fill, p10_fill, fragmentation_ratio }
}

fn assert_fragmentation_matches(placement: &Placement, context: &str) {
    let incremental = placement.fragmentation();
    let reference = fragmentation_oracle(placement);
    assert_eq!(incremental.open_bins, reference.open_bins, "{context}: open_bins");
    for (label, a, b) in [
        ("total_load", incremental.total_load, reference.total_load),
        ("mean_fill", incremental.mean_fill, reference.mean_fill),
        ("p10_fill", incremental.p10_fill, reference.p10_fill),
        ("fragmentation_ratio", incremental.fragmentation_ratio, reference.fragmentation_ratio),
    ] {
        assert!((a - b).abs() < 1e-9, "{context}: {label} diverged ({a} vs {b})");
    }
}

/// Drives one algorithm through a seeded arrive/depart/update_load mix.
/// The [`AuditedConsolidator`] wrapper replays levels and shared loads
/// against the oracle after every single op; this driver layers the
/// fragmentation-statistics and robustness-verdict cross-checks on top.
fn drift_mix(algo: &mut dyn Consolidator, ops: usize, seed: u64) {
    let mut rng = OpRng(seed | 1);
    let mut alive: Vec<TenantId> = Vec::new();
    let mut next_id = 0u64;
    for op in 0..ops {
        let roll = rng.below(100);
        if roll < 30 && !alive.is_empty() {
            // Drift one alive tenant to a fresh load in (0, 1].
            let tenant = alive[rng.below(alive.len())];
            let new_load = rng.unit().max(1e-4);
            let outcome = algo.update_load(tenant, new_load).expect("alive tenants re-estimate");
            assert_eq!(outcome.tenant, tenant);
            assert!((outcome.new_load - new_load).abs() < EPSILON);
            assert_eq!(
                algo.placement().tenant_load(tenant),
                Some(new_load),
                "{}: update_load did not stick at op {op}",
                algo.name()
            );
        } else if roll < 50 && alive.len() > 1 {
            let tenant = alive.swap_remove(rng.below(alive.len()));
            algo.remove(tenant).expect("alive tenants depart");
        } else {
            let load = rng.unit().max(1e-4);
            let tenant = Tenant::new(TenantId::new(next_id), Load::new(load).unwrap());
            next_id += 1;
            algo.place(tenant).expect("arrivals place");
            alive.push(tenant.id());
        }
    }
    assert_fragmentation_matches(algo.placement(), algo.name());
    let oracle = Oracle::rebuild(algo.placement());
    assert_eq!(
        algo.placement().is_robust(),
        oracle.is_robust(),
        "{}: robustness verdict diverged after a drift mix",
        algo.name()
    );
    // The monitor's violated set is exactly the validity oracle's.
    let monitor = classify(algo.placement());
    let mut flagged: Vec<BinId> = monitor.violated.iter().map(|&(bin, _)| bin).collect();
    flagged.sort_unstable();
    let mut reference: Vec<BinId> =
        validity::check(algo.placement()).violations.iter().map(|v| v.bin).collect();
    reference.sort_unstable();
    assert_eq!(flagged, reference, "{}: monitor and validity oracle disagree", algo.name());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every algorithm's incremental bookkeeping survives arbitrary
    /// arrive/depart/update_load interleavings at the paper's replication
    /// range, audited against the oracle after every op.
    #[test]
    fn drift_mixes_stay_oracle_consistent_at_paper_gammas(
        gamma in 2usize..=3,
        ops in 30usize..120,
        seed in any::<u64>(),
    ) {
        for mut algo in audited_algorithms(gamma, seed) {
            drift_mix(&mut algo, ops, seed);
        }
    }

    /// Wide-sibling regime: at large γ an update touches γ bins and
    /// γ·(γ−1) shared-load entries per event — the paths where fixed-size
    /// buffers used to truncate silently.
    #[test]
    fn large_gamma_drift_stays_sound(
        gamma in 10usize..=16,
        ops in 20usize..60,
        seed in any::<u64>(),
    ) {
        for mut algo in audited_algorithms(gamma, seed) {
            drift_mix(&mut algo, ops, seed);
        }
    }

    /// Fragmentation statistics agree with the from-scratch recompute
    /// after arbitrary arrive/depart/migrate/update_load sequences driven
    /// directly against a raw [`Placement`].
    #[test]
    fn fragmentation_stats_match_oracle_recompute(
        gamma in 2usize..=4,
        ops in 20usize..100,
        seed in any::<u64>(),
    ) {
        let mut placement = Placement::new(gamma);
        let mut rng = OpRng(seed | 1);
        let mut alive: Vec<TenantId> = Vec::new();
        let mut next_id = 0u64;
        for op in 0..ops {
            let roll = rng.below(100);
            if roll < 20 && !alive.is_empty() {
                let tenant = alive[rng.below(alive.len())];
                placement.update_load(tenant, rng.unit().max(1e-4)).unwrap();
            } else if roll < 35 && !alive.is_empty() {
                let tenant = alive.swap_remove(rng.below(alive.len()));
                placement.remove_tenant(tenant).unwrap();
            } else if roll < 50 && !alive.is_empty() {
                // Migrate one replica of a random tenant to a fresh bin.
                let tenant = alive[rng.below(alive.len())];
                let bins = placement.tenant_bins(tenant).unwrap().to_vec();
                let from = bins[rng.below(bins.len())];
                let to = placement.open_bin(None);
                placement.move_replica(tenant, from, to).unwrap();
            } else {
                let tenant =
                    Tenant::new(TenantId::new(next_id), Load::new(rng.unit().max(1e-4)).unwrap());
                next_id += 1;
                let bins: Vec<BinId> = (0..gamma).map(|_| placement.open_bin(None)).collect();
                placement.place_tenant(&tenant, &bins).unwrap();
                alive.push(tenant.id());
            }
            if op % 10 == 0 {
                assert_fragmentation_matches(&placement, "mid-sequence");
            }
        }
        assert_fragmentation_matches(&placement, "final");
    }
}

/// The pinned drift scenario: γ = 2 CubeFit, twelve 0.3-load tenants plus
/// spare servers (created by placing and removing heavy tenants), then a
/// deterministic flash crowd drives tenants 0–3 from 0.3 to 0.9 through
/// the audited `update_load` path.
fn drifted_scenario() -> AuditedConsolidator<Box<dyn Consolidator>> {
    let config = CubeFitConfig::builder().replication(2).classes(5).build().unwrap();
    let mut algo: AuditedConsolidator<Box<dyn Consolidator>> =
        AuditedConsolidator::new(Box::new(CubeFit::new(config)));
    for id in 0..12u64 {
        algo.place(Tenant::new(TenantId::new(id), Load::new(0.3).unwrap())).unwrap();
    }
    // Open headroom the mitigation planner may drain into, then free it.
    for id in 100..108u64 {
        algo.place(Tenant::new(TenantId::new(id), Load::new(0.9).unwrap())).unwrap();
    }
    for id in 100..108u64 {
        algo.remove(TenantId::new(id)).unwrap();
    }
    assert!(algo.placement().is_robust(), "the scenario starts robust");

    // A burst of +6 clients on a normalized 10-client model maps 0.3 → 0.9
    // deterministically (probability 1.0 fires on the first step).
    let mut engine = DriftEngine::new(
        LoadModel::normalized(10),
        DriftProfile::Burst { magnitude: 6, probability: 1.0 },
        1,
    );
    for id in 0..4u64 {
        engine.track(TenantId::new(id), 3);
    }
    let updates = engine.step();
    assert_eq!(updates.len(), 4, "all four tracked tenants burst");
    for update in updates {
        assert!((update.load - 0.9).abs() < EPSILON);
        algo.update_load(update.tenant, update.load).unwrap();
    }
    algo
}

/// Unmitigated drift provably violates Theorem 1 — confirmed by the
/// incremental check, the from-scratch oracle, and the validity report.
#[test]
fn pinned_drift_scenario_violates_theorem_1_unmitigated() {
    let algo = drifted_scenario();
    assert!(!algo.placement().is_robust());
    assert!(!Oracle::rebuild(algo.placement()).is_robust(), "oracle confirms the violation");
    let report = validity::check(algo.placement());
    assert!(!report.is_robust());
    assert!(report.worst_margin < -EPSILON);
    let monitor = classify(algo.placement());
    assert!(!monitor.violated.is_empty());
}

/// With a sufficient budget, an audited mitigation pass (every migration
/// replayed against the oracle) leaves zero violated servers.
#[test]
fn sufficient_budget_mitigation_clears_every_violation() {
    let mut algo = drifted_scenario();
    let plan = plan_mitigation(algo.placement(), MigrationBudget::unlimited());
    assert!(!plan.is_empty());
    let outcome = apply_mitigation(&mut algo, &plan, &Recorder::disabled()).unwrap();
    assert!(!outcome.aborted);
    assert!(outcome.residual.violated.is_empty(), "residual: {:?}", outcome.residual);
    assert_eq!(classify(algo.placement()).violated.len(), 0);
    assert!(algo.placement().is_robust());
    assert!(Oracle::rebuild(algo.placement()).is_robust(), "oracle confirms the cure");
    assert!(validity::check(algo.placement()).is_robust());
}

/// With an insufficient budget the planner degrades gracefully: no panic,
/// and the reported residual names exactly the servers the validity oracle
/// still flags as violated after the partial repair.
#[test]
fn insufficient_budget_residual_matches_the_oracle_exactly() {
    for moves in [0usize, 1, 2] {
        let mut algo = drifted_scenario();
        let plan = plan_mitigation_with(
            algo.placement(),
            MigrationBudget::moves(moves),
            DEFAULT_AT_RISK_SLACK,
        );
        assert!(plan.steps.len() <= moves, "budget of {moves} moves exceeded");
        let outcome = apply_mitigation(&mut algo, &plan, &Recorder::disabled()).unwrap();
        assert!(!outcome.aborted);

        let mut residual: Vec<BinId> =
            outcome.residual.violated.iter().map(|&(bin, _)| bin).collect();
        residual.sort_unstable();
        let mut reference: Vec<BinId> =
            validity::check(algo.placement()).violations.iter().map(|v| v.bin).collect();
        reference.sort_unstable();
        assert_eq!(
            residual, reference,
            "budget {moves}: residual risk must match the oracle's violated set"
        );
        assert!(!residual.is_empty(), "budget {moves} cannot fully repair the pinned scenario");
    }
}
