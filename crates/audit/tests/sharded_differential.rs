//! Differential proptest suite for the sharded placement backend and the
//! batch mutation API.
//!
//! Two equivalence contracts, each checked across all seven algorithms:
//!
//! 1. **Sharded == single-backend.** A consolidator switched to an
//!    `N`-shard backend (`N ∈ {1, 2, 4, 8}`) before any ops must produce a
//!    bit-identical placement (same [`PlacementDump`], same robustness
//!    verdict) for the same mixed place/remove/update-load stream as the
//!    default single backend. The sharded run must additionally pass the
//!    parallel oracle audit and per-shard reconciliation.
//! 2. **Batch == sequential.** `place_batch` / `update_load_batch` /
//!    `remove_batch` must leave exactly the state a hand-written per-op
//!    loop leaves.

use cubefit_audit::algorithms;
use cubefit_core::{oracle, Consolidator, Load, PlacementDump, Tenant, TenantId};
use proptest::prelude::*;

/// One step of a mixed mutation stream. Indices are resolved against the
/// set of currently-live tenants at apply time, so every generated stream
/// is valid by construction.
#[derive(Debug, Clone)]
enum Op {
    Place(f64),
    Remove(usize),
    Update(usize, f64),
}

fn load_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![0.0001f64..=1.0, Just(1.0), Just(0.5), Just(1.0 / 3.0), 0.001f64..0.1,]
}

/// Raw op encoding: `(selector, load, index)`. Selectors 0–2 are places
/// (weighting the stream 3:1:1 toward growth), 3 removes, 4 updates.
fn op_strategy() -> impl Strategy<Value = (usize, f64, usize)> {
    (0usize..5, load_strategy(), any::<usize>())
}

fn decode_ops(raw: &[(usize, f64, usize)]) -> Vec<Op> {
    raw.iter()
        .map(|&(selector, load, index)| match selector {
            0..=2 => Op::Place(load),
            3 => Op::Remove(index),
            _ => Op::Update(index, load),
        })
        .collect()
}

fn gamma_strategy() -> impl Strategy<Value = usize> {
    prop_oneof![Just(2), Just(3), Just(12)]
}

/// Drives `ops` through `algo`, resolving remove/update indices against the
/// live-tenant set. Deterministic: two algorithm instances fed the same
/// stream perform the exact same sequence of placement-substrate calls.
fn apply_ops(algo: &mut dyn Consolidator, ops: &[Op]) {
    let mut live: Vec<TenantId> = Vec::new();
    let mut next_id = 0u64;
    for op in ops {
        match op {
            Op::Place(load) => {
                let tenant = Tenant::new(TenantId::new(next_id), Load::new(*load).unwrap());
                next_id += 1;
                algo.place(tenant).unwrap();
                live.push(TenantId::new(next_id - 1));
            }
            Op::Remove(index) => {
                if !live.is_empty() {
                    let tenant = live.remove(index % live.len());
                    algo.remove(tenant).unwrap();
                }
            }
            Op::Update(index, load) => {
                if !live.is_empty() {
                    let tenant = live[index % live.len()];
                    algo.update_load(tenant, *load).unwrap();
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every algorithm produces a bit-identical placement on sharded
    /// backends, and the sharded state passes reconciliation plus the
    /// parallel oracle audit.
    #[test]
    fn sharded_backend_matches_single(
        raw_ops in prop::collection::vec(op_strategy(), 1..28),
        gamma in gamma_strategy(),
        seed in any::<u64>(),
    ) {
        let ops = decode_ops(&raw_ops);
        for baseline in algorithms(gamma, seed) {
            let name = baseline.name();
            let mut single = baseline;
            apply_ops(single.as_mut(), &ops);
            let expected_dump = PlacementDump::from_placement(single.placement());
            let expected_robust = single.placement().is_robust();

            for shards in [1usize, 2, 4, 8] {
                let mut sharded = algorithms(gamma, seed)
                    .into_iter()
                    .find(|a| a.name() == name)
                    .expect("algorithm present in registry");
                sharded.set_shards(shards);
                apply_ops(sharded.as_mut(), &ops);

                let dump = PlacementDump::from_placement(sharded.placement());
                prop_assert_eq!(
                    &dump, &expected_dump,
                    "{} at gamma {} with {} shard(s): placement diverged",
                    name, gamma, shards
                );
                prop_assert_eq!(
                    sharded.placement().is_robust(), expected_robust,
                    "{} at gamma {} with {} shard(s): robustness verdict diverged",
                    name, gamma, shards
                );
                let audit = oracle::audit_sharded(sharded.placement(), 4);
                prop_assert!(
                    audit.is_ok(),
                    "{} at gamma {} with {} shard(s): {}",
                    name, gamma, shards,
                    audit.err().map(|e| e.to_string()).unwrap_or_default()
                );
            }
        }
    }

    /// The batch mutation API is state-equivalent to per-op loops for every
    /// algorithm, on both single and sharded backends.
    #[test]
    fn batch_apis_match_sequential_loops(
        loads in prop::collection::vec(load_strategy(), 4..24),
        updates in prop::collection::vec(load_strategy(), 1..8),
        gamma in gamma_strategy(),
        seed in any::<u64>(),
        shards in prop_oneof![Just(0usize), Just(4)],
    ) {
        let tenants: Vec<Tenant> = loads
            .iter()
            .enumerate()
            .map(|(i, &l)| Tenant::new(TenantId::new(i as u64), Load::new(l).unwrap()))
            .collect();
        // Update the first `updates.len()` tenants, remove every third one.
        let update_ops: Vec<(TenantId, f64)> = updates
            .iter()
            .enumerate()
            .map(|(i, &l)| (TenantId::new((i % loads.len()) as u64), l))
            .collect();
        let removals: Vec<TenantId> = (0..loads.len())
            .step_by(3)
            .map(|i| TenantId::new(i as u64))
            .collect();

        for baseline in algorithms(gamma, seed) {
            let name = baseline.name();
            let mut sequential = baseline;
            if shards > 0 {
                sequential.set_shards(shards);
            }
            for t in tenants.clone() {
                sequential.place(t).unwrap();
            }
            for &(tenant, load) in &update_ops {
                sequential.update_load(tenant, load).unwrap();
            }
            for &tenant in &removals {
                sequential.remove(tenant).unwrap();
            }

            let mut batched = algorithms(gamma, seed)
                .into_iter()
                .find(|a| a.name() == name)
                .expect("algorithm present in registry");
            if shards > 0 {
                batched.set_shards(shards);
            }
            let outcomes = batched.place_batch(tenants.clone()).unwrap();
            prop_assert_eq!(outcomes.len(), tenants.len());
            // Duplicate update targets deliberately stay in the stream:
            // they exercise the second-touch path of the deferred re-key
            // bookkeeping (RFI's first-touch slack capture in particular).
            batched.update_load_batch(&update_ops).unwrap();
            batched.remove_batch(&removals).unwrap();

            prop_assert_eq!(
                PlacementDump::from_placement(batched.placement()),
                PlacementDump::from_placement(sequential.placement()),
                "{} at gamma {} ({} shards): batch APIs diverged from sequential loops",
                name, gamma, shards
            );
            prop_assert_eq!(
                batched.placement().is_robust(),
                sequential.placement().is_robust()
            );
        }
    }
}

/// Deterministic smoke: a 60-op interleaved stream at γ = 12 across 8
/// shards matches the single backend exactly and passes both per-shard
/// reconciliation and the parallel oracle audit. (Failure recovery under
/// churn is covered separately by `churn_differential`.)
#[test]
fn gamma_twelve_sharded_interleaved_regression() {
    let ops: Vec<Op> = (0..60)
        .map(|i| match i % 5 {
            0..=2 => Op::Place(0.01 + (i as f64 % 13.0) * 0.05),
            3 => Op::Update(i / 2, 0.2),
            _ => Op::Remove(i / 3),
        })
        .collect();
    for baseline in algorithms(12, 7) {
        let name = baseline.name();
        let mut single = baseline;
        apply_ops(single.as_mut(), &ops);
        let expected = PlacementDump::from_placement(single.placement());
        let mut sharded = algorithms(12, 7).into_iter().find(|a| a.name() == name).unwrap();
        sharded.set_shards(8);
        apply_ops(sharded.as_mut(), &ops);
        assert_eq!(
            PlacementDump::from_placement(sharded.placement()),
            expected,
            "{name}: sharded placement diverged"
        );
        if let Some(failure) = sharded.placement().reconcile_shards().first() {
            panic!("{name}: reconcile failure: {failure}");
        }
        oracle::audit_sharded(sharded.placement(), 8).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}
