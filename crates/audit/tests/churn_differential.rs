//! Churn differential suite: random interleavings of arrivals, departures
//! and failure/recovery events through every algorithm, cross-checked
//! against the from-scratch oracle.
//!
//! The placement-time suite (`differential.rs`) catches bookkeeping drift
//! on the grow-only path; this suite targets the *mutating* paths added by
//! the churn engine — [`Consolidator::remove`] must unwind levels, shared
//! loads and every derived index, and [`Consolidator::recover`] must
//! re-home orphans through the same robustness predicate placement uses.
//! Each algorithm runs inside [`cubefit_core::AuditedConsolidator`], which
//! replays removals and recoveries against the oracle unconditionally and
//! asserts failed servers end up empty.

use cubefit_audit::{algorithms, audited_algorithms};
use cubefit_core::oracle::AUDIT_TOLERANCE;
use cubefit_core::{BinId, Consolidator, Load, Oracle, Tenant, TenantId};
use proptest::prelude::*;

/// RFI only promises a single-failure reserve, so it is the one algorithm
/// allowed to produce non-robust placements for `γ > 2`.
fn must_be_robust(name: &str, gamma: usize) -> bool {
    name != "rfi" || gamma == 2
}

/// Self-contained LCG so the op interleaving is a pure function of the
/// proptest-drawn seed (the shim draws only scalars, not op sequences).
struct OpRng(u64);

impl OpRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }

    fn unit(&mut self) -> f64 {
        (self.next() % (1u64 << 53)) as f64 / (1u64 << 53) as f64
    }
}

/// Drives `ops` seeded operations through `algo`: ~15% failure/recovery
/// events (1..=γ−1 loaded servers each), ~30% departures, the rest
/// arrivals with loads in `(0, max_load]`.
///
/// With `expect_robust`, the γ−1 reserve is asserted after *every*
/// operation — recovery runs to completion inside each failure event, so
/// the placement must never be caught non-robust between ops (this is the
/// regression net for the perturbed-cube bug, where an unchecked stage-2
/// slot assignment after a recovery silently broke Theorem 1).
fn churn(algo: &mut dyn Consolidator, ops: usize, seed: u64, max_load: f64, expect_robust: bool) {
    let mut rng = OpRng(seed | 1);
    let mut alive: Vec<TenantId> = Vec::new();
    let mut next_id = 0u64;
    let gamma = algo.gamma();
    for _ in 0..ops {
        let roll = rng.below(100);
        let loaded: Vec<BinId> =
            algo.placement().bins().filter(|b| b.level() > 0.0).map(|b| b.id()).collect();
        if roll < 15 && !loaded.is_empty() {
            let cap = (gamma - 1).min(loaded.len()).min(3);
            let count = 1 + rng.below(cap);
            let mut pool = loaded;
            let mut failed = Vec::with_capacity(count);
            for _ in 0..count {
                failed.push(pool.swap_remove(rng.below(pool.len())));
            }
            let report = algo.recover(&failed).expect("recovery must succeed");
            let expected: usize = failed.len(); // every failed bin was loaded
            assert!(
                report.replicas_migrated >= expected.min(1),
                "{}: failed {} loaded bins but migrated {} replicas",
                algo.name(),
                failed.len(),
                report.replicas_migrated
            );
        } else if roll < 45 && !alive.is_empty() {
            let idx = rng.below(alive.len());
            let tenant = alive.swap_remove(idx);
            algo.remove(tenant).expect("alive tenants must be removable");
        } else {
            let load = (rng.unit() * max_load).max(1e-4);
            let tenant = Tenant::new(TenantId::new(next_id), Load::new(load).unwrap());
            next_id += 1;
            algo.place(tenant).expect("arrivals must place");
            alive.push(tenant.id());
        }
        if expect_robust {
            assert!(
                algo.placement().is_robust(),
                "{}: placement lost the γ−1 reserve mid-churn",
                algo.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Interleaved churn at the paper's replication factors: bookkeeping
    /// stays oracle-consistent through every mutation, and every algorithm
    /// that reserves for `γ − 1` failures is robust whenever no failure is
    /// outstanding (recovery runs to completion inside each event).
    #[test]
    fn interleaved_churn_agrees_with_oracle(
        gamma in 2usize..=3,
        ops in 20usize..90,
        seed in any::<u64>(),
    ) {
        for mut algo in audited_algorithms(gamma, seed) {
            let expect_robust = must_be_robust(algo.name(), gamma);
            churn(&mut algo, ops, seed, 1.0, expect_robust);
            let oracle = Oracle::rebuild(algo.placement());
            prop_assert_eq!(
                algo.placement().is_robust(),
                oracle.is_robust(),
                "{} at gamma {}: robustness verdict diverged after churn",
                algo.name(),
                gamma
            );
            if must_be_robust(algo.name(), gamma) {
                prop_assert!(
                    algo.placement().is_robust(),
                    "{} at gamma {}: churn broke the γ−1 reserve (margin {})",
                    algo.name(),
                    gamma,
                    oracle.worst_margin()
                );
            }
        }
    }

    /// Dense small-load churn at the top of the γ range — removals and
    /// recoveries exercise the same wide-sibling paths where fixed-size
    /// fast-path buffers used to truncate silently.
    #[test]
    fn large_gamma_churn_stays_sound(
        gamma in 10usize..=16,
        ops in 15usize..60,
        seed in any::<u64>(),
    ) {
        for mut algo in audited_algorithms(gamma, seed) {
            let expect_robust = must_be_robust(algo.name(), gamma);
            churn(&mut algo, ops, seed, 0.12, expect_robust);
            let oracle = Oracle::rebuild(algo.placement());
            prop_assert_eq!(algo.placement().is_robust(), oracle.is_robust());
            if must_be_robust(algo.name(), gamma) {
                prop_assert!(algo.placement().is_robust(), "{}", algo.name());
            }
        }
    }

    /// The removal path alone, checked without the audited wrapper: after
    /// any arrive/depart sequence the incremental levels, pairwise shared
    /// loads and cached failover reserves match a from-scratch oracle
    /// rebuild within `AUDIT_TOLERANCE` (1e-9).
    #[test]
    fn arrive_depart_matches_oracle_rebuild(
        loads in prop::collection::vec(0.001f64..1.0, 2..40),
        gamma in 2usize..=6,
        seed in any::<u64>(),
    ) {
        for mut algo in algorithms(gamma, seed) {
            let mut rng = OpRng(seed | 1);
            let mut alive: Vec<TenantId> = Vec::new();
            for (i, &load) in loads.iter().enumerate() {
                let tenant = Tenant::new(TenantId::new(i as u64), Load::new(load).unwrap());
                algo.place(tenant).unwrap();
                alive.push(tenant.id());
                if rng.below(100) < 35 {
                    let idx = rng.below(alive.len());
                    algo.remove(alive.swap_remove(idx)).unwrap();
                }
            }
            let placement = algo.placement();
            let oracle = Oracle::rebuild(placement);
            let bins: Vec<BinId> = placement.bins().map(|b| b.id()).collect();
            for &bin in &bins {
                prop_assert!(
                    (placement.level(bin) - oracle.level(bin)).abs() <= AUDIT_TOLERANCE,
                    "{}: level of bin {} drifted after departures",
                    algo.name(),
                    bin.index()
                );
                prop_assert!(
                    (placement.worst_failover(bin) - oracle.worst_failover(bin)).abs()
                        <= AUDIT_TOLERANCE,
                    "{}: failover reserve of bin {} drifted after departures",
                    algo.name(),
                    bin.index()
                );
            }
            for (i, &a) in bins.iter().enumerate() {
                for &b in &bins[i + 1..] {
                    prop_assert!(
                        (placement.shared_load(a, b) - oracle.shared_load(a, b)).abs()
                            <= AUDIT_TOLERANCE,
                        "{}: shared load ({}, {}) drifted after departures",
                        algo.name(),
                        a.index(),
                        b.index()
                    );
                }
            }
        }
    }
}

/// Deterministic γ = 2 churn regression: departures that empty servers must
/// leave them reusable, and a recovery immediately after a departure must
/// not resurrect the departed tenant's shared loads.
#[test]
fn depart_then_recover_does_not_resurrect_shared_load() {
    for mut algo in audited_algorithms(2, 5) {
        for id in 0..12u64 {
            algo.place(Tenant::new(TenantId::new(id), Load::new(0.3).unwrap())).unwrap();
        }
        for id in [1u64, 4, 7] {
            algo.remove(TenantId::new(id)).unwrap();
        }
        let victim =
            algo.placement().bins().find(|b| b.level() > 0.0).map(|b| b.id()).expect("loaded bin");
        algo.recover(&[victim]).unwrap();
        assert_eq!(algo.placement().level(victim), 0.0, "{}", algo.name());
        let oracle = Oracle::rebuild(algo.placement());
        assert_eq!(algo.placement().is_robust(), oracle.is_robust(), "{}", algo.name());
        assert!(algo.placement().is_robust(), "{}", algo.name());
        // The departed tenants stay gone.
        for id in [1u64, 4, 7] {
            assert!(algo.placement().tenant_bins(TenantId::new(id)).is_none());
        }
    }
}
