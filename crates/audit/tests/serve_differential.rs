//! Service-loop differential suite: every mutation the
//! [`cubefit_service::PlacementService`] admits — under queueing,
//! shedding, deadline expiry, and the audit degradation ladder — must
//! leave a placement the from-scratch oracle reproduces exactly.
//!
//! The churn suite covers the consolidator's mutating paths directly;
//! this one covers the *service wrapper*: admission control must only
//! ever drop whole requests (never half-apply one), so whatever subset
//! of the offered stream gets admitted, the resulting placement is
//! indistinguishable from replaying that subset from scratch.

use cubefit_core::{oracle, Consolidator, CubeFit, CubeFitConfig, Load, Tenant, TenantId};
use cubefit_service::{PlacementService, Request, ServiceConfig};
use cubefit_sim::serve::{run_serve, ServeConfig};
use cubefit_telemetry::Recorder;
use proptest::prelude::*;

fn cubefit(gamma: usize, classes: usize) -> Box<dyn Consolidator> {
    Box::new(CubeFit::new(
        CubeFitConfig::builder().replication(gamma).classes(classes).build().unwrap(),
    ))
}

/// Self-contained LCG (the proptest shim draws scalars, not sequences).
struct OpRng(u64);

impl OpRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }

    fn unit(&mut self) -> f64 {
        (self.next() % (1u64 << 53)) as f64 / (1u64 << 53) as f64
    }
}

/// Drives `ops` seeded requests through a service under pressure (small
/// queue, tight limiter window) so a healthy share gets shed or expires,
/// then checks the surviving placement against the oracle.
fn drive(seed: u64, ops: usize, deadline_ms: f64) {
    let config = ServiceConfig {
        limiter: cubefit_service::LimiterSpec::aimd(2, 8),
        queue_capacity: 8,
        batch_max: 4,
        deadline_ms,
        ..ServiceConfig::default()
    };
    let mut service = PlacementService::new(cubefit(2, 5), config, Recorder::disabled()).unwrap();
    let mut rng = OpRng(seed | 1);
    // A tenant is only a valid Remove/UpdateLoad target once its Place
    // COMPLETED (same pool semantics as the DES harness): a queued Place
    // may still be shed by expiry, and executing a Remove for a tenant
    // that was never placed is a caller error, not a service one.
    let mut pending_place: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut alive: Vec<u64> = Vec::new();
    let mut next_id = 0u64;
    let mut now_ms = 0.0f64;
    let serve_step = |service: &mut PlacementService,
                      now_ms: &mut f64,
                      rng: &mut OpRng,
                      pending_place: &mut std::collections::HashMap<u64, u64>,
                      alive: &mut Vec<u64>| {
        let work = service.start_batch(*now_ms).unwrap();
        for id in &work.expired {
            pending_place.remove(id);
        }
        if work.ops > 0 {
            *now_ms += 1.0 + 10.0 * rng.unit();
            for op in service.complete_batch(*now_ms) {
                if let Some(tenant) = pending_place.remove(&op.id) {
                    alive.push(tenant);
                }
            }
        }
    };
    for op in 0..ops {
        // Periodic same-instant burst past the queue capacity, so every
        // seed exercises the rejection paths.
        let offers = if op % 31 == 0 { 12 } else { 1 };
        for _ in 0..offers {
            let roll = rng.below(100);
            let request = if roll < 30 && !alive.is_empty() {
                Request::Remove(TenantId::new(alive.swap_remove(rng.below(alive.len()))))
            } else if roll < 50 && !alive.is_empty() {
                let id = alive[rng.below(alive.len())];
                Request::UpdateLoad(TenantId::new(id), 0.05 + 0.9 * rng.unit())
            } else {
                next_id += 1;
                Request::Place(Tenant::new(
                    TenantId::new(next_id),
                    Load::new(0.05 + 0.9 * rng.unit()).unwrap(),
                ))
            };
            let placing = matches!(request, Request::Place(_));
            if let Ok(id) = service.offer(request, now_ms) {
                if placing {
                    pending_place.insert(id, next_id);
                }
            }
        }
        // Irregular service cadence: sometimes the worker lags so the
        // queue builds (and deadlines fire), sometimes it keeps up.
        if !service.busy() && rng.below(100) < 60 {
            serve_step(&mut service, &mut now_ms, &mut rng, &mut pending_place, &mut alive);
        }
        now_ms += rng.unit();
        assert!(service.accounting_balanced(), "accounting drifted at t={now_ms:.2}");
    }
    // Drain whatever is still queued.
    while service.queue_depth() > 0 || service.busy() {
        serve_step(&mut service, &mut now_ms, &mut rng, &mut pending_place, &mut alive);
        now_ms += 5.0;
    }
    let stats = service.stats();
    assert!(service.accounting_balanced(), "final accounting must balance: {stats:?}");
    assert!(stats.rejected() > 0, "pressure profile should reject something (seed {seed})");

    let placement = service.dump().to_placement().expect("dump rebuilds");
    oracle::audit(&placement).unwrap_or_else(|divergences| {
        panic!("admitted mutations diverge from the oracle (seed {seed}): {divergences:?}")
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever subset of a random request stream survives admission
    /// control, the placement replays clean from scratch.
    #[test]
    fn admitted_subset_always_replays_clean(seed in 0u64..1_000_000, ops in 100usize..400) {
        drive(seed, ops, 50.0);
    }

    /// Same contract with deadlines so tight that queued requests expire
    /// at dequeue — expiry must also drop whole requests only.
    #[test]
    fn deadline_expiry_never_half_applies(seed in 0u64..1_000_000) {
        drive(seed, 250, 2.0);
    }
}

/// End-to-end: the DES harness's storm profile — shedding, ladder moves,
/// drain — ends in a placement the oracle reproduces, for several seeds.
#[test]
fn storm_runs_end_oracle_clean_across_seeds() {
    for seed in [1u64, 7, 23] {
        let mut config = ServeConfig::bench(seed, true);
        config.horizon_ms = 3_000.0;
        config.storm = config.storm.map(|mut s| {
            s.start_ms = 750.0;
            s.duration_ms = 1_500.0;
            s
        });
        let run = run_serve(config).expect("serve runs");
        assert_eq!(run.report.audit_divergences, 0, "seed {seed}");
        assert_eq!(
            run.report.offered,
            run.report.completed
                + run.report.shed
                + run.report.queue_full
                + run.report.deadline_expired,
            "offered must decompose exactly (seed {seed})"
        );
        let placement = run.dump.to_placement().expect("dump rebuilds");
        oracle::audit(&placement)
            .unwrap_or_else(|d| panic!("seed {seed}: storm run diverged: {d:?}"));
    }
}
