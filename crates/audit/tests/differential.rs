//! Differential proptest suite: random tenant streams through every
//! algorithm, for replication factors up to 16, each placement
//! cross-checked against the from-scratch oracle.
//!
//! Three detection channels:
//!
//! 1. [`AuditedConsolidator`] panics mid-stream if the incremental
//!    bookkeeping (levels, shared loads, cached failover reserves) drifts
//!    from the oracle's recomputation;
//! 2. the final `Placement::is_robust()` verdict must agree with
//!    [`Oracle::is_robust`];
//! 3. algorithms that reserve for `γ − 1` failures must actually end up
//!    robust — the channel that catches *decision-path* truncation, where
//!    the bookkeeping is consistent but a feasibility check dropped
//!    siblings and accepted an unsound assignment.

use cubefit_audit::audited_algorithms;
use cubefit_core::{Consolidator, Load, Oracle, Tenant, TenantId};
use proptest::prelude::*;

fn tenants(loads: &[f64]) -> Vec<Tenant> {
    loads
        .iter()
        .enumerate()
        .map(|(i, &l)| Tenant::new(TenantId::new(i as u64), Load::new(l).unwrap()))
        .collect()
}

fn load_strategy() -> impl Strategy<Value = f64> {
    // Full (0, 1] range with boundary-ish spikes, plus a band of small
    // loads so large-γ streams pack many tenants per bin.
    prop_oneof![0.0001f64..=1.0, Just(1.0), Just(0.5), Just(1.0 / 3.0), 0.001f64..0.1,]
}

/// RFI only promises a single-failure reserve, so it is the one algorithm
/// allowed to produce non-robust placements for `γ > 2`.
fn must_be_robust(name: &str, gamma: usize) -> bool {
    name != "rfi" || gamma == 2
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Incremental bookkeeping and final robustness verdicts agree with
    /// the oracle for every algorithm across the whole γ range.
    #[test]
    fn incremental_agrees_with_oracle_for_all_algorithms(
        loads in prop::collection::vec(load_strategy(), 1..28),
        gamma in 2usize..=16,
        seed in any::<u64>(),
    ) {
        for mut algo in audited_algorithms(gamma, seed) {
            // The audit inside `place` panics with a replayable trace on
            // any bookkeeping divergence.
            for t in tenants(&loads) {
                algo.place(t).unwrap();
            }
            let placement = algo.placement();
            let oracle = Oracle::rebuild(placement);
            prop_assert_eq!(
                placement.is_robust(),
                oracle.is_robust(),
                "{} at gamma {}: incremental robustness verdict diverged",
                algo.name(),
                gamma
            );
            if must_be_robust(algo.name(), gamma) {
                prop_assert!(
                    placement.is_robust(),
                    "{} at gamma {}: γ−1 reserve violated (margin {})",
                    algo.name(),
                    gamma,
                    oracle.worst_margin()
                );
            }
        }
    }

    /// Dense small-load streams at the top of the γ range — the regime
    /// where the old 8/12-entry fast-path buffers truncated.
    #[test]
    fn large_gamma_dense_streams_stay_sound(
        loads in prop::collection::vec(0.005f64..0.12, 4..40),
        gamma in 10usize..=16,
        seed in any::<u64>(),
    ) {
        for mut algo in audited_algorithms(gamma, seed) {
            for t in tenants(&loads) {
                algo.place(t).unwrap();
            }
            let oracle = Oracle::rebuild(algo.placement());
            prop_assert_eq!(algo.placement().is_robust(), oracle.is_robust());
            if must_be_robust(algo.name(), gamma) {
                prop_assert!(algo.placement().is_robust(), "{}", algo.name());
            }
        }
    }
}

/// Deterministic γ = 12 regression for the sibling-truncation bug.
///
/// Tenant 0 (load 0.4) fills 12 bins with replicas of 1/30 each. Tenant 1
/// (load 0.72, replica 0.06) must NOT share those bins: the true reserve
/// check is 0.4 + 12·0.06 = 1.12 > 1. With the old 8-entry adjustment
/// buffer the check counted only 8 of 11 siblings (0.4 + 9·0.06 = 0.94),
/// every greedy packer reused the 12 bins, and the resulting placement
/// violated Theorem 1 — silently, because the bookkeeping itself was
/// consistent.
#[test]
fn gamma_twelve_regression_truncated_reserve() {
    let gamma = 12;
    for mut algo in audited_algorithms(gamma, 11) {
        algo.place(Tenant::new(TenantId::new(0), Load::new(0.4).unwrap())).unwrap();
        algo.place(Tenant::new(TenantId::new(1), Load::new(0.72).unwrap())).unwrap();
        let oracle = Oracle::rebuild(algo.placement());
        assert_eq!(
            algo.placement().is_robust(),
            oracle.is_robust(),
            "{}: robustness verdict diverged",
            algo.name()
        );
        if must_be_robust(algo.name(), gamma) {
            assert!(
                algo.placement().is_robust(),
                "{}: accepted a placement that cannot absorb 11 failures (margin {})",
                algo.name(),
                oracle.worst_margin()
            );
        }
    }
}
