//! # cubefit-audit
//!
//! Differential test layer for the workspace's consolidation algorithms.
//!
//! Every algorithm relies on the same incremental bookkeeping
//! ([`cubefit_core::shared::SharedIndex`] behind
//! [`cubefit_core::Placement`]) for levels, pairwise shared loads and
//! cached failover reserves. This crate assembles each algorithm behind an
//! [`AuditedConsolidator`], which recomputes all of those quantities from
//! scratch with [`cubefit_core::Oracle`] after every placement and panics
//! with a replayable trace on divergence. The proptest suite in
//! `tests/differential.rs` drives random tenant streams through every
//! algorithm for `γ ∈ 2..=16` — the regime where fixed-size fast-path
//! buffers used to truncate silently.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use cubefit_baselines::{BestFit, FirstFit, NextFit, RandomFit, Rfi, WorstFit};
use cubefit_core::{AuditedConsolidator, Consolidator, CubeFit, CubeFitConfig};

/// Interleaving cap `μ` used for RFI throughout the suite (the paper's
/// recommended 0.85).
pub const RFI_MU: f64 = 0.85;

/// A CubeFit class count that is safe for replication factor `gamma`.
///
/// Cube addressing eagerly allocates `τ^(γ−1)` slot options per class
/// group, so the class counts the paper uses for small `γ` explode at
/// `γ = 16` (`4^15` slots). The audit suite cares about the shared-load
/// bookkeeping, not packing quality, so it scales `K` down as `γ` grows:
/// at `K = 2` only the tiny class and `τ = 1` remain and every group is a
/// single slot.
#[must_use]
pub fn classes_for(gamma: usize) -> usize {
    match gamma {
        0..=4 => 5,
        5..=8 => 3,
        _ => 2,
    }
}

/// Every consolidation algorithm in the workspace, configured for
/// replication factor `gamma`, as trait objects.
///
/// RFI keeps its single-failure reserve (it is *expected* to lose
/// robustness for `γ > 2`; its bookkeeping must still agree with the
/// oracle). `seed` feeds RandomFit so runs are reproducible.
///
/// # Panics
///
/// Panics if `gamma < 2` — the suite only drives valid replication
/// factors.
#[must_use]
pub fn algorithms(gamma: usize, seed: u64) -> Vec<Box<dyn Consolidator>> {
    let config = CubeFitConfig::builder()
        .replication(gamma)
        .classes(classes_for(gamma))
        .build()
        .expect("audit config must be valid");
    vec![
        Box::new(CubeFit::new(config)),
        Box::new(Rfi::new(gamma, RFI_MU).expect("gamma >= 2")),
        Box::new(BestFit::new(gamma).expect("gamma >= 2")),
        Box::new(FirstFit::new(gamma).expect("gamma >= 2")),
        Box::new(WorstFit::new(gamma).expect("gamma >= 2")),
        Box::new(NextFit::new(gamma).expect("gamma >= 2")),
        Box::new(RandomFit::new(gamma, seed).expect("gamma >= 2")),
    ]
}

/// Same as [`algorithms`], with each algorithm wrapped in an
/// [`AuditedConsolidator`] that cross-checks the placement against the
/// oracle after every accepted tenant.
#[must_use]
pub fn audited_algorithms(
    gamma: usize,
    seed: u64,
) -> Vec<AuditedConsolidator<Box<dyn Consolidator>>> {
    algorithms(gamma, seed).into_iter().map(AuditedConsolidator::new).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_counts_shrink_with_gamma() {
        assert_eq!(classes_for(2), 5);
        assert_eq!(classes_for(4), 5);
        assert_eq!(classes_for(8), 3);
        assert_eq!(classes_for(16), 2);
    }

    #[test]
    fn builds_every_algorithm_for_the_gamma_range() {
        for gamma in 2..=16 {
            let algos = audited_algorithms(gamma, 7);
            assert_eq!(algos.len(), 7);
            for a in &algos {
                assert_eq!(a.gamma(), gamma, "{} at gamma {gamma}", a.name());
            }
        }
    }
}
