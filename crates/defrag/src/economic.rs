//! Cost-aware defragmentation: drain a server only when the rent it
//! saves beats the migration it costs.
//!
//! The bin-count planner ([`crate::plan`]) treats every closable server
//! as worth closing. Under a renting model that is wrong twice over: a
//! server whose current paid lease block already covers the planning
//! horizon saves *nothing* when closed (blocks are non-refundable), while
//! the drain itself streams real data. The economic planner scores every
//! candidate drain by *net-present saving* — the marginal rent of keeping
//! the bin open until the horizon (from the [`LeaseLedger`]) minus the
//! streaming cost of its replicas (from [`MigrationPricing`]) — and
//! drains best-net-first, skipping anything unprofitable.

use crate::budget::MigrationBudget;
use crate::plan::{drain_bin, DefragPlan, PlannedClose};
use cubefit_core::{BinId, Consolidator, Placement, Result};
use cubefit_economics::{LeaseLedger, MigrationPricing};
use cubefit_telemetry::{Recorder, TraceEvent};

/// What a defrag epoch optimizes for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum DefragObjective {
    /// Minimize open bins: drain every feasible low-fill server
    /// (the original planner, and the default).
    #[default]
    Bins,
    /// Minimize dollars: drain a server only when the rent saved over the
    /// next `horizon_ms` of simulated time exceeds the migration's
    /// streaming cost.
    Cost {
        /// Horizon the marginal rent of staying open is scored over.
        horizon_ms: u64,
    },
}

/// The economics of one candidate drain, scored against a live ledger.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DrainScore {
    /// Bin under consideration.
    pub bin: BinId,
    /// Marginal rent of keeping the bin open until the horizon.
    pub rent_saved_usd: f64,
    /// Streaming cost of draining all its replicas.
    pub migration_usd: f64,
    /// `rent_saved_usd - migration_usd`; the drain is worth taking only
    /// when this is positive.
    pub net_usd: f64,
}

/// Scores draining `bin` out of `placement`: the rent its closure saves
/// over `horizon_ms` minus the streaming cost of its current replicas.
///
/// Pure in the inputs — raising the ledger's rent rate raises
/// `rent_saved_usd` and leaves `migration_usd` untouched (pricing is
/// rent-independent by design), so a drain profitable at some rate stays
/// profitable at every higher rate. The planner monotonicity property
/// test pins exactly this.
#[must_use]
pub fn drain_score(
    placement: &Placement,
    bin: BinId,
    ledger: &LeaseLedger,
    pricing: &MigrationPricing,
    horizon_ms: u64,
) -> DrainScore {
    let contents = placement.bin(bin).contents();
    let replicas = contents.len();
    let load: f64 = contents.iter().map(|(_, l)| l).sum();
    let rent_saved_usd = ledger.keep_open_usd(bin, horizon_ms);
    let migration_usd = pricing.migration_usd(replicas, load);
    DrainScore { bin, rent_saved_usd, migration_usd, net_usd: rent_saved_usd - migration_usd }
}

/// Aggregate forecast attached to a cost-objective [`DefragPlan`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EconomicForecast {
    /// Horizon the plan was scored over.
    pub horizon_ms: u64,
    /// Rent the planned closes save over the horizon.
    pub rent_saved_usd: f64,
    /// Streaming cost of the planned migrations.
    pub migration_usd: f64,
    /// Predicted net saving (`rent_saved_usd - migration_usd`); every
    /// committed drain contributes positively, so this is ≥ 0.
    pub net_usd: f64,
    /// Candidate bins skipped because their drain was unprofitable.
    pub skipped_unprofitable: usize,
}

/// Computes a cost-objective defragmentation plan.
///
/// Identical safety story to [`crate::plan`] — every step validated with
/// `move_feasible` in the simulated state it executes in, whole-bin
/// atomicity, never opens a bin — but candidate selection is economic:
/// each round scores every remaining open bin with [`drain_score`] and
/// drains the highest positive net first. Unprofitable bins are ruled out
/// permanently, which is sound because a candidate's score can only get
/// *worse* while planning (its rent saving is fixed by the ledger and its
/// contents only grow if survivors receive replicas).
#[must_use]
pub fn plan_economic(
    placement: &Placement,
    budget: MigrationBudget,
    ledger: &LeaseLedger,
    pricing: &MigrationPricing,
    horizon_ms: u64,
) -> DefragPlan {
    let fragmentation_before = placement.fragmentation();
    let mut sim = placement.clone();
    let mut steps = Vec::new();
    let mut closes: Vec<PlannedClose> = Vec::new();
    let mut moved_load = 0.0;
    let mut ruled_out: Vec<BinId> = Vec::new();
    let mut forecast = EconomicForecast {
        horizon_ms,
        rent_saved_usd: 0.0,
        migration_usd: 0.0,
        net_usd: 0.0,
        skipped_unprofitable: 0,
    };

    loop {
        if !budget.admits(steps.len(), moved_load, 1, 0.0) {
            break;
        }
        // Score the surviving candidates and rule out the unprofitable
        // ones — their nets cannot improve later (see above).
        let mut best: Option<DrainScore> = None;
        let candidates: Vec<BinId> = sim
            .bins()
            .filter(|b| b.level() > 0.0 && !ruled_out.contains(&b.id()))
            .map(|b| b.id())
            .collect();
        for bin in candidates {
            let score = drain_score(&sim, bin, ledger, pricing, horizon_ms);
            if score.net_usd <= 0.0 {
                ruled_out.push(bin);
                forecast.skipped_unprofitable += 1;
            } else if best.is_none_or(|b| {
                score.net_usd > b.net_usd || (score.net_usd == b.net_usd && score.bin < b.bin)
            }) {
                best = Some(score);
            }
        }
        let Some(score) = best else { break };
        ruled_out.push(score.bin);
        let level = sim.level(score.bin);
        if let Some((drained, bin_steps, bin_load)) =
            drain_bin(&sim, score.bin, &budget, steps.len(), moved_load)
        {
            sim = drained;
            moved_load += bin_load;
            steps.extend(bin_steps);
            closes.push(PlannedClose { bin: score.bin, level });
            forecast.rent_saved_usd += score.rent_saved_usd;
            forecast.migration_usd += score.migration_usd;
            forecast.net_usd += score.net_usd;
        }
    }

    let fragmentation_after = sim.fragmentation();
    DefragPlan {
        gamma: placement.gamma(),
        budget,
        steps,
        closes,
        moved_load,
        open_bins_before: placement.open_bins(),
        open_bins_after: sim.open_bins(),
        fragmentation_before,
        fragmentation_after,
        economics: Some(forecast),
    }
}

/// Predicted-vs-realized accounting for an applied economic plan.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EconomicOutcome {
    /// Net saving the plan predicted.
    pub predicted_net_usd: f64,
    /// Rent saving re-scored against the live ledger for the bins the
    /// apply actually closed.
    pub realized_rent_saved_usd: f64,
    /// Streaming cost of the steps actually applied and kept.
    pub realized_migration_usd: f64,
    /// `realized_rent_saved_usd - realized_migration_usd`.
    pub realized_net_usd: f64,
}

/// Applies an economic plan through [`crate::apply`] and settles its
/// predicted-vs-realized accounting against the live ledger.
///
/// The realized side is honest about staleness: rent savings are
/// re-scored at apply time for the bins that actually drained to empty,
/// and migration cost covers only the steps that were applied and kept —
/// an aborted plan realizes exactly zero on both sides. Emits
/// [`TraceEvent::EconomicDefragApplied`] alongside the events
/// [`crate::apply`] already produces.
///
/// # Errors
///
/// Propagates [`crate::apply`] errors.
pub fn apply_economic(
    consolidator: &mut dyn Consolidator,
    plan: &DefragPlan,
    ledger: &LeaseLedger,
    pricing: &MigrationPricing,
    recorder: &Recorder,
) -> Result<crate::execute::DefragOutcome> {
    let horizon_ms = plan.economics.map_or(0, |f| f.horizon_ms);
    // Score the planned closes against the live ledger *before* applying:
    // keep-open queries are only meaningful while the bin is still open.
    let close_savings: Vec<(BinId, f64)> =
        plan.closes.iter().map(|c| (c.bin, ledger.keep_open_usd(c.bin, horizon_ms))).collect();

    let mut outcome = crate::execute::apply(consolidator, plan, recorder)?;

    let realized_rent_saved_usd: f64 = if outcome.aborted {
        0.0
    } else {
        close_savings
            .iter()
            .filter(|(bin, _)| consolidator.placement().level(*bin) == 0.0)
            .map(|(_, saved)| saved)
            .sum()
    };
    let realized_migration_usd = pricing.migration_usd(outcome.applied_steps, outcome.moved_load);
    let economics = EconomicOutcome {
        predicted_net_usd: plan.economics.map_or(0.0, |f| f.net_usd),
        realized_rent_saved_usd,
        realized_migration_usd,
        realized_net_usd: realized_rent_saved_usd - realized_migration_usd,
    };
    outcome.economics = Some(economics);
    recorder.emit(|| TraceEvent::EconomicDefragApplied {
        predicted_net_usd: economics.predicted_net_usd,
        realized_net_usd: economics.realized_net_usd,
        servers_closed: outcome.servers_closed,
        skipped_unprofitable: plan.economics.map_or(0, |f| f.skipped_unprofitable),
    });
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubefit_core::recovery::move_feasible;
    use cubefit_core::{Load, Tenant, TenantId};
    use cubefit_economics::{CostModel, LeaseTerms};

    fn tenant(id: u64, load: f64) -> Tenant {
        Tenant::new(TenantId::new(id), Load::new(load).unwrap())
    }

    /// Two half-full bin pairs plus one thin pair (same shape as the
    /// bin-count planner's fixture).
    fn fragmented_placement() -> Placement {
        let mut p = Placement::new(2);
        let b: Vec<BinId> = (0..6).map(|_| p.open_bin(None)).collect();
        p.place_tenant(&tenant(0, 0.8), &[b[0], b[1]]).unwrap();
        p.place_tenant(&tenant(1, 0.8), &[b[2], b[3]]).unwrap();
        p.place_tenant(&tenant(2, 0.1), &[b[4], b[5]]).unwrap();
        p
    }

    /// A ledger that has just opened a lease on every open bin of `p`.
    fn ledger_over(p: &Placement, block_ms: u64, hourly: f64) -> LeaseLedger {
        let terms = LeaseTerms::new(block_ms, CostModel::with_hourly_usd(hourly));
        let mut ledger = LeaseLedger::new(terms);
        let open: Vec<BinId> = p.bins().filter(|b| b.level() > 0.0).map(|b| b.id()).collect();
        ledger.advance(0, open);
        ledger
    }

    #[test]
    fn short_blocks_make_thin_drains_profitable() {
        let p = fragmented_placement();
        // 1-minute blocks at a steep rate: a 2-hour horizon needs ~120
        // more blocks per bin, dwarfing the thin replicas' streaming cost.
        let ledger = ledger_over(&p, 60_000, 10.0);
        let plan = plan_economic(
            &p,
            MigrationBudget::unlimited(),
            &ledger,
            &MigrationPricing::reference(),
            7_200_000,
        );
        assert_eq!(plan.servers_closed(), 2);
        assert_eq!(plan.steps.len(), 2);
        let forecast = plan.economics.unwrap();
        assert!(forecast.net_usd > 0.0);
        assert!(forecast.rent_saved_usd > forecast.migration_usd);
        // Steps still replay robustly, exactly like bin-count plans.
        let mut replay = p;
        for step in &plan.steps {
            assert!(move_feasible(&replay, step.tenant, step.from, step.to));
            replay.move_replica(step.tenant, step.from, step.to).unwrap();
            assert!(replay.is_robust());
        }
        assert_eq!(replay.open_bins(), plan.open_bins_after);
    }

    #[test]
    fn paid_up_blocks_make_every_drain_unprofitable() {
        let p = fragmented_placement();
        // One huge block, already paid: closing saves nothing within the
        // horizon, so the economic planner refuses to move anything.
        let ledger = ledger_over(&p, 86_400_000, 0.822);
        let plan = plan_economic(
            &p,
            MigrationBudget::unlimited(),
            &ledger,
            &MigrationPricing::reference(),
            7_200_000,
        );
        assert!(plan.is_empty());
        assert_eq!(plan.servers_closed(), 0);
        let forecast = plan.economics.unwrap();
        assert_eq!(forecast.net_usd, 0.0);
        assert!(forecast.skipped_unprofitable >= 1);
    }

    #[test]
    fn raising_rent_never_shrinks_the_plan() {
        // End-to-end monotonicity across a rate sweep: more rent can only
        // enlarge the profitable set, and with it the planned steps.
        let p = fragmented_placement();
        let mut last_steps = 0;
        for hourly in [0.01, 0.1, 1.0, 10.0, 100.0] {
            let ledger = ledger_over(&p, 600_000, hourly);
            let plan = plan_economic(
                &p,
                MigrationBudget::unlimited(),
                &ledger,
                &MigrationPricing::reference(),
                7_200_000,
            );
            assert!(
                plan.steps.len() >= last_steps,
                "steps shrank from {last_steps} to {} at rate {hourly}",
                plan.steps.len()
            );
            last_steps = plan.steps.len();
        }
        assert!(last_steps > 0, "the steep end of the sweep must migrate");
    }

    #[test]
    fn respects_migration_budget() {
        let p = fragmented_placement();
        let ledger = ledger_over(&p, 60_000, 10.0);
        let plan = plan_economic(
            &p,
            MigrationBudget::moves(1),
            &ledger,
            &MigrationPricing::reference(),
            7_200_000,
        );
        assert!(plan.steps.len() <= 1);
        assert_eq!(plan.servers_closed(), plan.steps.len());
    }

    #[test]
    fn apply_economic_settles_predicted_vs_realized() {
        use cubefit_core::{CubeFit, CubeFitConfig};
        let config = CubeFitConfig::builder().replication(2).classes(5).build().unwrap();
        let mut cubefit = CubeFit::new(config);
        for id in 0..40 {
            cubefit.place(tenant(id, 0.05 + 0.02 * (id % 10) as f64)).unwrap();
        }
        for id in 0..40 {
            if id % 3 != 0 {
                cubefit.remove(TenantId::new(id)).unwrap();
            }
        }
        let ledger = ledger_over(cubefit.placement(), 60_000, 10.0);
        let pricing = MigrationPricing::reference();
        let plan = plan_economic(
            cubefit.placement(),
            MigrationBudget::unlimited(),
            &ledger,
            &pricing,
            7_200_000,
        );
        assert!(!plan.is_empty(), "fragmented cubefit must have profitable drains");
        let outcome =
            apply_economic(&mut cubefit, &plan, &ledger, &pricing, &Recorder::disabled()).unwrap();
        assert!(!outcome.aborted);
        let econ = outcome.economics.unwrap();
        // Plan applied fresh: realized must match predicted exactly
        // (same ledger, same placement, nothing drifted in between).
        let forecast = plan.economics.unwrap();
        assert!((econ.realized_rent_saved_usd - forecast.rent_saved_usd).abs() < 1e-9);
        assert!((econ.realized_migration_usd - forecast.migration_usd).abs() < 1e-9);
        assert!((econ.realized_net_usd - econ.predicted_net_usd).abs() < 1e-9);
        assert!(cubefit.placement().is_robust());
    }

    #[test]
    fn aborted_economic_plan_realizes_zero() {
        use cubefit_core::{CubeFit, CubeFitConfig};
        let config = CubeFitConfig::builder().replication(2).classes(5).build().unwrap();
        let mut cubefit = CubeFit::new(config);
        for id in 0..40 {
            cubefit.place(tenant(id, 0.05 + 0.02 * (id % 10) as f64)).unwrap();
        }
        for id in 0..40 {
            if id % 3 != 0 {
                cubefit.remove(TenantId::new(id)).unwrap();
            }
        }
        let ledger = ledger_over(cubefit.placement(), 60_000, 10.0);
        let pricing = MigrationPricing::reference();
        let plan = plan_economic(
            cubefit.placement(),
            MigrationBudget::unlimited(),
            &ledger,
            &pricing,
            7_200_000,
        );
        assert!(plan.steps.len() >= 2, "need a multi-step plan for a mid-plan abort");
        // Invalidate a later step, exactly like the bin-count abort test.
        let victim = plan.steps.last().unwrap().tenant;
        cubefit.remove(victim).unwrap();
        let outcome =
            apply_economic(&mut cubefit, &plan, &ledger, &pricing, &Recorder::disabled()).unwrap();
        assert!(outcome.aborted);
        let econ = outcome.economics.unwrap();
        assert_eq!(econ.realized_rent_saved_usd, 0.0);
        assert_eq!(econ.realized_migration_usd, 0.0);
        assert_eq!(econ.realized_net_usd, 0.0);
    }

    #[test]
    fn objective_serde_round_trip() {
        for objective in [DefragObjective::Bins, DefragObjective::Cost { horizon_ms: 7_200_000 }] {
            let json = serde_json::to_string(&objective).unwrap();
            let back: DefragObjective = serde_json::from_str(&json).unwrap();
            assert_eq!(back, objective);
        }
        assert_eq!(DefragObjective::default(), DefragObjective::Bins);
    }
}
