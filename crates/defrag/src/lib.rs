//! # cubefit-defrag
//!
//! Robustness-preserving defragmentation for consolidated placements.
//!
//! Tenant departures strand low-fill servers: nothing in the online model
//! ever re-consolidates, so under churn the open-server count drifts above
//! what the surviving tenant set needs — the fragmentation problem studied
//! for online server renting. This crate closes that gap with a
//! **migration planner** and an **atomic plan executor**:
//!
//! * [`plan`] takes any live [`cubefit_core::Placement`] and a
//!   [`MigrationBudget`] (max replica moves and/or max replica load moved,
//!   modeling data-copy cost) and produces a [`DefragPlan`]: an ordered
//!   list of replica migrations that drains the lowest-fill bins into the
//!   fullest feasible survivors and closes the emptied servers. Every step
//!   passes the Theorem-1 [`cubefit_core::recovery::move_feasible`]
//!   predicate in the simulated state it executes in, so applying the plan
//!   keeps every intermediate placement robust. Bins are drained
//!   whole-or-not-at-all, and the plan never opens a server, so defrag can
//!   only decrease the open-bin count.
//! * [`apply`] replays a plan through any [`cubefit_core::Consolidator`]
//!   via its `migrate` primitive (so algorithms keep their derived indexes
//!   consistent: CubeFit re-keys mature slack and seals cube growth,
//!   greedy packers re-key levels, RFI re-keys slack). Each step is
//!   re-checked against the live placement first; the first infeasible
//!   step aborts the whole plan atomically by rolling back the applied
//!   prefix with inverse migrations.
//! * [`plan_economic`] / [`apply_economic`] add the **cost objective**
//!   ([`DefragObjective::Cost`]): with a `cubefit_economics::LeaseLedger`
//!   tracking per-server rental blocks, a drain is taken only when the
//!   rent it saves over the planning horizon beats its streaming cost,
//!   and the executor settles predicted-vs-realized savings against the
//!   live ledger.
//!
//! ```
//! use cubefit_core::{Consolidator, CubeFit, CubeFitConfig, Load, Tenant, TenantId};
//! use cubefit_defrag::{apply, plan, MigrationBudget};
//! use cubefit_telemetry::Recorder;
//!
//! # fn main() -> Result<(), cubefit_core::Error> {
//! let config = CubeFitConfig::builder().replication(2).classes(5).build()?;
//! let mut cubefit = CubeFit::new(config);
//! for id in 0..30u64 {
//!     cubefit.place(Tenant::new(TenantId::new(id), Load::new(0.12)?))?;
//! }
//! for id in 0..30u64 {
//!     if id % 3 != 0 {
//!         cubefit.remove(TenantId::new(id))?; // fragment the placement
//!     }
//! }
//! let defrag = plan(cubefit.placement(), MigrationBudget::moves(16));
//! let outcome = apply(&mut cubefit, &defrag, &Recorder::disabled())?;
//! assert!(!outcome.aborted);
//! assert!(cubefit.placement().is_robust());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod budget;
pub mod economic;
pub mod execute;
pub mod mitigate;
pub mod plan;

pub use budget::MigrationBudget;
pub use cubefit_core::EPSILON;
pub use economic::{
    apply_economic, drain_score, plan_economic, DefragObjective, DrainScore, EconomicForecast,
    EconomicOutcome,
};
pub use execute::{apply, DefragOutcome};
pub use mitigate::{
    apply_mitigation, plan_mitigation, plan_mitigation_with, MitigationOutcome, MitigationPlan,
    ResidualRisk,
};
pub use plan::{plan, DefragPlan, DefragStep, PlannedClose};
