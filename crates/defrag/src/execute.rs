//! Applying a [`DefragPlan`] to a live consolidator, atomically.

use crate::plan::DefragPlan;
use cubefit_core::recovery::move_feasible;
use cubefit_core::{Consolidator, Result};
use cubefit_telemetry::{Recorder, TraceEvent};

/// What applying a [`DefragPlan`] actually did.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DefragOutcome {
    /// Steps applied and kept (0 after an abort — the rollback undid them).
    pub applied_steps: usize,
    /// Replica load moved and kept.
    pub moved_load: f64,
    /// Servers drained to empty.
    pub servers_closed: usize,
    /// Whether the plan was aborted and rolled back.
    pub aborted: bool,
    /// Step index that failed its feasibility re-check, if any.
    pub aborted_at: Option<usize>,
    /// Predicted-vs-realized accounting, filled in by
    /// [`crate::apply_economic`] (absent for plain applies).
    pub economics: Option<crate::economic::EconomicOutcome>,
}

/// Applies `plan` through the consolidator's [`Consolidator::migrate`]
/// primitive.
///
/// Every step is re-checked with [`move_feasible`] against the *live*
/// placement immediately before it is applied — the placement may have
/// drifted since planning (arrivals, departures, failures). The first step
/// that fails the re-check aborts the whole plan **atomically**: already
/// applied steps are rolled back in reverse order via inverse migrations,
/// which retraces previously visited (hence robust) states, and the
/// consolidator ends exactly where it started.
///
/// Emits [`TraceEvent::DefragPlanned`] once, [`TraceEvent::ServerClosed`]
/// per drained bin, and updates the `defrag_open_bins` / `defrag_mean_fill`
/// / `defrag_fragmentation_ratio` gauges from the final placement.
///
/// # Errors
///
/// Propagates [`Consolidator::migrate`] errors — these indicate endpoint
/// invariant violations the feasibility re-check cannot see (a concurrent
/// structural mutation mid-apply), not a planned abort.
pub fn apply(
    consolidator: &mut dyn Consolidator,
    plan: &DefragPlan,
    recorder: &Recorder,
) -> Result<DefragOutcome> {
    recorder.emit(|| TraceEvent::DefragPlanned {
        steps: plan.steps.len(),
        moved_load: plan.moved_load,
        bins_to_close: plan.closes.len(),
        open_bins: consolidator.placement().open_bins(),
    });

    let mut outcome = DefragOutcome {
        applied_steps: 0,
        moved_load: 0.0,
        servers_closed: 0,
        aborted: false,
        aborted_at: None,
        economics: None,
    };
    for (index, step) in plan.steps.iter().enumerate() {
        if !move_feasible(consolidator.placement(), step.tenant, step.from, step.to) {
            for undone in plan.steps[..index].iter().rev() {
                consolidator.migrate(undone.tenant, undone.to, undone.from)?;
            }
            outcome = DefragOutcome {
                applied_steps: 0,
                moved_load: 0.0,
                servers_closed: 0,
                aborted: true,
                aborted_at: Some(index),
                economics: None,
            };
            break;
        }
        consolidator.migrate(step.tenant, step.from, step.to)?;
        outcome.applied_steps += 1;
        outcome.moved_load += step.load;
        if consolidator.placement().level(step.from) == 0.0 {
            outcome.servers_closed += 1;
            let total_open = consolidator.placement().open_bins();
            let level =
                plan.closes.iter().find(|c| c.bin == step.from).map_or(step.load, |c| c.level);
            recorder.emit(|| TraceEvent::ServerClosed {
                bin: step.from.index(),
                level,
                total_open,
            });
        }
    }

    let fragmentation = consolidator.placement().fragmentation();
    recorder.gauge("defrag_open_bins", &[]).set(fragmentation.open_bins as f64);
    recorder.gauge("defrag_mean_fill", &[]).set(fragmentation.mean_fill);
    recorder.gauge("defrag_fragmentation_ratio", &[]).set(fragmentation.fragmentation_ratio);
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::MigrationBudget;
    use crate::plan::plan;
    use cubefit_core::{CubeFit, CubeFitConfig, Load, Tenant, TenantId};
    use cubefit_telemetry::VecSink;
    use std::sync::Arc;

    fn tenant(id: u64, load: f64) -> Tenant {
        Tenant::new(TenantId::new(id), Load::new(load).unwrap())
    }

    /// Churns a CubeFit instance into fragmentation: place many tenants,
    /// then remove most of them.
    fn fragmented_cubefit() -> CubeFit {
        let config = CubeFitConfig::builder().replication(2).classes(5).build().unwrap();
        let mut cubefit = CubeFit::new(config);
        for id in 0..40 {
            cubefit.place(tenant(id, 0.05 + 0.02 * (id % 10) as f64)).unwrap();
        }
        for id in 0..40 {
            if id % 3 != 0 {
                cubefit.remove(TenantId::new(id)).unwrap();
            }
        }
        cubefit
    }

    #[test]
    fn applying_a_plan_closes_servers_and_stays_robust() {
        let mut cubefit = fragmented_cubefit();
        let before = cubefit.placement().open_bins();
        let defrag = plan(cubefit.placement(), MigrationBudget::unlimited());
        assert!(defrag.servers_closed() >= 1, "churned placement should be compressible");
        let outcome = apply(&mut cubefit, &defrag, &Recorder::disabled()).unwrap();
        assert!(!outcome.aborted);
        assert_eq!(outcome.applied_steps, defrag.steps.len());
        assert_eq!(outcome.servers_closed, defrag.servers_closed());
        assert_eq!(cubefit.placement().open_bins(), before - outcome.servers_closed);
        assert_eq!(cubefit.placement().open_bins(), defrag.open_bins_after);
        assert!(cubefit.placement().is_robust());
        // The incremental indexes survived the migrations.
        assert!(cubefit_core::oracle::audit(cubefit.placement()).is_ok());
    }

    #[test]
    fn stale_plan_aborts_atomically() {
        let mut cubefit = fragmented_cubefit();
        let defrag = plan(cubefit.placement(), MigrationBudget::unlimited());
        assert!(defrag.steps.len() >= 2, "need a multi-step plan to test mid-plan aborts");
        // Invalidate a later step by removing its tenant after planning:
        // the feasibility re-check fails mid-plan and everything rolls back.
        let victim = defrag.steps.last().unwrap().tenant;
        let before_levels: Vec<f64> = cubefit.placement().bins().map(|b| b.level()).collect();
        cubefit.remove(victim).unwrap();
        let after_removal: Vec<f64> = cubefit.placement().bins().map(|b| b.level()).collect();
        let outcome = apply(&mut cubefit, &defrag, &Recorder::disabled()).unwrap();
        assert!(outcome.aborted);
        assert_eq!(outcome.applied_steps, 0);
        assert_eq!(outcome.servers_closed, 0);
        let rolled_back: Vec<f64> = cubefit.placement().bins().map(|b| b.level()).collect();
        assert_ne!(before_levels, after_removal, "the removal must have changed something");
        for (a, b) in after_removal.iter().zip(&rolled_back) {
            assert!((a - b).abs() < 1e-12, "rollback must restore pre-apply levels");
        }
        assert!(cubefit.placement().is_robust());
        assert!(cubefit_core::oracle::audit(cubefit.placement()).is_ok());
    }

    #[test]
    fn emits_planned_and_server_closed_events() {
        let mut cubefit = fragmented_cubefit();
        let defrag = plan(cubefit.placement(), MigrationBudget::unlimited());
        let sink = Arc::new(VecSink::new());
        let recorder = Recorder::with_sink(Arc::clone(&sink));
        let outcome = apply(&mut cubefit, &defrag, &recorder).unwrap();
        let events = sink.events();
        assert_eq!(
            events.iter().filter(|e| matches!(e, TraceEvent::DefragPlanned { .. })).count(),
            1
        );
        assert_eq!(
            events.iter().filter(|e| matches!(e, TraceEvent::ServerClosed { .. })).count(),
            outcome.servers_closed
        );
        let snapshot = recorder.snapshot();
        assert!(!snapshot.gauges.is_empty(), "fragmentation gauges must be set");
    }

    #[test]
    fn empty_plan_is_a_no_op() {
        let mut cubefit = fragmented_cubefit();
        let defrag = plan(cubefit.placement(), MigrationBudget::moves(0));
        let before = cubefit.placement().open_bins();
        let outcome = apply(&mut cubefit, &defrag, &Recorder::disabled()).unwrap();
        assert_eq!(outcome.applied_steps, 0);
        assert!(!outcome.aborted);
        assert_eq!(cubefit.placement().open_bins(), before);
    }
}
