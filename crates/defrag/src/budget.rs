//! Migration budgets: bounding the data-copy cost of a defrag pass.

/// Bounds on how much a defragmentation plan may move.
///
/// Each replica migration streams that replica's data to its new home, so
/// operators cap defrag both by move *count* (per-migration fixed costs:
/// catalog updates, connection draining) and by total replica *load* moved
/// (bytes on the wire). `None` means unlimited on that axis; the planner
/// honours whichever limits are set, and a whole-bin drain is only
/// committed if every one of its moves fits the remaining budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MigrationBudget {
    /// Maximum number of replica moves, or `None` for unlimited.
    pub max_moves: Option<usize>,
    /// Maximum total replica load moved, or `None` for unlimited.
    pub max_load: Option<f64>,
}

impl MigrationBudget {
    /// No limits: drain everything the feasibility predicate allows.
    #[must_use]
    pub fn unlimited() -> Self {
        MigrationBudget::default()
    }

    /// Caps the number of replica moves.
    #[must_use]
    pub fn moves(max_moves: usize) -> Self {
        MigrationBudget { max_moves: Some(max_moves), max_load: None }
    }

    /// Caps the total replica load moved.
    #[must_use]
    pub fn load(max_load: f64) -> Self {
        MigrationBudget { max_moves: None, max_load: Some(max_load) }
    }

    /// Whether a further `steps` moves totalling `load` still fit after
    /// `used_moves`/`used_load` have been consumed.
    #[must_use]
    pub fn admits(&self, used_moves: usize, used_load: f64, steps: usize, load: f64) -> bool {
        if let Some(max) = self.max_moves {
            if used_moves + steps > max {
                return false;
            }
        }
        if let Some(max) = self.max_load {
            // A small tolerance so a drain summing exactly to the cap is
            // not rejected for rounding.
            if used_load + load > max + cubefit_core::EPSILON {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_admits_everything() {
        let b = MigrationBudget::unlimited();
        assert!(b.admits(1_000_000, 1e9, 1_000_000, 1e9));
    }

    #[test]
    fn move_cap_is_exact() {
        let b = MigrationBudget::moves(5);
        assert!(b.admits(3, 0.0, 2, 10.0));
        assert!(!b.admits(3, 0.0, 3, 0.0));
    }

    #[test]
    fn load_cap_tolerates_rounding_at_the_boundary() {
        let b = MigrationBudget::load(0.3);
        assert!(b.admits(0, 0.1 + 0.2 - 0.1, 9, 0.1));
        assert!(!b.admits(0, 0.25, 1, 0.1));
    }

    #[test]
    fn round_trips_through_json() {
        let b = MigrationBudget { max_moves: Some(7), max_load: Some(1.5) };
        let json = serde_json::to_string(&b).unwrap();
        let back: MigrationBudget = serde_json::from_str(&json).unwrap();
        assert_eq!(back, b);
    }
}
