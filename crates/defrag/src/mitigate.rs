//! Graceful-degradation mitigation: draining load off servers the
//! invariant monitor flags, under a migration budget.
//!
//! Load drift can push a consolidated placement out of its Theorem-1
//! envelope: a tenant's measured load grows in place, and suddenly some
//! server's worst-case failover exceeds capacity. Mitigation is the repair
//! pass: given a [`cubefit_core::monitor`] classification, it plans replica
//! migrations that drain the worst servers first — every violated server
//! (deepest deficit first), then every at-risk server (smallest slack
//! first) — until each is safe again or the [`MigrationBudget`] runs out.
//!
//! The planner **degrades gracefully** rather than panicking or
//! over-promising: when budget or feasibility runs out mid-repair it
//! returns the partial plan it has, plus an explicit [`ResidualRisk`]
//! report naming every server still violated or at risk in the planned
//! end-state, with its remaining deficit/slack. Callers decide what to do
//! with the residue (raise the budget, shed tenants, page an operator).
//!
//! Every planned move passes [`move_feasible`] when the neighborhood it
//! touches is robust. Starting from a *violated* state that predicate is
//! too strong — it rejects any move whose sibling bin is still (less)
//! violated afterwards, which is exactly what the first repair move of a
//! drifted pair looks like. Mitigation therefore falls back to a
//! **monotone-improvement** check ([`move_repairs`]): the move may not
//! push any Theorem-1-satisfying bin into violation, and may not make any
//! still-violated bin worse (unchanged is fine — a violated sibling is
//! repaired on its own turn, not blocked on this one). Draining always
//! strictly improves the server being drained, so total violation never
//! grows and a repair sequence composes. Unlike defrag, mitigation may also move
//! replicas onto *empty* (but previously created) servers: re-opening a
//! drained server is the cheap way to buy slack, and safety outranks
//! consolidation here.

use crate::budget::MigrationBudget;
use crate::plan::DefragStep;
use cubefit_core::monitor::{classify_bin, classify_with, MonitorReport};
use cubefit_core::recovery::move_feasible;
use cubefit_core::{BinId, Consolidator, Placement, Result, TenantId, EPSILON};
use cubefit_telemetry::{Recorder, TraceEvent};

/// Servers a mitigation pass could not (fully) repair, with how bad each
/// still is in the planned end-state.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct ResidualRisk {
    /// Servers still violated, worst (largest deficit) first.
    pub violated: Vec<(BinId, f64)>,
    /// Servers still at risk, worst (smallest slack) first.
    pub at_risk: Vec<(BinId, f64)>,
    /// Total overload depth across the still-violated servers (the
    /// `residual_risk_load` gauge).
    pub residual_load: f64,
}

impl ResidualRisk {
    /// Whether mitigation left nothing behind.
    #[must_use]
    pub fn is_clear(&self) -> bool {
        self.violated.is_empty() && self.at_risk.is_empty()
    }

    /// The still-violated servers, worst first.
    #[must_use]
    pub fn violated_bins(&self) -> Vec<BinId> {
        self.violated.iter().map(|&(bin, _)| bin).collect()
    }

    fn from_report(report: &MonitorReport) -> Self {
        ResidualRisk {
            violated: report.violated.clone(),
            at_risk: report.at_risk.clone(),
            residual_load: report.violated.iter().map(|&(_, deficit)| deficit).sum(),
        }
    }
}

/// An executable mitigation plan plus its honest residue.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MitigationPlan {
    /// Replication factor of the placement the plan was computed for.
    pub gamma: usize,
    /// Budget the plan was computed under.
    pub budget: MigrationBudget,
    /// At-risk slack threshold the monitor classification used.
    pub at_risk_slack: f64,
    /// Migration steps in execution order.
    pub steps: Vec<DefragStep>,
    /// Total replica load the plan moves.
    pub moved_load: f64,
    /// Servers needing attention before the plan (violated + at risk).
    pub attention_before: usize,
    /// Servers violated before the plan.
    pub violated_before: usize,
    /// Flagged servers the plan restores to a safe margin.
    pub cured: Vec<BinId>,
    /// What the plan could not repair.
    pub residual: ResidualRisk,
}

impl MitigationPlan {
    /// Whether the plan contains no migrations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Pretty JSON rendering for reports.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_owned())
    }
}

/// Plans a mitigation pass over `placement` under `budget`, using the
/// monitor's default at-risk threshold
/// ([`cubefit_core::monitor::DEFAULT_AT_RISK_SLACK`]).
#[must_use]
pub fn plan_mitigation(placement: &Placement, budget: MigrationBudget) -> MitigationPlan {
    plan_mitigation_with(placement, budget, cubefit_core::monitor::DEFAULT_AT_RISK_SLACK)
}

/// Plans a mitigation pass with an explicit at-risk slack threshold.
///
/// The planner simulates on a clone. Flagged servers are visited worst
/// first; each is drained replica-by-replica (largest replica first, so
/// margins recover in the fewest moves) into the fullest target that both
/// passes [`move_repairs`] and stays *safe* after the move — falling back
/// to the admissible target with the most post-move headroom when no
/// target can absorb the replica safely. A server whose replicas have no
/// admissible target at all, or whose next move no longer fits the budget,
/// is left to the [`ResidualRisk`] report.
#[must_use]
pub fn plan_mitigation_with(
    placement: &Placement,
    budget: MigrationBudget,
    at_risk_slack: f64,
) -> MitigationPlan {
    let before = classify_with(placement, at_risk_slack);
    let mut sim = placement.clone();
    let mut steps: Vec<DefragStep> = Vec::new();
    let mut moved_load = 0.0;

    'bins: for bin in before.attention_order() {
        while classify_bin(&sim, bin, at_risk_slack).state.needs_attention() {
            if !budget.admits(steps.len(), moved_load, 1, 0.0) {
                break 'bins;
            }
            let Some((tenant, replica, to)) = best_move(&sim, bin, at_risk_slack) else {
                // Nothing on this server can move anywhere — residual risk.
                continue 'bins;
            };
            if !budget.admits(steps.len(), moved_load, 1, replica) {
                break 'bins;
            }
            sim.move_replica(tenant, bin, to).expect("admissible moves have valid endpoints");
            steps.push(DefragStep { tenant, from: bin, to, load: replica });
            moved_load += replica;
        }
    }

    let after = classify_with(&sim, at_risk_slack);
    let cured = before
        .attention_order()
        .into_iter()
        .filter(|bin| !classify_bin(&sim, *bin, at_risk_slack).state.needs_attention())
        .collect();
    MitigationPlan {
        gamma: placement.gamma(),
        budget,
        at_risk_slack,
        steps,
        moved_load,
        attention_before: before.attention_order().len(),
        violated_before: before.violated.len(),
        cured,
        residual: ResidualRisk::from_report(&after),
    }
}

/// Whether moving `tenant`'s replica from `from` to `to` makes the
/// placement monotonically safer.
///
/// The fast path is [`move_feasible`] — a robust-to-robust move. When that
/// fails (repairs of a violated neighborhood always do at first, because
/// the conservative predicate demands full Theorem-1 margins on bins that
/// are still mid-repair), the move is simulated and accepted iff every
/// affected bin either satisfies Theorem 1 afterwards or is no worse off
/// than before. Only `from`, `to`, and the tenant's sibling bins can
/// change margin, so only those are compared.
#[must_use]
pub fn move_repairs(placement: &Placement, tenant: TenantId, from: BinId, to: BinId) -> bool {
    if move_feasible(placement, tenant, from, to) {
        return true;
    }
    let Some(bins) = placement.tenant_bins(tenant) else { return false };
    let mut affected: Vec<BinId> = bins.to_vec();
    affected.push(to);
    affected.sort_unstable();
    affected.dedup();
    let before: Vec<f64> =
        affected.iter().map(|&b| 1.0 - placement.level(b) - placement.worst_failover(b)).collect();
    let mut trial = placement.clone();
    if trial.move_replica(tenant, from, to).is_err() {
        return false;
    }
    affected.iter().zip(before).all(|(&b, old)| {
        let new = 1.0 - trial.level(b) - trial.worst_failover(b);
        new >= -EPSILON || new >= old - EPSILON
    })
}

/// The best single drain move off `bin`: the largest replica that has any
/// admissible target, paired with the fullest target left safe by the
/// move (or, failing that, the admissible target with the most post-move
/// margin).
fn best_move(sim: &Placement, bin: BinId, at_risk_slack: f64) -> Option<(TenantId, f64, BinId)> {
    let mut replicas: Vec<(TenantId, f64)> = sim.bin(bin).contents().to_vec();
    replicas.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

    // Fullest first: mitigation prefers not to spread load, but will.
    let mut targets: Vec<(BinId, f64)> =
        sim.bins().filter(|b| b.id() != bin).map(|b| (b.id(), b.level())).collect();
    targets.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

    for (tenant, replica) in replicas {
        let mut fallback: Option<(BinId, f64)> = None;
        for &(to, _) in &targets {
            if !move_repairs(sim, tenant, bin, to) {
                continue;
            }
            let mut trial = sim.clone();
            trial.move_replica(tenant, bin, to).expect("admissible move");
            let margin = classify_bin(&trial, to, at_risk_slack).margin;
            if margin >= at_risk_slack {
                // Fullest target that stays safe — take it.
                return Some((tenant, replica, to));
            }
            if fallback.is_none_or(|(_, best)| margin > best) {
                fallback = Some((to, margin));
            }
        }
        if let Some((to, _)) = fallback {
            return Some((tenant, replica, to));
        }
    }
    None
}

/// What applying a [`MitigationPlan`] actually did.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MitigationOutcome {
    /// Steps applied and kept (0 after an abort — the rollback undid them).
    pub applied_steps: usize,
    /// Replica load moved and kept.
    pub moved_load: f64,
    /// Whether the plan was aborted and rolled back.
    pub aborted: bool,
    /// Step index that failed its feasibility re-check, if any.
    pub aborted_at: Option<usize>,
    /// Flagged servers actually restored to safe margins, measured on the
    /// live placement after the apply.
    pub cured: usize,
    /// Risk remaining on the live placement after the apply.
    pub residual: ResidualRisk,
}

/// Applies `plan` through the consolidator's [`Consolidator::migrate`]
/// primitive, atomically.
///
/// Every step is re-checked with [`move_repairs`] against the *live*
/// placement immediately before it runs — the placement may have drifted
/// since planning. The first step that fails the re-check aborts the whole
/// plan: the applied prefix is rolled back in reverse order with inverse
/// migrations and the consolidator ends where it started (with the
/// then-current risk reported as residual).
///
/// Emits [`TraceEvent::MitigationPlanned`] once and updates the
/// `at_risk_servers` / `violated_servers` / `residual_risk_load` gauges
/// from the final live placement.
///
/// # Errors
///
/// Propagates [`Consolidator::migrate`] errors — endpoint invariant
/// violations the feasibility re-check cannot see, not a planned abort.
pub fn apply_mitigation(
    consolidator: &mut dyn Consolidator,
    plan: &MitigationPlan,
    recorder: &Recorder,
) -> Result<MitigationOutcome> {
    recorder.emit(|| TraceEvent::MitigationPlanned {
        steps: plan.steps.len(),
        moved_load: plan.moved_load,
        cured: plan.cured.len(),
        residual: plan.residual.violated.len() + plan.residual.at_risk.len(),
    });

    let mut applied_steps = 0;
    let mut moved_load = 0.0;
    let mut aborted = false;
    let mut aborted_at = None;
    for (index, step) in plan.steps.iter().enumerate() {
        if !move_repairs(consolidator.placement(), step.tenant, step.from, step.to) {
            for undone in plan.steps[..index].iter().rev() {
                consolidator.migrate(undone.tenant, undone.to, undone.from)?;
            }
            applied_steps = 0;
            moved_load = 0.0;
            aborted = true;
            aborted_at = Some(index);
            break;
        }
        consolidator.migrate(step.tenant, step.from, step.to)?;
        applied_steps += 1;
        moved_load += step.load;
    }

    let after = classify_with(consolidator.placement(), plan.at_risk_slack);
    let residual = ResidualRisk::from_report(&after);
    let cured = plan
        .cured
        .iter()
        .filter(|bin| {
            !classify_bin(consolidator.placement(), **bin, plan.at_risk_slack)
                .state
                .needs_attention()
        })
        .count();
    recorder.gauge("at_risk_servers", &[]).set(after.at_risk.len() as f64);
    recorder.gauge("violated_servers", &[]).set(after.violated.len() as f64);
    recorder.gauge("residual_risk_load", &[]).set(residual.residual_load);
    Ok(MitigationOutcome { applied_steps, moved_load, aborted, aborted_at, cured, residual })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubefit_core::monitor::DEFAULT_AT_RISK_SLACK;
    use cubefit_core::{Load, Tenant};
    use cubefit_telemetry::VecSink;
    use std::sync::Arc;

    fn tenant(id: u64, load: f64) -> Tenant {
        Tenant::new(TenantId::new(id), Load::new(load).unwrap())
    }

    /// γ = 2: a crowded pair pushed into violation by drift, plus two
    /// near-empty pairs with plenty of headroom.
    fn drifted_placement() -> (Placement, Vec<BinId>) {
        let mut p = Placement::new(2);
        let b: Vec<BinId> = (0..6).map(|_| p.open_bin(None)).collect();
        p.place_tenant(&tenant(0, 0.8), &[b[0], b[1]]).unwrap();
        p.place_tenant(&tenant(1, 0.6), &[b[0], b[1]]).unwrap();
        p.place_tenant(&tenant(2, 0.2), &[b[2], b[3]]).unwrap();
        p.place_tenant(&tenant(3, 0.2), &[b[4], b[5]]).unwrap();
        // Drift tenant 1 upward: bins 0/1 now carry level 0.8 with a
        // worst-case failover of 0.8 — violated by 0.6.
        p.update_load(TenantId::new(1), 0.8).unwrap();
        assert!(!p.is_robust());
        (p, b)
    }

    #[test]
    fn cures_a_drift_violation_with_enough_budget() {
        let (p, b) = drifted_placement();
        let plan = plan_mitigation(&p, MigrationBudget::unlimited());
        assert!(!plan.is_empty());
        assert_eq!(plan.violated_before, 2);
        assert!(plan.residual.violated.is_empty(), "residual: {:?}", plan.residual);
        assert!(plan.cured.contains(&b[0]) && plan.cured.contains(&b[1]));
        // Replaying the steps lands on a robust placement.
        let mut replay = p;
        for step in &plan.steps {
            assert!(move_repairs(&replay, step.tenant, step.from, step.to));
            replay.move_replica(step.tenant, step.from, step.to).unwrap();
        }
        assert!(replay.is_robust());
        assert!(cubefit_core::oracle::audit(&replay).is_ok());
    }

    #[test]
    fn zero_budget_reports_full_residual_instead_of_panicking() {
        let (p, _) = drifted_placement();
        let before = classify_with(&p, DEFAULT_AT_RISK_SLACK);
        let plan = plan_mitigation(&p, MigrationBudget::moves(0));
        assert!(plan.is_empty());
        assert!(plan.cured.is_empty());
        assert_eq!(plan.residual.violated, before.violated);
        assert_eq!(plan.residual.at_risk, before.at_risk);
        assert!(plan.residual.residual_load > 0.0);
    }

    #[test]
    fn partial_budget_degrades_gracefully() {
        let (p, _) = drifted_placement();
        let full = plan_mitigation(&p, MigrationBudget::unlimited());
        assert!(full.steps.len() >= 2, "need a multi-move repair");
        let partial = plan_mitigation(&p, MigrationBudget::moves(1));
        assert_eq!(partial.steps.len(), 1);
        // Fewer bins cured than the full plan, and the residue says which.
        assert!(partial.cured.len() < full.cured.len() + full.residual.at_risk.len() + 2);
        let residual_total = partial.residual.violated.len() + partial.residual.at_risk.len();
        assert!(residual_total >= 1, "one move cannot cure both violated bins safely");
    }

    #[test]
    fn infeasible_repairs_are_reported_not_forced() {
        // Every server is pinned at capacity: nothing can move anywhere.
        let mut p = Placement::new(2);
        let b: Vec<BinId> = (0..4).map(|_| p.open_bin(None)).collect();
        p.place_tenant(&tenant(0, 1.0), &[b[0], b[1]]).unwrap();
        p.place_tenant(&tenant(1, 1.0), &[b[2], b[3]]).unwrap();
        let plan = plan_mitigation(&p, MigrationBudget::unlimited());
        assert!(plan.is_empty());
        // All four bins are at-risk (slack 0) and stay residual.
        assert_eq!(plan.residual.at_risk.len(), 4);
        assert!(plan.residual.violated.is_empty());
    }

    #[test]
    fn safe_placement_yields_empty_plan_and_clear_residual() {
        let mut p = Placement::new(2);
        let b: Vec<BinId> = (0..2).map(|_| p.open_bin(None)).collect();
        p.place_tenant(&tenant(0, 0.4), &[b[0], b[1]]).unwrap();
        let plan = plan_mitigation(&p, MigrationBudget::unlimited());
        assert!(plan.is_empty());
        assert!(plan.residual.is_clear());
        assert_eq!(plan.attention_before, 0);
    }

    #[test]
    fn apply_cures_live_consolidator_and_sets_gauges() {
        use cubefit_core::{CubeFit, CubeFitConfig};
        let config = CubeFitConfig::builder().replication(2).classes(5).build().unwrap();
        let mut cf = CubeFit::new(config);
        for id in 0..12u64 {
            cf.place(tenant(id, 0.3)).unwrap();
        }
        // Departed heavy tenants leave empty created servers behind —
        // mitigation may drain into them (re-opening trades consolidation
        // for safety).
        for id in 100..108u64 {
            cf.place(tenant(id, 0.9)).unwrap();
        }
        for id in 100..108u64 {
            cf.remove(TenantId::new(id)).unwrap();
        }
        // Drift a few tenants sharply upward to manufacture violations.
        for id in 0..3u64 {
            cf.update_load(TenantId::new(id), 0.9).unwrap();
        }
        let report = classify_with(cf.placement(), DEFAULT_AT_RISK_SLACK);
        assert!(!report.is_robust(), "drift must manufacture a violation");

        let plan = plan_mitigation(cf.placement(), MigrationBudget::unlimited());
        let sink = Arc::new(VecSink::new());
        let recorder = Recorder::with_sink(Arc::clone(&sink));
        let outcome = apply_mitigation(&mut cf, &plan, &recorder).unwrap();
        assert!(!outcome.aborted);
        assert_eq!(outcome.applied_steps, plan.steps.len());
        assert_eq!(outcome.residual.violated, plan.residual.violated);
        assert!(cf.placement().is_robust());
        assert!(cubefit_core::oracle::audit(cf.placement()).is_ok());

        let events = sink.events();
        assert_eq!(
            events.iter().filter(|e| matches!(e, TraceEvent::MitigationPlanned { .. })).count(),
            1
        );
        let snapshot = recorder.snapshot();
        assert!(snapshot.gauges.iter().any(|g| g.name == "violated_servers" && g.value == 0.0));
    }

    #[test]
    fn stale_plan_aborts_atomically() {
        use cubefit_core::{CubeFit, CubeFitConfig};
        let config = CubeFitConfig::builder().replication(2).classes(5).build().unwrap();
        let mut cf = CubeFit::new(config);
        for id in 0..12u64 {
            cf.place(tenant(id, 0.3)).unwrap();
        }
        for id in 0..3u64 {
            cf.update_load(TenantId::new(id), 0.9).unwrap();
        }
        let plan = plan_mitigation(cf.placement(), MigrationBudget::unlimited());
        assert!(plan.steps.len() >= 2, "need a multi-step plan");
        // Invalidate a later step after planning: its tenant departs.
        let victim = plan.steps.last().unwrap().tenant;
        cf.remove(victim).unwrap();
        let before: Vec<f64> = cf.placement().bins().map(|b| b.level()).collect();
        let outcome = apply_mitigation(&mut cf, &plan, &Recorder::disabled()).unwrap();
        assert!(outcome.aborted);
        assert_eq!(outcome.applied_steps, 0);
        let after: Vec<f64> = cf.placement().bins().map(|b| b.level()).collect();
        for (a, b) in before.iter().zip(&after) {
            assert!((a - b).abs() < 1e-12, "rollback must restore pre-apply levels");
        }
        assert!(cubefit_core::oracle::audit(cf.placement()).is_ok());
    }

    #[test]
    fn plan_round_trips_through_json() {
        let (p, _) = drifted_placement();
        let plan = plan_mitigation(&p, MigrationBudget::moves(3));
        let json = plan.to_json();
        let back: MitigationPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
