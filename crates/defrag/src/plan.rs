//! The migration planner: turning a fragmented placement into an ordered
//! list of Theorem-1-safe drain moves.

use crate::budget::MigrationBudget;
use cubefit_core::recovery::move_feasible;
use cubefit_core::{BinId, FragmentationStats, Placement, TenantId};

/// One planned replica migration.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DefragStep {
    /// The tenant whose replica moves.
    pub tenant: TenantId,
    /// The bin being drained.
    pub from: BinId,
    /// The mature bin receiving the replica.
    pub to: BinId,
    /// Replica load moved (`tenant_load / γ`).
    pub load: f64,
}

/// A bin the plan drains to empty, with its pre-drain level.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PlannedClose {
    /// The bin scheduled for closing.
    pub bin: BinId,
    /// Its load level before the drain.
    pub level: f64,
}

/// An executable defragmentation plan.
///
/// Steps are ordered so that applying them sequentially through
/// [`cubefit_core::Placement::move_replica`] keeps every intermediate
/// placement Theorem-1 robust: each step was validated with
/// [`move_feasible`] against the simulated state it executes in, and a
/// drain move only ever shrinks the source bin's own reserve. Whole-bin
/// atomicity is decided at *planning* time — a bin appears in
/// [`DefragPlan::closes`] only if every one of its replicas drains within
/// the budget, so a plan never half-empties a server.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DefragPlan {
    /// Replication factor of the placement the plan was computed for.
    pub gamma: usize,
    /// Budget the plan was computed under.
    pub budget: MigrationBudget,
    /// Migration steps in execution order.
    pub steps: Vec<DefragStep>,
    /// Bins the plan empties, in drain order.
    pub closes: Vec<PlannedClose>,
    /// Total replica load the plan moves.
    pub moved_load: f64,
    /// Open bins before the plan.
    pub open_bins_before: usize,
    /// Open bins once the plan has been applied.
    pub open_bins_after: usize,
    /// Fragmentation statistics before the plan.
    pub fragmentation_before: FragmentationStats,
    /// Predicted fragmentation statistics after the plan.
    pub fragmentation_after: FragmentationStats,
    /// Economic forecast, present when the plan was computed under
    /// [`crate::DefragObjective::Cost`] (absent — and serialized as
    /// `null` — for bin-count plans).
    pub economics: Option<crate::economic::EconomicForecast>,
}

impl DefragPlan {
    /// Whether the plan contains no migrations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Servers the plan closes.
    #[must_use]
    pub fn servers_closed(&self) -> usize {
        self.closes.len()
    }

    /// Pretty JSON rendering for reports.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_owned())
    }
}

/// Computes a defragmentation plan for `placement` under `budget`.
///
/// The planner simulates on a clone: it repeatedly picks the lowest-fill
/// open bin not yet ruled out and tries to drain *all* of its replicas into
/// the fullest feasible survivors (largest replica first, so an undrainable
/// bin fails fast). A bin whose drain does not complete — some replica has
/// no feasible target, or the remaining budget cannot cover the whole
/// bin — is abandoned without committing any of its moves. Draining only
/// ever removes bins, and no step opens one, so the planned placement never
/// has more open bins than the input.
#[must_use]
pub fn plan(placement: &Placement, budget: MigrationBudget) -> DefragPlan {
    let fragmentation_before = placement.fragmentation();
    let mut sim = placement.clone();
    let mut steps: Vec<DefragStep> = Vec::new();
    let mut closes: Vec<PlannedClose> = Vec::new();
    let mut moved_load = 0.0;
    let mut ruled_out: Vec<BinId> = Vec::new();

    loop {
        if !budget.admits(steps.len(), moved_load, 1, 0.0) {
            break;
        }
        // Lowest-fill open bin still worth trying. Once a drain succeeds,
        // survivors only get fuller, so a bin that failed before cannot
        // succeed later — ruled-out bins stay ruled out.
        let candidate = sim
            .bins()
            .filter(|b| b.level() > 0.0 && !ruled_out.contains(&b.id()))
            .min_by(|a, b| a.level().total_cmp(&b.level()).then(a.id().cmp(&b.id())))
            .map(|b| (b.id(), b.level()));
        let Some((bin, level)) = candidate else { break };
        ruled_out.push(bin);
        if let Some((drained, bin_steps, bin_load)) =
            drain_bin(&sim, bin, &budget, steps.len(), moved_load)
        {
            sim = drained;
            moved_load += bin_load;
            steps.extend(bin_steps);
            closes.push(PlannedClose { bin, level });
        }
    }

    let fragmentation_after = sim.fragmentation();
    DefragPlan {
        gamma: placement.gamma(),
        budget,
        steps,
        closes,
        moved_load,
        open_bins_before: placement.open_bins(),
        open_bins_after: sim.open_bins(),
        fragmentation_before,
        fragmentation_after,
        economics: None,
    }
}

/// Tries to drain every replica of `bin` on a trial clone of `sim`,
/// returning the advanced placement and the drain's steps — or `None` if
/// any replica lacks a feasible target or the whole bin does not fit the
/// remaining budget (whole-bin atomicity).
pub(crate) fn drain_bin(
    sim: &Placement,
    bin: BinId,
    budget: &MigrationBudget,
    used_moves: usize,
    used_load: f64,
) -> Option<(Placement, Vec<DefragStep>, f64)> {
    let mut replicas: Vec<(TenantId, f64)> = sim.bin(bin).contents().to_vec();
    if !budget.admits(
        used_moves,
        used_load,
        replicas.len(),
        replicas.iter().map(|(_, load)| load).sum(),
    ) {
        return None;
    }
    // Largest replica first: the hardest move fails before cheap ones are
    // simulated, and big replicas get first pick of the remaining space.
    replicas.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut trial = sim.clone();
    let mut steps = Vec::with_capacity(replicas.len());
    let mut bin_load = 0.0;
    for (tenant, replica) in replicas {
        // Fullest feasible survivor first — drain into mature bins, never
        // into the bin being emptied (`to != bin` is implied by
        // `move_feasible` rejecting `to`s the tenant already occupies, but
        // the filter keeps the scan honest even for level-0 edge cases).
        let mut targets: Vec<(BinId, f64)> = trial
            .bins()
            .filter(|b| b.level() > 0.0 && b.id() != bin)
            .map(|b| (b.id(), b.level()))
            .collect();
        targets.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let to =
            targets.iter().map(|&(id, _)| id).find(|&to| move_feasible(&trial, tenant, bin, to))?;
        trial.move_replica(tenant, bin, to).expect("move_feasible implies valid endpoints");
        steps.push(DefragStep { tenant, from: bin, to, load: replica });
        bin_load += replica;
    }
    Some((trial, steps, bin_load))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubefit_core::{Load, Tenant};

    fn tenant(id: u64, load: f64) -> Tenant {
        Tenant::new(TenantId::new(id), Load::new(load).unwrap())
    }

    /// Two half-full bin pairs plus one thin pair: the thin pair drains
    /// into the fuller pairs and both of its bins close.
    fn fragmented_placement() -> Placement {
        let mut p = Placement::new(2);
        let b: Vec<BinId> = (0..6).map(|_| p.open_bin(None)).collect();
        p.place_tenant(&tenant(0, 0.8), &[b[0], b[1]]).unwrap();
        p.place_tenant(&tenant(1, 0.8), &[b[2], b[3]]).unwrap();
        p.place_tenant(&tenant(2, 0.1), &[b[4], b[5]]).unwrap();
        p
    }

    #[test]
    fn drains_thin_bins_and_closes_them() {
        let p = fragmented_placement();
        let plan = plan(&p, MigrationBudget::unlimited());
        assert_eq!(plan.open_bins_before, 6);
        assert_eq!(plan.open_bins_after, 4);
        assert_eq!(plan.servers_closed(), 2);
        assert_eq!(plan.steps.len(), 2);
        assert!((plan.moved_load - 0.1).abs() < 1e-12);
        assert!(
            plan.fragmentation_after.fragmentation_ratio
                < plan.fragmentation_before.fragmentation_ratio
        );
        // Replaying the plan on the substrate lands on a robust placement
        // with the predicted bin count.
        let mut replay = p;
        for step in &plan.steps {
            assert!(move_feasible(&replay, step.tenant, step.from, step.to));
            replay.move_replica(step.tenant, step.from, step.to).unwrap();
            assert!(replay.is_robust(), "intermediate state must stay robust");
        }
        assert_eq!(replay.open_bins(), plan.open_bins_after);
    }

    #[test]
    fn zero_move_budget_yields_empty_plan() {
        let plan = plan(&fragmented_placement(), MigrationBudget::moves(0));
        assert!(plan.is_empty());
        assert_eq!(plan.open_bins_after, plan.open_bins_before);
    }

    #[test]
    fn whole_bin_atomicity_under_move_budget() {
        // One move of budget cannot fully drain the 2-replica-wide thin
        // pair's bins... but each thin *bin* holds a single replica, so one
        // move drains exactly one bin and the second bin must be left
        // entirely alone.
        let plan = plan(&fragmented_placement(), MigrationBudget::moves(1));
        assert_eq!(plan.steps.len(), 1);
        assert_eq!(plan.servers_closed(), 1);
        assert_eq!(plan.open_bins_after, 5);
    }

    #[test]
    fn load_budget_caps_total_moved_load() {
        let plan = plan(&fragmented_placement(), MigrationBudget::load(0.05));
        // Each thin replica is 0.05; both fit only if the cap were 0.1.
        assert_eq!(plan.steps.len(), 1);
        assert!((plan.moved_load - 0.05).abs() < 1e-12);
    }

    #[test]
    fn never_increases_bin_count_or_opens_bins() {
        let mut p = Placement::new(3);
        let b: Vec<BinId> = (0..9).map(|_| p.open_bin(None)).collect();
        for i in 0..3 {
            let bins = [b[3 * i], b[3 * i + 1], b[3 * i + 2]];
            p.place_tenant(&tenant(i as u64, 0.3 + 0.2 * i as f64), &bins).unwrap();
        }
        let created = p.created_bins();
        let plan = plan(&p, MigrationBudget::unlimited());
        assert!(plan.open_bins_after <= plan.open_bins_before);
        for step in &plan.steps {
            assert!(step.to.index() < created, "plans must never open bins");
        }
    }

    #[test]
    fn full_placement_produces_empty_plan() {
        let mut p = Placement::new(2);
        let b: Vec<BinId> = (0..2).map(|_| p.open_bin(None)).collect();
        p.place_tenant(&tenant(0, 1.0), &[b[0], b[1]]).unwrap();
        let plan = plan(&p, MigrationBudget::unlimited());
        assert!(plan.is_empty());
        assert_eq!(plan.servers_closed(), 0);
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = plan(&fragmented_placement(), MigrationBudget::moves(8));
        let json = plan.to_json();
        let back: DefragPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
