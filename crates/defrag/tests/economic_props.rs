//! Property tests for the economic planner (satellite of the renting
//! PR): raising the rent rate never makes the cost-aware planner migrate
//! less.
//!
//! Two layers:
//!
//! 1. **Scoring monotonicity** (pure, exhaustive): for any bin,
//!    [`drain_score`] at a higher rent rate has a weakly higher net —
//!    migration pricing is rent-independent by design, so only the
//!    rent-saved side moves, and it moves up. A drain profitable at some
//!    rate is profitable at every higher rate.
//! 2. **Plan monotonicity** (end-to-end): across seeded churned
//!    placements and an increasing rate sweep, the number of planned
//!    steps (and closed servers) never decreases.

use cubefit_core::{BinId, Consolidator, CubeFit, CubeFitConfig, Load, Tenant, TenantId};
use cubefit_defrag::{drain_score, plan_economic, MigrationBudget};
use cubefit_economics::{CostModel, LeaseLedger, LeaseTerms, MigrationPricing};
use proptest::prelude::*;

const HORIZON_MS: u64 = 7_200_000;

/// A churned CubeFit placement: place `count` tenants, remove two thirds.
fn churned(seed: u64, count: u64) -> CubeFit {
    let config = CubeFitConfig::builder().replication(2).classes(5).build().unwrap();
    let mut cubefit = CubeFit::new(config);
    for id in 0..count {
        let load = 0.03 + 0.02 * ((id.wrapping_mul(seed | 1)) % 12) as f64;
        cubefit.place(Tenant::new(TenantId::new(id), Load::new(load).unwrap())).unwrap();
    }
    for id in 0..count {
        if (id.wrapping_add(seed)) % 3 != 0 {
            cubefit.remove(TenantId::new(id)).unwrap();
        }
    }
    cubefit
}

/// A ledger with a fresh lease on every open bin.
fn ledger_over(cubefit: &CubeFit, block_ms: u64, hourly: f64) -> LeaseLedger {
    let terms = LeaseTerms::new(block_ms, CostModel::with_hourly_usd(hourly));
    let mut ledger = LeaseLedger::new(terms);
    let open: Vec<BinId> =
        cubefit.placement().bins().filter(|b| b.level() > 0.0).map(|b| b.id()).collect();
    ledger.advance(0, open);
    ledger
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Scoring monotonicity: net saving is weakly increasing in the rent
    /// rate for every open bin, so the profitable set only grows.
    #[test]
    fn drain_scores_are_monotone_in_rent_rate(
        seed in 1u64..500,
        block_ms in 1_000u64..3_600_000,
        low_cents in 1u32..2_000,
        factor in 2u32..50,
    ) {
        let cubefit = churned(seed, 36);
        let low = f64::from(low_cents) / 100.0;
        let high = low * f64::from(factor);
        let ledger_low = ledger_over(&cubefit, block_ms, low);
        let ledger_high = ledger_over(&cubefit, block_ms, high);
        let pricing = MigrationPricing::reference();
        for bin in cubefit.placement().bins().filter(|b| b.level() > 0.0).map(|b| b.id()) {
            let s_low = drain_score(cubefit.placement(), bin, &ledger_low, &pricing, HORIZON_MS);
            let s_high = drain_score(cubefit.placement(), bin, &ledger_high, &pricing, HORIZON_MS);
            prop_assert!(s_high.rent_saved_usd >= s_low.rent_saved_usd);
            prop_assert_eq!(s_high.migration_usd, s_low.migration_usd,
                "migration pricing must not move with the rent rate");
            prop_assert!(s_high.net_usd >= s_low.net_usd);
            if s_low.net_usd > 0.0 {
                prop_assert!(s_high.net_usd > 0.0,
                    "a profitable drain must stay profitable at a higher rate");
            }
        }
    }

    /// End-to-end: more rent, weakly more planned migration.
    #[test]
    fn plans_are_monotone_in_rent_rate(seed in 1u64..200) {
        let cubefit = churned(seed, 36);
        let pricing = MigrationPricing::reference();
        let mut last_steps = 0usize;
        let mut last_closes = 0usize;
        for hourly in [0.01, 0.1, 1.0, 10.0, 100.0] {
            let ledger = ledger_over(&cubefit, 600_000, hourly);
            let plan = plan_economic(
                cubefit.placement(),
                MigrationBudget::unlimited(),
                &ledger,
                &pricing,
                HORIZON_MS,
            );
            prop_assert!(plan.steps.len() >= last_steps,
                "steps shrank from {} to {} at rate {}", last_steps, plan.steps.len(), hourly);
            prop_assert!(plan.servers_closed() >= last_closes,
                "closes shrank from {} to {} at rate {}",
                last_closes, plan.servers_closed(), hourly);
            last_steps = plan.steps.len();
            last_closes = plan.servers_closed();
        }
    }
}
