//! Property tests for `cubefit-telemetry`: histogram quantiles against an
//! exact sorted-vector oracle, and JSONL round-trips for randomly filled
//! trace events of every variant.

use cubefit_telemetry::{Histogram, TraceEvent};
use proptest::prelude::*;

/// Exact nearest-rank quantile over a sorted sample — the oracle the
/// log-bucketed histogram approximates.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The histogram's bucket geometry (16 subbuckets per octave) bounds the
/// relative error of any quantile by half a bucket width: 2^(1/16) − 1
/// ≈ 4.4%, halved by midpoint reporting to ≈ 2.2%. Allow 3% for the
/// rank-rounding interplay at bucket edges.
const QUANTILE_TOLERANCE: f64 = 0.03;

fn close(approx: f64, exact: f64) -> bool {
    if exact == 0.0 {
        return approx.abs() < 1e-12;
    }
    ((approx - exact) / exact).abs() <= QUANTILE_TOLERANCE
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantiles land within half a bucket of the exact nearest-rank
    /// answer, across several orders of magnitude of input.
    #[test]
    fn quantiles_match_sorted_oracle(
        raw in prop::collection::vec((1u32..1_000_000, 1u32..1_000), 1..400),
    ) {
        // Span ~9 decades: value = mantissa / divisor ∈ (1e-3, 1e6).
        let samples: Vec<f64> =
            raw.iter().map(|&(m, d)| f64::from(m) / f64::from(d)).collect();
        let histogram = Histogram::new();
        for &s in &samples {
            histogram.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);

        prop_assert_eq!(histogram.count(), samples.len() as u64);
        let exact_sum: f64 = samples.iter().sum();
        prop_assert!((histogram.sum() - exact_sum).abs() <= 1e-9 * exact_sum.abs().max(1.0));
        prop_assert_eq!(histogram.min(), sorted[0]);
        prop_assert_eq!(histogram.max(), sorted[sorted.len() - 1]);

        for q in [0.0, 0.25, 0.5, 0.9, 0.99] {
            let approx = histogram.quantile(q);
            let exact = exact_quantile(&sorted, q);
            prop_assert!(
                close(approx, exact),
                "q={} approx={} exact={} over {} samples",
                q, approx, exact, samples.len()
            );
        }
    }

    /// Identical samples collapse to a single bucket: every quantile is
    /// that value exactly (the clamp to [min, max] takes over).
    #[test]
    fn constant_stream_has_flat_quantiles(
        mantissa in 1u32..1_000_000,
        count in 1usize..200,
    ) {
        let value = f64::from(mantissa) / 1_000.0;
        let histogram = Histogram::new();
        for _ in 0..count {
            histogram.record(value);
        }
        for q in [0.0, 0.5, 0.99, 1.0] {
            prop_assert_eq!(histogram.quantile(q), value);
        }
        prop_assert_eq!(histogram.count(), count as u64);
    }

    /// Snapshots agree with the live histogram they were taken from.
    #[test]
    fn snapshot_mirrors_live_histogram(
        raw in prop::collection::vec(1u32..100_000, 1..200),
    ) {
        let histogram = Histogram::new();
        for &m in &raw {
            histogram.record(f64::from(m) / 100.0);
        }
        let snapshot = histogram.snapshot();
        prop_assert_eq!(snapshot.count, histogram.count());
        prop_assert_eq!(snapshot.min, histogram.min());
        prop_assert_eq!(snapshot.max, histogram.max());
        prop_assert_eq!(snapshot.p50, histogram.quantile(0.5));
        prop_assert_eq!(snapshot.p90, histogram.quantile(0.9));
        prop_assert_eq!(snapshot.p99, histogram.quantile(0.99));
    }

    /// Merging two histograms is indistinguishable from recording the
    /// concatenated sample stream: counts, min and max are exact, sums
    /// agree to float addition order, and — because both sides share the
    /// same log-bucket geometry and merge adds bucket counts — every
    /// quantile matches the concatenated histogram *exactly* and stays
    /// within a bucket of the exact sorted oracle.
    #[test]
    fn merge_equals_histogram_of_concatenated_samples(
        left_raw in prop::collection::vec((1u32..1_000_000, 1u32..1_000), 1..200),
        right_raw in prop::collection::vec((1u32..1_000_000, 1u32..1_000), 1..200),
    ) {
        let to_samples = |raw: &[(u32, u32)]| -> Vec<f64> {
            raw.iter().map(|&(m, d)| f64::from(m) / f64::from(d)).collect()
        };
        let left_samples = to_samples(&left_raw);
        let right_samples = to_samples(&right_raw);

        let left = Histogram::new();
        let right = Histogram::new();
        let concatenated = Histogram::new();
        for &s in &left_samples {
            left.record(s);
            concatenated.record(s);
        }
        for &s in &right_samples {
            right.record(s);
            concatenated.record(s);
        }
        left.merge(&right);

        prop_assert_eq!(left.count(), concatenated.count());
        prop_assert_eq!(left.min(), concatenated.min());
        prop_assert_eq!(left.max(), concatenated.max());
        let exact_sum: f64 = left_samples.iter().chain(&right_samples).sum();
        prop_assert!((left.sum() - exact_sum).abs() <= 1e-9 * exact_sum.abs().max(1.0));

        let mut sorted: Vec<f64> =
            left_samples.iter().chain(&right_samples).copied().collect();
        sorted.sort_by(f64::total_cmp);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            // Bucket counts are identical, so the merged histogram and the
            // concatenated one report the same estimate bit-for-bit.
            prop_assert_eq!(left.quantile(q), concatenated.quantile(q));
            let exact = exact_quantile(&sorted, q);
            prop_assert!(
                close(left.quantile(q), exact),
                "q={} merged={} exact={}", q, left.quantile(q), exact
            );
        }

        // The snapshot-level merge agrees with the live-histogram merge.
        let mut snap = Histogram::new().snapshot();
        for &s in &left_samples {
            let h = Histogram::new();
            h.record(s);
            snap.merge(&h.snapshot());
        }
        for &s in &right_samples {
            let h = Histogram::new();
            h.record(s);
            snap.merge(&h.snapshot());
        }
        prop_assert_eq!(snap.count, left.count());
        prop_assert_eq!(snap.min, left.min());
        prop_assert_eq!(snap.max, left.max());
        prop_assert_eq!(snap.p50, left.quantile(0.5));
        prop_assert_eq!(snap.p99, left.quantile(0.99));
    }

    /// Every trace-event variant survives a JSONL round-trip with
    /// arbitrary field values, not just the fixed samples of the unit
    /// tests.
    #[test]
    fn random_events_roundtrip_through_json(
        tenant in 0u64..u64::MAX / 2,
        bin in 0usize..1_000_000,
        class in 0usize..64,
        level_m in 0u32..1_000,
        flag_bit in 0u32..2,
        count in 0usize..10_000,
    ) {
        let flag = flag_bit == 1;
        let level = f64::from(level_m) / 1_000.0;
        let events = [
            TraceEvent::TenantArrived { tenant, load: level, seq: tenant },
            TraceEvent::MfitOutcome {
                tenant,
                class,
                candidates_scanned: count,
                hit: flag,
            },
            TraceEvent::SlotAssigned { tenant, class, level: class, bin, slot: count },
            TraceEvent::FitAttempt { tenant, replica: class, scanned: count, opened_new: flag },
            TraceEvent::BinOpened {
                bin,
                class: if flag { Some(class) } else { None },
                total_open: count,
            },
            TraceEvent::BinClosed { bin, level },
            TraceEvent::RobustnessChecked { robust: flag, worst_margin: level, violations: count },
            TraceEvent::Placed {
                tenant,
                bins: vec![bin, bin + 1],
                stage: "Cube".to_owned(),
                opened: count,
            },
        ];
        for event in &events {
            let line = serde_json::to_string(event).unwrap();
            prop_assert!(!line.contains('\n'), "JSONL lines must be single-line");
            let back: TraceEvent = serde_json::from_str(&line).unwrap();
            prop_assert_eq!(&back, event);
        }
    }
}
