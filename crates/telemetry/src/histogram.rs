//! A log-bucketed, HDR-style histogram.
//!
//! Values are assigned to geometrically spaced buckets — 16 per octave,
//! giving a worst-case relative quantile error of `2^(1/32) − 1 ≈ 2.2%`
//! when estimates are taken at the bucket's geometric midpoint. All
//! mutation is lock-free (`AtomicU64` per bucket plus atomic min/max/sum),
//! so recording from concurrent simulation threads needs no coordination.

use std::sync::atomic::{AtomicU64, Ordering};

/// Buckets per factor-of-two range of values.
const SUBBUCKETS_PER_OCTAVE: usize = 16;
/// Smallest distinguishable value; anything at or below lands in bucket 0.
const MIN_TRACKABLE: f64 = 1e-9;
/// Octaves covered above [`MIN_TRACKABLE`] (up to ~1.15e9).
const OCTAVES: usize = 60;
/// Regular buckets; one extra slot catches overflow.
const BUCKETS: usize = OCTAVES * SUBBUCKETS_PER_OCTAVE + 1;

/// A fixed-range histogram of non-negative `f64` samples.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of samples, stored as `f64` bits and updated by CAS.
    sum_bits: AtomicU64,
    /// Minimum sample, as `f64` bits (`f64::INFINITY` when empty).
    min_bits: AtomicU64,
    /// Maximum sample, as `f64` bits (`0.0` when empty).
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    fn bucket_index(value: f64) -> usize {
        if !value.is_finite() || value <= MIN_TRACKABLE {
            return 0;
        }
        let octaves = (value / MIN_TRACKABLE).log2();
        let index = (octaves * SUBBUCKETS_PER_OCTAVE as f64) as usize;
        index.min(BUCKETS - 1)
    }

    /// The value range `[lo, hi)` covered by `index`, and its geometric
    /// midpoint used for quantile estimates.
    fn bucket_bounds(index: usize) -> (f64, f64) {
        if index == 0 {
            return (0.0, MIN_TRACKABLE);
        }
        let per = SUBBUCKETS_PER_OCTAVE as f64;
        let lo = MIN_TRACKABLE * 2f64.powf(index as f64 / per);
        let hi = MIN_TRACKABLE * 2f64.powf((index + 1) as f64 / per);
        (lo, hi)
    }

    /// Records one sample. Negative, zero, and non-finite samples are
    /// clamped into the lowest bucket (they still count toward `count`).
    pub fn record(&self, value: f64) {
        let value = if value.is_finite() && value > 0.0 { value } else { 0.0 };
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Atomic f64 accumulate / min / max via CAS on the bit patterns.
        let _ = self.sum_bits.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
            Some((f64::from_bits(bits) + value).to_bits())
        });
        let _ = self.min_bits.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
            (value < f64::from_bits(bits)).then(|| value.to_bits())
        });
        let _ = self.max_bits.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
            (value > f64::from_bits(bits)).then(|| value.to_bits())
        });
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Exact mean of recorded samples (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() / count as f64
        }
    }

    /// Exact minimum sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        let min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        if min.is_finite() {
            min
        } else {
            0.0
        }
    }

    /// Exact maximum sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }

    /// Nearest-rank quantile estimate for `q` in `[0, 1]`.
    ///
    /// The estimate is the geometric midpoint of the bucket holding the
    /// ranked sample, clamped to the exact observed `[min, max]`, so the
    /// relative error is bounded by half a bucket width (≈2.2%).
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest rank, 1-based: smallest rank with cumulative ≥ q·count.
        let rank = ((q * count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= rank {
                let (lo, hi) = Self::bucket_bounds(index);
                let estimate = if index == 0 { lo } else { (lo * hi).sqrt() };
                return estimate.clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// A serializable snapshot (non-empty buckets only).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(index, bucket)| {
                    let count = bucket.load(Ordering::Relaxed);
                    (count > 0).then_some((index as u64, count))
                })
                .collect(),
        }
    }
}

impl Clone for Histogram {
    fn clone(&self) -> Self {
        Histogram {
            buckets: self
                .buckets
                .iter()
                .map(|b| AtomicU64::new(b.load(Ordering::Relaxed)))
                .collect(),
            count: AtomicU64::new(self.count.load(Ordering::Relaxed)),
            sum_bits: AtomicU64::new(self.sum_bits.load(Ordering::Relaxed)),
            min_bits: AtomicU64::new(self.min_bits.load(Ordering::Relaxed)),
            max_bits: AtomicU64::new(self.max_bits.load(Ordering::Relaxed)),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("mean", &self.mean())
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

/// Point-in-time contents of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Exact minimum.
    pub min: f64,
    /// Exact maximum.
    pub max: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// Sparse `(bucket index, count)` pairs for non-empty buckets.
    pub buckets: Vec<(u64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn mean_min_max_are_exact() {
        let h = Histogram::new();
        for v in [0.5, 1.5, 4.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert!((h.mean() - 2.0).abs() < 1e-12);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 4.0);
    }

    #[test]
    fn quantiles_are_within_bucket_tolerance() {
        let h = Histogram::new();
        for i in 1..=1000 {
            h.record(f64::from(i) / 1000.0);
        }
        for (q, exact) in [(0.5, 0.5), (0.9, 0.9), (0.99, 0.99)] {
            let got = h.quantile(q);
            assert!((got - exact).abs() <= exact * 0.03, "q{q}: got {got}, exact {exact}");
        }
    }

    #[test]
    fn degenerate_samples_clamp_to_lowest_bucket() {
        let h = Histogram::new();
        h.record(-3.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.quantile(1.0), 0.0);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let h = Histogram::new();
        for v in [0.001, 0.01, 0.25, 3.0, 3.0] {
            h.record(v);
        }
        let snap = h.snapshot();
        let text = serde_json::to_string(&snap).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn huge_values_land_in_overflow_bucket() {
        let h = Histogram::new();
        h.record(1e300);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 1e300);
        // The quantile clamps to the exact max.
        assert_eq!(h.quantile(1.0), 1e300);
    }
}
