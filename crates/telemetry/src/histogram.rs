//! A log-bucketed, HDR-style histogram.
//!
//! Values are assigned to geometrically spaced buckets — 16 per octave,
//! giving a worst-case relative quantile error of `2^(1/32) − 1 ≈ 2.2%`
//! when estimates are taken at the bucket's geometric midpoint. All
//! mutation is lock-free (`AtomicU64` per bucket plus atomic min/max/sum),
//! so recording from concurrent simulation threads needs no coordination.

use std::sync::atomic::{AtomicU64, Ordering};

/// Buckets per factor-of-two range of values.
const SUBBUCKETS_PER_OCTAVE: usize = 16;
/// Smallest distinguishable value; anything at or below lands in bucket 0.
const MIN_TRACKABLE: f64 = 1e-9;
/// Octaves covered above [`MIN_TRACKABLE`] (up to ~1.15e9).
const OCTAVES: usize = 60;
/// Regular buckets; one extra slot catches overflow.
const BUCKETS: usize = OCTAVES * SUBBUCKETS_PER_OCTAVE + 1;

/// A fixed-range histogram of non-negative `f64` samples.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of samples, stored as `f64` bits and updated by CAS.
    sum_bits: AtomicU64,
    /// Minimum sample, as `f64` bits (`f64::INFINITY` when empty).
    min_bits: AtomicU64,
    /// Maximum sample, as `f64` bits (`0.0` when empty).
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    fn bucket_index(value: f64) -> usize {
        if !value.is_finite() || value <= MIN_TRACKABLE {
            return 0;
        }
        let octaves = (value / MIN_TRACKABLE).log2();
        let index = (octaves * SUBBUCKETS_PER_OCTAVE as f64) as usize;
        index.min(BUCKETS - 1)
    }

    /// The value range `[lo, hi)` covered by `index`, and its geometric
    /// midpoint used for quantile estimates.
    fn bucket_bounds(index: usize) -> (f64, f64) {
        if index == 0 {
            return (0.0, MIN_TRACKABLE);
        }
        let per = SUBBUCKETS_PER_OCTAVE as f64;
        let lo = MIN_TRACKABLE * 2f64.powf(index as f64 / per);
        let hi = MIN_TRACKABLE * 2f64.powf((index + 1) as f64 / per);
        (lo, hi)
    }

    /// Records one sample. Negative, zero, and non-finite samples are
    /// clamped into the lowest bucket (they still count toward `count`).
    pub fn record(&self, value: f64) {
        let value = if value.is_finite() && value > 0.0 { value } else { 0.0 };
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Atomic f64 accumulate / min / max via CAS on the bit patterns.
        let _ = self.sum_bits.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
            Some((f64::from_bits(bits) + value).to_bits())
        });
        let _ = self.min_bits.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
            (value < f64::from_bits(bits)).then(|| value.to_bits())
        });
        let _ = self.max_bits.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
            (value > f64::from_bits(bits)).then(|| value.to_bits())
        });
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Exact mean of recorded samples (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() / count as f64
        }
    }

    /// Exact minimum sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        let min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        if min.is_finite() {
            min
        } else {
            0.0
        }
    }

    /// Exact maximum sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }

    /// Nearest-rank quantile estimate for `q` in `[0, 1]`.
    ///
    /// The estimate is the geometric midpoint of the bucket holding the
    /// ranked sample, clamped to the exact observed `[min, max]`, so the
    /// relative error is bounded by half a bucket width (≈2.2%).
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest rank, 1-based: smallest rank with cumulative ≥ q·count.
        let rank = ((q * count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= rank {
                let (lo, hi) = Self::bucket_bounds(index);
                let estimate = if index == 0 { lo } else { (lo * hi).sqrt() };
                return estimate.clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Absorbs every sample of `other` into `self` by adding log-bucket
    /// counts — the merge primitive behind label rollups. Count and sum
    /// merge exactly; quantile estimates of the merged histogram carry the
    /// same one-bucket error bound as single-histogram estimates because
    /// both sides share the same fixed bucket boundaries.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        let other_sum = other.sum();
        let _ = self.sum_bits.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
            Some((f64::from_bits(bits) + other_sum).to_bits())
        });
        let other_min = f64::from_bits(other.min_bits.load(Ordering::Relaxed));
        let _ = self.min_bits.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
            (other_min < f64::from_bits(bits)).then(|| other_min.to_bits())
        });
        let other_max = other.max();
        let _ = self.max_bits.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
            (other_max > f64::from_bits(bits)).then(|| other_max.to_bits())
        });
    }

    /// A serializable snapshot (non-empty buckets only).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(index, bucket)| {
                    let count = bucket.load(Ordering::Relaxed);
                    (count > 0).then_some((index as u64, count))
                })
                .collect(),
        }
    }
}

impl Clone for Histogram {
    fn clone(&self) -> Self {
        Histogram {
            buckets: self
                .buckets
                .iter()
                .map(|b| AtomicU64::new(b.load(Ordering::Relaxed)))
                .collect(),
            count: AtomicU64::new(self.count.load(Ordering::Relaxed)),
            sum_bits: AtomicU64::new(self.sum_bits.load(Ordering::Relaxed)),
            min_bits: AtomicU64::new(self.min_bits.load(Ordering::Relaxed)),
            max_bits: AtomicU64::new(self.max_bits.load(Ordering::Relaxed)),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("mean", &self.mean())
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

/// Point-in-time contents of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Exact minimum.
    pub min: f64,
    /// Exact maximum.
    pub max: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// Sparse `(bucket index, count)` pairs for non-empty buckets.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// An empty snapshot (what an untouched histogram reports).
    #[must_use]
    pub fn empty() -> Self {
        Histogram::new().snapshot()
    }

    /// Nearest-rank quantile estimate over the sparse buckets, clamped to
    /// the recorded `[min, max]` — the same estimator [`Histogram`] uses,
    /// usable after [`HistogramSnapshot::merge`] recombines buckets.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for &(index, count) in &self.buckets {
            cumulative += count;
            if cumulative >= rank {
                let (lo, hi) = Histogram::bucket_bounds(index as usize);
                let estimate = if index == 0 { lo } else { (lo * hi).sqrt() };
                return estimate.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges `other` into `self` on log-bucket counts: counts and sums
    /// add exactly, min/max widen, and the quantile estimates are
    /// recomputed from the combined buckets (same one-bucket error bound,
    /// since every histogram shares the fixed bucket boundaries).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        let mut merged: std::collections::BTreeMap<u64, u64> =
            self.buckets.iter().copied().collect();
        for &(index, count) in &other.buckets {
            *merged.entry(index).or_insert(0) += count;
        }
        self.buckets = merged.into_iter().collect();
        self.min = if self.count == 0 { other.min } else { self.min.min(other.min) };
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
        self.p50 = self.quantile(0.50);
        self.p90 = self.quantile(0.90);
        self.p99 = self.quantile(0.99);
    }

    /// The samples recorded since `earlier` was taken, assuming `earlier`
    /// is a previous snapshot of the same histogram: bucket counts
    /// subtract saturating, count/sum subtract, and min/max are re-derived
    /// from the surviving delta buckets' bounds (the exact extremes of the
    /// interval are unknowable from cumulative snapshots).
    #[must_use]
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let before: std::collections::BTreeMap<u64, u64> =
            earlier.buckets.iter().copied().collect();
        let buckets: Vec<(u64, u64)> = self
            .buckets
            .iter()
            .filter_map(|&(index, count)| {
                let remaining = count.saturating_sub(before.get(&index).copied().unwrap_or(0));
                (remaining > 0).then_some((index, remaining))
            })
            .collect();
        let count = self.count.saturating_sub(earlier.count);
        let (min, max) = match (buckets.first(), buckets.last()) {
            (Some(&(first, _)), Some(&(last, _))) => (
                Histogram::bucket_bounds(first as usize).0.max(self.min),
                Histogram::bucket_bounds(last as usize).1.min(self.max),
            ),
            _ => (0.0, 0.0),
        };
        let mut delta = HistogramSnapshot {
            count,
            sum: if count == 0 { 0.0 } else { self.sum - earlier.sum },
            min,
            max,
            p50: 0.0,
            p90: 0.0,
            p99: 0.0,
            buckets,
        };
        delta.p50 = delta.quantile(0.50);
        delta.p90 = delta.quantile(0.90);
        delta.p99 = delta.quantile(0.99);
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn mean_min_max_are_exact() {
        let h = Histogram::new();
        for v in [0.5, 1.5, 4.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert!((h.mean() - 2.0).abs() < 1e-12);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 4.0);
    }

    #[test]
    fn quantiles_are_within_bucket_tolerance() {
        let h = Histogram::new();
        for i in 1..=1000 {
            h.record(f64::from(i) / 1000.0);
        }
        for (q, exact) in [(0.5, 0.5), (0.9, 0.9), (0.99, 0.99)] {
            let got = h.quantile(q);
            assert!((got - exact).abs() <= exact * 0.03, "q{q}: got {got}, exact {exact}");
        }
    }

    #[test]
    fn degenerate_samples_clamp_to_lowest_bucket() {
        let h = Histogram::new();
        h.record(-3.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.quantile(1.0), 0.0);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let h = Histogram::new();
        for v in [0.001, 0.01, 0.25, 3.0, 3.0] {
            h.record(v);
        }
        let snap = h.snapshot();
        let text = serde_json::to_string(&snap).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn merge_equals_histogram_of_concatenated_samples() {
        let a = Histogram::new();
        let b = Histogram::new();
        let both = Histogram::new();
        for i in 1..=500 {
            let v = f64::from(i) / 250.0;
            a.record(v);
            both.record(v);
        }
        for i in 1..=300 {
            let v = f64::from(i) * 0.01;
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        let merged = a.snapshot();
        let expected = both.snapshot();
        assert_eq!(merged.buckets, expected.buckets, "bucket counts merge exactly");
        assert_eq!(merged.count, expected.count);
        assert_eq!(merged.min, expected.min);
        assert_eq!(merged.max, expected.max);
        // Sums agree up to float addition order.
        assert!((merged.sum - expected.sum).abs() < 1e-9);
        assert_eq!(
            (merged.p50, merged.p90, merged.p99),
            (expected.p50, expected.p90, expected.p99)
        );
    }

    #[test]
    fn snapshot_merge_recomputes_quantiles() {
        let lo = Histogram::new();
        let hi = Histogram::new();
        for i in 1..=100 {
            lo.record(f64::from(i) / 1000.0); // 0.001..0.1
            hi.record(f64::from(i) / 10.0); // 0.1..10
        }
        let mut merged = lo.snapshot();
        merged.merge(&hi.snapshot());
        assert_eq!(merged.count, 200);
        assert!((merged.sum - (lo.snapshot().sum + hi.snapshot().sum)).abs() < 1e-12);
        assert_eq!(merged.min, 0.001);
        assert_eq!(merged.max, 10.0);
        // The merged median sits at the seam between the two populations.
        assert!(merged.p50 >= 0.09 && merged.p50 <= 0.12, "p50 {}", merged.p50);
        // Merging an empty snapshot is a no-op.
        let before = merged.clone();
        merged.merge(&HistogramSnapshot::empty());
        assert_eq!(merged, before);
    }

    #[test]
    fn snapshot_diff_isolates_the_interval() {
        let h = Histogram::new();
        for v in [0.01, 0.02, 0.04] {
            h.record(v);
        }
        let earlier = h.snapshot();
        for v in [1.0, 2.0, 4.0] {
            h.record(v);
        }
        let delta = h.snapshot().diff(&earlier);
        assert_eq!(delta.count, 3);
        assert!((delta.sum - 7.0).abs() < 1e-12);
        // The delta's extremes come from the surviving buckets, so they
        // bracket the true interval values.
        assert!(delta.min <= 1.0 && delta.min > 0.04, "min {}", delta.min);
        assert!(delta.max >= 4.0 && delta.max < 8.0, "max {}", delta.max);
        assert!(delta.p50 >= 1.0 && delta.p50 <= 4.3, "p50 {}", delta.p50);
        // Diffing a snapshot against itself leaves nothing.
        let snap = h.snapshot();
        assert_eq!(snap.diff(&snap).count, 0);
    }

    #[test]
    fn huge_values_land_in_overflow_bucket() {
        let h = Histogram::new();
        h.record(1e300);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 1e300);
        // The quantile clamps to the exact max.
        assert_eq!(h.quantile(1.0), 1e300);
    }
}
