//! The [`Recorder`] facade instrumented code holds.

use crate::histogram::Histogram;
use crate::registry::{Counter, Gauge, MetricsSnapshot, Registry};
use crate::trace::{TraceEvent, TraceSink};
use std::sync::Arc;

struct Inner {
    registry: Registry,
    sink: Option<Box<dyn TraceSink>>,
}

/// A cheap, cloneable handle to a metrics registry and an optional trace
/// sink.
///
/// The default recorder is **disabled**: every operation short-circuits on
/// one `Option` branch, and [`Recorder::emit`] takes a closure so event
/// payloads are never even constructed. Algorithms can therefore keep a
/// `Recorder` field unconditionally, including in benchmarks.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// A recorder that ignores everything (same as `Recorder::default()`).
    #[must_use]
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// A recorder collecting metrics but writing no trace.
    #[must_use]
    pub fn enabled() -> Self {
        Recorder { inner: Some(Arc::new(Inner { registry: Registry::new(), sink: None })) }
    }

    /// A recorder collecting metrics and streaming events into `sink`.
    #[must_use]
    pub fn with_sink(sink: impl TraceSink + 'static) -> Self {
        Recorder {
            inner: Some(Arc::new(Inner { registry: Registry::new(), sink: Some(Box::new(sink)) })),
        }
    }

    /// Whether this recorder collects anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records `event` if enabled and a sink is attached. The closure is
    /// only called when the event will actually be written.
    pub fn emit(&self, event: impl FnOnce() -> TraceEvent) {
        if let Some(inner) = &self.inner {
            if let Some(sink) = &inner.sink {
                sink.record(&event());
            }
        }
    }

    /// Resolves a counter handle. Disabled recorders hand back a detached
    /// counter that counts into nowhere, so call sites need no branching.
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match &self.inner {
            Some(inner) => inner.registry.counter(name, labels),
            None => Counter::default(),
        }
    }

    /// Resolves a gauge handle (detached when disabled).
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match &self.inner {
            Some(inner) => inner.registry.gauge(name, labels),
            None => Gauge::default(),
        }
    }

    /// Resolves a histogram handle (detached when disabled).
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match &self.inner {
            Some(inner) => inner.registry.histogram(name, labels),
            None => Arc::new(Histogram::new()),
        }
    }

    /// Snapshots all metrics (empty when disabled).
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => inner.registry.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// Flushes the trace sink, if any, surfacing any I/O error the sink
    /// accumulated (a truncated trace file, a full disk). Disabled
    /// recorders and recorders without a sink always succeed.
    pub fn flush(&self) -> Result<(), String> {
        if let Some(inner) = &self.inner {
            if let Some(sink) = &inner.sink {
                return sink.flush();
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => f
                .debug_struct("Recorder")
                .field("enabled", &true)
                .field("sink", &inner.sink.is_some())
                .finish(),
            None => f.debug_struct("Recorder").field("enabled", &false).finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::VecSink;
    use std::sync::Arc as StdArc;

    #[test]
    fn disabled_recorder_is_inert() {
        let recorder = Recorder::default();
        assert!(!recorder.is_enabled());
        let counter = recorder.counter("x", &[]);
        counter.inc();
        // The count lands in a detached cell; the snapshot stays empty.
        assert_eq!(counter.get(), 1);
        assert_eq!(recorder.snapshot(), MetricsSnapshot::default());
        let mut called = false;
        recorder.emit(|| {
            called = true;
            TraceEvent::BinClosed { bin: 0, level: 0.0 }
        });
        assert!(!called, "disabled recorder must not build events");
    }

    #[test]
    fn enabled_recorder_collects_metrics() {
        let recorder = Recorder::enabled();
        recorder.counter("placed", &[("algorithm", "cubefit")]).add(3);
        recorder.gauge("utilization", &[]).set(0.5);
        let snap = recorder.snapshot();
        assert_eq!(snap.counter("placed", &[("algorithm", "cubefit")]), 3);
        assert_eq!(snap.gauges.len(), 1);
    }

    #[test]
    fn clones_share_state() {
        let recorder = Recorder::enabled();
        let clone = recorder.clone();
        clone.counter("n", &[]).inc();
        assert_eq!(recorder.snapshot().counter("n", &[]), 1);
    }

    #[test]
    fn sink_receives_events_without_metrics_interference() {
        // Keep a second handle to the sink through an Arc wrapper.
        struct Shared(StdArc<VecSink>);
        impl crate::trace::TraceSink for Shared {
            fn record(&self, event: &TraceEvent) {
                self.0.record(event);
            }
        }
        let sink = StdArc::new(VecSink::new());
        let recorder = Recorder::with_sink(Shared(StdArc::clone(&sink)));
        recorder.emit(|| TraceEvent::BinOpened { bin: 1, class: None, total_open: 1 });
        assert_eq!(recorder.flush(), Ok(()));
        assert_eq!(
            sink.events(),
            vec![TraceEvent::BinOpened { bin: 1, class: None, total_open: 1 }]
        );
    }
}
