//! Streaming trace analysis: one pass over a JSONL trace of any length,
//! memory bounded by the number of concurrently open servers.
//!
//! [`TraceAnalyzer`] consumes one line (or decoded [`TraceEvent`]) at a
//! time and maintains:
//!
//! - per-event-type counts, plus a count of *unknown* variants (a trace
//!   written by a newer binary is analyzed, never crashed on);
//! - the set of currently open bins (the only state proportional to
//!   cluster size — everything else is counters and bounded series);
//! - an invariant timeline — the robust / at-risk / violated state with
//!   one entry per *transition*, capped with an explicit drop count;
//! - a violation heatmap bucketed by op window and bin group;
//! - a fragmentation-over-time series sampled from soak checkpoints.
//!
//! The op clock counts mutation events (arrivals, departures, failure
//! events) and re-synchronizes on every `SoakCheckpoint`, so traces from
//! `cubefit churn` (no checkpoints) still get meaningful x-axes.

use crate::trace::TraceEvent;
use serde_json::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::io::BufRead;

/// Timeline entries kept before further transitions are only counted.
/// A healthy run transitions a handful of times; a flapping run that
/// exceeds this is reported via `timeline_dropped` rather than by
/// growing without bound.
const TIMELINE_CAP: usize = 10_000;

/// Shape of the trace analyzer's bucketing.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AnalyzeConfig {
    /// Width of one heatmap column in mutation ops.
    pub op_window: u64,
    /// Width of one heatmap row in bin indices.
    pub bin_group: usize,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        AnalyzeConfig { op_window: 10_000, bin_group: 8 }
    }
}

/// Robustness state of the placement as seen by the analyzer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InvariantState {
    Robust,
    AtRisk,
    Violated,
}

impl InvariantState {
    fn name(self) -> &'static str {
        match self {
            InvariantState::Robust => "robust",
            InvariantState::AtRisk => "at-risk",
            InvariantState::Violated => "violated",
        }
    }
}

/// One invariant-state transition.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TimelinePoint {
    /// Op index the transition was observed at.
    pub op: u64,
    /// New state: `robust`, `at-risk`, or `violated`.
    pub state: String,
}

/// One heatmap cell: violations seen in an (op window × bin group) tile.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HeatmapCell {
    /// First op of the window.
    pub op_start: u64,
    /// First bin of the group.
    pub bin_start: usize,
    /// Violations observed in the tile.
    pub count: u64,
}

/// One fragmentation sample (taken from a `SoakCheckpoint`).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FragPoint {
    /// Op index of the checkpoint.
    pub op: u64,
    /// Live tenants at the checkpoint.
    pub tenants: usize,
    /// Non-empty bins at the checkpoint.
    pub open_bins: usize,
    /// Wasted capacity fraction across open bins.
    pub fragmentation: f64,
}

/// Everything the single pass distilled from the trace.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct TraceReport {
    /// Lines consumed (including malformed ones).
    pub total_lines: u64,
    /// Decoded events by variant name.
    pub events: BTreeMap<String, u64>,
    /// Unknown variant tags skipped, by tag (forward compatibility).
    pub skipped: BTreeMap<String, u64>,
    /// Lines that were not single-tag JSON objects at all.
    pub malformed_lines: u64,
    /// An unparseable final line with no trailing newline: the writer was
    /// cut off mid-record (crash, Ctrl-C, full disk). Counted separately
    /// from `malformed_lines` because a truncated tail is an expected
    /// artifact of interruption, not trace corruption — it does not break
    /// [`TraceReport::is_clean`].
    pub truncated_tail: u64,
    /// Final op-clock value.
    pub final_op: u64,
    /// Open bins when the trace ended.
    pub open_bins_final: usize,
    /// High-water mark of concurrently open bins.
    pub max_open_bins: usize,
    /// Invariant-state transitions, oldest first.
    pub timeline: Vec<TimelinePoint>,
    /// Transitions beyond [`TIMELINE_CAP`] that were counted but not kept.
    pub timeline_dropped: u64,
    /// Total `InvariantViolated` events.
    pub violations_total: u64,
    /// Violation heatmap tiles, sorted by (op window, bin group).
    pub heatmap: Vec<HeatmapCell>,
    /// Fragmentation-over-time samples from soak checkpoints.
    pub fragmentation: Vec<FragPoint>,
    /// Sampled + full audits seen.
    pub audits: u64,
    /// Audits that reported at least one divergence.
    pub audit_failures: u64,
    /// Divergences summed over all audits.
    pub divergences_total: u64,
    /// Whether the trace ended with a full (final-state) audit that was
    /// clean. `None` when no full audit appears in the trace.
    pub final_audit_clean: Option<bool>,
}

impl TraceReport {
    /// Whether the trace shows a healthy run: no invariant violations, no
    /// audit divergences, and nothing unparseable.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations_total == 0
            && self.divergences_total == 0
            && self.malformed_lines == 0
            && self.final_audit_clean != Some(false)
    }

    /// Human-readable report.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace: {} lines, {} event kinds, {} unknown-variant lines skipped, \
             {} malformed\n",
            self.total_lines,
            self.events.len(),
            self.skipped.values().sum::<u64>(),
            self.malformed_lines,
        ));
        if self.truncated_tail > 0 {
            out.push_str("note: final line truncated mid-record (writer was interrupted)\n");
        }
        out.push_str("events:\n");
        for (name, count) in &self.events {
            out.push_str(&format!("  {name:<20} {count}\n"));
        }
        if !self.skipped.is_empty() {
            out.push_str("skipped (unknown variants):\n");
            for (name, count) in &self.skipped {
                out.push_str(&format!("  {name:<20} {count}\n"));
            }
        }
        out.push_str(&format!(
            "ops: {} — open bins {} (peak {})\n",
            self.final_op, self.open_bins_final, self.max_open_bins,
        ));
        out.push_str(&format!(
            "invariant: {} violations, {} transitions{}\n",
            self.violations_total,
            self.timeline.len(),
            if self.timeline_dropped > 0 {
                format!(" ({} dropped past cap)", self.timeline_dropped)
            } else {
                String::new()
            },
        ));
        for point in self.timeline.iter().take(20) {
            out.push_str(&format!("  op {:>10}  -> {}\n", point.op, point.state));
        }
        if self.timeline.len() > 20 {
            out.push_str(&format!("  … {} more transitions\n", self.timeline.len() - 20));
        }
        if !self.heatmap.is_empty() {
            out.push_str("violation heatmap (op window × bin group):\n");
            for cell in self.heatmap.iter().take(40) {
                out.push_str(&format!(
                    "  ops {:>10}+  bins {:>5}+  {}\n",
                    cell.op_start, cell.bin_start, cell.count
                ));
            }
            if self.heatmap.len() > 40 {
                out.push_str(&format!("  … {} more tiles\n", self.heatmap.len() - 40));
            }
        }
        if !self.fragmentation.is_empty() {
            let first = &self.fragmentation[0];
            let last = &self.fragmentation[self.fragmentation.len() - 1];
            out.push_str(&format!(
                "fragmentation: {} samples, {:.4} @ op {} -> {:.4} @ op {}\n",
                self.fragmentation.len(),
                first.fragmentation,
                first.op,
                last.fragmentation,
                last.op,
            ));
        }
        out.push_str(&format!(
            "audits: {} ({} failed, {} divergences total{})\n",
            self.audits,
            self.audit_failures,
            self.divergences_total,
            match self.final_audit_clean {
                Some(true) => "; final full audit clean",
                Some(false) => "; FINAL FULL AUDIT FAILED",
                None => "",
            },
        ));
        out.push_str(&format!(
            "verdict: {}\n",
            if self.is_clean() { "CLEAN" } else { "NOT CLEAN" }
        ));
        out
    }
}

/// Single-pass, bounded-memory trace analyzer. Feed lines (or events),
/// then call [`TraceAnalyzer::finish`].
#[derive(Debug, Default)]
pub struct TraceAnalyzer {
    config: AnalyzeConfig,
    report: TraceReport,
    open_bins: BTreeSet<usize>,
    heat: BTreeMap<(u64, usize), u64>,
    state: Option<InvariantState>,
    op: u64,
}

impl TraceAnalyzer {
    /// An analyzer with default bucketing.
    #[must_use]
    pub fn new() -> Self {
        TraceAnalyzer::with_config(AnalyzeConfig::default())
    }

    /// An analyzer with explicit bucketing.
    #[must_use]
    pub fn with_config(config: AnalyzeConfig) -> Self {
        TraceAnalyzer {
            config,
            report: TraceReport::default(),
            open_bins: BTreeSet::new(),
            heat: BTreeMap::new(),
            state: None,
            op: 0,
        }
    }

    /// Consumes one JSONL line. Unknown variants are counted and skipped;
    /// anything else unparseable increments `malformed_lines`. Never
    /// panics on foreign input.
    pub fn push_line(&mut self, line: &str) {
        self.report.total_lines += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            self.report.malformed_lines += 1;
            return;
        }
        match serde_json::from_str::<TraceEvent>(trimmed) {
            Ok(event) => self.push_event(&event),
            Err(_) => match serde_json::from_str::<Value>(trimmed) {
                // An externally tagged event from a newer writer: a JSON
                // object with exactly one key naming the variant.
                Ok(Value::Object(map)) if map.len() == 1 => {
                    let tag = map.iter().next().map(|(k, _)| k.clone()).unwrap_or_default();
                    *self.report.skipped.entry(tag).or_insert(0) += 1;
                }
                _ => self.report.malformed_lines += 1,
            },
        }
    }

    /// Consumes the final line of a stream that ended WITHOUT a trailing
    /// newline. A parseable record is processed normally; an unparseable
    /// one is counted as a truncated tail — the writer was interrupted
    /// mid-record — rather than as trace corruption.
    pub fn push_tail_line(&mut self, line: &str) {
        let before = self.report.malformed_lines;
        self.push_line(line);
        if self.report.malformed_lines > before {
            self.report.malformed_lines = before;
            self.report.truncated_tail += 1;
        }
    }

    /// Consumes one already-decoded event.
    pub fn push_event(&mut self, event: &TraceEvent) {
        *self.report.events.entry(event.variant_name().to_owned()).or_insert(0) += 1;
        match event {
            TraceEvent::TenantArrived { .. }
            | TraceEvent::TenantDeparted { .. }
            | TraceEvent::ServersFailed { .. } => self.op += 1,
            _ => {}
        }
        match event {
            TraceEvent::BinOpened { bin, .. } => {
                self.open_bins.insert(*bin);
                self.report.max_open_bins = self.report.max_open_bins.max(self.open_bins.len());
            }
            TraceEvent::BinClosed { bin, .. } | TraceEvent::ServerClosed { bin, .. } => {
                self.open_bins.remove(bin);
            }
            TraceEvent::ServersFailed { bins, .. } => {
                for bin in bins {
                    self.open_bins.remove(bin);
                }
            }
            TraceEvent::RobustnessChecked { robust, .. } => {
                let state = if *robust { InvariantState::Robust } else { InvariantState::Violated };
                self.transition(state);
            }
            TraceEvent::InvariantViolated { bin, .. } => {
                self.report.violations_total += 1;
                let tile = (
                    self.op / self.config.op_window * self.config.op_window,
                    bin / self.config.bin_group.max(1) * self.config.bin_group.max(1),
                );
                *self.heat.entry(tile).or_insert(0) += 1;
                self.transition(InvariantState::Violated);
            }
            TraceEvent::SoakCheckpoint {
                op,
                tenants,
                open_bins,
                fragmentation,
                at_risk,
                violated,
            } => {
                self.op = *op;
                self.report.fragmentation.push(FragPoint {
                    op: *op,
                    tenants: *tenants,
                    open_bins: *open_bins,
                    fragmentation: *fragmentation,
                });
                let state = if *violated > 0 {
                    InvariantState::Violated
                } else if *at_risk > 0 {
                    InvariantState::AtRisk
                } else {
                    InvariantState::Robust
                };
                self.transition(state);
            }
            TraceEvent::AuditCompleted { op, divergences, full } => {
                self.op = self.op.max(*op);
                self.report.audits += 1;
                self.report.divergences_total += *divergences as u64;
                if *divergences > 0 {
                    self.report.audit_failures += 1;
                }
                if *full {
                    self.report.final_audit_clean = Some(*divergences == 0);
                }
            }
            _ => {}
        }
    }

    fn transition(&mut self, state: InvariantState) {
        if self.state == Some(state) {
            return;
        }
        self.state = Some(state);
        if self.report.timeline.len() < TIMELINE_CAP {
            self.report
                .timeline
                .push(TimelinePoint { op: self.op, state: state.name().to_owned() });
        } else {
            self.report.timeline_dropped += 1;
        }
    }

    /// Finalizes the pass.
    #[must_use]
    pub fn finish(mut self) -> TraceReport {
        self.report.final_op = self.op;
        self.report.open_bins_final = self.open_bins.len();
        self.report.heatmap = self
            .heat
            .into_iter()
            .map(|((op_start, bin_start), count)| HeatmapCell { op_start, bin_start, count })
            .collect();
        self.report
    }
}

/// Analyzes an entire JSONL stream line by line (the `cubefit analyze`
/// entry point — the reader is never buffered whole).
pub fn analyze_reader<R: BufRead>(
    mut reader: R,
    config: AnalyzeConfig,
) -> Result<TraceReport, String> {
    let mut analyzer = TraceAnalyzer::with_config(config);
    let mut line = String::new();
    loop {
        line.clear();
        let read = reader.read_line(&mut line).map_err(|e| format!("trace read failed: {e}"))?;
        if read == 0 {
            break;
        }
        if line.ends_with('\n') {
            line.pop();
            if line.ends_with('\r') {
                line.pop();
            }
            analyzer.push_line(&line);
        } else {
            // Final line with no newline: the writer was cut off. Treat
            // an unparseable record as truncation, not corruption.
            analyzer.push_tail_line(&line);
        }
    }
    Ok(analyzer.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(event: &TraceEvent) -> String {
        serde_json::to_string(event).unwrap()
    }

    #[test]
    fn counts_events_and_tracks_open_bins() {
        let mut analyzer = TraceAnalyzer::new();
        analyzer.push_line(&line(&TraceEvent::BinOpened { bin: 0, class: Some(1), total_open: 1 }));
        analyzer.push_line(&line(&TraceEvent::BinOpened { bin: 1, class: None, total_open: 2 }));
        analyzer.push_line(&line(&TraceEvent::TenantArrived { tenant: 1, load: 0.5, seq: 0 }));
        analyzer.push_line(&line(&TraceEvent::ServersFailed { bins: vec![0], orphaned: 1 }));
        let report = analyzer.finish();
        assert_eq!(report.total_lines, 4);
        assert_eq!(report.events["BinOpened"], 2);
        assert_eq!(report.max_open_bins, 2);
        assert_eq!(report.open_bins_final, 1);
        assert_eq!(report.final_op, 2); // arrival + failure event
        assert!(report.is_clean());
    }

    #[test]
    fn unknown_variants_are_skipped_with_a_count_never_a_crash() {
        let mut analyzer = TraceAnalyzer::new();
        analyzer.push_line(r#"{"QuantumEntangled":{"tenant":5,"qubits":3}}"#);
        analyzer.push_line(r#"{"QuantumEntangled":{"tenant":6,"qubits":1}}"#);
        analyzer.push_line("not json at all");
        analyzer.push_line(r#"{"two":"keys","not":"an event"}"#);
        analyzer.push_line(&line(&TraceEvent::BinClosed { bin: 2, level: 0.5 }));
        let report = analyzer.finish();
        assert_eq!(report.skipped["QuantumEntangled"], 2);
        assert_eq!(report.malformed_lines, 2);
        assert_eq!(report.events["BinClosed"], 1);
    }

    #[test]
    fn invariant_timeline_records_transitions_only() {
        let mut analyzer = TraceAnalyzer::new();
        for violated in [0usize, 0, 1, 1, 0] {
            analyzer.push_event(&TraceEvent::SoakCheckpoint {
                op: 100,
                tenants: 10,
                open_bins: 4,
                fragmentation: 0.1,
                at_risk: 0,
                violated,
            });
        }
        let report = analyzer.finish();
        let states: Vec<&str> = report.timeline.iter().map(|p| p.state.as_str()).collect();
        assert_eq!(states, ["robust", "violated", "robust"]);
    }

    #[test]
    fn violations_land_in_heatmap_tiles() {
        let mut analyzer =
            TraceAnalyzer::with_config(AnalyzeConfig { op_window: 10, bin_group: 4 });
        // Push the op clock to 12 (window starting at 10).
        for seq in 0..12 {
            analyzer.push_event(&TraceEvent::TenantArrived { tenant: seq, load: 0.1, seq });
        }
        analyzer.push_event(&TraceEvent::InvariantViolated { bin: 5, level: 0.9, deficit: 0.1 });
        analyzer.push_event(&TraceEvent::InvariantViolated { bin: 6, level: 0.9, deficit: 0.1 });
        analyzer.push_event(&TraceEvent::InvariantViolated { bin: 9, level: 0.9, deficit: 0.1 });
        let report = analyzer.finish();
        assert_eq!(report.violations_total, 3);
        assert_eq!(
            report.heatmap,
            vec![
                HeatmapCell { op_start: 10, bin_start: 4, count: 2 },
                HeatmapCell { op_start: 10, bin_start: 8, count: 1 },
            ]
        );
        assert!(!report.is_clean());
    }

    #[test]
    fn audits_roll_up_and_final_full_audit_sets_verdict() {
        let mut analyzer = TraceAnalyzer::new();
        analyzer.push_event(&TraceEvent::AuditCompleted { op: 50, divergences: 0, full: false });
        analyzer.push_event(&TraceEvent::AuditCompleted { op: 100, divergences: 2, full: false });
        analyzer.push_event(&TraceEvent::AuditCompleted { op: 150, divergences: 0, full: true });
        let report = analyzer.finish();
        assert_eq!(report.audits, 3);
        assert_eq!(report.audit_failures, 1);
        assert_eq!(report.divergences_total, 2);
        assert_eq!(report.final_audit_clean, Some(true));
        assert_eq!(report.final_op, 150);
    }

    #[test]
    fn report_serializes_and_renders() {
        let mut analyzer = TraceAnalyzer::new();
        for event in crate::trace::tests::sample_events() {
            analyzer.push_line(&line(&event));
        }
        let report = analyzer.finish();
        let text = serde_json::to_string(&report).unwrap();
        let back: TraceReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, report);
        let rendered = report.render();
        assert!(rendered.contains("events:"));
        assert!(rendered.contains("verdict:"));
    }

    #[test]
    fn analyze_reader_streams_lines() {
        let mut text = String::new();
        for event in crate::trace::tests::sample_events() {
            text.push_str(&line(&event));
            text.push('\n');
        }
        let report = analyze_reader(text.as_bytes(), AnalyzeConfig::default()).unwrap();
        assert_eq!(report.total_lines, crate::trace::tests::sample_events().len() as u64);
        assert_eq!(report.malformed_lines, 0);
        assert_eq!(report.truncated_tail, 0);
    }

    /// Regression: a writer killed mid-record (Ctrl-C, crash, full disk)
    /// leaves a final line with no trailing newline. `analyze` must count
    /// it as a truncated tail — skipped, still CLEAN — not error out or
    /// grade the trace corrupt.
    #[test]
    fn truncated_final_line_is_skipped_not_malformed() {
        let mut text = String::new();
        for event in crate::trace::tests::sample_events() {
            text.push_str(&line(&event));
            text.push('\n');
        }
        // Cut the valid trace mid-way through its last record.
        let cut = text.trim_end().len() - 17;
        let truncated = &text[..cut];
        assert!(!truncated.ends_with('\n'));

        let full = analyze_reader(text.as_bytes(), AnalyzeConfig::default()).unwrap();
        let report = analyze_reader(truncated.as_bytes(), AnalyzeConfig::default()).unwrap();
        assert_eq!(report.truncated_tail, 1);
        assert_eq!(report.malformed_lines, 0);
        assert_eq!(report.total_lines, full.total_lines);
        assert_eq!(
            report.is_clean(),
            full.is_clean(),
            "a truncated tail must not change the cleanliness verdict"
        );
        assert!(report.render().contains("truncated"), "render surfaces the truncation");
    }

    /// A final line without a newline that still parses is a normal
    /// record — flushed but not newline-terminated before the cut.
    #[test]
    fn complete_final_line_without_newline_still_counts() {
        let text = format!(
            "{}\n{}",
            line(&TraceEvent::TenantArrived { tenant: 1, load: 0.5, seq: 0 }),
            line(&TraceEvent::TenantArrived { tenant: 2, load: 0.25, seq: 1 }),
        );
        let report = analyze_reader(text.as_bytes(), AnalyzeConfig::default()).unwrap();
        assert_eq!(report.events["TenantArrived"], 2);
        assert_eq!(report.truncated_tail, 0);
        assert_eq!(report.malformed_lines, 0);
    }
}
