//! Structured placement-decision events and JSONL sinks.

use std::io::Write;
use std::sync::Mutex;

/// One placement decision, with raw identifiers (`u64` tenant ids,
/// `usize` bin/class/slot indices) so this crate stays a leaf.
///
/// Serialized externally tagged, one JSON object per line in a trace
/// file, e.g. `{"BinOpened":{"bin":3,"class":2,"total_open":4}}`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum TraceEvent {
    /// A tenant entered the consolidator.
    TenantArrived {
        /// Tenant id.
        tenant: u64,
        /// Tenant load in `(0, 1]`.
        load: f64,
        /// Arrival sequence number (0-based).
        seq: u64,
    },
    /// Stage 1 ran the m-fit scan over mature bins.
    MfitOutcome {
        /// Tenant id.
        tenant: u64,
        /// Replica class being placed.
        class: usize,
        /// Mature candidate bins examined before the scan stopped.
        candidates_scanned: usize,
        /// Whether a full `γ`-set of mature bins was found.
        hit: bool,
    },
    /// Stage 2 assigned a replica to a cube slot.
    SlotAssigned {
        /// Tenant id.
        tenant: u64,
        /// Replica class of the slot.
        class: usize,
        /// Replica index `j` — the cube group the slot belongs to.
        level: usize,
        /// Bin that received the replica.
        bin: usize,
        /// Slot index within the bin.
        slot: usize,
    },
    /// A baseline packer scanned for a feasible server for one replica.
    FitAttempt {
        /// Tenant id.
        tenant: u64,
        /// Replica index within the tenant's `γ` set.
        replica: usize,
        /// Candidate servers inspected before the scan stopped.
        scanned: usize,
        /// Whether the scan failed and a fresh server was opened instead.
        opened_new: bool,
    },
    /// A bin received its first replica (count of these events equals the
    /// number of servers a run reports).
    BinOpened {
        /// The bin.
        bin: usize,
        /// Replica class the bin was built for (`None` for baseline bins
        /// without a class).
        class: Option<usize>,
        /// Non-empty bins after this open.
        total_open: usize,
    },
    /// A bin was closed to further placements (bounded-space packers
    /// advancing their window, or a simulated server taken offline).
    BinClosed {
        /// The bin.
        bin: usize,
        /// Bin load level at close time.
        level: f64,
    },
    /// A robustness check ran over a placement.
    RobustnessChecked {
        /// Whether the placement survives `γ−1` failures.
        robust: bool,
        /// Worst slack margin across bins (negative = violation).
        worst_margin: f64,
        /// Number of violating bins.
        violations: usize,
    },
    /// A tenant departed, releasing its `γ` replicas.
    TenantDeparted {
        /// Tenant id.
        tenant: u64,
        /// Full tenant load released.
        load: f64,
    },
    /// A set of servers failed simultaneously (a churn-harness event).
    ServersFailed {
        /// The failed bins.
        bins: Vec<usize>,
        /// Replicas orphaned by the failure.
        orphaned: usize,
    },
    /// Recovery re-homed one orphaned replica.
    ReplicaMigrated {
        /// Tenant id.
        tenant: u64,
        /// Failed bin the replica left.
        from: usize,
        /// Surviving (or fresh) bin that received it.
        to: usize,
        /// Replica load moved.
        load: f64,
    },
    /// Recovery after one failure event completed.
    RecoveryCompleted {
        /// Replicas migrated off failed servers.
        replicas_migrated: usize,
        /// Total replica load moved.
        moved_load: f64,
        /// Fresh bins opened during recovery.
        bins_opened: usize,
    },
    /// A defragmentation plan was computed over a live placement.
    DefragPlanned {
        /// Replica moves in the plan.
        steps: usize,
        /// Total replica load the plan moves.
        moved_load: f64,
        /// Bins the plan drains to empty (candidates for closing).
        bins_to_close: usize,
        /// Open bins at planning time.
        open_bins: usize,
    },
    /// A drained server was closed by a defragmentation pass (its last
    /// replica migrated away).
    ServerClosed {
        /// The emptied bin.
        bin: usize,
        /// Bin load level before the drain began.
        level: f64,
        /// Non-empty bins remaining after the close.
        total_open: usize,
    },
    /// Rental blocks were billed as simulated time advanced (emitted
    /// only on advances that billed at least one new block).
    RentAccrued {
        /// Simulated time of the billing advance, in milliseconds.
        now_ms: u64,
        /// Blocks newly billed at this advance.
        blocks: u64,
        /// Servers with active leases after the advance.
        open_servers: usize,
        /// Total rent accrued so far.
        accrued_usd: f64,
    },
    /// A cost-objective defragmentation plan was applied and its
    /// predicted-vs-realized accounting settled against the live ledger.
    EconomicDefragApplied {
        /// Net saving the plan predicted.
        predicted_net_usd: f64,
        /// Net saving realized by the steps that were actually kept.
        realized_net_usd: f64,
        /// Servers the apply drained to empty.
        servers_closed: usize,
        /// Candidate bins the planner skipped as unprofitable.
        skipped_unprofitable: usize,
    },
    /// A tenant's measured load drifted and the placement was re-weighted
    /// in place.
    LoadDrifted {
        /// Tenant id.
        tenant: u64,
        /// Load before the drift step.
        old_load: f64,
        /// Load after the drift step.
        new_load: f64,
        /// Drift-engine logical timestamp of the update.
        at: u64,
    },
    /// The invariant monitor found a server whose Theorem-1 margin is
    /// negative: a `γ−1`-failure set exists that overloads it.
    InvariantViolated {
        /// The violated bin.
        bin: usize,
        /// Bin load level at detection time.
        level: f64,
        /// How far past capacity the worst failure set pushes the bin.
        deficit: f64,
    },
    /// A mitigation plan was computed over the monitor's at-risk and
    /// violated servers.
    MitigationPlanned {
        /// Replica moves in the plan.
        steps: usize,
        /// Total replica load the plan moves.
        moved_load: f64,
        /// Servers the plan restores to a safe margin.
        cured: usize,
        /// Servers left violated or at risk after exhausting the budget.
        residual: usize,
    },
    /// A tenant finished placement.
    Placed {
        /// Tenant id.
        tenant: u64,
        /// Bins hosting the tenant's replicas.
        bins: Vec<usize>,
        /// Which algorithm path placed it (e.g. `MatureFit`, `Cube`).
        stage: String,
        /// Bins newly created for this tenant.
        opened: usize,
    },
    /// Periodic soak-harness checkpoint: a compact summary of live state
    /// so a streaming analyzer can rebuild timelines without replaying
    /// the run.
    SoakCheckpoint {
        /// Mutation-op index the checkpoint was taken at.
        op: u64,
        /// Live tenants.
        tenants: usize,
        /// Non-empty bins.
        open_bins: usize,
        /// Wasted capacity across open bins, `1 − load/open_bins`.
        fragmentation: f64,
        /// Bins within the monitor's at-risk slack band.
        at_risk: usize,
        /// Bins with a negative Theorem-1 margin.
        violated: usize,
    },
    /// A sampled (or final full) oracle audit finished.
    AuditCompleted {
        /// Mutation-op index the audit ran at.
        op: u64,
        /// Structural divergences found (0 = clean).
        divergences: usize,
        /// Whether this was the exhaustive final audit rather than a
        /// sampled mid-run one.
        full: bool,
    },
    /// The placement service turned a request away at admission.
    RequestRejected {
        /// Why: `shed`, `queue_full`, or `deadline`.
        reason: String,
        /// Queue depth at rejection time.
        queue_depth: usize,
        /// Requests executing at rejection time.
        in_flight: usize,
        /// Admission limit at rejection time.
        limit: usize,
    },
    /// The service's degradation ladder moved between audit modes.
    DegradationChanged {
        /// Mode stepped away from (`full`, `sampled`, `off`).
        from: String,
        /// Mode stepped into.
        to: String,
        /// Windowed p99 decision latency that drove the step, ms.
        p99_ms: f64,
        /// Batch sequence number the step happened at.
        batch: u64,
    },
    /// The durability journal took a checkpoint: the placement was
    /// snapshotted atomically and the write-ahead log truncated.
    JournalCheckpoint {
        /// Journal sequence number the checkpoint covers (frames with
        /// `seq ≤` this are no longer needed for recovery).
        seq: u64,
        /// Tenants captured in the checkpoint snapshot.
        tenants: usize,
        /// Bytes of write-ahead log the checkpoint retired.
        wal_bytes: u64,
    },
    /// A crash recovery replayed the journal tail over a checkpoint.
    RecoveryReplayed {
        /// Sequence number of the checkpoint recovery started from (0 =
        /// no checkpoint, replayed from an empty placement).
        checkpoint_seq: u64,
        /// Journal frames replayed on top of the checkpoint.
        frames_replayed: u64,
        /// Whether a torn (incomplete) final frame was discarded.
        torn_tail: bool,
    },
}

/// Names of every [`TraceEvent`] variant, in declaration order. Paired
/// with [`TraceEvent::variant_name`] so tests can assert exhaustive
/// serde coverage: adding a variant without extending the sample-event
/// list fails CI rather than shipping an unserializable event.
pub const VARIANT_NAMES: &[&str] = &[
    "TenantArrived",
    "MfitOutcome",
    "SlotAssigned",
    "FitAttempt",
    "BinOpened",
    "BinClosed",
    "RobustnessChecked",
    "TenantDeparted",
    "ServersFailed",
    "ReplicaMigrated",
    "RecoveryCompleted",
    "DefragPlanned",
    "ServerClosed",
    "RentAccrued",
    "EconomicDefragApplied",
    "LoadDrifted",
    "InvariantViolated",
    "MitigationPlanned",
    "Placed",
    "SoakCheckpoint",
    "AuditCompleted",
    "RequestRejected",
    "DegradationChanged",
    "JournalCheckpoint",
    "RecoveryReplayed",
];

impl TraceEvent {
    /// The externally-tagged variant name this event serializes under.
    ///
    /// The match is exhaustive on purpose: a new variant fails to compile
    /// here until it is named, and the test suite then requires it in
    /// both [`VARIANT_NAMES`] and the round-trip sample set.
    #[must_use]
    pub fn variant_name(&self) -> &'static str {
        match self {
            TraceEvent::TenantArrived { .. } => "TenantArrived",
            TraceEvent::MfitOutcome { .. } => "MfitOutcome",
            TraceEvent::SlotAssigned { .. } => "SlotAssigned",
            TraceEvent::FitAttempt { .. } => "FitAttempt",
            TraceEvent::BinOpened { .. } => "BinOpened",
            TraceEvent::BinClosed { .. } => "BinClosed",
            TraceEvent::RobustnessChecked { .. } => "RobustnessChecked",
            TraceEvent::TenantDeparted { .. } => "TenantDeparted",
            TraceEvent::ServersFailed { .. } => "ServersFailed",
            TraceEvent::ReplicaMigrated { .. } => "ReplicaMigrated",
            TraceEvent::RecoveryCompleted { .. } => "RecoveryCompleted",
            TraceEvent::DefragPlanned { .. } => "DefragPlanned",
            TraceEvent::ServerClosed { .. } => "ServerClosed",
            TraceEvent::RentAccrued { .. } => "RentAccrued",
            TraceEvent::EconomicDefragApplied { .. } => "EconomicDefragApplied",
            TraceEvent::LoadDrifted { .. } => "LoadDrifted",
            TraceEvent::InvariantViolated { .. } => "InvariantViolated",
            TraceEvent::MitigationPlanned { .. } => "MitigationPlanned",
            TraceEvent::Placed { .. } => "Placed",
            TraceEvent::SoakCheckpoint { .. } => "SoakCheckpoint",
            TraceEvent::AuditCompleted { .. } => "AuditCompleted",
            TraceEvent::RequestRejected { .. } => "RequestRejected",
            TraceEvent::DegradationChanged { .. } => "DegradationChanged",
            TraceEvent::JournalCheckpoint { .. } => "JournalCheckpoint",
            TraceEvent::RecoveryReplayed { .. } => "RecoveryReplayed",
        }
    }
}

/// Destination for a stream of [`TraceEvent`]s. `Send + Sync` so sinks can
/// sit behind the `Arc` inside a cloned [`crate::Recorder`].
pub trait TraceSink: Send + Sync {
    /// Records one event.
    fn record(&self, event: &TraceEvent);

    /// Flushes buffered output and reports any I/O error accumulated
    /// since the previous flush (no-op by default). Sinks that cannot
    /// fail `record` mid-placement latch the first error and surface it
    /// here, so a truncated trace cannot pass silently.
    fn flush(&self) -> Result<(), String> {
        Ok(())
    }
}

impl<S: TraceSink + ?Sized> TraceSink for std::sync::Arc<S> {
    fn record(&self, event: &TraceEvent) {
        (**self).record(event);
    }

    fn flush(&self) -> Result<(), String> {
        (**self).flush()
    }
}

/// Writes events as JSON Lines to any `Write` target.
///
/// `record` never panics mid-placement: the first write error is latched
/// and returned by the next [`TraceSink::flush`]. Dropping the sink
/// flushes the writer so short traces are not left sitting in an OS
/// buffer (errors at drop time are unrecoverable and ignored — call
/// `flush` first when the trace matters).
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
    error: Mutex<Option<String>>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// A sink writing one JSON object per line to `writer`.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer: Mutex::new(writer), error: Mutex::new(None) }
    }

    fn latch_error(&self, context: &str, err: &std::io::Error) {
        let mut slot = self.error.lock().expect("sink error lock");
        if slot.is_none() {
            *slot = Some(format!("trace sink {context}: {err}"));
        }
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&self, event: &TraceEvent) {
        let line = serde_json::to_string(event).expect("trace events serialize");
        let mut writer = self.writer.lock().expect("sink lock");
        if let Err(err) = writeln!(writer, "{line}") {
            drop(writer);
            self.latch_error("write failed", &err);
        }
    }

    fn flush(&self) -> Result<(), String> {
        if let Err(err) = self.writer.lock().expect("sink lock").flush() {
            self.latch_error("flush failed", &err);
        }
        match self.error.lock().expect("sink error lock").take() {
            Some(message) => Err(message),
            None => Ok(()),
        }
    }
}

impl<W: Write + Send> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        if let Ok(writer) = self.writer.get_mut() {
            let _ = writer.flush();
        }
    }
}

/// Collects events in memory (tests and programmatic inspection).
#[derive(Default)]
pub struct VecSink {
    events: Mutex<Vec<TraceEvent>>,
}

impl VecSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        VecSink::default()
    }

    /// A copy of every event recorded so far.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("sink lock").clone()
    }
}

impl TraceSink for VecSink {
    fn record(&self, event: &TraceEvent) {
        self.events.lock().expect("sink lock").push(event.clone());
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use std::sync::Arc;

    /// One instance of **every** `TraceEvent` variant. The exhaustiveness
    /// test below fails if a variant is missing, so serde coverage for a
    /// new event cannot be forgotten.
    pub(crate) fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::TenantArrived { tenant: 7, load: 0.25, seq: 0 },
            TraceEvent::MfitOutcome { tenant: 7, class: 3, candidates_scanned: 5, hit: false },
            TraceEvent::SlotAssigned { tenant: 7, class: 3, level: 1, bin: 2, slot: 4 },
            TraceEvent::FitAttempt { tenant: 8, replica: 0, scanned: 12, opened_new: true },
            TraceEvent::BinOpened { bin: 2, class: Some(3), total_open: 3 },
            TraceEvent::BinOpened { bin: 9, class: None, total_open: 4 },
            TraceEvent::BinClosed { bin: 2, level: 0.875 },
            TraceEvent::RobustnessChecked { robust: true, worst_margin: 0.125, violations: 0 },
            TraceEvent::Placed { tenant: 7, bins: vec![2, 5], stage: "Cube".to_owned(), opened: 1 },
            TraceEvent::TenantDeparted { tenant: 7, load: 0.25 },
            TraceEvent::ServersFailed { bins: vec![2, 5], orphaned: 3 },
            TraceEvent::ReplicaMigrated { tenant: 8, from: 2, to: 6, load: 0.125 },
            TraceEvent::RecoveryCompleted {
                replicas_migrated: 3,
                moved_load: 0.375,
                bins_opened: 1,
            },
            TraceEvent::DefragPlanned { steps: 4, moved_load: 0.5, bins_to_close: 2, open_bins: 7 },
            TraceEvent::ServerClosed { bin: 5, level: 0.125, total_open: 6 },
            TraceEvent::RentAccrued {
                now_ms: 3_600_000,
                blocks: 3,
                open_servers: 9,
                accrued_usd: 2.466,
            },
            TraceEvent::EconomicDefragApplied {
                predicted_net_usd: 1.25,
                realized_net_usd: 1.25,
                servers_closed: 2,
                skipped_unprofitable: 3,
            },
            TraceEvent::LoadDrifted { tenant: 8, old_load: 0.25, new_load: 0.375, at: 12 },
            TraceEvent::InvariantViolated { bin: 6, level: 0.75, deficit: 0.0625 },
            TraceEvent::MitigationPlanned { steps: 3, moved_load: 0.25, cured: 2, residual: 1 },
            TraceEvent::SoakCheckpoint {
                op: 1000,
                tenants: 250,
                open_bins: 40,
                fragmentation: 0.125,
                at_risk: 2,
                violated: 0,
            },
            TraceEvent::AuditCompleted { op: 1000, divergences: 0, full: false },
            TraceEvent::RequestRejected {
                reason: "shed".to_owned(),
                queue_depth: 12,
                in_flight: 16,
                limit: 28,
            },
            TraceEvent::DegradationChanged {
                from: "full".to_owned(),
                to: "sampled".to_owned(),
                p99_ms: 137.5,
                batch: 42,
            },
            TraceEvent::JournalCheckpoint { seq: 500, tenants: 240, wal_bytes: 65_536 },
            TraceEvent::RecoveryReplayed {
                checkpoint_seq: 500,
                frames_replayed: 37,
                torn_tail: true,
            },
        ]
    }

    #[test]
    fn sample_events_cover_every_variant() {
        let sampled: Vec<&str> = sample_events().iter().map(TraceEvent::variant_name).collect();
        for name in VARIANT_NAMES {
            assert!(
                sampled.contains(name),
                "TraceEvent::{name} has no round-trip sample: add one to sample_events()"
            );
        }
        // And the name list itself cannot drift stale.
        for name in &sampled {
            assert!(VARIANT_NAMES.contains(name), "{name} missing from VARIANT_NAMES");
        }
    }

    #[test]
    fn every_variant_roundtrips_through_jsonl() {
        for event in sample_events() {
            let line = serde_json::to_string(&event).unwrap();
            assert!(!line.contains('\n'));
            assert!(
                line.contains(&format!("\"{}\"", event.variant_name())),
                "externally tagged form should name the variant: {line}"
            );
            let back: TraceEvent = serde_json::from_str(&line).unwrap();
            assert_eq!(back, event);
        }
    }

    /// A `Write` target the test can still read after the sink (which now
    /// owns a `Drop` impl) goes away.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("buf lock").extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let buf = SharedBuf::default();
        let sink = JsonlSink::new(buf.clone());
        for event in sample_events() {
            sink.record(&event);
        }
        assert_eq!(sink.flush(), Ok(()));
        drop(sink);
        let bytes = buf.0.lock().expect("buf lock").clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), sample_events().len());
        for (line, event) in lines.iter().zip(sample_events()) {
            let back: TraceEvent = serde_json::from_str(line).unwrap();
            assert_eq!(back, event);
        }
    }

    /// A writer that fails every operation, to exercise the error latch.
    struct BrokenWriter;

    impl Write for BrokenWriter {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::new(std::io::ErrorKind::Other, "disk full"))
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Err(std::io::Error::new(std::io::ErrorKind::Other, "disk full"))
        }
    }

    #[test]
    fn jsonl_sink_surfaces_write_errors_at_flush() {
        let sink = JsonlSink::new(BrokenWriter);
        sink.record(&TraceEvent::BinClosed { bin: 0, level: 0.5 });
        let err = sink.flush().expect_err("write error must surface");
        assert!(err.contains("disk full"), "unexpected error text: {err}");
        // The latch is consumed: a later flush reports only new failures
        // (here the flush itself still fails).
        let err2 = sink.flush().expect_err("flush error must surface");
        assert!(err2.contains("flush failed"), "unexpected error text: {err2}");
    }

    #[test]
    fn jsonl_sink_flushes_on_drop() {
        struct FlushProbe(Arc<Mutex<bool>>);

        impl Write for FlushProbe {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                Ok(buf.len())
            }

            fn flush(&mut self) -> std::io::Result<()> {
                *self.0.lock().expect("probe lock") = true;
                Ok(())
            }
        }

        let flushed = Arc::new(Mutex::new(false));
        let sink = JsonlSink::new(FlushProbe(Arc::clone(&flushed)));
        sink.record(&TraceEvent::BinClosed { bin: 0, level: 0.5 });
        drop(sink);
        assert!(*flushed.lock().expect("probe lock"), "drop must flush the writer");
    }

    #[test]
    fn vec_sink_collects_in_order() {
        let sink = VecSink::new();
        for event in sample_events() {
            sink.record(&event);
        }
        assert_eq!(sink.events(), sample_events());
    }
}
