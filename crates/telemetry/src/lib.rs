//! Observability for the CubeFit workspace.
//!
//! Three pieces, designed to be cheap enough to leave compiled into hot
//! paths:
//!
//! - a [`Registry`] of named [`Counter`]s, [`Gauge`]s, and log-bucketed
//!   [`Histogram`]s with hierarchical labels (`algorithm`, `gamma`,
//!   `class`, `server`), snapshotted into a serializable
//!   [`MetricsSnapshot`];
//! - a structured [`TraceEvent`] stream recording individual placement
//!   decisions (tenant arrival, m-fit hit/miss, cube slot assignment, bin
//!   open/close, robustness-check outcome), written as JSONL by a
//!   [`TraceSink`];
//! - a [`Recorder`] facade that algorithms hold. The default recorder is
//!   disabled and every operation on it costs a single branch on an
//!   `Option`, so instrumented code pays nothing measurable when
//!   telemetry is off.
//!
//! The crate is a leaf: events carry raw `u64`/`usize` identifiers rather
//! than core types, so every layer of the workspace (core, baselines,
//! sim, cluster, CLI) can depend on it without cycles.

mod analyze;
mod histogram;
mod recorder;
mod registry;
mod trace;

pub use analyze::{
    analyze_reader, AnalyzeConfig, FragPoint, HeatmapCell, TimelinePoint, TraceAnalyzer,
    TraceReport,
};
pub use histogram::{Histogram, HistogramSnapshot};
pub use recorder::Recorder;
pub use registry::{
    Counter, CounterSnapshot, Gauge, GaugeSnapshot, Labels, MetricsSnapshot, NamedHistogram,
    Registry, RollupNode,
};
pub use trace::{JsonlSink, TraceEvent, TraceSink, VecSink, VARIANT_NAMES};
