//! Named metrics with hierarchical labels.

use crate::histogram::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A label set, e.g. `[("algorithm", "cubefit"), ("gamma", "2")]`.
///
/// Labels are hierarchical by convention: `algorithm` → `gamma` → `class`
/// → `server`, from coarsest to finest. They are stored sorted by key so
/// the same set always maps to the same metric.
pub type Labels = Vec<(String, String)>;

fn normalized(labels: &[(&str, &str)]) -> Labels {
    let mut labels: Labels = labels.iter().map(|&(k, v)| (k.to_owned(), v.to_owned())).collect();
    labels.sort();
    labels
}

/// A monotonically increasing metric. Cloning shares the underlying cell,
/// so handles can be resolved once and kept on hot paths.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A metric holding the latest `f64` observation.
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge { bits: Arc::new(AtomicU64::new(0.0f64.to_bits())) }
    }
}

impl Gauge {
    /// Replaces the value.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Owns every metric; hands out shared handles and takes snapshots.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<(String, Labels), Counter>>,
    gauges: Mutex<BTreeMap<(String, Labels), Gauge>>,
    histograms: Mutex<BTreeMap<(String, Labels), Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter for `name` + `labels`, created on first use.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.counters
            .lock()
            .expect("registry lock")
            .entry((name.to_owned(), normalized(labels)))
            .or_default()
            .clone()
    }

    /// The gauge for `name` + `labels`, created on first use.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.gauges
            .lock()
            .expect("registry lock")
            .entry((name.to_owned(), normalized(labels)))
            .or_default()
            .clone()
    }

    /// The histogram for `name` + `labels`, created on first use.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histograms
            .lock()
            .expect("registry lock")
            .entry((name.to_owned(), normalized(labels)))
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// [`MetricsSnapshot::rollup`] over a fresh snapshot: every metric
    /// aggregated onto the label keys in `keys`.
    #[must_use]
    pub fn rollup(&self, keys: &[&str]) -> MetricsSnapshot {
        self.snapshot().rollup(keys)
    }

    /// [`MetricsSnapshot::rollup_tree`] over a fresh snapshot: the full
    /// hierarchy of group-level aggregates for `hierarchy`.
    #[must_use]
    pub fn rollup_tree(&self, hierarchy: &[&str]) -> RollupNode {
        self.snapshot().rollup_tree(hierarchy)
    }

    /// A point-in-time copy of every metric, ready to serialize.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .expect("registry lock")
                .iter()
                .map(|((name, labels), counter)| CounterSnapshot {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: counter.get(),
                })
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("registry lock")
                .iter()
                .map(|((name, labels), gauge)| GaugeSnapshot {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: gauge.get(),
                })
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("registry lock")
                .iter()
                .map(|((name, labels), histogram)| NamedHistogram {
                    name: name.clone(),
                    labels: labels.clone(),
                    histogram: histogram.snapshot(),
                })
                .collect(),
        }
    }
}

/// One counter in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Sorted label set.
    pub labels: Labels,
    /// Value at snapshot time.
    pub value: u64,
}

/// One gauge in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Sorted label set.
    pub labels: Labels,
    /// Value at snapshot time.
    pub value: f64,
}

/// One histogram in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NamedHistogram {
    /// Metric name.
    pub name: String,
    /// Sorted label set.
    pub labels: Labels,
    /// Histogram contents.
    pub histogram: HistogramSnapshot,
}

/// Everything a [`Registry`] held at snapshot time.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name then labels.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name then labels.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by name then labels.
    pub histograms: Vec<NamedHistogram>,
}

/// Restricts a sorted label set to the keys in `keys` (order preserved —
/// labels are already sorted by key).
fn project(labels: &Labels, keys: &[&str]) -> Labels {
    labels.iter().filter(|(k, _)| keys.contains(&k.as_str())).cloned().collect()
}

impl MetricsSnapshot {
    /// The value of the counter `name` whose labels include `labels`
    /// (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .iter()
            .filter(|c| {
                c.name == name
                    && labels
                        .iter()
                        .all(|&(k, v)| c.labels.iter().any(|(ck, cv)| ck == k && cv == v))
            })
            .map(|c| c.value)
            .sum()
    }

    /// The sum of every gauge `name` whose labels include `labels`
    /// (0 when absent). Gauges aggregate by sum: the workspace's gauges
    /// are occupancy-style quantities (servers, violated bins, load) for
    /// which group totals are the meaningful rollup.
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> f64 {
        self.gauges
            .iter()
            .filter(|g| {
                g.name == name
                    && labels
                        .iter()
                        .all(|&(k, v)| g.labels.iter().any(|(gk, gv)| gk == k && gv == v))
            })
            .map(|g| g.value)
            .sum()
    }

    /// Aggregates every metric onto the label keys in `keys`, dropping all
    /// other labels: counters and gauges sum, histograms merge on
    /// log-bucket counts. `rollup(&[])` collapses each metric name to one
    /// grand total; `rollup(&["algorithm"])` yields per-algorithm totals
    /// regardless of how many finer labels (`class`, `bin_group`, …) the
    /// recording sites attached.
    #[must_use]
    pub fn rollup(&self, keys: &[&str]) -> MetricsSnapshot {
        let mut counters: BTreeMap<(String, Labels), u64> = BTreeMap::new();
        for c in &self.counters {
            *counters.entry((c.name.clone(), project(&c.labels, keys))).or_insert(0) += c.value;
        }
        let mut gauges: BTreeMap<(String, Labels), f64> = BTreeMap::new();
        for g in &self.gauges {
            *gauges.entry((g.name.clone(), project(&g.labels, keys))).or_insert(0.0) += g.value;
        }
        let mut histograms: BTreeMap<(String, Labels), HistogramSnapshot> = BTreeMap::new();
        for h in &self.histograms {
            histograms
                .entry((h.name.clone(), project(&h.labels, keys)))
                .or_insert_with(HistogramSnapshot::empty)
                .merge(&h.histogram);
        }
        MetricsSnapshot {
            counters: counters
                .into_iter()
                .map(|((name, labels), value)| CounterSnapshot { name, labels, value })
                .collect(),
            gauges: gauges
                .into_iter()
                .map(|((name, labels), value)| GaugeSnapshot { name, labels, value })
                .collect(),
            histograms: histograms
                .into_iter()
                .map(|((name, labels), histogram)| NamedHistogram { name, labels, histogram })
                .collect(),
        }
    }

    /// What happened between `earlier` and `self` (two snapshots of the
    /// same registry): counter deltas (saturating, so a restarted registry
    /// reads as zero rather than wrapping), gauges at their later value,
    /// histogram interval deltas via [`HistogramSnapshot::diff`]. Metrics
    /// absent from `earlier` count from zero.
    #[must_use]
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters_before: BTreeMap<(&str, &Labels), u64> =
            earlier.counters.iter().map(|c| ((c.name.as_str(), &c.labels), c.value)).collect();
        let histograms_before: BTreeMap<(&str, &Labels), &HistogramSnapshot> = earlier
            .histograms
            .iter()
            .map(|h| ((h.name.as_str(), &h.labels), &h.histogram))
            .collect();
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|c| CounterSnapshot {
                    name: c.name.clone(),
                    labels: c.labels.clone(),
                    value: c.value.saturating_sub(
                        counters_before.get(&(c.name.as_str(), &c.labels)).copied().unwrap_or(0),
                    ),
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|h| NamedHistogram {
                    name: h.name.clone(),
                    labels: h.labels.clone(),
                    histogram: match histograms_before.get(&(h.name.as_str(), &h.labels)) {
                        Some(before) => h.histogram.diff(before),
                        None => h.histogram.clone(),
                    },
                })
                .collect(),
        }
    }

    /// Builds the rollup tree for a label hierarchy, coarsest key first.
    ///
    /// The root aggregates everything; each level splits on the next key
    /// in `hierarchy`, so with `["algorithm", "class"]` the root holds
    /// grand totals, its children per-algorithm totals, and their children
    /// per-algorithm-per-class totals. A metric that lacks the split key
    /// of some level stays aggregated in that level's node and descends no
    /// further.
    #[must_use]
    pub fn rollup_tree(&self, hierarchy: &[&str]) -> RollupNode {
        fn build(
            metrics: &MetricsSnapshot,
            hierarchy: &[&str],
            depth: usize,
            path: &[&str],
            key: String,
            value: String,
        ) -> RollupNode {
            let rolled = metrics.rollup(path);
            let children = match hierarchy.get(depth) {
                None => Vec::new(),
                Some(&split) => {
                    let mut values: Vec<String> = Vec::new();
                    for labels in metrics
                        .counters
                        .iter()
                        .map(|c| &c.labels)
                        .chain(metrics.gauges.iter().map(|g| &g.labels))
                        .chain(metrics.histograms.iter().map(|h| &h.labels))
                    {
                        if let Some((_, v)) = labels.iter().find(|(k, _)| k == split) {
                            if !values.contains(v) {
                                values.push(v.clone());
                            }
                        }
                    }
                    values.sort();
                    let mut child_path: Vec<&str> = path.to_vec();
                    child_path.push(split);
                    values
                        .into_iter()
                        .map(|v| {
                            let subset = metrics.filtered(split, &v);
                            build(&subset, hierarchy, depth + 1, &child_path, split.to_owned(), v)
                        })
                        .collect()
                }
            };
            RollupNode { key, value, metrics: rolled, children }
        }
        build(self, hierarchy, 0, &[], String::new(), String::new())
    }

    /// The subset of metrics carrying label `key == value`.
    fn filtered(&self, key: &str, value: &str) -> MetricsSnapshot {
        let matches = |labels: &Labels| labels.iter().any(|(k, v)| k == key && v == value);
        MetricsSnapshot {
            counters: self.counters.iter().filter(|c| matches(&c.labels)).cloned().collect(),
            gauges: self.gauges.iter().filter(|g| matches(&g.labels)).cloned().collect(),
            histograms: self.histograms.iter().filter(|h| matches(&h.labels)).cloned().collect(),
        }
    }
}

/// One node of a [`MetricsSnapshot::rollup_tree`]: the aggregate of every
/// metric in its subtree, split further by the next hierarchy key.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RollupNode {
    /// Label key this node's `value` belongs to (empty at the root).
    pub key: String,
    /// Label value selecting this subtree (empty at the root).
    pub value: String,
    /// Metrics aggregated over the whole subtree, labels projected onto
    /// the hierarchy prefix ending at this node.
    pub metrics: MetricsSnapshot,
    /// Child nodes for the next hierarchy key, sorted by label value.
    pub children: Vec<RollupNode>,
}

impl RollupNode {
    /// Renders the tree as an indented text outline of counter totals —
    /// the human-readable rollup view the CLI prints.
    #[must_use]
    pub fn render(&self) -> String {
        fn walk(node: &RollupNode, depth: usize, out: &mut String) {
            let indent = "  ".repeat(depth);
            let label = if node.key.is_empty() {
                "total".to_owned()
            } else {
                format!("{}={}", node.key, node.value)
            };
            out.push_str(&format!("{indent}{label}\n"));
            for c in &node.metrics.counters {
                out.push_str(&format!("{indent}  {} = {}\n", c.name, c.value));
            }
            for g in &node.metrics.gauges {
                out.push_str(&format!("{indent}  {} = {:.4}\n", g.name, g.value));
            }
            for h in &node.metrics.histograms {
                out.push_str(&format!(
                    "{indent}  {} : count {} p50 {:.6} p99 {:.6}\n",
                    h.name, h.histogram.count, h.histogram.p50, h.histogram.p99
                ));
            }
            for child in &node.children {
                walk(child, depth + 1, out);
            }
        }
        let mut out = String::new();
        walk(self, 0, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_cells_per_label_set() {
        let registry = Registry::new();
        let a = registry.counter("placed", &[("algorithm", "cubefit")]);
        let b = registry.counter("placed", &[("algorithm", "cubefit")]);
        let other = registry.counter("placed", &[("algorithm", "rfi")]);
        a.inc();
        b.add(2);
        other.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(other.get(), 1);
    }

    #[test]
    fn label_order_does_not_matter() {
        let registry = Registry::new();
        let a = registry.counter("x", &[("gamma", "2"), ("algorithm", "cubefit")]);
        registry.counter("x", &[("algorithm", "cubefit"), ("gamma", "2")]).inc();
        assert_eq!(a.get(), 1);
    }

    #[test]
    fn gauge_stores_latest() {
        let registry = Registry::new();
        let g = registry.gauge("utilization", &[]);
        g.set(0.25);
        g.set(0.75);
        assert_eq!(g.get(), 0.75);
    }

    #[test]
    fn snapshot_serializes_and_queries() {
        let registry = Registry::new();
        registry.counter("bins_opened", &[("algorithm", "cubefit")]).add(7);
        registry.gauge("utilization", &[]).set(0.5);
        registry.histogram("latency", &[("server", "3")]).record(0.010);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("bins_opened", &[("algorithm", "cubefit")]), 7);
        assert_eq!(snap.counter("bins_opened", &[("algorithm", "rfi")]), 0);
        let text = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }

    /// A registry populated with metrics at `{algorithm, class}` granularity,
    /// the shape the consolidators actually emit.
    fn labelled_registry() -> Registry {
        let registry = Registry::new();
        for (algo, class, placed, lat) in
            [("cubefit", "0", 5u64, 0.010), ("cubefit", "1", 3, 0.020), ("rfi", "0", 2, 0.040)]
        {
            registry.counter("placed", &[("algorithm", algo), ("class", class)]).add(placed);
            registry.histogram("latency", &[("algorithm", algo), ("class", class)]).record(lat);
        }
        registry.gauge("servers", &[("algorithm", "cubefit")]).set(4.0);
        registry.gauge("servers", &[("algorithm", "rfi")]).set(6.0);
        // A metric with no `class` label at all: must survive rollups intact.
        registry.counter("audits", &[]).add(9);
        registry
    }

    #[test]
    fn rollup_aggregates_onto_prefix_keys() {
        let registry = labelled_registry();
        let per_algo = registry.rollup(&["algorithm"]);
        assert_eq!(per_algo.counter("placed", &[("algorithm", "cubefit")]), 8);
        assert_eq!(per_algo.counter("placed", &[("algorithm", "rfi")]), 2);
        assert_eq!(per_algo.counter("audits", &[]), 9);
        // Class labels are gone: exactly one cubefit `placed` row remains.
        let cubefit_rows = per_algo
            .counters
            .iter()
            .filter(|c| c.name == "placed" && c.labels.iter().any(|(_, v)| v == "cubefit"))
            .count();
        assert_eq!(cubefit_rows, 1);
        // Histograms merged: both cubefit samples in one histogram.
        let merged = per_algo
            .histograms
            .iter()
            .find(|h| {
                h.name == "latency" && h.labels == vec![("algorithm".into(), "cubefit".into())]
            })
            .expect("merged cubefit latency histogram");
        assert_eq!(merged.histogram.count, 2);

        let grand = registry.rollup(&[]);
        assert_eq!(grand.counter("placed", &[]), 10);
        assert_eq!(grand.gauge("servers", &[]), 10.0);
        let total_latency = grand.histograms.iter().find(|h| h.name == "latency").expect("latency");
        assert_eq!(total_latency.histogram.count, 3);
    }

    #[test]
    fn diff_reports_only_the_interval() {
        let registry = Registry::new();
        let placed = registry.counter("placed", &[]);
        let latency = registry.histogram("latency", &[]);
        placed.add(4);
        latency.record(0.010);
        let before = registry.snapshot();
        placed.add(6);
        latency.record(0.030);
        registry.counter("failures", &[]).inc();
        let after = registry.snapshot();
        let delta = after.diff(&before);
        assert_eq!(delta.counter("placed", &[]), 6);
        // Counter absent from `before` counts from zero.
        assert_eq!(delta.counter("failures", &[]), 1);
        let lat = delta.histograms.iter().find(|h| h.name == "latency").unwrap();
        assert_eq!(lat.histogram.count, 1);
    }

    #[test]
    fn rollup_tree_splits_by_hierarchy_level() {
        let registry = labelled_registry();
        let tree = registry.rollup_tree(&["algorithm", "class"]);
        assert_eq!(tree.key, "");
        assert_eq!(tree.metrics.counter("placed", &[]), 10);
        assert_eq!(tree.children.len(), 2);
        let cubefit = tree.children.iter().find(|c| c.value == "cubefit").expect("cubefit child");
        assert_eq!(cubefit.key, "algorithm");
        assert_eq!(cubefit.metrics.counter("placed", &[("algorithm", "cubefit")]), 8);
        // `audits` has no algorithm label: aggregated at the root only.
        assert_eq!(cubefit.metrics.counter("audits", &[]), 0);
        let classes: Vec<&str> = cubefit.children.iter().map(|c| c.value.as_str()).collect();
        assert_eq!(classes, ["0", "1"]);
        let class0 = &cubefit.children[0];
        assert_eq!(
            class0.metrics.counter("placed", &[("algorithm", "cubefit"), ("class", "0")]),
            5
        );
        assert!(class0.children.is_empty());
        // The tree serializes (the CLI ships it as JSON) and renders.
        let text = serde_json::to_string(&tree).unwrap();
        let back: RollupNode = serde_json::from_str(&text).unwrap();
        assert_eq!(back, tree);
        let rendered = tree.render();
        assert!(rendered.contains("algorithm=cubefit"));
        assert!(rendered.contains("class=1"));
    }
}
