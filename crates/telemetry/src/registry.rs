//! Named metrics with hierarchical labels.

use crate::histogram::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A label set, e.g. `[("algorithm", "cubefit"), ("gamma", "2")]`.
///
/// Labels are hierarchical by convention: `algorithm` → `gamma` → `class`
/// → `server`, from coarsest to finest. They are stored sorted by key so
/// the same set always maps to the same metric.
pub type Labels = Vec<(String, String)>;

fn normalized(labels: &[(&str, &str)]) -> Labels {
    let mut labels: Labels = labels.iter().map(|&(k, v)| (k.to_owned(), v.to_owned())).collect();
    labels.sort();
    labels
}

/// A monotonically increasing metric. Cloning shares the underlying cell,
/// so handles can be resolved once and kept on hot paths.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A metric holding the latest `f64` observation.
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge { bits: Arc::new(AtomicU64::new(0.0f64.to_bits())) }
    }
}

impl Gauge {
    /// Replaces the value.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Owns every metric; hands out shared handles and takes snapshots.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<(String, Labels), Counter>>,
    gauges: Mutex<BTreeMap<(String, Labels), Gauge>>,
    histograms: Mutex<BTreeMap<(String, Labels), Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter for `name` + `labels`, created on first use.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.counters
            .lock()
            .expect("registry lock")
            .entry((name.to_owned(), normalized(labels)))
            .or_default()
            .clone()
    }

    /// The gauge for `name` + `labels`, created on first use.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.gauges
            .lock()
            .expect("registry lock")
            .entry((name.to_owned(), normalized(labels)))
            .or_default()
            .clone()
    }

    /// The histogram for `name` + `labels`, created on first use.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histograms
            .lock()
            .expect("registry lock")
            .entry((name.to_owned(), normalized(labels)))
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// A point-in-time copy of every metric, ready to serialize.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .expect("registry lock")
                .iter()
                .map(|((name, labels), counter)| CounterSnapshot {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: counter.get(),
                })
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("registry lock")
                .iter()
                .map(|((name, labels), gauge)| GaugeSnapshot {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: gauge.get(),
                })
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("registry lock")
                .iter()
                .map(|((name, labels), histogram)| NamedHistogram {
                    name: name.clone(),
                    labels: labels.clone(),
                    histogram: histogram.snapshot(),
                })
                .collect(),
        }
    }
}

/// One counter in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Sorted label set.
    pub labels: Labels,
    /// Value at snapshot time.
    pub value: u64,
}

/// One gauge in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Sorted label set.
    pub labels: Labels,
    /// Value at snapshot time.
    pub value: f64,
}

/// One histogram in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NamedHistogram {
    /// Metric name.
    pub name: String,
    /// Sorted label set.
    pub labels: Labels,
    /// Histogram contents.
    pub histogram: HistogramSnapshot,
}

/// Everything a [`Registry`] held at snapshot time.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name then labels.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name then labels.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by name then labels.
    pub histograms: Vec<NamedHistogram>,
}

impl MetricsSnapshot {
    /// The value of the counter `name` whose labels include `labels`
    /// (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .iter()
            .filter(|c| {
                c.name == name
                    && labels
                        .iter()
                        .all(|&(k, v)| c.labels.iter().any(|(ck, cv)| ck == k && cv == v))
            })
            .map(|c| c.value)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_cells_per_label_set() {
        let registry = Registry::new();
        let a = registry.counter("placed", &[("algorithm", "cubefit")]);
        let b = registry.counter("placed", &[("algorithm", "cubefit")]);
        let other = registry.counter("placed", &[("algorithm", "rfi")]);
        a.inc();
        b.add(2);
        other.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(other.get(), 1);
    }

    #[test]
    fn label_order_does_not_matter() {
        let registry = Registry::new();
        let a = registry.counter("x", &[("gamma", "2"), ("algorithm", "cubefit")]);
        registry.counter("x", &[("algorithm", "cubefit"), ("gamma", "2")]).inc();
        assert_eq!(a.get(), 1);
    }

    #[test]
    fn gauge_stores_latest() {
        let registry = Registry::new();
        let g = registry.gauge("utilization", &[]);
        g.set(0.25);
        g.set(0.75);
        assert_eq!(g.get(), 0.75);
    }

    #[test]
    fn snapshot_serializes_and_queries() {
        let registry = Registry::new();
        registry.counter("bins_opened", &[("algorithm", "cubefit")]).add(7);
        registry.gauge("utilization", &[]).set(0.5);
        registry.histogram("latency", &[("server", "3")]).record(0.010);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("bins_opened", &[("algorithm", "cubefit")]), 7);
        assert_eq!(snap.counter("bins_opened", &[("algorithm", "rfi")]), 0);
        let text = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }
}
