//! Property tests for the admission-control limiters in isolation
//! (satellite of the service-loop PR).
//!
//! Three contracts, per algorithm, under seeded random sample streams —
//! no wall-clock anywhere:
//!
//! 1. **Bounds**: the limit stays inside `[min, max]` after every
//!    observation, for arbitrary latency/in-flight/outcome sequences.
//! 2. **Shrink under breach**: sustained injected latency breaches
//!    (overload outcomes) pull the limit strictly below its ceiling.
//! 3. **Recovery**: sustained fast, fully-utilized successes return the
//!    limit to its ceiling.

use cubefit_service::{AimdLimiter, GradientLimiter, Limiter, LimiterSpec, Outcome, Sample};
use proptest::prelude::*;

/// Builds one limiter of each adaptive algorithm for a bounds window.
fn adaptive_limiters(min: usize, max: usize) -> Vec<Box<dyn Limiter>> {
    vec![
        LimiterSpec::aimd(min, max).build().unwrap(),
        LimiterSpec::gradient(min, max).build().unwrap(),
    ]
}

/// Raw draw for one sample: (latency_ms, in_flight, is_overload).
fn sample_strategy() -> impl Strategy<Value = (f64, usize, bool)> {
    (0.0f64..2000.0, 0usize..512, any::<bool>())
}

fn to_sample((latency_ms, in_flight, over): (f64, usize, bool)) -> Sample {
    Sample {
        latency_ms,
        in_flight,
        outcome: if over { Outcome::Overload } else { Outcome::Success },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Contract 1: no sample stream, however adversarial, pushes any
    /// limiter outside its configured [min, max] window.
    #[test]
    fn limits_stay_within_bounds_for_any_stream(
        samples in prop::collection::vec(sample_strategy(), 1..200),
        min in 1usize..16,
        span in 1usize..240,
    ) {
        let max = min + span;
        for mut limiter in adaptive_limiters(min, max) {
            for &raw in &samples {
                limiter.observe(to_sample(raw));
                let limit = limiter.limit();
                prop_assert!(
                    (min..=max).contains(&limit),
                    "{}: limit {} escaped [{}, {}]",
                    limiter.name(),
                    limit,
                    min,
                    max
                );
            }
        }
    }

    /// Contract 2: sustained latency breaches shrink the limit strictly
    /// below the ceiling (the controller actually backs off).
    #[test]
    fn sustained_breaches_shrink_the_limit(
        breach_ms in 500.0f64..5000.0,
        rounds in 20usize..80,
    ) {
        let (min, max) = (4usize, 128usize);
        for mut limiter in adaptive_limiters(min, max) {
            // Drive to the ceiling first with fast, saturated successes.
            for _ in 0..512 {
                let in_flight = limiter.limit();
                limiter.observe(Sample { latency_ms: 1.0, in_flight, outcome: Outcome::Success });
            }
            let ceiling = limiter.limit();
            prop_assert_eq!(ceiling, max, "{} did not reach its ceiling", limiter.name());
            for _ in 0..rounds {
                let in_flight = limiter.limit();
                limiter.observe(Sample {
                    latency_ms: breach_ms,
                    in_flight,
                    outcome: Outcome::Overload,
                });
            }
            prop_assert!(
                limiter.limit() < ceiling,
                "{}: limit {} did not shrink under {} breaches of {}ms",
                limiter.name(),
                limiter.limit(),
                rounds,
                breach_ms
            );
        }
    }

    /// Contract 3: after an arbitrary breach history, sustained fast
    /// fully-utilized responses recover the limit to its ceiling.
    #[test]
    fn sustained_fast_responses_recover_to_ceiling(
        breaches in prop::collection::vec(100.0f64..3000.0, 0..60),
    ) {
        let (min, max) = (4usize, 64usize);
        for mut limiter in adaptive_limiters(min, max) {
            for &latency_ms in &breaches {
                let in_flight = limiter.limit();
                limiter.observe(Sample { latency_ms, in_flight, outcome: Outcome::Overload });
            }
            for _ in 0..4096 {
                let in_flight = limiter.limit();
                limiter.observe(Sample { latency_ms: 1.0, in_flight, outcome: Outcome::Success });
            }
            prop_assert_eq!(
                limiter.limit(),
                max,
                "{} failed to recover to its ceiling after {} breaches",
                limiter.name(),
                breaches.len()
            );
        }
    }
}

/// AIMD-specific shape: each overload multiplies the limit down, so the
/// decrease is multiplicative, not additive.
#[test]
fn aimd_backoff_is_multiplicative() {
    let mut limiter = AimdLimiter::new(2, 256, 1.0, 0.5);
    for _ in 0..512 {
        let in_flight = limiter.limit();
        limiter.observe(Sample { latency_ms: 1.0, in_flight, outcome: Outcome::Success });
    }
    assert_eq!(limiter.limit(), 256);
    let mut expected = 256.0f64;
    for _ in 0..4 {
        let in_flight = limiter.limit();
        limiter.observe(Sample { latency_ms: 900.0, in_flight, outcome: Outcome::Overload });
        expected = (expected * 0.5).max(2.0);
        assert_eq!(limiter.limit(), expected as usize);
    }
}

/// Gradient-specific shape: a single latency spike inside a calm stream
/// barely moves the limit (the long-term EWMA dominates), unlike AIMD's
/// immediate halving.
#[test]
fn gradient_tolerates_an_isolated_spike() {
    let mut limiter = GradientLimiter::new(4, 128, 1.5, 0.2);
    for _ in 0..512 {
        let in_flight = limiter.limit();
        limiter.observe(Sample { latency_ms: 10.0, in_flight, outcome: Outcome::Success });
    }
    let before = limiter.limit();
    assert_eq!(before, 128);
    let in_flight = limiter.limit();
    limiter.observe(Sample { latency_ms: 400.0, in_flight, outcome: Outcome::Overload });
    let after = limiter.limit();
    assert!(
        after >= before / 2,
        "one spike should not collapse the gradient limit: {before} -> {after}"
    );
}
