//! The overload-safe placement service loop.
//!
//! [`PlacementService`] wraps any [`Consolidator`] behind a bounded
//! request queue with arrival batching. Admission happens in two layers:
//! a [`Limiter`] bound on *outstanding* work (queued + executing) sheds
//! arrivals the moment the window is full, and the queue capacity is the
//! hard backstop behind it. Every admitted request carries a deadline;
//! requests that expire while queued are rejected at dequeue time rather
//! than executed late. Each rejection is typed ([`Rejected`]) so callers
//! get honest accounting instead of silent drops — the invariant
//! `offered = completed + shed + queue_full + deadline_expired + pending`
//! holds at every instant and is asserted in tests.
//!
//! The service is clock-agnostic: callers pass `now_ms` into
//! [`PlacementService::offer`] / [`PlacementService::start_batch`] /
//! [`PlacementService::complete_batch`], so the DES harness in
//! `cubefit-sim` drives it on a simulated clock and every decision —
//! including shed rates and degradation steps — replays byte-for-byte.
//!
//! Graceful degradation: a three-rung ladder (full audit → sampled audit
//! → audit off) trades oracle coverage for decision latency. When the
//! windowed p99 latency breaches the SLO the ladder steps down one rung;
//! when it recovers well below the SLO the ladder climbs back. Admitted
//! mutations remain oracle-auditable at every rung — the ladder only
//! changes *when* the oracle runs, never what the consolidator does.

use crate::limit::{Limiter, LimiterSpec, Outcome, Sample};
use cubefit_core::{oracle, Consolidator, PlacementDump, Result, Tenant, TenantId};
use cubefit_durability::{Journal, JournaledConsolidator};
use cubefit_telemetry::{Counter, Gauge, Histogram, Recorder, TraceEvent};
use std::collections::VecDeque;
use std::sync::Arc;

/// One placement mutation offered to the service.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Place a new tenant (γ replicas).
    Place(Tenant),
    /// Remove a tenant and release its replicas.
    Remove(TenantId),
    /// Re-estimate a tenant's load in place.
    UpdateLoad(TenantId, f64),
}

/// Why the service turned a request away. Every rejection is accounted —
/// the caller always learns which layer said no.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Rejected {
    /// The bounded queue is at capacity (the hard backstop).
    QueueFull {
        /// Queue capacity at rejection time.
        capacity: usize,
    },
    /// The request expired before execution began.
    DeadlineExceeded {
        /// How long it sat queued, ms.
        waited_ms: f64,
    },
    /// The admission controller's concurrency limit is full.
    Shed {
        /// Outstanding requests (queued + executing) at rejection time.
        outstanding: usize,
        /// The limit that was hit.
        limit: usize,
    },
}

impl Rejected {
    /// Short reason tag for traces and counters.
    #[must_use]
    pub fn reason(&self) -> &'static str {
        match self {
            Rejected::QueueFull { .. } => "queue_full",
            Rejected::DeadlineExceeded { .. } => "deadline",
            Rejected::Shed { .. } => "shed",
        }
    }
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::QueueFull { capacity } => write!(f, "queue full ({capacity})"),
            Rejected::DeadlineExceeded { waited_ms } => {
                write!(f, "deadline exceeded after {waited_ms:.1}ms queued")
            }
            Rejected::Shed { outstanding, limit } => {
                write!(f, "shed ({outstanding} outstanding >= limit {limit})")
            }
        }
    }
}

/// Rung of the degradation ladder: how much oracle auditing runs per
/// batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum AuditMode {
    /// Audit after every batch (maximum coverage, maximum latency).
    Full,
    /// Audit every [`ServiceConfig::audit_sample_every`]-th batch.
    Sampled,
    /// No per-batch audits — the fast path under overload. Final-state
    /// auditability is unaffected: the dump still replays clean.
    Off,
}

impl AuditMode {
    /// Lowercase label for traces and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AuditMode::Full => "full",
            AuditMode::Sampled => "sampled",
            AuditMode::Off => "off",
        }
    }

    fn down(self) -> Option<AuditMode> {
        match self {
            AuditMode::Full => Some(AuditMode::Sampled),
            AuditMode::Sampled => Some(AuditMode::Off),
            AuditMode::Off => None,
        }
    }

    fn up(self) -> Option<AuditMode> {
        match self {
            AuditMode::Full => None,
            AuditMode::Sampled => Some(AuditMode::Full),
            AuditMode::Off => Some(AuditMode::Sampled),
        }
    }
}

/// Service loop configuration.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServiceConfig {
    /// Admission-control algorithm and bounds.
    pub limiter: LimiterSpec,
    /// Hard bound on queued requests.
    pub queue_capacity: usize,
    /// Most requests executed per batch.
    pub batch_max: usize,
    /// Per-request deadline: a request still queued this many ms after
    /// arrival is rejected at dequeue time.
    pub deadline_ms: f64,
    /// The p99 decision-latency SLO driving the limiter's overload signal
    /// and the degradation ladder.
    pub slo_p99_ms: f64,
    /// Completed-request window the p99 is computed over.
    pub latency_window: usize,
    /// Batch stride of oracle audits at the `Sampled` rung.
    pub audit_sample_every: u64,
    /// The ladder steps back up when the windowed p99 falls below
    /// `slo_p99_ms × recover_margin`.
    pub recover_margin: f64,
    /// Fraction of the SLO at which a batch's worst latency counts as an
    /// overload signal to the limiter. Below 1.0 the controller targets
    /// headroom, so its sawtooth peaks *under* the SLO instead of
    /// oscillating across it.
    pub overload_margin: f64,
    /// Minimum batches between ladder moves (debounce).
    pub ladder_cooldown: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            limiter: LimiterSpec::aimd(4, 256),
            queue_capacity: 256,
            batch_max: 16,
            deadline_ms: 500.0,
            slo_p99_ms: 100.0,
            latency_window: 128,
            audit_sample_every: 8,
            recover_margin: 0.5,
            overload_margin: 0.6,
            ladder_cooldown: 16,
        }
    }
}

impl ServiceConfig {
    fn validate(&self) -> std::result::Result<(), String> {
        if self.queue_capacity == 0 {
            return Err("queue capacity must be >= 1".to_owned());
        }
        if self.batch_max == 0 {
            return Err("batch max must be >= 1".to_owned());
        }
        if self.deadline_ms.is_nan() || self.deadline_ms <= 0.0 {
            return Err("deadline must be positive".to_owned());
        }
        if self.slo_p99_ms.is_nan() || self.slo_p99_ms <= 0.0 {
            return Err("SLO must be positive".to_owned());
        }
        if self.latency_window < 2 {
            return Err("latency window must be >= 2".to_owned());
        }
        if self.audit_sample_every == 0 {
            return Err("audit sample stride must be >= 1".to_owned());
        }
        if !(self.recover_margin > 0.0 && self.recover_margin < 1.0) {
            return Err("recover margin must be in (0, 1)".to_owned());
        }
        if !(self.overload_margin > 0.0 && self.overload_margin <= 1.0) {
            return Err("overload margin must be in (0, 1]".to_owned());
        }
        Ok(())
    }
}

/// Running totals of everything the service did. The accounting invariant
/// `offered == completed + shed + queue_full + deadline_expired +
/// pending()` holds after every call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct ServiceStats {
    /// Requests offered (admitted or not).
    pub offered: u64,
    /// Requests executed to completion.
    pub completed: u64,
    /// Rejections by the concurrency limiter.
    pub shed: u64,
    /// Rejections by the queue backstop.
    pub queue_full: u64,
    /// Admitted requests that expired while queued.
    pub deadline_expired: u64,
    /// Batches executed.
    pub batches: u64,
    /// Oracle audits run by the ladder.
    pub audits: u64,
    /// Divergences those audits found (0 = every admitted mutation agreed
    /// with the oracle).
    pub audit_divergences: u64,
    /// Ladder steps toward less auditing.
    pub ladder_down: u64,
    /// Ladder steps toward more auditing.
    pub ladder_up: u64,
}

impl ServiceStats {
    /// All rejections across the three typed reasons.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.shed + self.queue_full + self.deadline_expired
    }
}

/// One queued request.
#[derive(Debug, Clone)]
struct Queued {
    id: u64,
    request: Request,
    arrival_ms: f64,
    deadline_ms: f64,
}

/// An admitted request currently executing in the open batch.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    id: u64,
    arrival_ms: f64,
}

/// What [`PlacementService::start_batch`] handed the caller: the work the
/// batch performed, so a simulated-time driver can charge a cost model
/// and notify the owners of expired requests.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BatchWork {
    /// Mutations executed (`0` means no batch is executing — everything
    /// dequeued had expired, or the queue was empty).
    pub ops: usize,
    /// Ids of queued requests that expired at dequeue (already accounted
    /// as [`Rejected::DeadlineExceeded`]).
    pub expired: Vec<u64>,
    /// Open bins walked by the oracle audit (0 when the ladder skipped
    /// it).
    pub audited_bins: usize,
}

/// One completed request, as reported by
/// [`PlacementService::complete_batch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletedOp {
    /// The id [`PlacementService::offer`] returned for this request.
    pub id: u64,
    /// Queue wait + execution, ms.
    pub latency_ms: f64,
}

/// The overload-safe service loop. See the module docs for the design.
pub struct PlacementService {
    consolidator: Box<dyn Consolidator>,
    config: ServiceConfig,
    limiter: Box<dyn Limiter>,
    queue: VecDeque<Queued>,
    executing: Vec<InFlight>,
    in_flight_at_start: usize,
    next_id: u64,
    stats: ServiceStats,
    audit_mode: AuditMode,
    batches_since_audit: u64,
    cooldown: u64,
    latencies: VecDeque<f64>,
    journal: Option<Journal>,
    checkpoint_every_batches: u64,
    recorder: Recorder,
    latency_hist: Arc<Histogram>,
    batch_size_hist: Arc<Histogram>,
    queue_gauge: Gauge,
    in_flight_gauge: Gauge,
    limit_gauge: Gauge,
    completed_ctr: Counter,
    shed_ctr: Counter,
    queue_full_ctr: Counter,
    deadline_ctr: Counter,
}

impl PlacementService {
    /// Wraps `consolidator` in the service loop.
    ///
    /// # Errors
    ///
    /// Returns a message for invalid configuration.
    pub fn new(
        consolidator: Box<dyn Consolidator>,
        config: ServiceConfig,
        recorder: Recorder,
    ) -> std::result::Result<Self, String> {
        config.validate()?;
        let limiter = config.limiter.build()?;
        let mut consolidator = consolidator;
        consolidator.set_recorder(recorder.clone());
        let latency_hist = recorder.histogram("service_latency_ms", &[]);
        let batch_size_hist = recorder.histogram("service_batch_size", &[]);
        let queue_gauge = recorder.gauge("service_queue_depth", &[]);
        let in_flight_gauge = recorder.gauge("service_in_flight", &[]);
        let limit_gauge = recorder.gauge("service_limit", &[]);
        limit_gauge.set(limiter.limit() as f64);
        let completed_ctr = recorder.counter("service_completed", &[]);
        let shed_ctr = recorder.counter("service_rejected", &[("reason", "shed")]);
        let queue_full_ctr = recorder.counter("service_rejected", &[("reason", "queue_full")]);
        let deadline_ctr = recorder.counter("service_rejected", &[("reason", "deadline")]);
        Ok(PlacementService {
            consolidator,
            config,
            limiter,
            queue: VecDeque::new(),
            executing: Vec::new(),
            in_flight_at_start: 0,
            next_id: 0,
            stats: ServiceStats::default(),
            audit_mode: AuditMode::Full,
            batches_since_audit: 0,
            cooldown: 0,
            latencies: VecDeque::new(),
            journal: None,
            checkpoint_every_batches: 0,
            recorder,
            latency_hist,
            batch_size_hist,
            queue_gauge,
            in_flight_gauge,
            limit_gauge,
            completed_ctr,
            shed_ctr,
            queue_full_ctr,
            deadline_ctr,
        })
    }

    /// Like [`Self::new`], but every mutation the service applies is
    /// journaled to `journal` before the batch is acknowledged, and the
    /// journal is checkpointed (and truncated) every
    /// `checkpoint_every_batches` executed batches (`0` disables periodic
    /// checkpoints; the journal alone still reconstructs the state).
    ///
    /// The wrapper journals *inside* [`Self::start_batch`] — a batch whose
    /// frame could not be written durably fails before
    /// [`Self::complete_batch`] ever reports it, so an acknowledged
    /// request is always recoverable.
    ///
    /// # Errors
    ///
    /// Returns a message for invalid configuration.
    pub fn journaled(
        consolidator: Box<dyn Consolidator>,
        config: ServiceConfig,
        recorder: Recorder,
        journal: Journal,
        checkpoint_every_batches: u64,
    ) -> std::result::Result<Self, String> {
        let wrapped = Box::new(JournaledConsolidator::new(consolidator, journal.clone()));
        let mut service = Self::new(wrapped, config, recorder)?;
        service.journal = Some(journal);
        service.checkpoint_every_batches = checkpoint_every_batches;
        Ok(service)
    }

    /// Fsyncs and seals the journal, marking the shutdown as orderly.
    /// Idempotent; a no-op for an unjournaled service.
    ///
    /// # Errors
    ///
    /// Propagates journal I/O failures.
    pub fn seal_journal(&self) -> Result<()> {
        if let Some(journal) = &self.journal {
            journal.seal().map_err(cubefit_core::Error::from)?;
        }
        Ok(())
    }

    /// Offers one request at time `now_ms`. On admission returns the
    /// request id that [`Self::complete_batch`] will later report.
    ///
    /// # Errors
    ///
    /// A typed [`Rejected`] when admission control or the queue backstop
    /// turns the request away.
    pub fn offer(&mut self, request: Request, now_ms: f64) -> std::result::Result<u64, Rejected> {
        self.stats.offered += 1;
        let outstanding = self.queue.len() + self.executing.len();
        let limit = self.limiter.limit();
        if outstanding >= limit {
            self.stats.shed += 1;
            self.shed_ctr.inc();
            self.emit_rejection("shed");
            return Err(Rejected::Shed { outstanding, limit });
        }
        if self.queue.len() >= self.config.queue_capacity {
            self.stats.queue_full += 1;
            self.queue_full_ctr.inc();
            self.emit_rejection("queue_full");
            return Err(Rejected::QueueFull { capacity: self.config.queue_capacity });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.queue.push_back(Queued {
            id,
            request,
            arrival_ms: now_ms,
            deadline_ms: now_ms + self.config.deadline_ms,
        });
        self.queue_gauge.set(self.queue.len() as f64);
        Ok(id)
    }

    /// Whether a batch is currently executing.
    #[must_use]
    pub fn busy(&self) -> bool {
        !self.executing.is_empty()
    }

    /// Queued requests waiting for a batch.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Admitted requests not yet completed (queued + executing).
    #[must_use]
    pub fn pending(&self) -> u64 {
        (self.queue.len() + self.executing.len()) as u64
    }

    /// Current admission limit.
    #[must_use]
    pub fn limit(&self) -> usize {
        self.limiter.limit()
    }

    /// Current rung of the degradation ladder.
    #[must_use]
    pub fn audit_mode(&self) -> AuditMode {
        self.audit_mode
    }

    /// Running totals.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// Serializable dump of the current placement — the artifact
    /// `cubefit check --audit` replays against the oracle.
    #[must_use]
    pub fn dump(&self) -> PlacementDump {
        PlacementDump::from_placement(self.consolidator.placement())
    }

    /// Read-only view of the wrapped consolidator.
    #[must_use]
    pub fn consolidator(&self) -> &dyn Consolidator {
        &*self.consolidator
    }

    /// Dequeues up to `batch_max` requests, drops the ones whose deadline
    /// passed (each accounted as [`Rejected::DeadlineExceeded`]), executes
    /// the survivors through the consolidator's batch mutation API, and —
    /// per the ladder — audits the result against the oracle. When
    /// `BatchWork::ops` is `0` the queue had no live requests and no
    /// batch is executing. Execution here is the *decision*; the caller
    /// owns the clock and calls [`Self::complete_batch`] at the time the
    /// batch is considered done.
    ///
    /// # Errors
    ///
    /// Propagates consolidator mutation errors (a malformed request such
    /// as removing an unknown tenant). Prior requests in the batch stay
    /// applied, matching the batch API's fail-fast contract.
    ///
    /// # Panics
    ///
    /// Panics if called while a batch is already executing — the service
    /// is a single-worker loop by design.
    pub fn start_batch(&mut self, now_ms: f64) -> Result<BatchWork> {
        assert!(self.executing.is_empty(), "start_batch while a batch is executing");
        let mut expired = Vec::new();
        let mut batch: Vec<Queued> = Vec::new();
        while batch.len() < self.config.batch_max {
            let Some(queued) = self.queue.pop_front() else { break };
            if now_ms > queued.deadline_ms {
                expired.push(queued.id);
                self.stats.deadline_expired += 1;
                self.deadline_ctr.inc();
                self.emit_rejection("deadline");
                continue;
            }
            batch.push(queued);
        }
        self.queue_gauge.set(self.queue.len() as f64);
        if batch.is_empty() {
            return Ok(BatchWork { ops: 0, expired, audited_bins: 0 });
        }

        self.in_flight_at_start = batch.len() + self.queue.len();
        self.execute(&batch)?;
        self.executing =
            batch.iter().map(|q| InFlight { id: q.id, arrival_ms: q.arrival_ms }).collect();
        self.in_flight_gauge.set(self.executing.len() as f64);
        self.batch_size_hist.record(batch.len() as f64);
        self.stats.batches += 1;
        self.maybe_checkpoint_journal()?;

        let audited_bins = self.maybe_audit();
        Ok(BatchWork { ops: batch.len(), expired, audited_bins })
    }

    /// Checkpoints the journal at the configured batch stride, retiring
    /// the log tail the checkpoint now covers.
    fn maybe_checkpoint_journal(&mut self) -> Result<()> {
        let Some(journal) = &self.journal else { return Ok(()) };
        if self.checkpoint_every_batches == 0
            || !self.stats.batches.is_multiple_of(self.checkpoint_every_batches)
        {
            return Ok(());
        }
        let info =
            journal.checkpoint(self.consolidator.placement()).map_err(cubefit_core::Error::from)?;
        let tenants = self.consolidator.placement().tenant_count();
        self.recorder.emit(|| TraceEvent::JournalCheckpoint {
            seq: info.seq,
            tenants,
            wal_bytes: info.wal_bytes,
        });
        Ok(())
    }

    /// Runs consecutive same-kind runs of the batch through the
    /// consolidator's batch mutation API, preserving arrival order across
    /// runs.
    fn execute(&mut self, batch: &[Queued]) -> Result<()> {
        let mut index = 0;
        while index < batch.len() {
            let start = index;
            match &batch[start].request {
                Request::Place(_) => {
                    let mut tenants = Vec::new();
                    while index < batch.len() {
                        if let Request::Place(tenant) = &batch[index].request {
                            tenants.push(*tenant);
                            index += 1;
                        } else {
                            break;
                        }
                    }
                    self.consolidator.place_batch(tenants)?;
                }
                Request::Remove(_) => {
                    let mut ids = Vec::new();
                    while index < batch.len() {
                        if let Request::Remove(id) = &batch[index].request {
                            ids.push(*id);
                            index += 1;
                        } else {
                            break;
                        }
                    }
                    self.consolidator.remove_batch(&ids)?;
                }
                Request::UpdateLoad(..) => {
                    let mut updates = Vec::new();
                    while index < batch.len() {
                        if let Request::UpdateLoad(id, load) = &batch[index].request {
                            updates.push((*id, *load));
                            index += 1;
                        } else {
                            break;
                        }
                    }
                    self.consolidator.update_load_batch(&updates)?;
                }
            }
        }
        Ok(())
    }

    /// Runs the oracle audit when the ladder says so; returns the open
    /// bins walked (the caller's cost model charges per bin).
    fn maybe_audit(&mut self) -> usize {
        let due = match self.audit_mode {
            AuditMode::Full => true,
            AuditMode::Sampled => {
                self.batches_since_audit += 1;
                if self.batches_since_audit >= self.config.audit_sample_every {
                    self.batches_since_audit = 0;
                    true
                } else {
                    false
                }
            }
            AuditMode::Off => false,
        };
        if !due {
            return 0;
        }
        let placement = self.consolidator.placement();
        let divergences = match oracle::audit(placement) {
            Ok(()) => 0,
            Err(list) => list.len(),
        };
        self.stats.audits += 1;
        self.stats.audit_divergences += divergences as u64;
        let batch = self.stats.batches;
        self.recorder.emit(|| TraceEvent::AuditCompleted { op: batch, divergences, full: false });
        placement.open_bins()
    }

    /// Completes the executing batch at time `now_ms`: records each
    /// request's latency, feeds the limiter one sample, and steps the
    /// degradation ladder off the windowed p99. Returns the completed
    /// requests so the caller can correlate ids.
    ///
    /// # Panics
    ///
    /// Panics if no batch is executing.
    pub fn complete_batch(&mut self, now_ms: f64) -> Vec<CompletedOp> {
        assert!(!self.executing.is_empty(), "complete_batch without a started batch");
        let mut completed = Vec::with_capacity(self.executing.len());
        let mut worst = 0.0f64;
        for op in self.executing.drain(..) {
            let latency_ms = (now_ms - op.arrival_ms).max(0.0);
            worst = worst.max(latency_ms);
            self.latency_hist.record(latency_ms);
            if self.latencies.len() == self.config.latency_window {
                self.latencies.pop_front();
            }
            self.latencies.push_back(latency_ms);
            self.stats.completed += 1;
            self.completed_ctr.inc();
            completed.push(CompletedOp { id: op.id, latency_ms });
        }
        self.in_flight_gauge.set(0.0);

        let threshold = self.config.slo_p99_ms * self.config.overload_margin;
        let outcome = if worst > threshold { Outcome::Overload } else { Outcome::Success };
        self.limiter.observe(Sample {
            latency_ms: worst,
            in_flight: self.in_flight_at_start,
            outcome,
        });
        self.limit_gauge.set(self.limiter.limit() as f64);
        self.step_ladder();
        completed
    }

    /// Windowed p99 of completed-request latency (0 until the window has
    /// enough samples to be meaningful).
    #[must_use]
    pub fn windowed_p99_ms(&self) -> f64 {
        let min_samples = (self.config.latency_window / 4).max(8);
        if self.latencies.len() < min_samples {
            return 0.0;
        }
        let mut sorted: Vec<f64> = self.latencies.iter().copied().collect();
        sorted.sort_unstable_by(f64::total_cmp);
        let rank = ((sorted.len() as f64) * 0.99).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    fn step_ladder(&mut self) {
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return;
        }
        let p99 = self.windowed_p99_ms();
        if p99 <= 0.0 {
            return;
        }
        let step = if p99 > self.config.slo_p99_ms {
            self.audit_mode.down().map(|to| (to, true))
        } else if p99 < self.config.slo_p99_ms * self.config.recover_margin {
            self.audit_mode.up().map(|to| (to, false))
        } else {
            None
        };
        if let Some((to, down)) = step {
            let from = self.audit_mode;
            self.audit_mode = to;
            self.batches_since_audit = 0;
            self.cooldown = self.config.ladder_cooldown;
            if down {
                self.stats.ladder_down += 1;
            } else {
                self.stats.ladder_up += 1;
            }
            let batch = self.stats.batches;
            self.recorder.emit(|| TraceEvent::DegradationChanged {
                from: from.label().to_owned(),
                to: to.label().to_owned(),
                p99_ms: p99,
                batch,
            });
        }
    }

    fn emit_rejection(&self, reason: &str) {
        let queue_depth = self.queue.len();
        let in_flight = self.executing.len();
        let limit = self.limiter.limit();
        self.recorder.emit(|| TraceEvent::RequestRejected {
            reason: reason.to_owned(),
            queue_depth,
            in_flight,
            limit,
        });
    }

    /// Asserts the rejection-accounting invariant; callers sprinkle this
    /// in tests.
    #[must_use]
    pub fn accounting_balanced(&self) -> bool {
        self.stats.offered == self.stats.completed + self.stats.rejected() + self.pending()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubefit_core::{CubeFit, CubeFitConfig, Load};
    use cubefit_telemetry::VecSink;

    fn cubefit() -> Box<CubeFit> {
        Box::new(CubeFit::new(CubeFitConfig::builder().replication(2).classes(5).build().unwrap()))
    }

    fn service(config: ServiceConfig) -> PlacementService {
        PlacementService::new(cubefit(), config, Recorder::disabled()).unwrap()
    }

    fn place(id: u64, load: f64) -> Request {
        Request::Place(Tenant::new(TenantId::new(id), Load::new(load).unwrap()))
    }

    fn tenant(id: u64) -> Request {
        place(id, 0.25)
    }

    fn tight() -> ServiceConfig {
        ServiceConfig {
            limiter: LimiterSpec::Fixed { limit: 4 },
            queue_capacity: 2,
            batch_max: 2,
            deadline_ms: 50.0,
            slo_p99_ms: 20.0,
            latency_window: 8,
            recover_margin: 0.25,
            ladder_cooldown: 0,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn admits_executes_and_completes_with_latencies() {
        let mut svc = service(ServiceConfig::default());
        let a = svc.offer(tenant(0), 0.0).unwrap();
        let b = svc.offer(tenant(1), 1.0).unwrap();
        let work = svc.start_batch(2.0).unwrap();
        assert_eq!(work.ops, 2);
        assert!(work.expired.is_empty());
        assert!(work.audited_bins > 0, "full-audit rung audits every batch");
        assert!(svc.busy());
        let done = svc.complete_batch(10.0);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].id, a);
        assert_eq!(done[1].id, b);
        assert!((done[0].latency_ms - 10.0).abs() < 1e-9);
        assert!((done[1].latency_ms - 9.0).abs() < 1e-9);
        assert_eq!(svc.stats().completed, 2);
        assert_eq!(svc.consolidator().placement().tenant_count(), 2);
        assert!(svc.accounting_balanced());
    }

    #[test]
    fn queue_backstop_and_shed_reject_with_types() {
        let mut svc = service(tight());
        svc.offer(tenant(0), 0.0).unwrap();
        svc.offer(tenant(1), 0.0).unwrap();
        // Queue capacity 2 < limit 4: the backstop fires first here.
        let err = svc.offer(tenant(2), 0.0).unwrap_err();
        assert_eq!(err, Rejected::QueueFull { capacity: 2 });
        // Start the batch (2 executing) and refill the queue: outstanding
        // hits the limit of 4 and the limiter sheds.
        assert_eq!(svc.start_batch(0.0).unwrap().ops, 2);
        svc.offer(tenant(3), 1.0).unwrap();
        svc.offer(tenant(4), 1.0).unwrap();
        let err = svc.offer(tenant(5), 1.0).unwrap_err();
        assert_eq!(err, Rejected::Shed { outstanding: 4, limit: 4 });
        assert_eq!(err.reason(), "shed");
        assert_eq!(svc.stats().queue_full, 1);
        assert_eq!(svc.stats().shed, 1);
        assert!(svc.accounting_balanced());
    }

    #[test]
    fn queued_requests_past_their_deadline_expire_at_dequeue() {
        let mut svc = service(tight());
        svc.offer(tenant(0), 0.0).unwrap();
        svc.offer(tenant(1), 0.0).unwrap();
        // Both deadlines (50ms) pass before the batch starts.
        let work = svc.start_batch(100.0).unwrap();
        assert_eq!(work.ops, 0, "nothing live to run");
        assert_eq!(work.expired, vec![0, 1], "expired ids are reported to the caller");
        assert_eq!(svc.stats().deadline_expired, 2);
        assert_eq!(svc.consolidator().placement().tenant_count(), 0, "expired ops never execute");
        assert!(svc.accounting_balanced());
    }

    #[test]
    fn ladder_steps_down_under_breach_and_recovers() {
        let sink = std::sync::Arc::new(VecSink::new());
        let recorder = Recorder::with_sink(std::sync::Arc::clone(&sink));
        let mut svc = PlacementService::new(cubefit(), tight(), recorder).unwrap();
        assert_eq!(svc.audit_mode(), AuditMode::Full);

        // Slow batches: every completion 100ms after arrival (SLO 20ms).
        let mut now = 0.0;
        let mut id = 0u64;
        for _ in 0..16 {
            svc.offer(tenant(id), now).unwrap();
            id += 1;
            svc.start_batch(now).unwrap();
            now += 100.0;
            svc.complete_batch(now);
        }
        assert_eq!(svc.audit_mode(), AuditMode::Off, "sustained breach reaches the fast path");
        assert!(svc.stats().ladder_down >= 2);

        // Fast batches: 1ms latency, far below slo × recover_margin.
        for _ in 0..32 {
            svc.offer(tenant(id), now).unwrap();
            id += 1;
            svc.start_batch(now).unwrap();
            now += 1.0;
            svc.complete_batch(now);
            now += 10.0;
        }
        assert_eq!(svc.audit_mode(), AuditMode::Full, "recovery climbs back to full audits");
        assert!(svc.stats().ladder_up >= 2);
        let transitions = sink
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::DegradationChanged { .. }))
            .count() as u64;
        assert_eq!(transitions, svc.stats().ladder_down + svc.stats().ladder_up);
    }

    #[test]
    fn sampled_rung_audits_at_its_stride() {
        let config = ServiceConfig {
            audit_sample_every: 3,
            ladder_cooldown: u64::MAX, // pin the ladder for the test
            ..tight()
        };
        let mut svc = service(config);
        // Force the sampled rung directly through the breach path once.
        svc.audit_mode = AuditMode::Sampled;
        let mut audited = 0;
        for id in 0..9 {
            svc.offer(tenant(id), 0.0).unwrap();
            let work = svc.start_batch(0.0).unwrap();
            if work.audited_bins > 0 {
                audited += 1;
            }
            svc.complete_batch(1.0);
        }
        assert_eq!(audited, 3, "stride 3 over 9 batches audits 3 times");
        assert_eq!(svc.stats().audits, 3);
        assert_eq!(svc.stats().audit_divergences, 0);
    }

    #[test]
    fn mixed_batches_execute_in_arrival_order_and_dump_replays() {
        let mut svc = service(ServiceConfig::default());
        svc.offer(place(0, 0.25), 0.0).unwrap();
        svc.offer(place(1, 0.25), 0.0).unwrap();
        svc.start_batch(0.0).unwrap();
        svc.complete_batch(1.0);
        svc.offer(Request::UpdateLoad(TenantId::new(0), 0.5), 2.0).unwrap();
        svc.offer(Request::Remove(TenantId::new(1)), 2.0).unwrap();
        svc.offer(place(2, 0.125), 2.0).unwrap();
        svc.start_batch(2.0).unwrap();
        svc.complete_batch(3.0);

        let placement = svc.consolidator().placement();
        assert_eq!(placement.tenant_count(), 2);
        let dump = svc.dump();
        let rebuilt = dump.to_placement().unwrap();
        assert!(oracle::audit(&rebuilt).is_ok(), "the dump must stay oracle-auditable");
        assert!(svc.accounting_balanced());
    }

    #[test]
    fn rejects_invalid_configs() {
        let bad = ServiceConfig { queue_capacity: 0, ..ServiceConfig::default() };
        assert!(PlacementService::new(cubefit(), bad, Recorder::disabled()).is_err());
        for mutate in [
            |c: &mut ServiceConfig| c.batch_max = 0,
            |c: &mut ServiceConfig| c.deadline_ms = 0.0,
            |c: &mut ServiceConfig| c.slo_p99_ms = -1.0,
            |c: &mut ServiceConfig| c.latency_window = 1,
            |c: &mut ServiceConfig| c.audit_sample_every = 0,
            |c: &mut ServiceConfig| c.recover_margin = 1.5,
            |c: &mut ServiceConfig| c.overload_margin = 0.0,
        ] {
            let mut config = ServiceConfig::default();
            mutate(&mut config);
            assert!(PlacementService::new(cubefit(), config, Recorder::disabled()).is_err());
        }
    }

    fn journal_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("cubefit-service-journal-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn journaled_service(dir: &std::path::Path, checkpoint_every: u64) -> PlacementService {
        let journal = Journal::create(dir, 2, cubefit_durability::FsyncPolicy::Never).unwrap();
        PlacementService::journaled(
            cubefit(),
            ServiceConfig::default(),
            Recorder::disabled(),
            journal,
            checkpoint_every,
        )
        .unwrap()
    }

    /// Drives `ops` mixed mutations through the service in small batches.
    fn drive(svc: &mut PlacementService, ops: u64) {
        let mut now = 0.0;
        for id in 0..ops {
            let request = match id % 4 {
                0 | 1 => place(id, 0.1 + 0.05 * (id % 5) as f64),
                2 => Request::UpdateLoad(TenantId::new(id - 2), 0.3),
                _ => Request::Remove(TenantId::new(id - 3)),
            };
            svc.offer(request, now).unwrap();
            svc.start_batch(now).unwrap();
            svc.complete_batch(now + 1.0);
            now += 2.0;
        }
    }

    #[test]
    fn journaled_service_recovers_bit_identically_after_a_kill() {
        let dir = journal_dir("kill");
        let mut svc = journaled_service(&dir, 0);
        drive(&mut svc, 40);
        let live = serde_json::to_string(&svc.dump()).unwrap();
        drop(svc); // simulated kill: no seal.
        let state = cubefit_durability::recover(&dir).unwrap();
        assert!(!state.sealed, "an unsealed journal is an unclean shutdown");
        assert_eq!(serde_json::to_string(&state.dump()).unwrap(), live);
    }

    #[test]
    fn journaled_service_checkpoints_at_the_batch_stride_and_still_recovers() {
        let dir = journal_dir("stride");
        let sink = std::sync::Arc::new(VecSink::new());
        struct Shared(std::sync::Arc<VecSink>);
        impl cubefit_telemetry::TraceSink for Shared {
            fn record(&self, event: &TraceEvent) {
                self.0.record(event);
            }
        }
        let journal = Journal::create(&dir, 2, cubefit_durability::FsyncPolicy::Never).unwrap();
        let mut svc = PlacementService::journaled(
            cubefit(),
            ServiceConfig::default(),
            Recorder::with_sink(Shared(std::sync::Arc::clone(&sink))),
            journal.clone(),
            5,
        )
        .unwrap();
        drive(&mut svc, 23);
        let checkpoints = sink
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::JournalCheckpoint { .. }))
            .count();
        assert_eq!(checkpoints, 4, "23 single-op batches at stride 5");
        assert!(journal.wal_bytes() > 0, "frames accrue after the last checkpoint");
        let live = serde_json::to_string(&svc.dump()).unwrap();
        svc.seal_journal().unwrap();
        svc.seal_journal().unwrap(); // idempotent
        drop(svc);
        let state = cubefit_durability::recover(&dir).unwrap();
        assert!(state.sealed);
        assert!(state.checkpoint_seq > 0, "recovery starts from the checkpoint");
        assert_eq!(serde_json::to_string(&state.dump()).unwrap(), live);
        assert!(oracle::audit(&state.placement).is_ok());
    }
}
