//! Adaptive concurrency limiters for the placement service.
//!
//! A [`Limiter`] owns one number — how many requests may be outstanding
//! (queued + executing) before the service sheds new arrivals — and
//! adjusts it from observed batch latencies. Two algorithms are provided
//! behind the trait, selected by [`LimiterSpec`]:
//!
//! - [`AimdLimiter`] — TCP-style additive-increase/multiplicative-
//!   decrease: grow the limit by a constant while the service keeps up,
//!   cut it by a factor the moment a latency breach is observed;
//! - [`GradientLimiter`] — compare a short-term latency EWMA against a
//!   long-term one; a short/long ratio past the tolerance means queueing
//!   is building and the limit contracts proportionally, while parity
//!   lets the limit probe upward again.
//!
//! Both are deterministic functions of the sample sequence — no wall
//! clock, no randomness — so the service's shed decisions replay
//! byte-for-byte under the simulated-time harness and the property tests
//! in `tests/limiter_props.rs` need no tolerance for scheduling noise.

/// How one observed batch went, from the limiter's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The batch completed within the latency SLO.
    Success,
    /// The batch breached the latency SLO (or was otherwise overloaded).
    Overload,
}

/// One observation fed to a limiter after a batch completes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Worst admitted-request latency in the batch, milliseconds.
    pub latency_ms: f64,
    /// Requests outstanding (queued + executing) when the batch started.
    pub in_flight: usize,
    /// Whether the batch kept or breached the SLO.
    pub outcome: Outcome,
}

/// An adaptive concurrency limit.
pub trait Limiter: Send + std::fmt::Debug {
    /// Current limit on outstanding requests.
    fn limit(&self) -> usize;

    /// Feeds one completed-batch observation.
    fn observe(&mut self, sample: Sample);

    /// Short algorithm label for reports.
    fn name(&self) -> &'static str;
}

/// Additive-increase / multiplicative-decrease concurrency limit.
///
/// On a successful sample taken while the window was at least half
/// utilized, the limit grows by `increase`; utilization gating stops an
/// idle service from ratcheting its limit to the ceiling on traffic it
/// never carried. On an overload sample the limit is cut to
/// `limit × backoff`. Always clamped to `[min, max]`.
#[derive(Debug, Clone, PartialEq)]
pub struct AimdLimiter {
    limit: f64,
    min: usize,
    max: usize,
    increase: f64,
    backoff: f64,
}

impl AimdLimiter {
    /// An AIMD limiter starting halfway between the bounds.
    ///
    /// # Panics
    ///
    /// Panics if `min` is zero, `min > max`, `increase` is not positive,
    /// or `backoff` is outside `(0, 1)` — all config errors.
    #[must_use]
    pub fn new(min: usize, max: usize, increase: f64, backoff: f64) -> Self {
        assert!(min >= 1 && min <= max, "AIMD bounds must satisfy 1 <= min <= max");
        assert!(increase > 0.0, "AIMD increase must be positive");
        assert!(backoff > 0.0 && backoff < 1.0, "AIMD backoff must be in (0, 1)");
        AimdLimiter { limit: midpoint(min, max), min, max, increase, backoff }
    }
}

impl Limiter for AimdLimiter {
    fn limit(&self) -> usize {
        clamped(self.limit, self.min, self.max)
    }

    fn observe(&mut self, sample: Sample) {
        match sample.outcome {
            Outcome::Success => {
                if (sample.in_flight as f64) >= self.limit / 2.0 {
                    self.limit = (self.limit + self.increase).min(self.max as f64);
                }
            }
            Outcome::Overload => {
                self.limit = (self.limit * self.backoff).max(self.min as f64);
            }
        }
    }

    fn name(&self) -> &'static str {
        "aimd"
    }
}

/// Gradient concurrency limit: short-term vs long-term latency EWMAs.
///
/// The gradient `clamp(tolerance × long / short, 0.5, 1.0)` contracts
/// the limit when short-term latency runs ahead of the long-term trend
/// (queueing is building) and releases it back toward the ceiling when
/// the two agree; a `√limit` headroom term lets the limit probe upward
/// under parity. The long EWMA deliberately adapts an order of magnitude
/// more slowly than the short one so a sustained breach cannot talk the
/// baseline into accepting the degraded latency as normal before the
/// limit has contracted.
#[derive(Debug, Clone, PartialEq)]
pub struct GradientLimiter {
    limit: f64,
    min: usize,
    max: usize,
    tolerance: f64,
    smoothing: f64,
    short_ewma: f64,
    long_ewma: f64,
}

/// Per-sample weight of the short-term latency EWMA.
const SHORT_ALPHA: f64 = 0.4;
/// Per-sample weight of the long-term latency EWMA.
const LONG_ALPHA: f64 = 0.02;

impl GradientLimiter {
    /// A gradient limiter starting halfway between the bounds.
    ///
    /// # Panics
    ///
    /// Panics if `min` is zero, `min > max`, `tolerance < 1`, or
    /// `smoothing` is outside `(0, 1]` — all config errors.
    #[must_use]
    pub fn new(min: usize, max: usize, tolerance: f64, smoothing: f64) -> Self {
        assert!(min >= 1 && min <= max, "gradient bounds must satisfy 1 <= min <= max");
        assert!(tolerance >= 1.0, "gradient tolerance must be >= 1");
        assert!(smoothing > 0.0 && smoothing <= 1.0, "gradient smoothing must be in (0, 1]");
        GradientLimiter {
            limit: midpoint(min, max),
            min,
            max,
            tolerance,
            smoothing,
            short_ewma: 0.0,
            long_ewma: 0.0,
        }
    }
}

impl Limiter for GradientLimiter {
    fn limit(&self) -> usize {
        clamped(self.limit, self.min, self.max)
    }

    fn observe(&mut self, sample: Sample) {
        let latency = sample.latency_ms.max(f64::MIN_POSITIVE);
        if self.short_ewma == 0.0 {
            self.short_ewma = latency;
            self.long_ewma = latency;
        } else {
            self.short_ewma += SHORT_ALPHA * (latency - self.short_ewma);
            self.long_ewma += LONG_ALPHA * (latency - self.long_ewma);
        }
        let gradient = (self.tolerance * self.long_ewma / self.short_ewma).clamp(0.5, 1.0);
        let target = self.limit * gradient + self.limit.sqrt();
        self.limit += self.smoothing * (target - self.limit);
        self.limit = self.limit.clamp(self.min as f64, self.max as f64);
    }

    fn name(&self) -> &'static str {
        "gradient"
    }
}

/// A fixed limit — no adaptation. The control baseline for the serve
/// bench and the escape hatch for operators who want plain queueing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedLimiter {
    limit: usize,
}

impl FixedLimiter {
    /// A constant limit.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    #[must_use]
    pub fn new(limit: usize) -> Self {
        assert!(limit >= 1, "fixed limit must be >= 1");
        FixedLimiter { limit }
    }
}

impl Limiter for FixedLimiter {
    fn limit(&self) -> usize {
        self.limit
    }

    fn observe(&mut self, _sample: Sample) {}

    fn name(&self) -> &'static str {
        "fixed"
    }
}

/// Declarative limiter selection, serializable into service configs and
/// parseable from the CLI's `--limiter` flag.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum LimiterSpec {
    /// Additive-increase/multiplicative-decrease.
    Aimd {
        /// Floor of the limit.
        min: usize,
        /// Ceiling of the limit.
        max: usize,
        /// Additive step per utilized success.
        increase: f64,
        /// Multiplicative factor per overload, in `(0, 1)`.
        backoff: f64,
    },
    /// Short/long latency-EWMA gradient.
    Gradient {
        /// Floor of the limit.
        min: usize,
        /// Ceiling of the limit.
        max: usize,
        /// Allowed short/long latency ratio before contracting.
        tolerance: f64,
        /// Per-sample smoothing toward the target limit, in `(0, 1]`.
        smoothing: f64,
    },
    /// Constant limit (no adaptation).
    Fixed {
        /// The limit.
        limit: usize,
    },
}

impl LimiterSpec {
    /// Default AIMD parameters over `[min, max]`.
    #[must_use]
    pub fn aimd(min: usize, max: usize) -> Self {
        LimiterSpec::Aimd { min, max, increase: 1.0, backoff: 0.7 }
    }

    /// Default gradient parameters over `[min, max]`.
    #[must_use]
    pub fn gradient(min: usize, max: usize) -> Self {
        LimiterSpec::Gradient { min, max, tolerance: 1.5, smoothing: 0.2 }
    }

    /// Builds the limiter.
    ///
    /// # Errors
    ///
    /// Returns a message for out-of-range parameters instead of letting
    /// the constructors panic on operator input.
    pub fn build(&self) -> Result<Box<dyn Limiter>, String> {
        self.validate()?;
        Ok(match *self {
            LimiterSpec::Aimd { min, max, increase, backoff } => {
                Box::new(AimdLimiter::new(min, max, increase, backoff))
            }
            LimiterSpec::Gradient { min, max, tolerance, smoothing } => {
                Box::new(GradientLimiter::new(min, max, tolerance, smoothing))
            }
            LimiterSpec::Fixed { limit } => Box::new(FixedLimiter::new(limit)),
        })
    }

    fn validate(&self) -> Result<(), String> {
        match *self {
            LimiterSpec::Aimd { min, max, increase, backoff } => {
                if min < 1 || min > max {
                    return Err(format!("aimd bounds {min}..{max}: need 1 <= min <= max"));
                }
                if increase <= 0.0 {
                    return Err(format!("aimd increase {increase}: must be positive"));
                }
                if backoff <= 0.0 || backoff >= 1.0 {
                    return Err(format!("aimd backoff {backoff}: must be in (0, 1)"));
                }
            }
            LimiterSpec::Gradient { min, max, tolerance, smoothing } => {
                if min < 1 || min > max {
                    return Err(format!("gradient bounds {min}..{max}: need 1 <= min <= max"));
                }
                if tolerance < 1.0 {
                    return Err(format!("gradient tolerance {tolerance}: must be >= 1"));
                }
                if smoothing <= 0.0 || smoothing > 1.0 {
                    return Err(format!("gradient smoothing {smoothing}: must be in (0, 1]"));
                }
            }
            LimiterSpec::Fixed { limit } => {
                if limit < 1 {
                    return Err("fixed limit must be >= 1".to_owned());
                }
            }
        }
        Ok(())
    }

    /// Compact label for reports (`aimd[4..256]`, `fixed[64]`).
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            LimiterSpec::Aimd { min, max, .. } => format!("aimd[{min}..{max}]"),
            LimiterSpec::Gradient { min, max, .. } => format!("gradient[{min}..{max}]"),
            LimiterSpec::Fixed { limit } => format!("fixed[{limit}]"),
        }
    }

    /// Parses the CLI form: `aimd`, `gradient`, `fixed:64`, or
    /// `aimd:4-256` / `gradient:4-256` to override the bounds.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending spec.
    pub fn parse(text: &str) -> Result<Self, String> {
        let (kind, rest) = match text.split_once(':') {
            Some((kind, rest)) => (kind, Some(rest)),
            None => (text, None),
        };
        let bounds = |rest: Option<&str>| -> Result<(usize, usize), String> {
            match rest {
                None => Ok((DEFAULT_MIN_LIMIT, DEFAULT_MAX_LIMIT)),
                Some(range) => {
                    let (lo, hi) = range
                        .split_once('-')
                        .ok_or_else(|| format!("bad limiter bounds '{range}' (want MIN-MAX)"))?;
                    let lo = lo.parse().map_err(|_| format!("bad limiter min '{lo}'"))?;
                    let hi = hi.parse().map_err(|_| format!("bad limiter max '{hi}'"))?;
                    Ok((lo, hi))
                }
            }
        };
        let spec = match kind {
            "aimd" => {
                let (min, max) = bounds(rest)?;
                LimiterSpec::aimd(min, max)
            }
            "gradient" => {
                let (min, max) = bounds(rest)?;
                LimiterSpec::gradient(min, max)
            }
            "fixed" => {
                let limit = rest
                    .ok_or_else(|| "fixed limiter needs a value: fixed:N".to_owned())?
                    .parse()
                    .map_err(|_| format!("bad fixed limit '{}'", rest.unwrap_or_default()))?;
                LimiterSpec::Fixed { limit }
            }
            other => {
                return Err(format!(
                    "unknown limiter '{other}' (expected aimd, gradient, or fixed:N)"
                ))
            }
        };
        spec.validate()?;
        Ok(spec)
    }
}

/// Default limit floor for CLI-parsed limiters.
pub const DEFAULT_MIN_LIMIT: usize = 4;
/// Default limit ceiling for CLI-parsed limiters.
pub const DEFAULT_MAX_LIMIT: usize = 256;

fn midpoint(min: usize, max: usize) -> f64 {
    (min as f64 + max as f64) / 2.0
}

fn clamped(limit: f64, min: usize, max: usize) -> usize {
    (limit.round() as usize).clamp(min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast(in_flight: usize) -> Sample {
        Sample { latency_ms: 5.0, in_flight, outcome: Outcome::Success }
    }

    fn slow() -> Sample {
        Sample { latency_ms: 500.0, in_flight: 64, outcome: Outcome::Overload }
    }

    #[test]
    fn aimd_grows_under_utilized_success_and_cuts_on_overload() {
        let mut limiter = AimdLimiter::new(4, 64, 1.0, 0.5);
        let start = limiter.limit();
        for _ in 0..10 {
            let utilized = limiter.limit();
            limiter.observe(fast(utilized));
        }
        assert!(limiter.limit() > start, "utilized successes must grow the limit");
        let grown = limiter.limit();
        limiter.observe(slow());
        assert!(limiter.limit() < grown, "overload must cut the limit");
        assert!(limiter.limit() >= 4);
    }

    #[test]
    fn aimd_ignores_successes_on_an_idle_window() {
        let mut limiter = AimdLimiter::new(4, 64, 1.0, 0.5);
        let start = limiter.limit();
        for _ in 0..100 {
            limiter.observe(fast(0));
        }
        assert_eq!(limiter.limit(), start, "an idle service must not ratchet its limit");
    }

    #[test]
    fn gradient_contracts_when_short_term_latency_runs_ahead() {
        let mut limiter = GradientLimiter::new(4, 256, 1.5, 0.2);
        for _ in 0..50 {
            let utilized = limiter.limit();
            limiter.observe(fast(utilized));
        }
        let calm = limiter.limit();
        assert_eq!(calm, 256, "sustained parity must reach the ceiling");
        for _ in 0..30 {
            limiter.observe(slow());
        }
        assert!(limiter.limit() < calm / 2, "a latency breach must contract the limit");
        assert!(limiter.limit() >= 4);
    }

    #[test]
    fn fixed_never_moves() {
        let mut limiter = FixedLimiter::new(7);
        limiter.observe(slow());
        limiter.observe(fast(7));
        assert_eq!(limiter.limit(), 7);
    }

    #[test]
    fn spec_parses_builds_and_labels() {
        assert_eq!(LimiterSpec::parse("aimd").unwrap(), LimiterSpec::aimd(4, 256));
        assert_eq!(LimiterSpec::parse("gradient:8-128").unwrap(), LimiterSpec::gradient(8, 128));
        assert_eq!(LimiterSpec::parse("fixed:64").unwrap(), LimiterSpec::Fixed { limit: 64 });
        assert_eq!(LimiterSpec::aimd(4, 256).label(), "aimd[4..256]");
        assert_eq!(LimiterSpec::Fixed { limit: 64 }.label(), "fixed[64]");
        for spec in [LimiterSpec::aimd(4, 64), LimiterSpec::gradient(4, 64)] {
            let limiter = spec.build().unwrap();
            assert!(limiter.limit() >= 4 && limiter.limit() <= 64);
        }
    }

    #[test]
    fn spec_rejects_malformed_input() {
        for bad in ["warp", "fixed", "fixed:zero", "aimd:9", "aimd:9-x", "aimd:10-2", "fixed:0"] {
            assert!(LimiterSpec::parse(bad).is_err(), "'{bad}' must be rejected");
        }
        assert!(LimiterSpec::Aimd { min: 1, max: 2, increase: 0.0, backoff: 0.5 }.build().is_err());
        assert!(LimiterSpec::Gradient { min: 1, max: 2, tolerance: 0.5, smoothing: 0.2 }
            .build()
            .is_err());
    }

    #[test]
    fn spec_round_trips_through_json() {
        for spec in [
            LimiterSpec::aimd(4, 256),
            LimiterSpec::gradient(8, 128),
            LimiterSpec::Fixed { limit: 32 },
        ] {
            let json = serde_json::to_string(&spec).unwrap();
            let back: LimiterSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec);
        }
    }
}
