//! Cooperative shutdown signalling.
//!
//! Long-running commands (`serve`, `soak`, `churn`, `drift`) poll a
//! [`ShutdownFlag`] between operations. [`ShutdownFlag::install`] wires
//! the process-global flag to SIGINT/SIGTERM exactly once, so Ctrl-C
//! drains in-flight work, flushes telemetry, and writes a partial report
//! instead of killing the process mid-write. Tests construct private
//! flags with [`ShutdownFlag::new`] and trip them with
//! [`ShutdownFlag::trigger`] — no signals involved.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// A cheaply clonable, thread-safe "please stop" flag.
#[derive(Debug, Clone, Default)]
pub struct ShutdownFlag(Arc<AtomicBool>);

impl ShutdownFlag {
    /// A fresh, untripped flag (not connected to any signal).
    #[must_use]
    pub fn new() -> Self {
        ShutdownFlag::default()
    }

    /// Trips the flag. Idempotent.
    pub fn trigger(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn is_set(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }

    /// Returns the process-global flag, registering the SIGINT/SIGTERM
    /// handler on first call. Later calls return the same flag and never
    /// re-register, so every long-running command can call this freely.
    /// If handler registration fails (some sandboxes forbid it), the
    /// returned flag simply never trips — commands run to completion as
    /// before.
    pub fn install() -> ShutdownFlag {
        static GLOBAL: OnceLock<ShutdownFlag> = OnceLock::new();
        GLOBAL
            .get_or_init(|| {
                let flag = ShutdownFlag::new();
                let hooked = flag.clone();
                let _ = ctrlc::set_handler(move || hooked.trigger());
                flag
            })
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_flags_are_independent() {
        let a = ShutdownFlag::new();
        let b = ShutdownFlag::new();
        assert!(!a.is_set());
        a.trigger();
        assert!(a.is_set());
        assert!(!b.is_set(), "triggering one flag must not trip another");
        let c = a.clone();
        assert!(c.is_set(), "clones share state");
    }

    #[test]
    fn install_returns_the_same_flag_every_time() {
        let first = ShutdownFlag::install();
        let second = ShutdownFlag::install();
        assert_eq!(first.is_set(), second.is_set());
        // Don't trigger the global flag here: other tests in this process
        // may poll it.
    }
}
