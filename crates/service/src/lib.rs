//! Placement-as-a-service: an overload-safe service loop around any
//! [`cubefit_core::Consolidator`].
//!
//! The CubeFit algorithm itself decides *where* tenants go; this crate
//! decides *whether and when* each mutation is allowed to run when
//! placement is offered as a shared control-plane service. Three
//! mechanisms compose:
//!
//! 1. **Adaptive admission control** ([`limit`]): a [`Limiter`] bounds
//!    outstanding work. Two algorithms are provided — AIMD (TCP-style
//!    additive increase / multiplicative decrease) and a gradient limiter
//!    that compares short- and long-term latency EWMAs — plus a fixed
//!    limit for baselines. Arrivals beyond the limit are *shed*
//!    immediately, which is what keeps admitted-request latency bounded
//!    when offered load exceeds capacity.
//! 2. **Bounded queueing with deadlines** ([`service`]): admitted
//!    requests wait in a bounded queue and carry per-request deadlines;
//!    batches drain the queue through the consolidator's batch mutation
//!    API. Every rejection is typed ([`Rejected`]) and accounted.
//! 3. **Graceful degradation** ([`service`]): a ladder trades oracle
//!    audit coverage for latency under pressure (full → sampled → off)
//!    and climbs back on recovery. The placement itself stays
//!    oracle-auditable throughout — `cubefit check --audit` on the
//!    service's dump passes regardless of the rung history.
//!
//! The service is deliberately clock-agnostic (callers own `now_ms`), so
//! the deterministic DES harness in `cubefit-sim` can drive it under
//! seeded Poisson load and burst storms with bit-reproducible results.
//!
//! [`shutdown`] provides the cooperative Ctrl-C flag long-running CLI
//! commands poll so interrupted runs still flush telemetry and write
//! partial reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod limit;
pub mod service;
pub mod shutdown;

pub use limit::{
    AimdLimiter, FixedLimiter, GradientLimiter, Limiter, LimiterSpec, Outcome, Sample,
    DEFAULT_MAX_LIMIT, DEFAULT_MIN_LIMIT,
};
pub use service::{
    AuditMode, BatchWork, CompletedOp, PlacementService, Rejected, Request, ServiceConfig,
    ServiceStats,
};
pub use shutdown::ShutdownFlag;
