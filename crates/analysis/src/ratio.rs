//! Empirical competitive-ratio measurement.

use cubefit_baselines::bounds;
use cubefit_core::{Consolidator, Result, Tenant};

/// Empirical competitive-ratio estimate for one run: servers used divided
/// by a certified lower bound on OPT.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmpiricalRatio {
    /// Servers the algorithm used.
    pub servers: usize,
    /// The certified lower bound on OPT.
    pub opt_lower_bound: usize,
    /// `servers / opt_lower_bound` — an upper bound on the realized ratio.
    pub ratio: f64,
}

/// Runs `algorithm` over `tenants` and reports the ratio of servers used
/// to the best certified lower bound on the offline optimum.
///
/// Because the denominator is a lower bound on OPT, the reported ratio
/// *over-estimates* the true competitive ratio; Theorem 2's analytic bound
/// (see [`crate::solver`]) should dominate it asymptotically for
/// well-behaved inputs.
///
/// # Errors
///
/// Propagates placement errors from the algorithm.
pub fn empirical_ratio(
    algorithm: &mut dyn Consolidator,
    tenants: &[Tenant],
) -> Result<EmpiricalRatio> {
    for tenant in tenants {
        algorithm.place(*tenant)?;
    }
    let servers = algorithm.placement().open_bins();
    let opt_lower_bound = bounds::best_bound(tenants, algorithm.gamma()).max(1);
    Ok(EmpiricalRatio { servers, opt_lower_bound, ratio: servers as f64 / opt_lower_bound as f64 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubefit_core::{CubeFit, CubeFitConfig, Load, TenantId};

    fn tenants(loads: &[f64]) -> Vec<Tenant> {
        loads
            .iter()
            .enumerate()
            .map(|(i, &l)| Tenant::new(TenantId::new(i as u64), Load::new(l).unwrap()))
            .collect()
    }

    fn lcg_loads(seed: u64, n: usize, scale: f64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (((state >> 11) as f64 / (1u64 << 53) as f64) * scale).max(1e-6)
            })
            .collect()
    }

    #[test]
    fn ratio_is_at_least_one() {
        let ts = tenants(&lcg_loads(3, 500, 0.999));
        let mut cf =
            CubeFit::new(CubeFitConfig::builder().replication(2).classes(10).build().unwrap());
        let r = empirical_ratio(&mut cf, &ts).unwrap();
        assert!(r.ratio >= 1.0);
        assert!(r.servers >= r.opt_lower_bound);
    }

    #[test]
    fn small_loads_ratio_stays_moderate() {
        // With many small tenants the volume bound is tight-ish and
        // CubeFit packs densely: the empirical ratio should sit well under
        // 2 (the analytic bound region is ~1.6).
        let ts = tenants(&lcg_loads(5, 3000, 0.2));
        let mut cf =
            CubeFit::new(CubeFitConfig::builder().replication(2).classes(10).build().unwrap());
        let r = empirical_ratio(&mut cf, &ts).unwrap();
        assert!(r.ratio < 2.0, "ratio {}", r.ratio);
    }

    #[test]
    fn empty_input_yields_unit_denominator() {
        let mut cf =
            CubeFit::new(CubeFitConfig::builder().replication(2).classes(5).build().unwrap());
        let r = empirical_ratio(&mut cf, &[]).unwrap();
        assert_eq!(r.servers, 0);
        assert_eq!(r.opt_lower_bound, 1);
        assert_eq!(r.ratio, 0.0);
    }
}
