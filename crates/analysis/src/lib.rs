//! # cubefit-analysis
//!
//! Theoretical analysis toolkit reproducing §III.A of the CubeFit paper.
//!
//! Theorem 2 bounds CubeFit's competitive ratio by a weighting argument:
//! every CubeFit bin (bar finitely many) carries weight ≥ 1, while any bin
//! of an optimal packing carries weight at most `r`, where `r` is the
//! optimum of an integer program over the bin's composition. This crate
//! provides:
//!
//! * [`weights`] — the replica weight function `w(x)`;
//! * [`solver`] — a branch-and-bound maximizer for the integer program,
//!   reproducing `r → 1.59` (γ = 2) and `r → 1.625` (γ = 3) for large
//!   `K`;
//! * [`ratio`] — empirical competitive-ratio measurement of any algorithm
//!   against certified lower bounds on OPT;
//! * [`renting`] — the cost analogue for the server-renting model
//!   (Kamali & López-Ortiz): realized dollars from a costed simulation
//!   run against the clairvoyant rental lower bound;
//! * [`adversary`] — adversarial sequence constructions probing the
//!   worst-case regime behind the 1.42 online lower bound.
//!
//! ```
//! use cubefit_analysis::solver::{maximize_bin_weight, IpConfig};
//!
//! let r = maximize_bin_weight(&IpConfig::new(2, 40));
//! assert!(r.objective > 1.5 && r.objective < 1.7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod adversary;
pub mod ratio;
pub mod renting;
pub mod solver;
pub mod weights;

pub use ratio::{empirical_ratio, EmpiricalRatio};
pub use renting::{renting_ratio, RentingRatio};
pub use solver::{maximize_bin_weight, IpConfig, IpSolution};
pub use weights::WeightFunction;
