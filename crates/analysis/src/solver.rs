//! Branch-and-bound maximizer for the Theorem-2 integer program.
//!
//! The program asks: over all compositions of a single OPT bin — counts
//! `m_i` of replicas of each regular type `i` (taken at their lightest,
//! `size = 1/(γ+i) + ε`) plus an amount `tinySize` of class-`K` mass — what
//! is the maximum total weight, subject to the bin remaining feasible?
//! Feasibility charges, on top of the replica sizes themselves, a reserved
//! space equal to the total size of the `γ − 1` largest replicas (the
//! failover reserve any robust packing must keep).
//!
//! Because weight density `(γ+i)/i` strictly decreases with `i` and the
//! tiny density is the floor, a depth-first search over types in
//! increasing `i` with an optimistic density bound prunes the space to
//! nothing even for `K` in the hundreds.

use crate::weights::WeightFunction;
/// Infinitesimal used for the open class boundaries (`size = 1/(γ+i) + ε`) —
/// the workspace-wide capacity tolerance, so "just over the class boundary"
/// and "just at capacity" mean the same thing everywhere.
use cubefit_core::EPSILON as EPS;

/// Problem instance: replication factor and class count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IpConfig {
    gamma: usize,
    classes: usize,
}

impl IpConfig {
    /// Creates an instance.
    ///
    /// # Panics
    ///
    /// Panics if `γ < 2` or `K ≤ γ² + γ` (the weight function requires
    /// `α_K ≥ γ`).
    #[must_use]
    pub fn new(gamma: usize, classes: usize) -> Self {
        assert!(gamma >= 2);
        assert!(classes > gamma * gamma + gamma, "Theorem 2 needs K > γ²+γ so that α_K ≥ γ");
        IpConfig { gamma, classes }
    }

    /// Replication factor γ.
    #[must_use]
    pub fn gamma(&self) -> usize {
        self.gamma
    }

    /// Class count K.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.classes
    }
}

/// Optimal solution of the integer program.
#[derive(Debug, Clone, PartialEq)]
pub struct IpSolution {
    /// The maximum bin weight — an upper bound on CubeFit's competitive
    /// ratio for this `(γ, K)`.
    pub objective: f64,
    /// Optimal replica counts per regular type (`counts[i-1]` = `m_i`).
    pub counts: Vec<usize>,
    /// Optimal tiny mass.
    pub tiny_size: f64,
    /// Search nodes explored (diagnostics).
    pub nodes: u64,
}

struct Search {
    gamma: usize,
    classes: usize,
    tiny_density: f64,
    best: f64,
    best_counts: Vec<usize>,
    best_tiny: f64,
    counts: Vec<usize>,
    nodes: u64,
}

impl Search {
    /// Size of the lightest replica of type `i`.
    fn size(&self, i: usize) -> f64 {
        1.0 / (self.gamma + i) as f64 + EPS
    }

    /// Weight of a type-`i` replica.
    fn weight(&self, i: usize) -> f64 {
        1.0 / i as f64
    }

    /// DFS over types `i..K−1`.
    ///
    /// `used` is the capacity consumed so far (sizes plus reserve
    /// contributions of the first `γ−1` replicas); `reserved_count` is how
    /// many of the `γ−1` reserve slots are already charged; `weight` the
    /// accumulated regular weight.
    fn dfs(&mut self, i: usize, used: f64, reserved_count: usize, weight: f64) {
        self.nodes += 1;
        let free = 1.0 - used;
        // Leaf value: fill the remaining free space with tiny mass. Any
        // uncharged reserve slots are charged at the size of the largest
        // tiny replica, which is arbitrarily small — covered by EPS.
        let candidate = weight + free.max(0.0) * self.tiny_density;
        if candidate > self.best {
            self.best = candidate;
            self.best_counts = self.counts.clone();
            self.best_tiny = free.max(0.0);
        }
        if i >= self.classes {
            return;
        }
        // Optimistic bound: all remaining capacity converted at the best
        // remaining density. A type-i replica costs its size (twice while
        // reserve slots remain), so density ≤ weight(i)/size(i).
        let best_density = (self.weight(i) / self.size(i)).max(self.tiny_density);
        if weight + free.max(0.0) * best_density <= self.best + 1e-12 {
            return;
        }
        let max_count = (free / self.size(i)).floor() as usize;
        // Descend with the highest counts first: good solutions use few
        // large replicas, which tightens the bound early.
        for count in (0..=max_count).rev() {
            // Reserve: of these `count` replicas, those landing in the
            // first γ−1 (largest) positions are charged twice.
            let reserved_here = count.min((self.gamma - 1).saturating_sub(reserved_count));
            let cost = count as f64 * self.size(i) + reserved_here as f64 * self.size(i);
            if used + cost > 1.0 + 1e-12 {
                continue;
            }
            self.counts[i - 1] = count;
            self.dfs(
                i + 1,
                used + cost,
                reserved_count + reserved_here,
                weight + count as f64 * self.weight(i),
            );
            self.counts[i - 1] = 0;
        }
    }
}

/// Solves the Theorem-2 program for `config`, returning the maximum bin
/// weight (the competitive-ratio upper bound).
#[must_use]
pub fn maximize_bin_weight(config: &IpConfig) -> IpSolution {
    let weights = WeightFunction::new(config.gamma, config.classes);
    let mut search = Search {
        gamma: config.gamma,
        classes: config.classes,
        tiny_density: weights.tiny_density(),
        best: 0.0,
        best_counts: vec![0; config.classes.saturating_sub(1)],
        best_tiny: 0.0,
        counts: vec![0; config.classes.saturating_sub(1)],
        nodes: 0,
    };
    search.dfs(1, 0.0, 0, 0.0);
    IpSolution {
        objective: search.best,
        counts: search.best_counts,
        tiny_size: search.best_tiny,
        nodes: search.nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma2_large_k_approaches_paper_bound() {
        // Theorem 2: the ratio approaches ≈1.59 for large K. The optimal
        // composition is one class-1, one class-2, and one class-11
        // replica plus tiny fill: 1 + 1/2 + 1/11 + ε·density ≈ 1.598.
        let r = maximize_bin_weight(&IpConfig::new(2, 200));
        assert!((r.objective - 1.598).abs() < 0.01, "objective {}", r.objective);
        assert_eq!(r.counts[0], 1, "one class-1 replica");
        assert_eq!(r.counts[1], 1, "one class-2 replica");
    }

    #[test]
    fn gamma3_large_k_approaches_paper_bound() {
        // γ=3: the paper reports 1.625 = 1 + 1/2 + 1/8, which is exactly
        // the regular-replica weight of the optimal composition (one
        // class-1, one class-2, one class-8 replica); tiny fill adds ≈0.01.
        let r = maximize_bin_weight(&IpConfig::new(3, 200));
        assert!((r.objective - 1.6366).abs() < 0.01, "objective {}", r.objective);
        let regular: f64 =
            r.counts.iter().enumerate().map(|(idx, &c)| c as f64 / (idx + 1) as f64).sum();
        assert!((regular - 1.625).abs() < 1e-9, "regular weight {regular}");
    }

    #[test]
    fn objective_decreases_with_k() {
        // Smaller K inflates the tiny density, loosening the bound.
        let r20 = maximize_bin_weight(&IpConfig::new(2, 20)).objective;
        let r60 = maximize_bin_weight(&IpConfig::new(2, 60)).objective;
        let r200 = maximize_bin_weight(&IpConfig::new(2, 200)).objective;
        assert!(r20 >= r60 && r60 >= r200, "{r20} {r60} {r200}");
    }

    #[test]
    fn bound_is_never_below_trivial_composition() {
        // A single class-1 replica plus tiny fill is always feasible, so
        // the optimum is at least that.
        for k in [10usize, 30, 80] {
            let cfg = IpConfig::new(2, k);
            let w = WeightFunction::new(2, k);
            let size1 = 1.0 / 3.0 + EPS;
            let trivial = 1.0 + (1.0 - 2.0 * size1) * w.tiny_density();
            let r = maximize_bin_weight(&cfg);
            assert!(r.objective >= trivial - 1e-9);
        }
    }

    #[test]
    fn solution_is_feasible() {
        let cfg = IpConfig::new(2, 40);
        let r = maximize_bin_weight(&cfg);
        // Recompute the capacity usage of the reported solution.
        let mut used = 0.0;
        let mut reserve_slots = cfg.gamma() - 1;
        for (idx, &count) in r.counts.iter().enumerate() {
            let i = idx + 1;
            let size = 1.0 / (cfg.gamma() + i) as f64 + EPS;
            let reserved = count.min(reserve_slots);
            reserve_slots -= reserved;
            used += count as f64 * size + reserved as f64 * size;
        }
        used += r.tiny_size;
        assert!(used <= 1.0 + 1e-6, "used {used}");
        assert!(r.nodes > 0);
    }

    #[test]
    #[should_panic(expected = "K > γ²+γ")]
    fn rejects_undersized_k() {
        let _ = IpConfig::new(3, 12);
    }
}
