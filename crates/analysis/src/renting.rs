//! Renting competitive-ratio probe.
//!
//! The server-renting model (Kamali & López-Ortiz, *Efficient algorithms
//! for the bin packing problem with server renting*) charges for servers
//! by the rental block rather than by the instant: a consolidation policy
//! pays for every block it opens, refundable never, plus the streaming
//! cost of the migrations it chooses to run. The natural quality measure
//! is then a *cost* competitive ratio — realized dollars divided by the
//! dollars a clairvoyant adversary must spend on the same demand curve.
//!
//! The clairvoyant lower bound here is the one certified by
//! [`CostReport::clairvoyant_lower_bound_usd`]: even an offline packer
//! that forever re-packs for free needs `⌈L(t)⌉` servers at every
//! instant, and renting in arbitrarily fine blocks costs at least the
//! hourly rate over `∫ ⌈L(t)⌉ dt`. No real policy can beat it, so the
//! reported ratio *over-estimates* the true competitive ratio, exactly
//! like [`crate::ratio`] does for the server-count objective.

use cubefit_economics::CostReport;

/// Renting competitive-ratio estimate for one costed simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RentingRatio {
    /// Dollars the policy actually spent: rent plus all migration
    /// streaming (defrag and recovery).
    pub realized_usd: f64,
    /// Clairvoyant lower bound on what *any* policy must spend.
    pub clairvoyant_usd: f64,
    /// `realized_usd / clairvoyant_usd` — an upper bound on the realized
    /// cost competitive ratio.
    pub ratio: f64,
}

/// Measures the renting competitive ratio of a costed run.
///
/// Returns `None` when the lower bound is not strictly positive — a run
/// that never placed load has nothing to be competitive against — so a
/// `Some` ratio is always finite.
#[must_use]
pub fn renting_ratio(cost: &CostReport) -> Option<RentingRatio> {
    let clairvoyant_usd = cost.clairvoyant_lower_bound_usd();
    if clairvoyant_usd <= 0.0 || !clairvoyant_usd.is_finite() {
        return None;
    }
    let realized_usd = cost.total_usd;
    Some(RentingRatio { realized_usd, clairvoyant_usd, ratio: realized_usd / clairvoyant_usd })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubefit_economics::{LeaseLedger, LeaseTerms, MS_PER_HOUR};

    /// A hand-built hour of simulation: three servers leased for the
    /// whole hour against a demand curve that needs two.
    fn costed_hour() -> CostReport {
        let terms = LeaseTerms::c4_4xlarge_hourly();
        let mut ledger = LeaseLedger::new(terms);
        ledger.advance(0, (0..3).map(cubefit_core::BinId::new));
        ledger.advance(MS_PER_HOUR as u64, (0..3).map(cubefit_core::BinId::new));
        CostReport::from_ledger(
            &ledger,
            60_000,
            0.25, // defrag streaming
            0.50, // recovery streaming
            0.0,
            0.0,
            1.6 * MS_PER_HOUR, // ∫ L dt
            2.0 * MS_PER_HOUR, // ∫ ⌈L⌉ dt
        )
    }

    #[test]
    fn ratio_compares_realized_against_the_clairvoyant_bound() {
        let cost = costed_hour();
        let probe = renting_ratio(&cost).expect("positive demand has a bound");
        // Clairvoyant: two servers for one hour at the c4.4xlarge rate.
        assert!((probe.clairvoyant_usd - 2.0 * 0.822).abs() < 1e-9);
        assert!((probe.realized_usd - cost.total_usd).abs() < 1e-12);
        assert!(probe.ratio.is_finite());
        assert!(
            probe.ratio >= 1.0,
            "three rented servers plus streaming cannot undercut the two-server bound: {}",
            probe.ratio
        );
        assert!((probe.ratio - probe.realized_usd / probe.clairvoyant_usd).abs() < 1e-12);
    }

    #[test]
    fn zero_demand_has_no_ratio() {
        let ledger = LeaseLedger::new(LeaseTerms::c4_4xlarge_hourly());
        let cost = CostReport::from_ledger(&ledger, 60_000, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
        assert!(renting_ratio(&cost).is_none());
    }
}
