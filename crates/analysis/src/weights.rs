//! The Theorem-2 replica weight function.

use cubefit_core::Classifier;

/// The weight function of Theorem 2 for a fixed `(γ, K)` configuration.
///
/// For a replica of size `x ∈ (1/(i+1), 1/i]` with `γ ≤ i < K+γ−1`, the
/// weight is `1/(i−γ+1)` — exactly `1/τ` for a class-`τ` replica, so a
/// mature class-`τ` bin (holding `τ` such replicas) has weight ≥ 1. Tiny
/// replicas (class `K`) get weight `x·(α_K+1)/(α_K−γ+1)`, which makes every
/// full multi-replica weigh at least as much as a replica of its target
/// class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightFunction {
    classifier: Classifier,
    alpha: usize,
}

impl WeightFunction {
    /// Creates the weight function.
    ///
    /// # Panics
    ///
    /// Panics if `α_K < γ` (the weighting needs the theoretical
    /// multi-replica target class to exist, i.e. `K > γ² + γ`).
    #[must_use]
    pub fn new(gamma: usize, classes: usize) -> Self {
        let classifier = Classifier::new(classes, gamma);
        let alpha = classifier.alpha().unwrap_or(0);
        assert!(
            alpha >= gamma,
            "weight function needs α_K ≥ γ (K > γ²+γ); got K={classes}, γ={gamma}"
        );
        WeightFunction { classifier, alpha }
    }

    /// `α_K`: the largest integer with `α_K² + α_K < K`.
    #[must_use]
    pub fn alpha(&self) -> usize {
        self.alpha
    }

    /// The tiny-replica weight density `(α_K+1)/(α_K−γ+1)`.
    #[must_use]
    pub fn tiny_density(&self) -> f64 {
        (self.alpha + 1) as f64 / (self.alpha - self.classifier.gamma() + 1) as f64
    }

    /// The weight of a replica of size `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not in `(0, 1/γ]`.
    #[must_use]
    pub fn weight(&self, x: f64) -> f64 {
        let class = self.classifier.classify(x);
        if class.index() == self.classifier.classes() {
            x * self.tiny_density()
        } else {
            1.0 / class.index() as f64
        }
    }

    /// The total weight of a full class-`τ` bin's payload (τ replicas of
    /// class τ): always exactly 1 for regular classes.
    #[must_use]
    pub fn mature_bin_weight(&self, tau: usize) -> f64 {
        tau as f64 * (1.0 / tau as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_weight_is_inverse_class() {
        let w = WeightFunction::new(2, 10);
        // γ=2: class 1 = sizes (1/3, 1/2] → weight 1.
        assert_eq!(w.weight(0.5), 1.0);
        assert_eq!(w.weight(0.4), 1.0);
        // class 2 = (1/4, 1/3] → weight 1/2.
        assert_eq!(w.weight(0.3), 0.5);
        // class 5 = (1/7, 1/6] → weight 1/5.
        assert!((w.weight(0.15) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn tiny_weight_is_proportional() {
        let w = WeightFunction::new(2, 10);
        // K=10, γ=2 → α=2, density = 3/1 = 3.
        assert_eq!(w.alpha(), 2);
        assert_eq!(w.tiny_density(), 3.0);
        // tiny threshold = 1/11.
        let x = 0.05;
        assert!((w.weight(x) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn tiny_density_approaches_one_for_large_k() {
        let d40 = WeightFunction::new(2, 40).tiny_density(); // α=5 → 6/4
        let d200 = WeightFunction::new(2, 200).tiny_density(); // α=13 → 14/12
        assert!(d40 > d200);
        assert!(d200 < 1.2);
    }

    #[test]
    fn full_multireplica_weighs_like_target_class() {
        let w = WeightFunction::new(2, 10);
        // A full multi-replica has size > 1/(α+1) = 1/3; its weight is
        // > (1/3)·3 = 1 = weight of a class α−γ+1 = 1 replica.
        let multi_weight = (1.0 / 3.0) * w.tiny_density();
        assert!(multi_weight >= 1.0 - 1e-12);
    }

    #[test]
    fn mature_bin_weight_is_one() {
        let w = WeightFunction::new(3, 20);
        for tau in 1..=5 {
            assert!((w.mature_bin_weight(tau) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "α_K ≥ γ")]
    fn rejects_small_k_for_gamma3() {
        let _ = WeightFunction::new(3, 10);
    }
}
