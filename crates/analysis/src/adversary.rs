//! Adversarial input construction.
//!
//! No online algorithm for this problem can beat a competitive ratio of
//! 1.42 (Daudjee, Kamali, López-Ortiz — SPAA'14). The classic adversary
//! behind such bounds feeds a long stream of *just-under-half* items and
//! then, once the algorithm has committed, follows with *just-over-half*
//! items: servers that grouped small items cannot take a large one, while
//! an offline packer would have paired them from the start.
//!
//! This module builds replication-aware variants of that pattern so
//! experiments (and tests) can probe worst-case behaviour rather than only
//! average-case distributions.

use cubefit_core::{Load, Tenant, TenantId};

/// The classic two-phase adversary: `count` tenants of load `half − gap`
/// followed by `count` of load `half + gap`, where `half` is the largest
/// load whose replica pairs two-per-slot (γ-aware).
///
/// For γ = 2 this is the textbook bin-packing adversary scaled to replica
/// sizes: phase-1 replicas are just under 1/4 of a server (two fit with
/// reserve), phase-2 replicas just over.
#[must_use]
pub fn two_phase(count: usize, gamma: usize, gap: f64) -> Vec<Tenant> {
    assert!(gamma >= 2);
    assert!(gap > 0.0 && gap < 0.1, "gap should be a small perturbation");
    // Replica boundary 1/(2γ): tenant load boundary is 1/2.
    let mut tenants = Vec::with_capacity(2 * count);
    for i in 0..count {
        tenants
            .push(Tenant::new(TenantId::new(i as u64), Load::new(0.5 - gap).expect("valid load")));
    }
    for i in 0..count {
        tenants.push(Tenant::new(
            TenantId::new((count + i) as u64),
            Load::new(0.5 + gap).expect("valid load"),
        ));
    }
    tenants
}

/// A sawtooth adversary sweeping loads across every class boundary,
/// repeatedly: stresses class-transition bookkeeping.
#[must_use]
pub fn class_boundary_sweep(rounds: usize, gamma: usize, classes: usize) -> Vec<Tenant> {
    assert!(gamma >= 2 && classes >= 2);
    let mut tenants = Vec::new();
    let mut id = 0u64;
    for _ in 0..rounds {
        for tau in 1..=classes {
            // Right endpoint of class τ: replica = 1/(τ+γ−1), load = γ·that.
            let replica = 1.0 / (tau + gamma - 1) as f64;
            let load = (replica * gamma as f64).min(1.0);
            tenants.push(Tenant::new(TenantId::new(id), Load::new(load).expect("valid")));
            id += 1;
            // Just inside the left-open end.
            let replica = 1.0 / (tau + gamma) as f64 + 1e-6;
            let load = (replica * gamma as f64).min(1.0);
            tenants.push(Tenant::new(TenantId::new(id), Load::new(load).expect("valid")));
            id += 1;
        }
    }
    tenants
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::empirical_ratio;
    use cubefit_baselines::offline;
    use cubefit_core::{Consolidator, CubeFit, CubeFitConfig};

    fn cubefit(gamma: usize) -> CubeFit {
        CubeFit::new(CubeFitConfig::builder().replication(gamma).classes(10).build().unwrap())
    }

    #[test]
    fn two_phase_shape() {
        let ts = two_phase(50, 2, 0.02);
        assert_eq!(ts.len(), 100);
        assert!(ts[..50].iter().all(|t| t.load().get() < 0.5));
        assert!(ts[50..].iter().all(|t| t.load().get() > 0.5));
    }

    #[test]
    fn adversary_hurts_but_stays_robust() {
        let ts = two_phase(100, 2, 0.02);
        let mut cf = cubefit(2);
        let online = empirical_ratio(&mut cf, &ts).unwrap();
        assert!(cf.placement().is_robust());
        // The adversary inflates the ratio above the friendly-input regime…
        assert!(online.ratio > 1.2, "ratio {}", online.ratio);
        // …but Theorem 2's bound region still caps CubeFit's damage (the
        // volume LB is loose, hence the generous ceiling).
        assert!(online.ratio < 2.2, "ratio {}", online.ratio);
    }

    #[test]
    fn offline_handles_the_adversary_better_than_online_best_fit() {
        // The two-phase pattern specifically victimizes greedy Best Fit:
        // sorting defuses it. (CubeFit's class segregation also defuses it
        // — its cube bins never mix the two phases — which is why the
        // comparison is against the same greedy family.)
        let ts = two_phase(100, 2, 0.02);
        let offline_servers = offline::best_fit_decreasing(&ts, 2).unwrap().open_bins();
        let mut online = cubefit_baselines::BestFit::new(2).unwrap();
        for t in &ts {
            online.place(*t).unwrap();
        }
        assert!(offline_servers <= online.placement().open_bins());
    }

    #[test]
    fn boundary_sweep_is_robust_for_all_configs() {
        for gamma in [2usize, 3] {
            let ts = class_boundary_sweep(5, gamma, 8);
            let mut cf = cubefit(gamma);
            for t in &ts {
                cf.place(*t).unwrap();
            }
            assert!(cf.placement().is_robust(), "γ={gamma}");
        }
    }

    #[test]
    #[should_panic(expected = "gap")]
    fn rejects_degenerate_gap() {
        let _ = two_phase(10, 2, 0.5);
    }
}
