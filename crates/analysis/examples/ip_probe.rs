//! Diagnostic: prints the Theorem-2 integer program's optimum and optimal
//! bin composition for several (γ, K) pairs. Run with `cargo run --release
//! -p cubefit-analysis --example ip_probe`.

use cubefit_analysis::solver::{maximize_bin_weight, IpConfig};
fn main() {
    for (g, k) in [(2usize, 200usize), (3, 200), (3, 500), (2, 50), (3, 50)] {
        let r = maximize_bin_weight(&IpConfig::new(g, k));
        let nz: Vec<(usize, usize)> =
            r.counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (i + 1, c)).collect();
        println!(
            "γ={g} K={k}: obj={:.6} counts={:?} tiny={:.4} nodes={}",
            r.objective, nz, r.tiny_size, r.nodes
        );
    }
}
