//! Certified lower bounds on the offline optimum.
//!
//! Competitive-ratio experiments (see `cubefit-analysis`) compare an online
//! algorithm's server count against OPT, which is NP-hard to compute. These
//! bounds are *sound*: every robust placement of the given tenants uses at
//! least this many servers, so `servers_used / lower_bound` upper-bounds
//! the empirical competitive ratio.

use cubefit_core::Tenant;

/// Lower bound from total volume: server capacity is 1, so at least
/// `⌈Σ load⌉` servers are needed (replication splits loads but does not
/// change the total).
#[must_use]
pub fn load_bound(tenants: &[Tenant]) -> usize {
    let total: f64 = tenants.iter().map(|t| t.load().get()).sum();
    total.ceil() as usize
}

/// Lower bound from replication: any non-empty instance needs at least `γ`
/// distinct servers, since a tenant's replicas must land on distinct
/// machines.
#[must_use]
pub fn replication_bound(tenants: &[Tenant], gamma: usize) -> usize {
    if tenants.is_empty() {
        0
    } else {
        gamma
    }
}

/// Lower bound from failover reserve: for every tenant, each server hosting
/// one of its replicas must reserve at least the shared load with the
/// tenant's other servers. Summing over servers,
/// `Σ_bins (level + worst_failover) ≥ Σ_tenants load · (1 + (γ−1)/γ)` is
/// *not* sound in general, so this bound instead counts **large tenants**:
/// tenants with replica size `s > 1/2` cannot coexist (a server hosting two
/// such replicas with failover reserve would exceed capacity), hence every
/// replica of a large tenant occupies a dedicated server — at least
/// `γ · |large|` servers.
#[must_use]
pub fn large_tenant_bound(tenants: &[Tenant], gamma: usize) -> usize {
    // replica s plus the reserve for the shared sibling load (also ≥ s for
    // a co-hosted large replica pair) exceeds 1 when 2s + reserve > 1; the
    // safe, simple criterion below uses s > 1/2: even alone, such a replica
    // leaves less than 1/2 free, and its own failover reserve is s > 1/2.
    let large = tenants
        .iter()
        .filter(|t| {
            let s = t.replica_size(gamma);
            s + s > 1.0 // level + single-sibling failover reserve > capacity
        })
        .count();
    large * gamma
}

/// The best (largest) of all certified lower bounds.
#[must_use]
pub fn best_bound(tenants: &[Tenant], gamma: usize) -> usize {
    load_bound(tenants)
        .max(replication_bound(tenants, gamma))
        .max(large_tenant_bound(tenants, gamma))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubefit_core::{Load, TenantId};

    fn tenants(loads: &[f64]) -> Vec<Tenant> {
        loads
            .iter()
            .enumerate()
            .map(|(i, &l)| Tenant::new(TenantId::new(i as u64), Load::new(l).unwrap()))
            .collect()
    }

    #[test]
    fn load_bound_is_ceiling_of_total() {
        assert_eq!(load_bound(&tenants(&[0.5, 0.5, 0.5])), 2);
        assert_eq!(load_bound(&tenants(&[0.5, 0.5])), 1);
        assert_eq!(load_bound(&[]), 0);
    }

    #[test]
    fn replication_bound_floor() {
        assert_eq!(replication_bound(&tenants(&[0.1]), 3), 3);
        assert_eq!(replication_bound(&[], 3), 0);
    }

    #[test]
    fn large_tenant_bound_counts_dominant_replicas() {
        // γ = 2: replica > 1/2 means load > 1 — impossible, bound 0.
        assert_eq!(large_tenant_bound(&tenants(&[1.0, 0.9]), 2), 0);
        // γ = 2 with replica exactly 1/2 is not "large" (2s = 1 not > 1).
        assert_eq!(large_tenant_bound(&tenants(&[1.0]), 2), 0);
    }

    #[test]
    fn best_bound_dominates_components() {
        let ts = tenants(&[0.9, 0.8, 0.7, 0.1]);
        let b = best_bound(&ts, 2);
        assert!(b >= load_bound(&ts));
        assert!(b >= replication_bound(&ts, 2));
        assert!(b >= large_tenant_bound(&ts, 2));
        assert_eq!(b, 3); // ⌈2.5⌉ = 3 dominates γ = 2
    }

    #[test]
    fn bounds_never_exceed_a_feasible_solution() {
        use cubefit_core::{Consolidator, CubeFit, CubeFitConfig};
        let ts = tenants(&[0.6, 0.3, 0.6, 0.78, 0.12, 0.36]);
        let mut cf =
            CubeFit::new(CubeFitConfig::builder().replication(2).classes(5).build().unwrap());
        for t in &ts {
            cf.place(*t).unwrap();
        }
        assert!(best_bound(&ts, 2) <= cf.placement().open_bins());
    }
}
