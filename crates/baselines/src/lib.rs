//! # cubefit-baselines
//!
//! Baseline consolidation algorithms the CubeFit paper compares against,
//! plus classic online bin-packers adapted to replicated tenants and lower
//! bounds for competitive-ratio experiments.
//!
//! * [`Rfi`] — the **RFI** algorithm of Schaffner et al. (RTP, SIGMOD'13)
//!   as described in §V of the CubeFit paper: Best Fit with a
//!   *single-failure* failover reserve and an interleaving cap `μ`
//!   (recommended 0.85). RFI cannot protect against more than one
//!   simultaneous server failure — the property Fig. 5 demonstrates.
//! * [`BestFit`] / [`FirstFit`] / [`WorstFit`] — greedy packers made
//!   failover-aware with the full `γ − 1`-failure reserve, so they produce
//!   robust placements and compare fairly with CubeFit on servers used.
//! * [`NextFit`] — bounded-lookback packer (keeps only the current `γ`
//!   bins open).
//! * [`RandomFit`] — random feasible placement, a sanity-check floor.
//! * [`offline`] — Best Fit Decreasing, a near-optimal offline comparator.
//! * [`bounds`] — certified lower bounds on the offline optimum.
//!
//! Every algorithm implements [`cubefit_core::Consolidator`], so harnesses
//! drive them interchangeably:
//!
//! ```
//! use cubefit_baselines::Rfi;
//! use cubefit_core::{Consolidator, Load, Tenant};
//!
//! # fn main() -> Result<(), cubefit_core::Error> {
//! let mut rfi = Rfi::new(2, 0.85)?;
//! rfi.place(Tenant::with_load(Load::new(0.4)?))?;
//! assert_eq!(rfi.placement().open_bins(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod bounds;
pub mod common;
pub mod greedy;
pub mod nextfit;
pub mod offline;
pub mod randomfit;
pub mod rfi;

pub use common::ReserveMode;
pub use cubefit_core::EPSILON;
pub use greedy::{BestFit, FirstFit, WorstFit};
pub use nextfit::NextFit;
pub use randomfit::RandomFit;
pub use rfi::Rfi;
