//! The RFI baseline (Schaffner et al., RTP — SIGMOD'13), as described in
//! §V of the CubeFit paper.

use crate::common::{assignment_feasible, extends_assignment, BaselineTelemetry, ReserveMode};
use cubefit_core::algorithm::{LoadUpdateOutcome, RemovalOutcome};
use cubefit_core::level_index::LevelIndex;
use cubefit_core::recovery::{self, RecoveryReport};
use cubefit_core::{
    BinId, Consolidator, Error, Placement, PlacementOutcome, PlacementStage, Result, Tenant,
    TenantId,
};
use cubefit_telemetry::{Recorder, TraceEvent};
use std::cell::Cell;
use std::collections::HashMap;

/// **RFI**: replica-level Best Fit with a *single-failure* failover reserve
/// and an interleaving cap `μ`.
///
/// For each replica, RFI "searches for the server that would have the least
/// load left over after a tenant is placed on it, including having enough
/// reserved capacity for additional load from any single failed server
/// (overload capacity) and a μ value that governs how much of the
/// server's total capacity to use for interleaving. If no such server is
/// found, a new server is provisioned" (§V). Subsequent replicas repeat the
/// search over the remaining servers. The paper recommends `μ = 0.85`.
///
/// Because the reserve only covers one failed server, RFI placements
/// generally violate the SLA under two simultaneous failures — the
/// behaviour Fig. 5 of the paper demonstrates against CubeFit with `γ = 3`.
///
/// ```
/// use cubefit_baselines::Rfi;
/// use cubefit_core::{Consolidator, Load, Tenant};
///
/// # fn main() -> Result<(), cubefit_core::Error> {
/// let mut rfi = Rfi::new(2, 0.85)?;
/// for load in [0.6, 0.3, 0.6] {
///     rfi.place(Tenant::with_load(Load::new(load)?))?;
/// }
/// // With γ = 2 the single-failure reserve equals full robustness.
/// assert!(rfi.placement().is_robust());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Rfi {
    placement: Placement,
    /// Servers keyed by *robust slack* `min(μ, 1 − maxShared) − level`: the
    /// largest replica a server can accept under both the interleaving cap
    /// and the single-failure reserve (before sibling adjustments).
    /// Scanning slack-ascending from the replica size yields the server
    /// with the least capacity left over after placement — the Best-Fit
    /// criterion of §V read against the failover-aware headroom — in a
    /// handful of probes instead of a scan over every reserve-saturated
    /// server.
    index: LevelIndex,
    mu: f64,
    fallbacks: usize,
    scan_limit: usize,
    /// When `Some`, removals and load updates record each touched bin's
    /// pre-batch slack key (captured at first touch, while the bin's
    /// failover cache is still clean) instead of re-keying immediately; the
    /// batch fast path re-keys every recorded bin once at the end. `None`
    /// outside batches.
    deferred_rekey: Option<HashMap<BinId, f64>>,
    telemetry: BaselineTelemetry,
}

impl Rfi {
    /// Creates an RFI packer with replication factor `gamma` and
    /// interleaving parameter `mu` (the paper uses `γ = 2`, `μ = 0.85`).
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidReplication`] if `gamma < 2`;
    /// * [`Error::InvalidMu`] if `mu` is not in `(0, 1]`.
    pub fn new(gamma: usize, mu: f64) -> Result<Self> {
        if gamma < 2 {
            return Err(Error::InvalidReplication { gamma });
        }
        if !(mu.is_finite() && mu > 0.0 && mu <= 1.0) {
            return Err(Error::InvalidMu { mu });
        }
        Ok(Rfi {
            placement: Placement::new(gamma),
            index: LevelIndex::new(),
            mu,
            fallbacks: 0,
            scan_limit: usize::MAX,
            deferred_rekey: None,
            telemetry: BaselineTelemetry::default(),
        })
    }

    /// The interleaving parameter `μ`.
    #[must_use]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// How many tenants required the all-fresh-servers fallback (whole
    /// assignments that turned infeasible after sibling placement).
    #[must_use]
    pub fn fallbacks(&self) -> usize {
        self.fallbacks
    }

    /// Bounds how many candidate servers each replica scan inspects
    /// (default 512; `usize::MAX` for exhaustive scans).
    #[must_use]
    pub fn with_scan_limit(mut self, limit: usize) -> Self {
        self.scan_limit = limit.max(1);
        self
    }

    /// Robust slack of `bin` (the index key).
    fn slack(&self, bin: BinId) -> f64 {
        let level = self.placement.level(bin);
        let reserve = self.placement.top_shared_sum_with(bin, &[], 1);
        (self.mu - level).min(1.0 - level - reserve).max(0.0)
    }

    fn open(&mut self) -> BinId {
        let bin = self.placement.open_bin(None);
        self.index.insert(bin, self.slack(bin));
        bin
    }

    /// Captures the slack keys of `bins` before a removal/load update
    /// mutates them. Outside a batch, returns them for the caller's
    /// immediate per-op re-key. Inside a batch, records each bin's key at
    /// *first touch* — while its failover cache is still clean, so the
    /// query is valid and equals the key currently stored in the index —
    /// and returns `None` (the batch re-keys once at the end).
    fn note_old_slacks(&mut self, bins: &[BinId]) -> Option<Vec<(BinId, f64)>> {
        match self.deferred_rekey.as_ref() {
            None => Some(bins.iter().map(|&b| (b, self.slack(b))).collect()),
            Some(pending) => {
                let missing: Vec<BinId> =
                    bins.iter().copied().filter(|b| !pending.contains_key(b)).collect();
                let slacks: Vec<(BinId, f64)> =
                    missing.into_iter().map(|b| (b, self.slack(b))).collect();
                self.deferred_rekey.as_mut().expect("checked above").extend(slacks);
                None
            }
        }
    }

    /// Runs `ops` with slack re-keys deferred and the placement backend in
    /// deferred-maintenance mode, then re-keys every touched bin once
    /// (deterministic bin order) from its recorded pre-batch key to its
    /// final slack.
    fn batched<T>(&mut self, ops: impl FnOnce(&mut Self) -> Result<Vec<T>>) -> Result<Vec<T>> {
        self.placement.begin_batch();
        self.deferred_rekey = Some(HashMap::new());
        let result = ops(self);
        let pending = self.deferred_rekey.take().expect("batch mode set above");
        self.placement.end_batch();
        let mut pending: Vec<(BinId, f64)> = pending.into_iter().collect();
        pending.sort_unstable_by_key(|(bin, _)| *bin);
        for (bin, old_slack) in pending {
            self.index.update(bin, old_slack, self.slack(bin));
        }
        result
    }
}

impl Consolidator for Rfi {
    fn place(&mut self, tenant: Tenant) -> Result<PlacementOutcome> {
        if self.placement.tenant_bins(tenant.id()).is_some() {
            return Err(Error::DuplicateTenant { tenant: tenant.id() });
        }
        let gamma = self.placement.gamma();
        let size = tenant.replica_size(gamma);
        self.telemetry.arrival(&tenant, self.placement.tenant_count());

        let mut chosen: Vec<BinId> = Vec::with_capacity(gamma);
        let mut opened = 0;
        for replica in 0..gamma {
            // Tightest feasible server first: every candidate the slack
            // range yields already satisfies the μ cap and the reserve
            // (modulo sibling adjustments, which the check below adds).
            let scanned = Cell::new(0_usize);
            let candidate = self.index.iter_asc_at_least(size).take(self.scan_limit).find(|&bin| {
                scanned.set(scanned.get() + 1);
                !chosen.contains(&bin)
                    && extends_assignment(
                        &self.placement,
                        &chosen,
                        bin,
                        size,
                        ReserveMode::SingleFailure,
                        Some(self.mu),
                    )
            });
            self.telemetry.recorder.emit(|| TraceEvent::FitAttempt {
                tenant: tenant.id().get(),
                replica,
                scanned: scanned.get(),
                opened_new: candidate.is_none(),
            });
            match candidate {
                Some(bin) => chosen.push(bin),
                None => {
                    chosen.push(self.open());
                    opened += 1;
                }
            }
        }
        // Fresh servers are exempt from μ (a replica must land somewhere);
        // validate only the capacity/reserve condition for the whole set.
        if !assignment_feasible(&self.placement, &chosen, size, ReserveMode::SingleFailure, None) {
            self.fallbacks += 1;
            self.telemetry.fallbacks.inc();
            chosen = (0..gamma).map(|_| self.open()).collect();
            opened = gamma;
        }
        let pending = self.telemetry.pending_opens(&self.placement, &chosen);
        let old: Vec<(BinId, f64)> = chosen.iter().map(|&b| (b, self.slack(b))).collect();
        self.placement.place_tenant(&tenant, &chosen)?;
        for (bin, old_slack) in old {
            self.index.update(bin, old_slack, self.slack(bin));
        }
        self.telemetry.opened(&self.placement, &pending);
        self.telemetry.placed(&tenant, &chosen, opened);
        Ok(PlacementOutcome {
            tenant: tenant.id(),
            bins: chosen,
            opened,
            stage: PlacementStage::Direct,
        })
    }

    fn remove(&mut self, tenant: TenantId) -> Result<RemovalOutcome> {
        // Removal shrinks the levels of exactly the tenant's bins, and the
        // shared loads of exactly the pairs among them — no other bin's
        // slack key moves, so only these keys are refreshed.
        let touched: Vec<BinId> =
            self.placement.tenant_bins(tenant).ok_or(Error::UnknownTenant { tenant })?.to_vec();
        let old = self.note_old_slacks(&touched);
        let (load, bins) = self.placement.remove_tenant(tenant)?;
        if let Some(old) = old {
            for (bin, old_slack) in old {
                self.index.update(bin, old_slack, self.slack(bin));
            }
        }
        self.telemetry.recorder.emit(|| TraceEvent::TenantDeparted { tenant: tenant.get(), load });
        Ok(RemovalOutcome { tenant, load, bins })
    }

    fn update_load(&mut self, tenant: TenantId, new_load: f64) -> Result<LoadUpdateOutcome> {
        // A load change has the same re-key footprint as a removal: the
        // tenant's bins shift level, and only pairs among them shift shared
        // load, so only those slack keys are refreshed.
        let touched: Vec<BinId> =
            self.placement.tenant_bins(tenant).ok_or(Error::UnknownTenant { tenant })?.to_vec();
        let old = self.note_old_slacks(&touched);
        let (old_load, bins) = self.placement.update_load(tenant, new_load)?;
        if let Some(old) = old {
            for (bin, old_slack) in old {
                self.index.update(bin, old_slack, self.slack(bin));
            }
        }
        Ok(LoadUpdateOutcome { tenant, old_load, new_load, bins })
    }

    fn place_batch(&mut self, tenants: Vec<Tenant>) -> Result<Vec<PlacementOutcome>> {
        // Placement decisions query the reserve per replica, so the loop
        // stays sequential; the batch only amortizes table growth.
        self.placement.reserve_tenants(tenants.len());
        tenants.into_iter().map(|tenant| self.place(tenant)).collect()
    }

    fn remove_batch(&mut self, tenants: &[TenantId]) -> Result<Vec<RemovalOutcome>> {
        self.batched(|this| tenants.iter().map(|tenant| this.remove(*tenant)).collect())
    }

    fn update_load_batch(&mut self, updates: &[(TenantId, f64)]) -> Result<Vec<LoadUpdateOutcome>> {
        self.batched(|this| {
            updates.iter().map(|(tenant, load)| this.update_load(*tenant, *load)).collect()
        })
    }

    fn set_shards(&mut self, shards: usize) {
        self.placement.set_shards(shards);
    }

    /// Re-homes orphaned replicas tightest-feasible-first through the full
    /// `γ − 1` move predicate — stricter than RFI's single-failure
    /// placement reserve, so recovery never weakens whatever robustness the
    /// placement had (and for `γ = 2` the two predicates coincide).
    fn recover(&mut self, failed: &[BinId]) -> Result<RecoveryReport> {
        let orphan_list = recovery::orphans(&self.placement, failed);
        let mut report = RecoveryReport::default();
        let mut affected: Vec<TenantId> = Vec::new();
        let gamma = self.placement.gamma() as f64;
        for (tenant, from) in orphan_list {
            if !affected.contains(&tenant) {
                affected.push(tenant);
            }
            let load = self.placement.tenant_load(tenant).expect("orphaned tenants are placed");
            let replica = load / gamma;
            let candidates: Vec<BinId> =
                self.index.iter_asc_at_least(replica).take(self.scan_limit).collect();
            let target = recovery::pick_target(&self.placement, tenant, from, failed, candidates);
            let to = match target {
                Some(bin) => bin,
                None => {
                    report.bins_opened += 1;
                    self.open()
                }
            };
            // The move shifts the levels of `from`/`to` and the shared
            // loads between them and every sibling; re-key all of them.
            let mut touched: Vec<BinId> =
                self.placement.tenant_bins(tenant).expect("still placed").to_vec();
            touched.push(from);
            touched.push(to);
            touched.sort_unstable();
            touched.dedup();
            let old: Vec<(BinId, f64)> = touched.iter().map(|&b| (b, self.slack(b))).collect();
            self.placement.move_replica(tenant, from, to)?;
            for (bin, old_slack) in old {
                self.index.update(bin, old_slack, self.slack(bin));
            }
            report.replicas_migrated += 1;
            report.moved_load += replica;
            self.telemetry.recorder.emit(|| TraceEvent::ReplicaMigrated {
                tenant: tenant.get(),
                from: from.index(),
                to: to.index(),
                load: replica,
            });
        }
        report.tenants_affected = affected.len();
        Ok(report)
    }

    fn migrate(&mut self, tenant: TenantId, from: BinId, to: BinId) -> Result<()> {
        let gamma = self.placement.gamma() as f64;
        let load = self.placement.tenant_load(tenant).ok_or(Error::UnknownTenant { tenant })?;
        // Same re-key footprint as a recovery move: the endpoints' levels
        // change plus the shared loads between them and every sibling.
        let mut touched: Vec<BinId> =
            self.placement.tenant_bins(tenant).expect("just looked up").to_vec();
        touched.push(from);
        touched.push(to);
        touched.sort_unstable();
        touched.dedup();
        let old: Vec<(BinId, f64)> = touched.iter().map(|&b| (b, self.slack(b))).collect();
        self.placement.move_replica(tenant, from, to)?;
        for (bin, old_slack) in old {
            self.index.update(bin, old_slack, self.slack(bin));
        }
        self.telemetry.recorder.emit(|| TraceEvent::ReplicaMigrated {
            tenant: tenant.get(),
            from: from.index(),
            to: to.index(),
            load: load / gamma,
        });
        Ok(())
    }

    fn clone_box(&self) -> Box<dyn Consolidator> {
        Box::new(self.clone())
    }

    fn placement(&self) -> &Placement {
        &self.placement
    }

    fn name(&self) -> &'static str {
        "rfi"
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        self.telemetry = BaselineTelemetry::resolve(recorder, "rfi", self.placement.gamma());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubefit_core::validity::{self, FailoverSemantics};
    use cubefit_core::{Load, TenantId};

    fn tenant(id: u64, load: f64) -> Tenant {
        Tenant::new(TenantId::new(id), Load::new(load).unwrap())
    }

    fn lcg_loads(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (((state >> 11) as f64 / (1u64 << 53) as f64) * 0.999).max(1e-6)
            })
            .collect()
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(matches!(Rfi::new(1, 0.85), Err(Error::InvalidReplication { .. })));
        assert!(matches!(Rfi::new(2, 0.0), Err(Error::InvalidMu { .. })));
        assert!(matches!(Rfi::new(2, 1.2), Err(Error::InvalidMu { .. })));
        assert_eq!(Rfi::new(2, 0.85).unwrap().mu(), 0.85);
    }

    #[test]
    fn gamma2_is_single_failure_robust() {
        let mut rfi = Rfi::new(2, 0.85).unwrap();
        for (id, load) in lcg_loads(5, 400).into_iter().enumerate() {
            rfi.place(tenant(id as u64, load)).unwrap();
        }
        // γ = 2 ⇒ single-failure reserve = γ−1 reserve: fully robust.
        assert!(rfi.placement().is_robust());
    }

    #[test]
    fn mu_caps_levels() {
        let mut rfi = Rfi::new(2, 0.7).unwrap();
        for (id, load) in lcg_loads(6, 300).into_iter().enumerate() {
            rfi.place(tenant(id as u64, load)).unwrap();
        }
        for bin in rfi.placement().bins() {
            // Multi-replica bins can exceed μ only via the fresh-server
            // path, whose first replica is at most 0.5 < 0.7.
            assert!(bin.level() <= 0.7 + 1e-9, "{} at level {}", bin.id(), bin.level());
        }
    }

    #[test]
    fn two_failures_can_overload_rfi_but_not_gamma3_reserve() {
        // Dense small tenants force heavy sharing; failing the worst pair
        // of servers overloads some RFI survivor under conservative
        // semantics (the effect behind Fig. 5's two-failure bars).
        let mut rfi = Rfi::new(2, 0.85).unwrap();
        for (id, load) in lcg_loads(7, 500).into_iter().enumerate() {
            // Loads in [0.2, 0.7): enough sharing per server pair.
            rfi.place(tenant(id as u64, 0.2 + load * 0.5)).unwrap();
        }
        let worst =
            validity::worst_failure_set(rfi.placement(), 2, FailoverSemantics::Conservative);
        let impact =
            validity::simulate_failures(rfi.placement(), &worst, FailoverSemantics::Conservative);
        assert!(
            impact.has_overload(),
            "expected 2-failure overload, max load {}",
            impact.max_load()
        );
    }

    #[test]
    fn uses_more_servers_than_load_requires() {
        // RFI reserves capacity, so it must use strictly more servers than
        // the load lower bound.
        let mut rfi = Rfi::new(2, 0.85).unwrap();
        let loads = lcg_loads(8, 200);
        let total: f64 = loads.iter().sum();
        for (id, load) in loads.into_iter().enumerate() {
            rfi.place(tenant(id as u64, load)).unwrap();
        }
        assert!(rfi.placement().open_bins() as f64 > total);
    }

    #[test]
    fn duplicate_rejected() {
        let mut rfi = Rfi::new(2, 0.85).unwrap();
        rfi.place(tenant(0, 0.4)).unwrap();
        assert!(matches!(rfi.place(tenant(0, 0.4)), Err(Error::DuplicateTenant { .. })));
    }

    #[test]
    fn fallback_abandons_fresh_bins_without_counting_them() {
        use cubefit_telemetry::{Recorder, TraceEvent, VecSink};
        use std::sync::Arc;

        // Hand-built fallback trigger (γ = 2, μ = 0.85):
        // t0, t1 (load 1.0) fill two saturated pairs; t2 (0.6) opens the
        // pair (4, 5) at level 0.3 sharing 0.3. t3 (0.72, replica 0.36):
        // replica 1 fits bin 4 (0.3+0.36+0.3 = 0.96) but replica 2 finds
        // no partner (bin 5 would reach 0.3+0.36+0.66 = 1.32), so the
        // per-replica loop opens fresh bin 6 — and the whole-assignment
        // check then rejects [4, 6] (0.3+0.36+0.36 = 1.02 > 1), forcing
        // the all-fresh fallback onto bins 7 and 8. Bin 6 is abandoned.
        let sink = Arc::new(VecSink::new());
        let mut rfi = Rfi::new(2, 0.85).unwrap();
        rfi.set_recorder(Recorder::with_sink(Arc::clone(&sink)));
        for (id, load) in [1.0, 1.0, 0.6].into_iter().enumerate() {
            rfi.place(tenant(id as u64, load)).unwrap();
        }
        let outcome = rfi.place(tenant(3, 0.72)).unwrap();

        assert_eq!(rfi.fallbacks(), 1);
        // The outcome reports only the fallback pair; the abandoned bin 6
        // is excluded from both the bin list and the opened count.
        assert_eq!(outcome.bins, vec![BinId::new(7), BinId::new(8)]);
        assert_eq!(outcome.opened, 2);
        let p = rfi.placement();
        assert_eq!(p.created_bins(), 9);
        assert_eq!(p.open_bins(), 8);
        assert!(p.bin(BinId::new(6)).is_empty(), "abandoned bin must stay empty");
        // The abandoned bin stays in the index at full fresh slack, so
        // later tenants can still use it.
        assert!(rfi.index.contains(BinId::new(6), 0.85));
        // PR-1 invariant: the trace's BinOpened count equals the final
        // open-server count — abandoned bins never emit BinOpened.
        let events = sink.events();
        let opened = events.iter().filter(|e| matches!(e, TraceEvent::BinOpened { .. })).count();
        assert_eq!(opened, p.open_bins());
        // And a later tenant whose replica (0.45) exceeds every used bin's
        // slack reuses the abandoned bin instead of opening two more.
        let outcome = rfi.place(tenant(4, 0.9)).unwrap();
        assert!(outcome.bins.contains(&BinId::new(6)), "bins {:?}", outcome.bins);
        assert_eq!(outcome.opened, 1);
    }

    #[test]
    fn removal_rekeys_slack_index() {
        let mut rfi = Rfi::new(2, 0.85).unwrap();
        for (id, load) in lcg_loads(12, 150).into_iter().enumerate() {
            rfi.place(tenant(id as u64, load)).unwrap();
        }
        for id in (0..150).step_by(3) {
            rfi.remove(TenantId::new(id)).unwrap();
        }
        // Every slack key in the index must match a fresh recomputation.
        for bin in rfi.placement().bins() {
            assert!(
                rfi.index.contains(bin.id(), rfi.slack(bin.id())),
                "stale slack key for {}",
                bin.id()
            );
        }
        assert!(cubefit_core::oracle::audit(rfi.placement()).is_ok());
        assert!(rfi.placement().is_robust());
        // Freed capacity is actually reusable.
        let before = rfi.placement().created_bins();
        rfi.place(tenant(1000, 0.2)).unwrap();
        assert_eq!(rfi.placement().created_bins(), before);
    }

    #[test]
    fn gamma2_recovery_restores_robustness() {
        let mut rfi = Rfi::new(2, 0.85).unwrap();
        for (id, load) in lcg_loads(13, 200).into_iter().enumerate() {
            rfi.place(tenant(id as u64, load)).unwrap();
        }
        let mut bins: Vec<(f64, BinId)> =
            rfi.placement().bins().map(|b| (b.level(), b.id())).collect();
        bins.sort_by(|a, b| b.0.total_cmp(&a.0));
        let failed = vec![bins[0].1];
        let report = rfi.recover(&failed).unwrap();
        assert!(report.replicas_migrated > 0);
        assert_eq!(rfi.placement().level(failed[0]), 0.0);
        assert!(rfi.placement().is_robust());
        assert!(cubefit_core::oracle::audit(rfi.placement()).is_ok());
        for bin in rfi.placement().bins() {
            assert!(rfi.index.contains(bin.id(), rfi.slack(bin.id())));
        }
    }

    #[test]
    fn replicas_land_on_distinct_servers() {
        let mut rfi = Rfi::new(3, 0.85).unwrap();
        let outcome = rfi.place(tenant(0, 0.9)).unwrap();
        assert_eq!(outcome.bins.len(), 3);
        let mut bins = outcome.bins.clone();
        bins.dedup();
        assert_eq!(bins.len(), 3);
    }
}
