//! Next Fit adapted to replicated tenants.

use crate::common::{assignment_feasible, BaselineTelemetry, ReserveMode};
use cubefit_core::algorithm::{LoadUpdateOutcome, RemovalOutcome};
use cubefit_core::recovery::{self, RecoveryReport};
use cubefit_core::{
    BinId, Consolidator, Error, Placement, PlacementOutcome, PlacementStage, Result, Tenant,
    TenantId,
};
use cubefit_telemetry::{Recorder, TraceEvent};

/// **Next Fit**: keeps only the current window of `γ` servers open; a
/// tenant that does not fit in the window closes it and opens a fresh one.
///
/// The classic bounded-space baseline — `O(1)` state and the weakest
/// packing quality, bounding the other algorithms from below.
///
/// ```
/// use cubefit_baselines::NextFit;
/// use cubefit_core::{Consolidator, Load, Tenant};
///
/// # fn main() -> Result<(), cubefit_core::Error> {
/// let mut packer = NextFit::new(2)?;
/// for load in [0.3, 0.3, 0.8] {
///     packer.place(Tenant::with_load(Load::new(load)?))?;
/// }
/// // The 0.8 tenant did not fit in the first window.
/// assert_eq!(packer.placement().open_bins(), 4);
/// assert!(packer.placement().is_robust());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NextFit {
    placement: Placement,
    window: Option<Vec<BinId>>,
    reserve: ReserveMode,
    telemetry: BaselineTelemetry,
}

impl NextFit {
    /// Creates a Next Fit packer with the full `γ − 1`-failure reserve.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidReplication`] if `gamma < 2`.
    pub fn new(gamma: usize) -> Result<Self> {
        if gamma < 2 {
            return Err(Error::InvalidReplication { gamma });
        }
        Ok(NextFit {
            placement: Placement::new(gamma),
            window: None,
            reserve: ReserveMode::GammaMinusOne,
            telemetry: BaselineTelemetry::default(),
        })
    }
}

impl Consolidator for NextFit {
    fn place(&mut self, tenant: Tenant) -> Result<PlacementOutcome> {
        if self.placement.tenant_bins(tenant.id()).is_some() {
            return Err(Error::DuplicateTenant { tenant: tenant.id() });
        }
        let gamma = self.placement.gamma();
        let size = tenant.replica_size(gamma);
        self.telemetry.arrival(&tenant, self.placement.tenant_count());

        let fits_window = self.window.as_ref().is_some_and(|window| {
            assignment_feasible(&self.placement, window, size, self.reserve, None)
        });
        self.telemetry.recorder.emit(|| TraceEvent::FitAttempt {
            tenant: tenant.id().get(),
            replica: 0,
            scanned: self.window.as_ref().map_or(0, Vec::len),
            opened_new: !fits_window,
        });
        let mut opened = 0;
        if !fits_window {
            // Bounded space: the outgoing window is closed for good.
            if let Some(old) = self.window.take() {
                for bin in old {
                    let level = self.placement.level(bin);
                    self.telemetry
                        .recorder
                        .emit(|| TraceEvent::BinClosed { bin: bin.index(), level });
                }
            }
            let fresh: Vec<BinId> = (0..gamma).map(|_| self.placement.open_bin(None)).collect();
            opened = gamma;
            self.window = Some(fresh);
        }
        let bins = self.window.clone().expect("window exists after refresh");
        let pending = self.telemetry.pending_opens(&self.placement, &bins);
        self.placement.place_tenant(&tenant, &bins)?;
        self.telemetry.opened(&self.placement, &pending);
        self.telemetry.placed(&tenant, &bins, opened);
        Ok(PlacementOutcome { tenant: tenant.id(), bins, opened, stage: PlacementStage::Direct })
    }

    fn remove(&mut self, tenant: TenantId) -> Result<RemovalOutcome> {
        // Next Fit keeps no derived index; the window stays put (bounded
        // space never revisits closed bins, even freshly emptied ones).
        let (load, bins) = self.placement.remove_tenant(tenant)?;
        self.telemetry.recorder.emit(|| TraceEvent::TenantDeparted { tenant: tenant.get(), load });
        Ok(RemovalOutcome { tenant, load, bins })
    }

    fn update_load(&mut self, tenant: TenantId, new_load: f64) -> Result<LoadUpdateOutcome> {
        // No derived index to re-key; the window stays put.
        let (old_load, bins) = self.placement.update_load(tenant, new_load)?;
        Ok(LoadUpdateOutcome { tenant, old_load, new_load, bins })
    }

    fn remove_batch(&mut self, tenants: &[TenantId]) -> Result<Vec<RemovalOutcome>> {
        // No derived index and no reserve queries: the whole batch runs in
        // the backend's deferred-maintenance mode.
        self.placement.begin_batch();
        let result = tenants.iter().map(|tenant| self.remove(*tenant)).collect();
        self.placement.end_batch();
        result
    }

    fn update_load_batch(&mut self, updates: &[(TenantId, f64)]) -> Result<Vec<LoadUpdateOutcome>> {
        self.placement.begin_batch();
        let result =
            updates.iter().map(|(tenant, load)| self.update_load(*tenant, *load)).collect();
        self.placement.end_batch();
        result
    }

    fn set_shards(&mut self, shards: usize) {
        self.placement.set_shards(shards);
    }

    /// Re-homes orphans scanning all bins in opening order (recovery is an
    /// offline repair pass, exempt from the bounded-space window). A failed
    /// window server closes the window for good.
    fn recover(&mut self, failed: &[BinId]) -> Result<RecoveryReport> {
        if self.window.as_ref().is_some_and(|w| w.iter().any(|b| failed.contains(b))) {
            self.window = None;
        }
        let telemetry = &self.telemetry;
        recovery::recover_replicas(
            &mut self.placement,
            failed,
            |p, t, from, _| {
                recovery::pick_target(p, t, from, failed, (0..p.created_bins()).map(BinId::new))
            },
            |_, tenant, from, to, replica| {
                telemetry.recorder.emit(|| TraceEvent::ReplicaMigrated {
                    tenant: tenant.get(),
                    from: from.index(),
                    to: to.index(),
                    load: replica,
                });
            },
        )
    }

    /// Applies a planned migration. Draining a window server closes the
    /// window for good — bounded space never re-places into a bin a defrag
    /// pass is emptying.
    fn migrate(&mut self, tenant: TenantId, from: BinId, to: BinId) -> Result<()> {
        let gamma = self.placement.gamma() as f64;
        let load = self.placement.tenant_load(tenant).ok_or(Error::UnknownTenant { tenant })?;
        if self.window.as_ref().is_some_and(|w| w.contains(&from)) {
            self.window = None;
        }
        self.placement.move_replica(tenant, from, to)?;
        self.telemetry.recorder.emit(|| TraceEvent::ReplicaMigrated {
            tenant: tenant.get(),
            from: from.index(),
            to: to.index(),
            load: load / gamma,
        });
        Ok(())
    }

    fn clone_box(&self) -> Box<dyn Consolidator> {
        Box::new(self.clone())
    }

    fn placement(&self) -> &Placement {
        &self.placement
    }

    fn name(&self) -> &'static str {
        "nextfit"
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        self.telemetry = BaselineTelemetry::resolve(recorder, "nextfit", self.placement.gamma());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubefit_core::{Load, TenantId};

    fn tenant(id: u64, load: f64) -> Tenant {
        Tenant::new(TenantId::new(id), Load::new(load).unwrap())
    }

    #[test]
    fn window_reuse_until_full() {
        let mut nf = NextFit::new(2).unwrap();
        let a = nf.place(tenant(0, 0.4)).unwrap();
        let b = nf.place(tenant(1, 0.4)).unwrap();
        assert_eq!(a.bins, b.bins);
        assert_eq!(b.opened, 0);
        // 0.4-level bins sharing 0.4: another 0.4 tenant violates the
        // reserve, so a new window opens.
        let c = nf.place(tenant(2, 0.4)).unwrap();
        assert_ne!(a.bins, c.bins);
        assert_eq!(c.opened, 2);
        assert_eq!(nf.placement().open_bins(), 4);
    }

    #[test]
    fn old_windows_are_never_revisited() {
        let mut nf = NextFit::new(2).unwrap();
        nf.place(tenant(0, 0.9)).unwrap(); // window A nearly full
        nf.place(tenant(1, 0.9)).unwrap(); // window B
                                           // A tiny tenant would fit in window A, but Next Fit only looks at B.
        let c = nf.place(tenant(2, 0.05)).unwrap();
        let b_bins = nf.placement().tenant_bins(TenantId::new(1)).unwrap();
        assert_eq!(c.bins.as_slice(), b_bins);
    }

    #[test]
    fn stays_robust_gamma3() {
        let mut nf = NextFit::new(3).unwrap();
        let mut state = 42u64;
        for id in 0..300 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let load = (((state >> 11) as f64 / (1u64 << 53) as f64) * 0.999).max(1e-6);
            nf.place(tenant(id, load)).unwrap();
        }
        assert!(nf.placement().is_robust());
    }

    #[test]
    fn rejects_gamma_below_two() {
        assert!(NextFit::new(1).is_err());
    }

    #[test]
    fn removal_does_not_reopen_closed_windows() {
        let mut nf = NextFit::new(2).unwrap();
        let a = nf.place(tenant(0, 0.9)).unwrap(); // window A
        nf.place(tenant(1, 0.9)).unwrap(); // window B
        nf.remove(TenantId::new(0)).unwrap();
        // Window A is empty again, but bounded space ignores it.
        let c = nf.place(tenant(2, 0.9)).unwrap();
        assert!(c.bins.iter().all(|b| !a.bins.contains(b)));
        assert!(cubefit_core::oracle::audit(nf.placement()).is_ok());
    }

    #[test]
    fn failed_window_is_closed_and_recovery_restores_robustness() {
        let mut nf = NextFit::new(2).unwrap();
        nf.place(tenant(0, 0.6)).unwrap();
        let b = nf.place(tenant(1, 0.9)).unwrap(); // current window
        let failed = vec![b.bins[0]];
        let report = nf.recover(&failed).unwrap();
        assert_eq!(report.replicas_migrated, 1);
        assert_eq!(nf.placement().level(failed[0]), 0.0);
        assert!(nf.placement().is_robust());
        assert!(cubefit_core::oracle::audit(nf.placement()).is_ok());
        // The next arrival opens a fresh window rather than touching the
        // half-failed one.
        let c = nf.place(tenant(2, 0.1)).unwrap();
        assert_eq!(c.opened, 2);
        assert!(!c.bins.contains(&failed[0]));
    }
}
