//! Shared feasibility logic and telemetry plumbing for baseline packers.

use cubefit_core::smallbuf::SmallBuf;
use cubefit_core::{BinId, Placement, Tenant, EPSILON};
use cubefit_telemetry::{Counter, Recorder, TraceEvent};

/// Telemetry handles shared by the baseline packers, resolved once when a
/// recorder is attached so the hot path pays one branch when disabled.
#[derive(Debug, Clone, Default)]
pub(crate) struct BaselineTelemetry {
    pub recorder: Recorder,
    pub placements: Counter,
    pub bins_opened: Counter,
    pub fallbacks: Counter,
}

impl BaselineTelemetry {
    pub fn resolve(recorder: Recorder, algorithm: &str, gamma: usize) -> Self {
        let gamma = gamma.to_string();
        let labels = [("algorithm", algorithm), ("gamma", gamma.as_str())];
        BaselineTelemetry {
            placements: recorder.counter("placements", &labels),
            bins_opened: recorder.counter("bins_opened", &labels),
            fallbacks: recorder.counter("fallbacks", &labels),
            recorder,
        }
    }

    /// Emits the arrival event for `tenant` before placement begins.
    pub fn arrival(&self, tenant: &Tenant, seq: usize) {
        self.recorder.emit(|| TraceEvent::TenantArrived {
            tenant: tenant.id().get(),
            load: tenant.load().get(),
            seq: seq as u64,
        });
    }

    /// The subset of `bins` still empty — i.e. about to receive their
    /// first replica. Call before `place_tenant`, pass to [`Self::opened`]
    /// afterwards so the trace's `BinOpened` count matches the servers a
    /// run reports.
    pub fn pending_opens(&self, placement: &Placement, bins: &[BinId]) -> Vec<BinId> {
        if !self.recorder.is_enabled() {
            return Vec::new();
        }
        bins.iter().copied().filter(|&b| placement.bin(b).is_empty()).collect()
    }

    /// Emits one `BinOpened` per newly non-empty bin.
    pub fn opened(&self, placement: &Placement, pending: &[BinId]) {
        if pending.is_empty() {
            return;
        }
        self.bins_opened.add(pending.len() as u64);
        let total = placement.open_bins();
        let n = pending.len();
        for (i, &bin) in pending.iter().enumerate() {
            self.recorder.emit(|| TraceEvent::BinOpened {
                bin: bin.index(),
                class: None,
                total_open: total - (n - 1 - i),
            });
        }
    }

    /// Emits the terminal `Placed` event and bumps the placements counter.
    pub fn placed(&self, tenant: &Tenant, bins: &[BinId], opened: usize) {
        self.placements.inc();
        self.recorder.emit(|| TraceEvent::Placed {
            tenant: tenant.id().get(),
            bins: bins.iter().map(|b| b.index()).collect(),
            stage: "Direct".to_owned(),
            opened,
        });
    }
}

/// How much failover capacity a packer reserves on each server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReserveMode {
    /// Reserve for the worst *single* server failure (RFI's guarantee).
    SingleFailure,
    /// Reserve for the worst `γ − 1` simultaneous failures (the robustness
    /// level CubeFit provides).
    #[default]
    GammaMinusOne,
}

impl ReserveMode {
    /// Number of simultaneous failures the reserve covers for replication
    /// factor `gamma`.
    #[must_use]
    pub fn failures_covered(self, gamma: usize) -> usize {
        match self {
            ReserveMode::SingleFailure => 1,
            ReserveMode::GammaMinusOne => gamma - 1,
        }
    }
}

/// Whether placing a replica of `size` on `bin` — with the tenant's other
/// replicas tentatively on `siblings` — keeps the bin within capacity *and*
/// preserves the failover reserve required by `reserve`.
///
/// An optional `fill_cap` additionally bounds the bin's plain level (RFI's
/// interleaving parameter `μ`).
#[must_use]
pub fn feasible(
    placement: &Placement,
    bin: BinId,
    size: f64,
    siblings: &[BinId],
    reserve: ReserveMode,
    fill_cap: Option<f64>,
) -> bool {
    let level = placement.level(bin);
    if let Some(cap) = fill_cap {
        if level + size > cap + EPSILON {
            return false;
        }
    }
    if level + size > 1.0 + EPSILON {
        return false;
    }
    // Inline-first adjustments: this runs millions of times inside
    // Best-Fit scans and γ is tiny for the paper's configurations, but the
    // buffer spills to the heap for large γ — truncating siblings here
    // silently shrinks the failover reserve.
    let mut adjustments: SmallBuf<(BinId, f64), 8> = SmallBuf::new((BinId::new(0), 0.0));
    for &sibling in siblings {
        adjustments.push((sibling, size));
    }
    let failover = placement.top_shared_sum_with(
        bin,
        adjustments.as_slice(),
        reserve.failures_covered(placement.gamma()),
    );
    level + size + failover <= 1.0 + EPSILON
}

/// Whether appending `candidate` to the partial assignment `chosen` keeps
/// *every* bin feasible: the candidate itself (given the chosen siblings)
/// and each already-chosen bin (whose shared load the candidate raises).
///
/// Greedy packers must use this — not [`feasible`] alone — when selecting
/// replicas sequentially; otherwise a later replica can silently exhaust an
/// earlier server's failover reserve and force the whole assignment to be
/// abandoned.
#[must_use]
pub fn extends_assignment(
    placement: &Placement,
    chosen: &[BinId],
    candidate: BinId,
    size: f64,
    reserve: ReserveMode,
    fill_cap: Option<f64>,
) -> bool {
    if !feasible(placement, candidate, size, chosen, reserve, fill_cap) {
        return false;
    }
    chosen.iter().enumerate().all(|(i, &bin)| {
        let mut siblings: SmallBuf<BinId, 8> = SmallBuf::new(BinId::new(0));
        for (j, &b) in chosen.iter().enumerate() {
            if j != i {
                siblings.push(b);
            }
        }
        siblings.push(candidate);
        feasible(placement, bin, size, siblings.as_slice(), reserve, fill_cap)
    })
}

/// Re-validates a complete tentative assignment: every bin must remain
/// feasible given *all* of its siblings (later selections raise earlier
/// bins' shared loads).
#[must_use]
pub fn assignment_feasible(
    placement: &Placement,
    bins: &[BinId],
    size: f64,
    reserve: ReserveMode,
    fill_cap: Option<f64>,
) -> bool {
    bins.iter().enumerate().all(|(i, &bin)| {
        let siblings: Vec<BinId> =
            bins.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, &b)| b).collect();
        feasible(placement, bin, size, &siblings, reserve, fill_cap)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubefit_core::{Load, Tenant, TenantId};

    fn tenant(id: u64, load: f64) -> Tenant {
        Tenant::new(TenantId::new(id), Load::new(load).unwrap())
    }

    fn placement_with_pair() -> (Placement, Vec<BinId>) {
        let mut p = Placement::new(3);
        let bins: Vec<BinId> = (0..4).map(|_| p.open_bin(None)).collect();
        p.place_tenant(&tenant(0, 0.6), &[bins[0], bins[1], bins[2]]).unwrap();
        (p, bins)
    }

    #[test]
    fn reserve_mode_failure_counts() {
        assert_eq!(ReserveMode::SingleFailure.failures_covered(3), 1);
        assert_eq!(ReserveMode::GammaMinusOne.failures_covered(3), 2);
        assert_eq!(ReserveMode::GammaMinusOne.failures_covered(2), 1);
    }

    #[test]
    fn gamma_reserve_is_stricter_than_single() {
        let (p, bins) = placement_with_pair();
        // bin0: level 0.2, shares 0.2 with bins 1 and 2.
        // Single-failure reserve: 0.2 + s + 0.2 ≤ 1 → s ≤ 0.6.
        // γ−1 reserve: 0.2 + s + 0.4 ≤ 1 → s ≤ 0.4.
        assert!(feasible(&p, bins[0], 0.5, &[], ReserveMode::SingleFailure, None));
        assert!(!feasible(&p, bins[0], 0.5, &[], ReserveMode::GammaMinusOne, None));
        assert!(feasible(&p, bins[0], 0.4, &[], ReserveMode::GammaMinusOne, None));
    }

    #[test]
    fn fill_cap_limits_level() {
        let (p, bins) = placement_with_pair();
        assert!(feasible(&p, bins[0], 0.3, &[], ReserveMode::SingleFailure, Some(0.85)));
        assert!(!feasible(&p, bins[0], 0.7, &[], ReserveMode::SingleFailure, Some(0.85)));
    }

    #[test]
    fn siblings_raise_future_shared_load() {
        let (p, bins) = placement_with_pair();
        // Placing 0.25 on bin0 with a sibling on bin1 raises their mutual
        // share to 0.45: single-failure check 0.2+0.25+0.45 = 0.9 ≤ 1 ok,
        // but with another sibling on bin2 the γ−1 reserve is 0.9 → 1.35.
        assert!(feasible(&p, bins[0], 0.25, &[bins[1]], ReserveMode::SingleFailure, None));
        assert!(!feasible(
            &p,
            bins[0],
            0.25,
            &[bins[1], bins[2]],
            ReserveMode::GammaMinusOne,
            None
        ));
    }

    #[test]
    fn assignment_revalidation_catches_pairwise_overload() {
        let mut p = Placement::new(2);
        let a = p.open_bin(None);
        let b = p.open_bin(None);
        p.place_tenant(&tenant(0, 0.7), &[a, b]).unwrap();
        // Each bin alone admits a 0.3 replica, but the pair (with mutual
        // share 0.35+0.3) does not.
        assert!(feasible(&p, a, 0.3, &[], ReserveMode::GammaMinusOne, None));
        assert!(!assignment_feasible(&p, &[a, b], 0.3, ReserveMode::GammaMinusOne, None));
        assert!(assignment_feasible(&p, &[a, b], 0.1, ReserveMode::GammaMinusOne, None));
    }

    #[test]
    fn feasible_counts_all_siblings_at_large_gamma() {
        // Regression for the 8-entry adjustment truncation (mirror of the
        // m-fit fix): at γ = 12 a full sibling set has 11 entries. True
        // worst case for a 0.06 guest replica on every bin of a 0.4-load
        // tenant is 0.4 + 12·0.06 = 1.12 > 1; counting only 8 siblings
        // gave 0.94 and accepted it.
        let gamma = 12;
        let mut p = Placement::new(gamma);
        let bins: Vec<BinId> = (0..gamma).map(|_| p.open_bin(None)).collect();
        p.place_tenant(&tenant(0, 0.4), &bins).unwrap();
        assert!(!feasible(&p, bins[0], 0.06, &bins[1..], ReserveMode::GammaMinusOne, None));
        assert!(feasible(&p, bins[0], 0.05, &bins[1..], ReserveMode::GammaMinusOne, None));
        // extends_assignment forwards the full sibling set too.
        assert!(!extends_assignment(
            &p,
            &bins[1..],
            bins[0],
            0.06,
            ReserveMode::GammaMinusOne,
            None
        ));
        assert!(extends_assignment(
            &p,
            &bins[1..],
            bins[0],
            0.05,
            ReserveMode::GammaMinusOne,
            None
        ));
        // The whole-assignment re-validation agrees.
        assert!(!assignment_feasible(&p, &bins, 0.06, ReserveMode::GammaMinusOne, None));
        assert!(assignment_feasible(&p, &bins, 0.05, ReserveMode::GammaMinusOne, None));
    }

    #[test]
    fn empty_bin_always_feasible_within_cap() {
        let (p, bins) = placement_with_pair();
        assert!(feasible(&p, bins[3], 1.0 / 3.0, &[], ReserveMode::GammaMinusOne, None));
    }
}
