//! Random Fit: a randomized sanity-check baseline.

use crate::common::{assignment_feasible, feasible, ReserveMode};
use cubefit_core::algorithm::{LoadUpdateOutcome, RemovalOutcome};
use cubefit_core::recovery::{self, RecoveryReport};
use cubefit_core::{
    BinId, Consolidator, Error, Placement, PlacementOutcome, PlacementStage, Result, Tenant,
    TenantId,
};
use rand::{Rng, SeedableRng};

/// **Random Fit**: each replica is placed on a uniformly random feasible
/// server, probing up to a bounded number of candidates before opening a
/// fresh server.
///
/// Deliberately unsophisticated — it provides a floor that any reasonable
/// policy should beat, and doubles as a randomized robustness fuzzer (every
/// placement it produces still honours the `γ − 1`-failure reserve).
#[derive(Debug, Clone)]
pub struct RandomFit {
    placement: Placement,
    rng: rand_chacha::ChaCha8Rng,
    /// Random probes per replica before giving up and opening a server.
    probes: usize,
    fallbacks: usize,
}

impl RandomFit {
    /// Default number of random probes per replica.
    pub const DEFAULT_PROBES: usize = 32;

    /// Creates a Random Fit packer with the given RNG seed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidReplication`] if `gamma < 2`.
    pub fn new(gamma: usize, seed: u64) -> Result<Self> {
        if gamma < 2 {
            return Err(Error::InvalidReplication { gamma });
        }
        Ok(RandomFit {
            placement: Placement::new(gamma),
            rng: rand_chacha::ChaCha8Rng::seed_from_u64(seed),
            probes: Self::DEFAULT_PROBES,
            fallbacks: 0,
        })
    }

    /// Overrides the probe budget per replica.
    #[must_use]
    pub fn with_probes(mut self, probes: usize) -> Self {
        self.probes = probes.max(1);
        self
    }

    /// How many tenants fell back to all-fresh servers.
    #[must_use]
    pub fn fallbacks(&self) -> usize {
        self.fallbacks
    }
}

impl Consolidator for RandomFit {
    fn place(&mut self, tenant: Tenant) -> Result<PlacementOutcome> {
        if self.placement.tenant_bins(tenant.id()).is_some() {
            return Err(Error::DuplicateTenant { tenant: tenant.id() });
        }
        let gamma = self.placement.gamma();
        let size = tenant.replica_size(gamma);
        let reserve = ReserveMode::GammaMinusOne;

        let mut chosen: Vec<BinId> = Vec::with_capacity(gamma);
        let mut opened = 0;
        for _ in 0..gamma {
            let existing = self.placement.created_bins();
            let mut picked = None;
            if existing > 0 {
                for _ in 0..self.probes {
                    let bin = BinId::new(self.rng.gen_range(0..existing));
                    if !chosen.contains(&bin)
                        && feasible(&self.placement, bin, size, &chosen, reserve, None)
                    {
                        picked = Some(bin);
                        break;
                    }
                }
            }
            match picked {
                Some(bin) => chosen.push(bin),
                None => {
                    chosen.push(self.placement.open_bin(None));
                    opened += 1;
                }
            }
        }
        if !assignment_feasible(&self.placement, &chosen, size, reserve, None) {
            self.fallbacks += 1;
            chosen = (0..gamma).map(|_| self.placement.open_bin(None)).collect();
            opened = gamma;
        }
        self.placement.place_tenant(&tenant, &chosen)?;
        Ok(PlacementOutcome {
            tenant: tenant.id(),
            bins: chosen,
            opened,
            stage: PlacementStage::Direct,
        })
    }

    fn remove(&mut self, tenant: TenantId) -> Result<RemovalOutcome> {
        let (load, bins) = self.placement.remove_tenant(tenant)?;
        Ok(RemovalOutcome { tenant, load, bins })
    }

    fn update_load(&mut self, tenant: TenantId, new_load: f64) -> Result<LoadUpdateOutcome> {
        let (old_load, bins) = self.placement.update_load(tenant, new_load)?;
        Ok(LoadUpdateOutcome { tenant, old_load, new_load, bins })
    }

    fn remove_batch(&mut self, tenants: &[TenantId]) -> Result<Vec<RemovalOutcome>> {
        // No derived index and no reserve queries: the whole batch runs in
        // the backend's deferred-maintenance mode.
        self.placement.begin_batch();
        let result = tenants.iter().map(|tenant| self.remove(*tenant)).collect();
        self.placement.end_batch();
        result
    }

    fn update_load_batch(&mut self, updates: &[(TenantId, f64)]) -> Result<Vec<LoadUpdateOutcome>> {
        self.placement.begin_batch();
        let result =
            updates.iter().map(|(tenant, load)| self.update_load(*tenant, *load)).collect();
        self.placement.end_batch();
        result
    }

    fn set_shards(&mut self, shards: usize) {
        self.placement.set_shards(shards);
    }

    /// Re-homes orphans onto randomly probed feasible survivors (same probe
    /// budget as placement), opening a fresh server when every probe misses.
    fn recover(&mut self, failed: &[BinId]) -> Result<RecoveryReport> {
        let RandomFit { placement, rng, probes, .. } = self;
        recovery::recover_replicas(
            placement,
            failed,
            |p, t, from, _| {
                let existing = p.created_bins();
                (0..*probes)
                    .map(|_| BinId::new(rng.gen_range(0..existing)))
                    .find(|&bin| !failed.contains(&bin) && recovery::move_feasible(p, t, from, bin))
            },
            |_, _, _, _, _| {},
        )
    }

    fn migrate(&mut self, tenant: TenantId, from: BinId, to: BinId) -> Result<()> {
        // No derived index to re-key; the placement substrate does it all.
        self.placement.move_replica(tenant, from, to)
    }

    fn clone_box(&self) -> Box<dyn Consolidator> {
        Box::new(self.clone())
    }

    fn placement(&self) -> &Placement {
        &self.placement
    }

    fn name(&self) -> &'static str {
        "randomfit"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubefit_core::{Load, TenantId};

    fn tenant(id: u64, load: f64) -> Tenant {
        Tenant::new(TenantId::new(id), Load::new(load).unwrap())
    }

    #[test]
    fn stays_robust_across_seeds() {
        for seed in 0..3 {
            let mut rf = RandomFit::new(2, seed).unwrap();
            let mut state = seed + 100;
            for id in 0..300 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let load = (((state >> 11) as f64 / (1u64 << 53) as f64) * 0.999).max(1e-6);
                rf.place(tenant(id, load)).unwrap();
            }
            assert!(rf.placement().is_robust(), "seed {seed}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut rf = RandomFit::new(2, seed).unwrap();
            for id in 0..100 {
                rf.place(tenant(id, 0.1 + (id % 7) as f64 * 0.1)).unwrap();
            }
            rf.placement().open_bins()
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn reuses_bins_for_small_tenants() {
        let mut rf = RandomFit::new(2, 7).unwrap();
        for id in 0..50 {
            rf.place(tenant(id, 0.02)).unwrap();
        }
        // 50 tiny tenants (total load 1.0) should not need 100 servers.
        assert!(rf.placement().open_bins() < 40);
    }

    #[test]
    fn probe_budget_is_configurable() {
        let rf = RandomFit::new(2, 0).unwrap().with_probes(0);
        assert_eq!(rf.probes, 1);
    }

    #[test]
    fn rejects_gamma_below_two() {
        assert!(RandomFit::new(1, 0).is_err());
    }

    #[test]
    fn churn_stays_robust_and_audited() {
        let mut rf = RandomFit::new(3, 11).unwrap();
        let mut state = 5u64;
        for id in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let load = (((state >> 11) as f64 / (1u64 << 53) as f64) * 0.999).max(1e-6);
            rf.place(tenant(id, load)).unwrap();
            if id % 4 == 3 {
                rf.remove(TenantId::new(id - 2)).unwrap();
            }
        }
        assert!(rf.placement().is_robust());
        assert!(cubefit_core::oracle::audit(rf.placement()).is_ok());
        let failed = vec![BinId::new(0), BinId::new(1)];
        rf.recover(&failed).unwrap();
        for &bin in &failed {
            assert_eq!(rf.placement().level(bin), 0.0);
        }
        assert!(rf.placement().is_robust());
        assert!(cubefit_core::oracle::audit(rf.placement()).is_ok());
    }

    #[test]
    fn clone_box_forks_rng_state() {
        let mut rf = RandomFit::new(2, 3).unwrap();
        for id in 0..20 {
            rf.place(tenant(id, 0.3)).unwrap();
        }
        let mut fork = rf.clone_box();
        // Identical continued streams: same RNG state ⇒ same decisions.
        for id in 20..40 {
            let a = rf.place(tenant(id, 0.25)).unwrap();
            let b = fork.place(tenant(id, 0.25)).unwrap();
            assert_eq!(a.bins, b.bins);
        }
    }
}
