//! Offline Best-Fit-Decreasing: a near-optimal comparator.
//!
//! Online algorithms are judged against the offline optimum, which is
//! NP-hard to compute. Best Fit Decreasing — sort tenants by load
//! descending, then run the failover-aware Best Fit — is the classic
//! offline heuristic; its server count upper-bounds OPT far more tightly
//! than the volume bound lower-bounds it, which makes the pair useful for
//! sandwiching empirical competitive ratios (see `cubefit-analysis`).

use crate::common::ReserveMode;
use crate::greedy::BestFit;
use cubefit_core::{Consolidator, Placement, Result, Tenant};

/// Packs `tenants` offline with Best Fit Decreasing under the full
/// `γ − 1`-failure reserve, returning the final placement.
///
/// # Errors
///
/// Propagates configuration and placement errors.
pub fn best_fit_decreasing(tenants: &[Tenant], gamma: usize) -> Result<Placement> {
    best_fit_decreasing_with_reserve(tenants, gamma, ReserveMode::GammaMinusOne)
}

/// [`best_fit_decreasing`] with an explicit [`ReserveMode`].
///
/// # Errors
///
/// Propagates configuration and placement errors.
pub fn best_fit_decreasing_with_reserve(
    tenants: &[Tenant],
    gamma: usize,
    reserve: ReserveMode,
) -> Result<Placement> {
    let mut sorted: Vec<Tenant> = tenants.to_vec();
    sorted.sort_by(|a, b| b.load().get().total_cmp(&a.load().get()));
    let mut packer = BestFit::with_reserve(gamma, reserve)?;
    for tenant in sorted {
        packer.place(tenant)?;
    }
    Ok(packer.placement().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubefit_core::{Load, TenantId};

    fn tenants(loads: &[f64]) -> Vec<Tenant> {
        loads
            .iter()
            .enumerate()
            .map(|(i, &l)| Tenant::new(TenantId::new(i as u64), Load::new(l).unwrap()))
            .collect()
    }

    fn lcg_loads(seed: u64, n: usize, scale: f64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (((state >> 11) as f64 / (1u64 << 53) as f64) * scale).max(1e-6)
            })
            .collect()
    }

    #[test]
    fn offline_result_is_robust() {
        let ts = tenants(&lcg_loads(1, 300, 0.999));
        let placement = best_fit_decreasing(&ts, 2).unwrap();
        assert!(placement.is_robust());
        assert_eq!(placement.tenant_count(), 300);
    }

    #[test]
    fn offline_beats_or_matches_online_best_fit() {
        // Sorting can only help Best Fit: BFD ≤ BF on servers used (not a
        // theorem for every instance, but holds on generic random input —
        // any regression here signals a packing bug).
        let ts = tenants(&lcg_loads(2, 400, 0.6));
        let offline = best_fit_decreasing(&ts, 2).unwrap().open_bins();
        let mut online = BestFit::new(2).unwrap();
        for t in &ts {
            online.place(*t).unwrap();
        }
        assert!(
            offline <= online.placement().open_bins(),
            "offline {} vs online {}",
            offline,
            online.placement().open_bins()
        );
    }

    #[test]
    fn offline_is_order_invariant() {
        let ts = tenants(&lcg_loads(3, 100, 0.9));
        let mut reversed = ts.clone();
        reversed.reverse();
        let a = best_fit_decreasing(&ts, 2).unwrap().open_bins();
        let b = best_fit_decreasing(&reversed, 2).unwrap().open_bins();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_uses_no_servers() {
        let placement = best_fit_decreasing(&[], 3).unwrap();
        assert_eq!(placement.open_bins(), 0);
    }
}
