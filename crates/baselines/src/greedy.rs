//! Failover-aware greedy packers: Best Fit, First Fit, Worst Fit.
//!
//! Classic online bin-packing heuristics lifted to replicated tenants: each
//! replica is placed greedily on a *feasible* server — one that stays within
//! capacity and keeps the failover reserve demanded by the configured
//! [`ReserveMode`] — and a fresh server is opened when none qualifies.
//! After selecting all `γ` servers the assignment is re-validated as a
//! whole (later replicas raise earlier servers' shared loads); if the
//! combination fails, the tenant falls back to `γ` fresh servers, which is
//! always feasible.

use crate::common::{assignment_feasible, extends_assignment, BaselineTelemetry, ReserveMode};
use cubefit_core::algorithm::{LoadUpdateOutcome, RemovalOutcome};
use cubefit_core::level_index::LevelIndex;
use cubefit_core::recovery::{self, RecoveryReport};
use cubefit_core::{
    BinId, Consolidator, Error, Placement, PlacementOutcome, PlacementStage, Result, Tenant,
    TenantId,
};
use cubefit_telemetry::{Recorder, TraceEvent};
use std::cell::Cell;

/// Which feasible server a greedy packer prefers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Preference {
    /// Fullest feasible server (minimum leftover) — Best Fit.
    Fullest,
    /// Lowest-numbered feasible server — First Fit.
    Oldest,
    /// Emptiest feasible server — Worst Fit.
    Emptiest,
}

/// Shared machinery behind the greedy packers.
#[derive(Debug, Clone)]
struct Greedy {
    placement: Placement,
    index: LevelIndex,
    /// Bins in opening order (for First Fit scans).
    order: Vec<BinId>,
    reserve: ReserveMode,
    preference: Preference,
    fallbacks: usize,
    scan_limit: usize,
    telemetry: BaselineTelemetry,
}

impl Greedy {
    fn new(gamma: usize, reserve: ReserveMode, preference: Preference) -> Result<Self> {
        if gamma < 2 {
            return Err(Error::InvalidReplication { gamma });
        }
        Ok(Greedy {
            placement: Placement::new(gamma),
            index: LevelIndex::new(),
            order: Vec::new(),
            reserve,
            preference,
            fallbacks: 0,
            scan_limit: usize::MAX,
            telemetry: BaselineTelemetry::default(),
        })
    }

    /// Returns the preferred feasible server plus how many candidates the
    /// scan inspected (for `FitAttempt` trace events).
    fn pick(&self, size: f64, chosen: &[BinId]) -> (Option<BinId>, usize) {
        let scanned = Cell::new(0_usize);
        let ok = |bin: &BinId| {
            scanned.set(scanned.get() + 1);
            !chosen.contains(bin)
                && extends_assignment(&self.placement, chosen, *bin, size, self.reserve, None)
        };
        // Scans are budgeted: beyond `scan_limit` candidates the packer
        // opens a fresh server instead of searching exhaustively, keeping
        // placement O(1) amortized at data-center scale.
        let hit = match self.preference {
            Preference::Fullest => {
                self.index.iter_desc_at_most(1.0 - size).take(self.scan_limit).find(|b| ok(b))
            }
            Preference::Emptiest => self.index.iter_asc().take(self.scan_limit).find(|b| ok(b)),
            Preference::Oldest => self.order.iter().copied().take(self.scan_limit).find(|b| ok(b)),
        };
        (hit, scanned.get())
    }

    fn open(&mut self) -> BinId {
        let bin = self.placement.open_bin(None);
        self.index.insert(bin, 0.0);
        self.order.push(bin);
        bin
    }

    fn place(&mut self, tenant: Tenant) -> Result<PlacementOutcome> {
        if self.placement.tenant_bins(tenant.id()).is_some() {
            return Err(Error::DuplicateTenant { tenant: tenant.id() });
        }
        let gamma = self.placement.gamma();
        let size = tenant.replica_size(gamma);
        self.telemetry.arrival(&tenant, self.placement.tenant_count());

        let mut chosen: Vec<BinId> = Vec::with_capacity(gamma);
        let mut opened = 0;
        for replica in 0..gamma {
            let (pick, scanned) = self.pick(size, &chosen);
            self.telemetry.recorder.emit(|| TraceEvent::FitAttempt {
                tenant: tenant.id().get(),
                replica,
                scanned,
                opened_new: pick.is_none(),
            });
            match pick {
                Some(bin) => chosen.push(bin),
                None => {
                    chosen.push(self.open());
                    opened += 1;
                }
            }
        }
        if !assignment_feasible(&self.placement, &chosen, size, self.reserve, None) {
            // Later replicas invalidated an earlier server's reserve; the
            // always-feasible fallback uses γ fresh servers.
            self.fallbacks += 1;
            self.telemetry.fallbacks.inc();
            chosen = (0..gamma).map(|_| self.open()).collect();
            opened = gamma;
        }
        let pending = self.telemetry.pending_opens(&self.placement, &chosen);
        self.commit(&tenant, &chosen)?;
        self.telemetry.opened(&self.placement, &pending);
        self.telemetry.placed(&tenant, &chosen, opened);
        Ok(PlacementOutcome {
            tenant: tenant.id(),
            bins: chosen,
            opened,
            stage: PlacementStage::Direct,
        })
    }

    fn commit(&mut self, tenant: &Tenant, bins: &[BinId]) -> Result<()> {
        let old: Vec<(BinId, f64)> = bins.iter().map(|&b| (b, self.placement.level(b))).collect();
        self.placement.place_tenant(tenant, bins)?;
        for (bin, old_level) in old {
            self.index.update(bin, old_level, self.placement.level(bin));
        }
        Ok(())
    }

    fn remove(&mut self, tenant: TenantId) -> Result<RemovalOutcome> {
        let old: Vec<(BinId, f64)> = self
            .placement
            .tenant_bins(tenant)
            .ok_or(Error::UnknownTenant { tenant })?
            .iter()
            .map(|&b| (b, self.placement.level(b)))
            .collect();
        let (load, bins) = self.placement.remove_tenant(tenant)?;
        // Emptied bins stay in the level index (at level 0) and in the
        // opening order, so later arrivals reuse them before opening new
        // servers.
        for (bin, old_level) in old {
            self.index.update(bin, old_level, self.placement.level(bin));
        }
        self.telemetry.recorder.emit(|| TraceEvent::TenantDeparted { tenant: tenant.get(), load });
        Ok(RemovalOutcome { tenant, load, bins })
    }

    fn update_load(&mut self, tenant: TenantId, new_load: f64) -> Result<LoadUpdateOutcome> {
        // Only the tenant's own bins change level, so only their index keys
        // move — the same footprint as a removal.
        let old: Vec<(BinId, f64)> = self
            .placement
            .tenant_bins(tenant)
            .ok_or(Error::UnknownTenant { tenant })?
            .iter()
            .map(|&b| (b, self.placement.level(b)))
            .collect();
        let (old_load, bins) = self.placement.update_load(tenant, new_load)?;
        for (bin, old_level) in old {
            self.index.update(bin, old_level, self.placement.level(bin));
        }
        Ok(LoadUpdateOutcome { tenant, old_load, new_load, bins })
    }

    /// Batch fast paths. Greedy removals and load updates never query the
    /// failover reserve (their index footprint is the level-keyed
    /// [`LevelIndex`] plus authoritative placement levels), so whole
    /// batches run in the backend's deferred-maintenance mode and pay one
    /// failover-cache rebuild per touched bin instead of one per op.
    fn remove_batch(&mut self, tenants: &[TenantId]) -> Result<Vec<RemovalOutcome>> {
        self.placement.begin_batch();
        let result = tenants.iter().map(|tenant| self.remove(*tenant)).collect();
        self.placement.end_batch();
        result
    }

    fn update_load_batch(&mut self, updates: &[(TenantId, f64)]) -> Result<Vec<LoadUpdateOutcome>> {
        self.placement.begin_batch();
        let result =
            updates.iter().map(|(tenant, load)| self.update_load(*tenant, *load)).collect();
        self.placement.end_batch();
        result
    }

    /// Placement decisions query the reserve per replica, so batched
    /// placement keeps the sequential decision loop and only amortizes the
    /// tenant-table growth.
    fn place_batch(&mut self, tenants: Vec<Tenant>) -> Result<Vec<PlacementOutcome>> {
        self.placement.reserve_tenants(tenants.len());
        tenants.into_iter().map(|tenant| self.place(tenant)).collect()
    }

    /// Re-homes orphaned replicas using the packer's own preference order
    /// (fullest / oldest / emptiest feasible survivor), under the full
    /// `γ − 1` reserve so recovery never weakens robustness regardless of
    /// the configured [`ReserveMode`].
    fn recover(&mut self, failed: &[BinId]) -> Result<RecoveryReport> {
        let orphan_list = recovery::orphans(&self.placement, failed);
        let mut report = RecoveryReport::default();
        let mut affected: Vec<TenantId> = Vec::new();
        let gamma = self.placement.gamma() as f64;
        for (tenant, from) in orphan_list {
            if !affected.contains(&tenant) {
                affected.push(tenant);
            }
            let load = self.placement.tenant_load(tenant).expect("orphaned tenants are placed");
            let replica = load / gamma;
            let candidates: Vec<BinId> = match self.preference {
                Preference::Fullest => {
                    self.index.iter_desc_at_most(1.0 - replica).take(self.scan_limit).collect()
                }
                Preference::Emptiest => self.index.iter_asc().take(self.scan_limit).collect(),
                Preference::Oldest => self.order.iter().copied().take(self.scan_limit).collect(),
            };
            let target = recovery::pick_target(&self.placement, tenant, from, failed, candidates);
            let to = match target {
                Some(bin) => bin,
                None => {
                    report.bins_opened += 1;
                    self.open()
                }
            };
            let old_from = self.placement.level(from);
            let old_to = self.placement.level(to);
            self.placement.move_replica(tenant, from, to)?;
            self.index.update(from, old_from, self.placement.level(from));
            self.index.update(to, old_to, self.placement.level(to));
            report.replicas_migrated += 1;
            report.moved_load += replica;
            self.telemetry.recorder.emit(|| TraceEvent::ReplicaMigrated {
                tenant: tenant.get(),
                from: from.index(),
                to: to.index(),
                load: replica,
            });
        }
        report.tenants_affected = affected.len();
        Ok(report)
    }

    /// Applies a planned migration. Only the level-keyed index entries of
    /// the two endpoints move — shared loads are not part of the key.
    fn migrate(&mut self, tenant: TenantId, from: BinId, to: BinId) -> Result<()> {
        let gamma = self.placement.gamma() as f64;
        let load = self.placement.tenant_load(tenant).ok_or(Error::UnknownTenant { tenant })?;
        let old_from = self.placement.level(from);
        let old_to = self.placement.level(to);
        self.placement.move_replica(tenant, from, to)?;
        self.index.update(from, old_from, self.placement.level(from));
        self.index.update(to, old_to, self.placement.level(to));
        self.telemetry.recorder.emit(|| TraceEvent::ReplicaMigrated {
            tenant: tenant.get(),
            from: from.index(),
            to: to.index(),
            load: load / gamma,
        });
        Ok(())
    }
}

macro_rules! greedy_packer {
    ($(#[$doc:meta])* $name:ident, $preference:expr, $label:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            inner: Greedy,
        }

        impl $name {
            /// Creates the packer with the full `γ − 1`-failure reserve.
            ///
            /// # Errors
            ///
            /// Returns [`Error::InvalidReplication`] if `gamma < 2`.
            pub fn new(gamma: usize) -> Result<Self> {
                Self::with_reserve(gamma, ReserveMode::GammaMinusOne)
            }

            /// Creates the packer with an explicit [`ReserveMode`].
            ///
            /// # Errors
            ///
            /// Returns [`Error::InvalidReplication`] if `gamma < 2`.
            pub fn with_reserve(gamma: usize, reserve: ReserveMode) -> Result<Self> {
                Ok($name { inner: Greedy::new(gamma, reserve, $preference)? })
            }

            /// How many tenants required the all-fresh-servers fallback.
            #[must_use]
            pub fn fallbacks(&self) -> usize {
                self.inner.fallbacks
            }

            /// Bounds how many candidate servers each replica scan
            /// inspects (default: exhaustive).
            #[must_use]
            pub fn with_scan_limit(mut self, limit: usize) -> Self {
                self.inner.scan_limit = limit.max(1);
                self
            }
        }

        impl Consolidator for $name {
            fn place(&mut self, tenant: Tenant) -> Result<PlacementOutcome> {
                self.inner.place(tenant)
            }

            fn remove(&mut self, tenant: TenantId) -> Result<RemovalOutcome> {
                self.inner.remove(tenant)
            }

            fn update_load(&mut self, tenant: TenantId, new_load: f64) -> Result<LoadUpdateOutcome> {
                self.inner.update_load(tenant, new_load)
            }

            fn place_batch(&mut self, tenants: Vec<Tenant>) -> Result<Vec<PlacementOutcome>> {
                self.inner.place_batch(tenants)
            }

            fn remove_batch(&mut self, tenants: &[TenantId]) -> Result<Vec<RemovalOutcome>> {
                self.inner.remove_batch(tenants)
            }

            fn update_load_batch(
                &mut self,
                updates: &[(TenantId, f64)],
            ) -> Result<Vec<LoadUpdateOutcome>> {
                self.inner.update_load_batch(updates)
            }

            fn set_shards(&mut self, shards: usize) {
                self.inner.placement.set_shards(shards);
            }

            fn recover(&mut self, failed: &[BinId]) -> Result<RecoveryReport> {
                self.inner.recover(failed)
            }

            fn migrate(&mut self, tenant: TenantId, from: BinId, to: BinId) -> Result<()> {
                self.inner.migrate(tenant, from, to)
            }

            fn clone_box(&self) -> Box<dyn Consolidator> {
                Box::new(self.clone())
            }

            fn placement(&self) -> &Placement {
                &self.inner.placement
            }

            fn name(&self) -> &'static str {
                $label
            }

            fn set_recorder(&mut self, recorder: Recorder) {
                self.inner.telemetry = crate::common::BaselineTelemetry::resolve(
                    recorder,
                    $label,
                    self.inner.placement.gamma(),
                );
            }
        }
    };
}

greedy_packer!(
    /// Failover-aware **Best Fit**: each replica goes to the fullest
    /// feasible server.
    ///
    /// ```
    /// use cubefit_baselines::BestFit;
    /// use cubefit_core::{Consolidator, Load, Tenant};
    ///
    /// # fn main() -> Result<(), cubefit_core::Error> {
    /// let mut packer = BestFit::new(2)?;
    /// for load in [0.4, 0.4, 0.2] {
    ///     packer.place(Tenant::with_load(Load::new(load)?))?;
    /// }
    /// assert!(packer.placement().is_robust());
    /// # Ok(())
    /// # }
    /// ```
    BestFit,
    Preference::Fullest,
    "bestfit"
);

greedy_packer!(
    /// Failover-aware **First Fit**: each replica goes to the oldest
    /// feasible server.
    FirstFit,
    Preference::Oldest,
    "firstfit"
);

greedy_packer!(
    /// Failover-aware **Worst Fit**: each replica goes to the emptiest
    /// feasible server (spreads load; a utilization-unfriendly strawman).
    WorstFit,
    Preference::Emptiest,
    "worstfit"
);

#[cfg(test)]
mod tests {
    use super::*;
    use cubefit_core::validity;
    use cubefit_core::{Load, TenantId};

    fn tenant(id: u64, load: f64) -> Tenant {
        Tenant::new(TenantId::new(id), Load::new(load).unwrap())
    }

    fn lcg_loads(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (((state >> 11) as f64 / (1u64 << 53) as f64) * 0.999).max(1e-6)
            })
            .collect()
    }

    #[test]
    fn best_fit_reuses_fullest_bin() {
        let mut bf = BestFit::new(2).unwrap();
        bf.place(tenant(0, 0.5)).unwrap(); // two bins at 0.25
        bf.place(tenant(1, 0.3)).unwrap(); // fits on the same two bins
        assert_eq!(bf.placement().open_bins(), 2);
        let outcome = bf.place(tenant(2, 0.1)).unwrap();
        assert_eq!(outcome.opened, 0);
        assert_eq!(bf.placement().open_bins(), 2);
    }

    #[test]
    fn all_greedy_packers_stay_robust_gamma2() {
        for loads in [lcg_loads(1, 400), lcg_loads(2, 400)] {
            let mut packers: Vec<Box<dyn Consolidator>> = vec![
                Box::new(BestFit::new(2).unwrap()),
                Box::new(FirstFit::new(2).unwrap()),
                Box::new(WorstFit::new(2).unwrap()),
            ];
            for packer in &mut packers {
                for (id, &load) in loads.iter().enumerate() {
                    packer.place(tenant(id as u64, load)).unwrap();
                }
                let report = validity::check(packer.placement());
                assert!(
                    report.is_robust(),
                    "{} violated: margin {}",
                    packer.name(),
                    report.worst_margin
                );
            }
        }
    }

    #[test]
    fn all_greedy_packers_stay_robust_gamma3() {
        let loads = lcg_loads(3, 300);
        let mut packers: Vec<Box<dyn Consolidator>> = vec![
            Box::new(BestFit::new(3).unwrap()),
            Box::new(FirstFit::new(3).unwrap()),
            Box::new(WorstFit::new(3).unwrap()),
        ];
        for packer in &mut packers {
            for (id, &load) in loads.iter().enumerate() {
                packer.place(tenant(id as u64, load)).unwrap();
            }
            assert!(packer.placement().is_robust(), "{}", packer.name());
        }
    }

    #[test]
    fn single_failure_reserve_admits_more_but_risks_two_failures() {
        let loads = lcg_loads(9, 300);
        let mut strict = BestFit::new(3).unwrap();
        let mut lax = BestFit::with_reserve(3, ReserveMode::SingleFailure).unwrap();
        for (id, &load) in loads.iter().enumerate() {
            strict.place(tenant(id as u64, load)).unwrap();
            lax.place(tenant(id as u64, load)).unwrap();
        }
        assert!(lax.placement().open_bins() <= strict.placement().open_bins());
        // The strict packer survives the robustness check; the lax one
        // (reserving for one failure with γ=3) generally does not.
        assert!(strict.placement().is_robust());
        assert!(!lax.placement().is_robust());
    }

    #[test]
    fn worst_fit_spreads_wider_than_best_fit() {
        let loads = lcg_loads(4, 200);
        let mut best = BestFit::new(2).unwrap();
        let mut worst = WorstFit::new(2).unwrap();
        for (id, &load) in loads.iter().enumerate() {
            best.place(tenant(id as u64, load)).unwrap();
            worst.place(tenant(id as u64, load)).unwrap();
        }
        assert!(worst.placement().open_bins() >= best.placement().open_bins());
    }

    #[test]
    fn duplicate_tenant_rejected() {
        let mut bf = BestFit::new(2).unwrap();
        bf.place(tenant(0, 0.2)).unwrap();
        assert!(matches!(bf.place(tenant(0, 0.2)), Err(Error::DuplicateTenant { .. })));
    }

    #[test]
    fn rejects_gamma_below_two() {
        assert!(BestFit::new(1).is_err());
        assert!(FirstFit::new(0).is_err());
    }

    #[test]
    fn recorder_traces_fit_attempts_and_bin_opens() {
        use cubefit_telemetry::{Recorder, TraceEvent, VecSink};
        use std::sync::Arc;

        let sink = Arc::new(VecSink::new());
        let recorder = Recorder::with_sink(Arc::clone(&sink));
        let mut bf = BestFit::new(2).unwrap();
        bf.set_recorder(recorder.clone());
        for (id, load) in lcg_loads(11, 60).into_iter().enumerate() {
            bf.place(tenant(id as u64, load)).unwrap();
        }
        let events = sink.events();
        let opened = events.iter().filter(|e| matches!(e, TraceEvent::BinOpened { .. })).count();
        assert_eq!(opened, bf.placement().open_bins());
        // γ fit attempts per tenant (the fallback path adds none).
        let attempts = events.iter().filter(|e| matches!(e, TraceEvent::FitAttempt { .. })).count();
        assert_eq!(attempts, 60 * 2);
        let snap = recorder.snapshot();
        assert_eq!(snap.counter("placements", &[("algorithm", "bestfit")]), 60);
        assert_eq!(
            snap.counter("bins_opened", &[("algorithm", "bestfit")]) as usize,
            bf.placement().open_bins()
        );
    }

    #[test]
    fn removal_frees_bins_for_reuse() {
        let mut bf = BestFit::new(2).unwrap();
        bf.place(tenant(0, 0.9)).unwrap();
        bf.place(tenant(1, 0.9)).unwrap();
        let before = bf.placement().created_bins();
        bf.remove(cubefit_core::TenantId::new(0)).unwrap();
        // The freed servers absorb the next tenant without opening more.
        let outcome = bf.place(tenant(2, 0.9)).unwrap();
        assert_eq!(outcome.opened, 0);
        assert_eq!(bf.placement().created_bins(), before);
        assert!(bf.placement().is_robust());
        assert!(cubefit_core::oracle::audit(bf.placement()).is_ok());
        assert!(matches!(
            bf.remove(cubefit_core::TenantId::new(0)),
            Err(Error::UnknownTenant { .. })
        ));
    }

    #[test]
    fn all_greedy_packers_recover_robustly() {
        let loads = lcg_loads(17, 120);
        let mut packers: Vec<Box<dyn Consolidator>> = vec![
            Box::new(BestFit::new(3).unwrap()),
            Box::new(FirstFit::new(3).unwrap()),
            Box::new(WorstFit::new(3).unwrap()),
        ];
        for packer in &mut packers {
            for (id, &load) in loads.iter().enumerate() {
                packer.place(tenant(id as u64, load)).unwrap();
            }
            // Fail the two fullest bins (worst case for γ=3).
            let mut bins: Vec<(f64, cubefit_core::BinId)> =
                packer.placement().bins().map(|b| (b.level(), b.id())).collect();
            bins.sort_by(|a, b| b.0.total_cmp(&a.0));
            let failed: Vec<cubefit_core::BinId> = bins.iter().take(2).map(|&(_, b)| b).collect();
            let report = packer.recover(&failed).unwrap();
            assert!(report.replicas_migrated > 0, "{}", packer.name());
            for &bin in &failed {
                assert_eq!(packer.placement().level(bin), 0.0, "{}", packer.name());
            }
            assert!(packer.placement().is_robust(), "{}", packer.name());
            assert!(cubefit_core::oracle::audit(packer.placement()).is_ok());
        }
    }

    #[test]
    fn clone_box_forks_greedy_state() {
        let mut ff = FirstFit::new(2).unwrap();
        ff.place(tenant(0, 0.4)).unwrap();
        let mut fork = ff.clone_box();
        fork.place(tenant(1, 0.4)).unwrap();
        assert_eq!(ff.placement().tenant_count(), 1);
        assert_eq!(fork.placement().tenant_count(), 2);
    }

    #[test]
    fn first_fit_prefers_oldest() {
        let mut ff = FirstFit::new(2).unwrap();
        let first = ff.place(tenant(0, 0.8)).unwrap();
        // 0.5-replicas cannot share the 0.4-level bins (reserve) → fresh,
        // fuller bins that Best Fit would prefer.
        ff.place(tenant(1, 1.0)).unwrap();
        let third = ff.place(tenant(2, 0.2)).unwrap();
        // First Fit returns to tenant 0's (oldest) bins regardless.
        assert_eq!(third.bins, first.bins);
    }
}
