//! Long-horizon soak harness: 1M+ op churn + drift + failure + defrag
//! runs with *sampled* oracle audits and shrinking failure repros.
//!
//! The churn harness ([`crate::churn`]) audits every mutation, which is
//! perfect for a 2 000-op differential fuzz but quadratic-cost-prohibitive
//! at a million ops. The soak harness instead:
//!
//! - uses a steady-state op mix (departures ≈ arrivals) so the tenant
//!   population random-walks instead of growing linearly, keeping the
//!   oracle's O(bins²) rebuild affordable when it *does* run;
//! - audits only every [`SoakConfig::audit_every`]-th op, plus on every
//!   invariant *edge* (the monitor's robust/at-risk/violated state
//!   changing between checkpoints), plus one full audit of the final
//!   state;
//! - emits compact [`TraceEvent::SoakCheckpoint`] summaries through the
//!   streaming recorder so `cubefit analyze` can reconstruct timelines
//!   without replaying the run;
//! - on the first audit failure or invariant violation, stops and hands
//!   back a [`SoakScenario`] — seed, full config, suspect op window —
//!   that [`replay`] reproduces deterministically and [`shrink`] bisects
//!   down to the single first failing op, the pinned regression.
//!
//! Determinism contract: a soak run is a pure function of its
//! [`SoakConfig`]. The replay/shrink paths drive the *same* inner loop
//! with the same RNG draw order — extra checking never consumes
//! randomness — so a scenario file reproduces byte-for-byte.

use crate::churn::{defrag_epoch, fail_and_recover, DriftConfig, RentState};
use crate::spec::{AlgorithmSpec, DistributionSpec};
use cubefit_core::monitor::{classify_with, DEFAULT_AT_RISK_SLACK};
use cubefit_core::{oracle, BinId, Consolidator, Result, Tenant, TenantId};
use cubefit_defrag::{DefragObjective, MigrationBudget};
use cubefit_durability::{Journal, JournaledConsolidator};
use cubefit_economics::{CostReport, RentConfig};
use cubefit_service::ShutdownFlag;
use cubefit_telemetry::{Recorder, TraceEvent};
use cubefit_workload::{DriftEngine, LoadModel};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration of one soak run — the whole file is the repro.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SoakConfig {
    /// Algorithm under soak.
    pub algorithm: AlgorithmSpec,
    /// Client-count distribution for arriving tenants.
    pub distribution: DistributionSpec,
    /// Total mutation ops (arrivals + departures + failure events).
    pub ops: u64,
    /// Seed driving the op mix, arrival loads, departure and failure picks.
    pub seed: u64,
    /// Percent of ops that are departures. Soak defaults keep this close
    /// to the arrival share so the population stays bounded.
    pub departure_percent: u32,
    /// Percent of ops that are failure events.
    pub failure_percent: u32,
    /// Servers failed per event, clamped to `0..=γ−1` at run time. The
    /// Theorem-1 reserve only covers `γ−1` simultaneous failures, so at
    /// `γ = 1` (no failover reserve at all) the effective value is 0 and
    /// failure ops are skipped entirely — the model never promised to
    /// survive them.
    pub max_failures: usize,
    /// Run a sampled oracle audit every N ops (`0` disables audits,
    /// including the final full audit).
    pub audit_every: u64,
    /// Emit a [`TraceEvent::SoakCheckpoint`] and grade the placement with
    /// the invariant monitor every N ops (`0` falls back to 1 000).
    pub checkpoint_every: u64,
    /// Journal checkpoint stride for journaled runs (`None` rides
    /// [`SoakConfig::checkpoint_every`]). Journal checkpoints write and
    /// fsync a full placement snapshot, so production-scale runs want
    /// them far rarer than the trace/monitor checkpoints — the log
    /// replayed at recovery grows by one small frame per op in exchange.
    pub journal_checkpoint_every: Option<u64>,
    /// Run a defragmentation epoch every N ops (`0` disables defrag).
    pub defrag_every: u64,
    /// Migration budget for each defrag epoch.
    pub defrag_budget: MigrationBudget,
    /// What defrag epochs optimize for (see [`crate::ChurnConfig`]); the
    /// cost objective requires [`SoakConfig::rent`].
    pub defrag_objective: DefragObjective,
    /// Per-tenant load drift between ops (`None` keeps loads static).
    pub drift: Option<DriftConfig>,
    /// Renting model (`None` keeps servers free to hold open). Soak
    /// reconciles the lease ledger at the *checkpoint stride* (and just
    /// before each defrag epoch, so economic planning sees current
    /// leases), not per op, to preserve its O(1)-amortized per-op cost —
    /// a server that opens and closes entirely between reconciliations
    /// is never billed, which is documented imprecision, not a ledger
    /// bug.
    pub rent: Option<RentConfig>,
    /// Deliberately break Theorem 1 at this op by re-estimating a few
    /// tenants to full-server load — the acceptance hook proving the
    /// scenario/replay/shrink loop finds real injected faults.
    pub inject_at: Option<u64>,
    /// Whether a monitor-detected violation fails the run (and produces a
    /// scenario). Keep `true` for static loads, where a violation is
    /// always a bug; drifted runs expect transient violations and set it
    /// `false` unless mitigation is supposed to keep up.
    pub fail_on_violation: bool,
}

impl SoakConfig {
    /// Steady-state defaults: arrivals ≈ departures (47% each), 6%
    /// failure events, audits every 1 000 ops, checkpoints every 500.
    #[must_use]
    pub fn steady(algorithm: AlgorithmSpec, ops: u64, seed: u64) -> Self {
        SoakConfig {
            max_failures: algorithm.gamma().saturating_sub(1),
            algorithm,
            distribution: DistributionSpec::Uniform { min: 1, max: 15 },
            ops,
            seed,
            departure_percent: 47,
            failure_percent: 6,
            audit_every: 1_000,
            checkpoint_every: 500,
            journal_checkpoint_every: None,
            defrag_every: 0,
            defrag_budget: MigrationBudget::default(),
            defrag_objective: DefragObjective::Bins,
            drift: None,
            rent: None,
            inject_at: None,
            fail_on_violation: true,
        }
    }

    fn checkpoint_stride(&self) -> u64 {
        if self.checkpoint_every == 0 {
            1_000
        } else {
            self.checkpoint_every
        }
    }
}

/// First failure a soak run (or replay) hit.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SoakFailure {
    /// Op index (0-based) at which the failure was detected.
    pub op: u64,
    /// What failed: audit divergences or monitor violations.
    pub reason: String,
}

/// A compact, replayable repro: the config (with its seed) plus the op
/// window suspected to contain the fault. Written to disk by `cubefit
/// soak` on failure; consumed by `cubefit replay`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SoakScenario {
    /// Full run configuration (a pure function of which is the run).
    pub config: SoakConfig,
    /// First op of the suspect window (the last op known clean, plus 1,
    /// saturating to 0).
    pub window_lo: u64,
    /// Last op of the suspect window (the op the failure was detected at).
    pub window_hi: u64,
    /// What the original run reported.
    pub reason: String,
}

impl SoakScenario {
    /// Pretty JSON for the scenario file.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_owned())
    }

    /// Parses a scenario file.
    ///
    /// # Errors
    ///
    /// Returns the deserialization error text for malformed files.
    pub fn from_json(text: &str) -> std::result::Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("bad scenario file: {e}"))
    }
}

/// Everything a soak run produced.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SoakReport {
    /// Algorithm label.
    pub algorithm: String,
    /// Replication factor.
    pub gamma: usize,
    /// Seed that reproduces the run.
    pub seed: u64,
    /// Ops requested.
    pub ops_requested: u64,
    /// Ops actually executed (less than requested when the run failed).
    pub ops_run: u64,
    /// Tenant arrivals.
    pub arrivals: u64,
    /// Tenant departures.
    pub departures: u64,
    /// Server-failure events.
    pub failure_events: u64,
    /// Defrag epochs run.
    pub defrag_epochs: u64,
    /// Load-drift updates applied.
    pub drift_updates: u64,
    /// Sampled + edge audits run (excluding the final full audit).
    pub audits: u64,
    /// Audits that found divergences.
    pub audit_failures: u64,
    /// Checkpoints emitted.
    pub checkpoints: u64,
    /// Servers the monitor newly caught violated across the run.
    pub violations: u64,
    /// Tenants alive at the end.
    pub final_tenants: usize,
    /// Servers in use at the end.
    pub final_open_bins: usize,
    /// Total placed load at the end.
    pub final_load: f64,
    /// Fragmentation ratio of the final placement.
    pub final_fragmentation: f64,
    /// Whether the final placement satisfies Theorem 1.
    pub robust: bool,
    /// Divergences the final full audit found (`None` when audits are off
    /// or the run stopped early).
    pub final_audit_divergences: Option<usize>,
    /// True when the run was cut short by a shutdown request; `ops_run`
    /// then holds the count actually executed and the final full audit is
    /// skipped.
    pub interrupted: bool,
    /// First failure, when the run did not stay clean.
    pub failure: Option<SoakFailure>,
    /// Replayable repro for the failure, when there is one.
    pub scenario: Option<SoakScenario>,
    /// Renting economics, when [`SoakConfig::rent`] was set. The ledger
    /// is reconciled at the checkpoint stride, so `sim_ms` advances in
    /// stride-sized jumps rather than per op.
    pub cost: Option<CostReport>,
}

impl SoakReport {
    /// Pretty JSON rendering for the `cubefit soak` CLI.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_owned())
    }
}

/// How the inner loop checks for failures.
enum CheckMode {
    /// Normal soak: strided checkpoints + sampled/edge audits.
    Sampled,
    /// Replay: grade (and audit, when enabled) after **every** op inside
    /// the window, stopping at the first failure.
    Window { lo: u64, hi: u64 },
}

/// Runs a soak experiment with telemetry disabled.
///
/// # Errors
///
/// Propagates algorithm construction and mutation errors. A detected
/// invariant/audit failure is NOT an error: it is reported in
/// [`SoakReport::failure`] with a replayable scenario.
pub fn run_soak(config: &SoakConfig) -> Result<SoakReport> {
    run_soak_with(config, Recorder::disabled())
}

/// Runs a soak experiment, streaming checkpoints, audits and the
/// consolidator's own events through `recorder`.
///
/// # Errors
///
/// Propagates algorithm construction and mutation errors.
pub fn run_soak_with(config: &SoakConfig, recorder: Recorder) -> Result<SoakReport> {
    run_loop(config, recorder, config.ops, &CheckMode::Sampled, None, None)
        .map(|(report, _)| report)
}

/// [`run_soak_with`] with a cooperative shutdown flag polled between
/// ops: when it trips (Ctrl-C in the CLI), the run stops cleanly, the
/// report covers the ops executed so far, and `interrupted` is set.
///
/// # Errors
///
/// Propagates algorithm construction and mutation errors.
pub fn run_soak_cancellable(
    config: &SoakConfig,
    recorder: Recorder,
    shutdown: &ShutdownFlag,
) -> Result<SoakReport> {
    run_loop(config, recorder, config.ops, &CheckMode::Sampled, Some(shutdown), None)
        .map(|(report, _)| report)
}

/// [`run_soak_cancellable`] with every mutation journaled through
/// `journal` and checkpoints taken at the soak checkpoint stride.
///
/// On a clean finish — **and** on a cooperative shutdown (Ctrl-C) — the
/// journal is fsynced and sealed before the report is returned, so an
/// interrupted run recovers exactly to its partial state. A hard kill
/// (crash) skips the seal, which is precisely what [`crate::crash`]
/// simulates and `cubefit recover` repairs.
///
/// # Errors
///
/// Propagates algorithm construction, mutation, and journal I/O errors.
pub fn run_soak_journaled(
    config: &SoakConfig,
    recorder: Recorder,
    journal: &Journal,
    shutdown: Option<&ShutdownFlag>,
) -> Result<SoakReport> {
    let (report, _) =
        run_loop(config, recorder, config.ops, &CheckMode::Sampled, shutdown, Some(journal))?;
    journal.seal().map_err(cubefit_core::Error::from)?;
    Ok(report)
}

/// Runs the journaled soak loop capped at `limit` ops and hands back the
/// live consolidator *without sealing* — the crash harness's simulated
/// `kill -9`, leaving the journal exactly as a dead process would.
pub(crate) fn run_crash_prefix(
    config: &SoakConfig,
    journal: &Journal,
    limit: u64,
) -> Result<(SoakReport, Box<dyn Consolidator>)> {
    run_loop(config, Recorder::disabled(), limit, &CheckMode::Sampled, None, Some(journal))
}

/// Runs a journaled soak that stops dead after `crash_at` ops **without
/// sealing the journal** — the CI crash drill behind
/// `cubefit soak --journal DIR --crash-at OP`. The on-disk journal is
/// left exactly as a process killed at that op would leave it; a
/// subsequent `cubefit recover` must reconstruct the placement.
///
/// # Errors
///
/// Propagates algorithm construction, mutation, and journal I/O errors.
pub fn run_soak_crashed(
    config: &SoakConfig,
    journal: &Journal,
    crash_at: u64,
) -> Result<SoakReport> {
    run_crash_prefix(config, journal, crash_at).map(|(report, _)| report)
}

/// Replays a scenario: re-runs the deterministic prefix up to
/// `window_hi`, grading after every op inside the window, and returns the
/// first failure found (or `None` if the scenario does not reproduce).
///
/// # Errors
///
/// Propagates algorithm construction and mutation errors.
pub fn replay(scenario: &SoakScenario) -> Result<Option<SoakFailure>> {
    let (report, _) = run_loop(
        &scenario.config,
        Recorder::disabled(),
        scenario.window_hi.saturating_add(1),
        &CheckMode::Window { lo: scenario.window_lo, hi: scenario.window_hi },
        None,
        None,
    )?;
    Ok(report.failure)
}

/// Outcome of shrinking a scenario.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ShrinkOutcome {
    /// The minimal pinned regression: a one-op window containing the
    /// first op whose prefix fails.
    pub pinned: SoakScenario,
    /// The failure the pinned op produces.
    pub failure: SoakFailure,
    /// Replay probes the bisection spent.
    pub probes: u32,
}

/// Bisects a scenario's op window down to the first failing op.
///
/// The predicate "replaying ops `0..=n` (checking inside
/// `[window_lo, n]`) fails" is monotone in `n` — checks never mutate
/// state, so a failure detected at op `k` is detected by every probe with
/// `n ≥ k` — which makes binary search sound.
///
/// # Errors
///
/// Returns an error string when the scenario does not reproduce at its
/// own upper bound (a stale or corrupted scenario file), and propagates
/// mutation errors.
pub fn shrink(scenario: &SoakScenario) -> std::result::Result<ShrinkOutcome, String> {
    let probe = |n: u64| -> std::result::Result<Option<SoakFailure>, String> {
        let prefix = SoakScenario {
            config: scenario.config.clone(),
            window_lo: scenario.window_lo,
            window_hi: n,
            reason: scenario.reason.clone(),
        };
        replay(&prefix).map_err(|e| e.to_string())
    };

    let mut probes = 0u32;
    probes += 1;
    let Some(mut failure) = probe(scenario.window_hi)? else {
        return Err(format!(
            "scenario does not reproduce: replay of ops {}..={} found no failure",
            scenario.window_lo, scenario.window_hi
        ));
    };

    // Invariant: P(hi) fails (with `failure` its report), P(lo − 1) is
    // unknown-but-assumed-clean below window_lo.
    let mut lo = scenario.window_lo;
    let mut hi = failure.op;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        probes += 1;
        match probe(mid)? {
            Some(found) => {
                hi = found.op.min(mid);
                failure = found;
            }
            None => lo = mid + 1,
        }
    }

    Ok(ShrinkOutcome {
        pinned: SoakScenario {
            config: scenario.config.clone(),
            window_lo: hi,
            window_hi: hi,
            reason: failure.reason.clone(),
        },
        failure,
        probes,
    })
}

/// The shared inner loop behind [`run_soak_with`], [`replay`] and
/// [`shrink`] probes. `limit` caps the ops executed; `mode` selects
/// sampled or per-op-in-window checking. RNG draw order is identical in
/// every mode — journaling included: the wrapper records decisions
/// already made and never draws randomness, so a journaled run follows
/// the exact trajectory of an unjournaled one.
#[allow(clippy::too_many_lines)]
fn run_loop(
    config: &SoakConfig,
    recorder: Recorder,
    limit: u64,
    mode: &CheckMode,
    shutdown: Option<&ShutdownFlag>,
    journal: Option<&Journal>,
) -> Result<(SoakReport, Box<dyn Consolidator>)> {
    let gamma = config.algorithm.gamma();
    let mut consolidator: Box<dyn Consolidator> = config.algorithm.build()?;
    consolidator.set_recorder(recorder.clone());
    if let Some(journal) = journal {
        consolidator = Box::new(JournaledConsolidator::new(consolidator, journal.clone()));
    }

    let model = LoadModel::tpch_xeon();
    let distribution = config.distribution.build(model.max_clients());
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    // Same decoupling as churn: drift draws never perturb the op mix.
    let mut drift_engine = config.drift.map(|d| {
        DriftEngine::new(model, d.profile, config.seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    });

    let mut report = SoakReport {
        algorithm: config.algorithm.label(),
        gamma,
        seed: config.seed,
        ops_requested: config.ops,
        ops_run: 0,
        arrivals: 0,
        departures: 0,
        failure_events: 0,
        defrag_epochs: 0,
        drift_updates: 0,
        audits: 0,
        audit_failures: 0,
        checkpoints: 0,
        violations: 0,
        final_tenants: 0,
        final_open_bins: 0,
        final_load: 0.0,
        final_fragmentation: 1.0,
        robust: false,
        interrupted: false,
        final_audit_divergences: None,
        failure: None,
        scenario: None,
        cost: None,
    };
    let mut rent_state = config.rent.map(RentState::new);
    // The ledger is reconciled lazily: `last_rent_op` marks how far the
    // rent clock has advanced, and each checkpoint bills the elapsed ops
    // in one `tick`. Servers that open *and* close strictly between two
    // checkpoints are never leased — documented imprecision that keeps
    // the soak loop O(1) amortized per op.
    let mut last_rent_op: u64 = 0;

    let slack = config.drift.map_or(DEFAULT_AT_RISK_SLACK, |d| d.at_risk_slack);
    let checkpoint_stride = config.checkpoint_stride();
    let journal_stride = config.journal_checkpoint_every.unwrap_or(checkpoint_stride).max(1);
    let mut alive: Vec<TenantId> = Vec::new();
    let mut next_id: u64 = 0;
    let mut known_violated: Vec<BinId> = Vec::new();
    // Invariant-edge detection: 0 = robust, 1 = at risk, 2 = violated.
    let mut last_state: u8 = 0;
    let mut last_clean_op: u64 = 0;

    let depart_band = config.failure_percent + config.departure_percent;
    let total = config.ops.min(limit);
    for op in 0..total {
        if shutdown.is_some_and(ShutdownFlag::is_set) {
            report.interrupted = true;
            break;
        }
        let roll = rng.gen_range(0..100u32);
        // `alive` non-empty ⇔ some bin is loaded (every live tenant keeps
        // γ positive-load replicas), so the O(bins) loaded-bin scan only
        // runs on the ~failure_percent of ops that actually fail servers —
        // the churn harness pays it on every op.
        // The reserve covers at most γ−1 simultaneous failures; at γ = 1
        // that is zero, so failure ops degrade to departures/arrivals
        // instead of failing servers the model never promised to survive.
        let effective_failures = config.max_failures.min(gamma.saturating_sub(1));
        if roll < config.failure_percent && effective_failures > 0 && !alive.is_empty() {
            let loaded_bins: Vec<BinId> = consolidator
                .placement()
                .bins()
                .filter(|bin| bin.level() > 0.0)
                .map(|bin| bin.id())
                .collect();
            let event = fail_and_recover(
                &mut *consolidator,
                &loaded_bins,
                effective_failures,
                usize::try_from(op).unwrap_or(usize::MAX),
                &mut rng,
                &recorder,
            )?;
            if let Some(state) = rent_state.as_mut() {
                state.price_recovery(&event.recovery);
            }
            report.failure_events += 1;
        } else if roll < depart_band && !alive.is_empty() {
            let idx = rng.gen_range(0..alive.len());
            let tenant = alive.swap_remove(idx);
            consolidator.remove(tenant)?;
            if let Some(engine) = drift_engine.as_mut() {
                engine.forget(tenant);
            }
            report.departures += 1;
        } else {
            let clients = distribution.sample_clients(&mut rng);
            let tenant = Tenant::new(TenantId::new(next_id), model.load(clients));
            next_id += 1;
            consolidator.place(tenant)?;
            if let Some(engine) = drift_engine.as_mut() {
                engine.track(tenant.id(), clients);
            }
            alive.push(tenant.id());
            report.arrivals += 1;
        }
        report.ops_run = op + 1;

        if let Some(engine) = drift_engine.as_mut() {
            for update in engine.step() {
                let outcome = consolidator.update_load(update.tenant, update.load)?;
                recorder.emit(|| TraceEvent::LoadDrifted {
                    tenant: update.tenant.get(),
                    old_load: outcome.old_load,
                    new_load: outcome.new_load,
                    at: update.at,
                });
                report.drift_updates += 1;
            }
            if let Some(drift) = config.drift {
                if drift.mitigate_every > 0 && ((op + 1) % drift.mitigate_every as u64 == 0) {
                    let plan = cubefit_defrag::plan_mitigation_with(
                        consolidator.placement(),
                        drift.budget,
                        drift.at_risk_slack,
                    );
                    if plan.attention_before > 0 {
                        let outcome =
                            cubefit_defrag::apply_mitigation(&mut *consolidator, &plan, &recorder)?;
                        if let Some(state) = rent_state.as_mut() {
                            state.price_moves(outcome.applied_steps, outcome.moved_load);
                        }
                    }
                }
            }
        }

        if config.defrag_every > 0 && (op + 1) % config.defrag_every == 0 {
            // Cost-objective planning consults the ledger, so reconcile
            // it up to the current op before the epoch runs.
            if let Some(state) = rent_state.as_mut() {
                state.tick(op + 1 - last_rent_op, consolidator.placement(), &recorder);
                last_rent_op = op + 1;
            }
            defrag_epoch(
                &mut consolidator,
                config.defrag_budget,
                usize::try_from(op).unwrap_or(usize::MAX),
                &recorder,
                config.defrag_objective,
                rent_state.as_mut(),
            )?;
            report.defrag_epochs += 1;
        }

        // Deliberate fault injection: re-estimate the three lowest-id
        // alive tenants to full-server load. A legal mutation (drift
        // tracks reality) that puts every hosting bin past the Theorem-1
        // margin. The inflated tenants leave the departure pool so the
        // fault persists until a checkpoint catches it — a runaway
        // workload, not a blip that self-heals before detection.
        if config.inject_at == Some(op) {
            let mut targets: Vec<TenantId> = alive.clone();
            targets.sort_unstable();
            for tenant in targets.into_iter().take(3) {
                consolidator.update_load(tenant, 1.0)?;
                alive.retain(|&t| t != tenant);
            }
        }

        let checking_window = match mode {
            CheckMode::Sampled => false,
            CheckMode::Window { lo, hi } => op >= *lo && op <= *hi,
        };
        let at_checkpoint = (op + 1) % checkpoint_stride == 0 || op + 1 == total;

        // Invariant monitor: every op inside a replay window, else at the
        // checkpoint stride.
        let mut edge = false;
        if checking_window || at_checkpoint {
            let monitor = classify_with(consolidator.placement(), slack);
            for &(bin, deficit) in &monitor.violated {
                if !known_violated.contains(&bin) {
                    recorder.emit(|| TraceEvent::InvariantViolated {
                        bin: bin.index(),
                        level: consolidator.placement().level(bin),
                        deficit,
                    });
                    report.violations += 1;
                }
            }
            known_violated = monitor.violated.iter().map(|&(bin, _)| bin).collect();
            let state = if !monitor.violated.is_empty() {
                2u8
            } else if !monitor.at_risk.is_empty() {
                1
            } else {
                0
            };
            edge = state != last_state;
            last_state = state;

            if at_checkpoint {
                if let Some(state) = rent_state.as_mut() {
                    state.tick(op + 1 - last_rent_op, consolidator.placement(), &recorder);
                    last_rent_op = op + 1;
                }
                let placement = consolidator.placement();
                let frag = placement.fragmentation();
                recorder.emit(|| TraceEvent::SoakCheckpoint {
                    op,
                    tenants: placement.tenant_count(),
                    open_bins: placement.open_bins(),
                    fragmentation: frag.fragmentation_ratio,
                    at_risk: monitor.at_risk.len(),
                    violated: monitor.violated.len(),
                });
                report.checkpoints += 1;
            }

            // Journal checkpoints ride their own stride (defaulting to the
            // trace stride), and only the *strict* stride — the
            // `op + 1 == total` tail checkpoint is skipped so a
            // limit-capped crash-prefix run leaves its journal exactly as
            // a mid-run kill would.
            if (op + 1) % journal_stride == 0 {
                if let Some(journal) = journal {
                    let info = journal
                        .checkpoint(consolidator.placement())
                        .map_err(cubefit_core::Error::from)?;
                    let tenants = consolidator.placement().tenant_count();
                    recorder.emit(|| TraceEvent::JournalCheckpoint {
                        seq: info.seq,
                        tenants,
                        wal_bytes: info.wal_bytes,
                    });
                }
            }

            if config.fail_on_violation && !monitor.violated.is_empty() {
                fail_run(
                    &mut report,
                    config,
                    op,
                    last_clean_op,
                    format!(
                        "invariant violated: {} server(s) past the Theorem-1 margin \
                         (worst deficit {:.6})",
                        monitor.violated.len(),
                        monitor.violated.first().map_or(0.0, |&(_, d)| d),
                    ),
                );
                break;
            }
            if state == 0 && !checking_window {
                last_clean_op = op;
            }
        }

        // Sampled oracle audit: at the stride, on every invariant edge,
        // and per-op inside a replay window.
        let audit_due = config.audit_every > 0
            && (checking_window || edge || (op + 1) % config.audit_every == 0);
        if audit_due {
            let divergences = match oracle::audit(consolidator.placement()) {
                Ok(()) => 0,
                Err(list) => list.len(),
            };
            report.audits += 1;
            recorder.emit(|| TraceEvent::AuditCompleted { op, divergences, full: false });
            if divergences > 0 {
                report.audit_failures += 1;
                fail_run(
                    &mut report,
                    config,
                    op,
                    last_clean_op,
                    format!("oracle audit found {divergences} divergence(s)"),
                );
                break;
            }
        }
    }

    let placement = consolidator.placement();
    report.final_tenants = placement.tenant_count();
    report.final_open_bins = placement.open_bins();
    report.final_load = placement.total_load();
    report.final_fragmentation = placement.fragmentation().fragmentation_ratio;
    report.robust = placement.is_robust();
    report.cost = rent_state.as_ref().map(RentState::report);

    // Full audit of the final state — only when the run survived to the
    // end with audits enabled (a failed run already carries its repro).
    if config.audit_every > 0 && report.failure.is_none() && report.ops_run == config.ops {
        let divergences = match oracle::audit(placement) {
            Ok(()) => 0,
            Err(list) => list.len(),
        };
        report.final_audit_divergences = Some(divergences);
        let at_op = report.ops_run.saturating_sub(1);
        recorder.emit(|| TraceEvent::AuditCompleted { op: at_op, divergences, full: true });
        if divergences > 0 {
            report.audit_failures += 1;
            fail_run(
                &mut report,
                config,
                at_op,
                last_clean_op,
                format!("final full audit found {divergences} divergence(s)"),
            );
        }
    }
    Ok((report, consolidator))
}

/// Records the first failure and its replayable scenario on the report.
fn fail_run(
    report: &mut SoakReport,
    config: &SoakConfig,
    op: u64,
    last_clean_op: u64,
    reason: String,
) {
    if report.failure.is_some() {
        return;
    }
    report.failure = Some(SoakFailure { op, reason: reason.clone() });
    // The window opens just past the last checkpoint the monitor graded
    // clean (op 0 when there was none) and closes at the detection op.
    let window_lo = if last_clean_op == 0 { 0 } else { (last_clean_op + 1).min(op) };
    report.scenario =
        Some(SoakScenario { config: config.clone(), window_lo, window_hi: op, reason });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(ops: u64, seed: u64) -> SoakConfig {
        SoakConfig {
            audit_every: 200,
            checkpoint_every: 100,
            ..SoakConfig::steady(AlgorithmSpec::CubeFit { gamma: 2, classes: 5 }, ops, seed)
        }
    }

    #[test]
    fn tripped_shutdown_flag_stops_the_run_with_a_partial_report() {
        let flag = ShutdownFlag::new();
        flag.trigger();
        let report = run_soak_cancellable(&quick(2_000, 11), Recorder::disabled(), &flag).unwrap();
        assert!(report.interrupted);
        assert_eq!(report.ops_run, 0, "flag was set before the first op");
        assert!(report.failure.is_none());
        assert!(report.final_audit_divergences.is_none(), "final audit skipped when cut short");
        // An untripped flag changes nothing.
        let a = run_soak_cancellable(&quick(500, 3), Recorder::disabled(), &ShutdownFlag::new())
            .unwrap();
        let b = run_soak(&quick(500, 3)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn steady_soak_is_clean_and_deterministic() {
        let config = quick(2_000, 11);
        let a = run_soak(&config).unwrap();
        let b = run_soak(&config).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.ops_run, 2_000);
        assert!(a.failure.is_none(), "clean seed must stay clean: {:?}", a.failure);
        assert_eq!(a.final_audit_divergences, Some(0));
        assert!(a.robust);
        assert!(a.audits >= 2_000 / 200);
        assert!(a.checkpoints >= 2_000 / 100);
        // Steady-state mix keeps the population bounded (the whole point).
        assert!(a.final_tenants < 600, "population must stay bounded: {}", a.final_tenants);
    }

    #[test]
    fn gamma1_defaults_to_zero_failures() {
        // Regression: `steady` used to clamp `max_failures` to `.max(1)`,
        // injecting one failure against a zero-size failover reserve at
        // γ = 1. The default is now γ−1 (here 0), which skips failure ops.
        let config = SoakConfig::steady(AlgorithmSpec::CubeFit { gamma: 1, classes: 5 }, 100, 7);
        assert_eq!(config.max_failures, 0);
    }

    #[test]
    fn zero_max_failures_runs_without_failure_events() {
        // With failures clamped to zero, the failure band degrades to
        // departures/arrivals instead of calling `fail_and_recover` (whose
        // `gen_range(1..=0)` would panic).
        let config = SoakConfig { max_failures: 0, ..quick(1_000, 11) };
        let report = run_soak(&config).unwrap();
        assert_eq!(report.failure_events, 0);
        assert_eq!(report.ops_run, 1_000);
        assert!(report.failure.is_none());
        assert!(report.robust);
    }

    #[test]
    fn injected_violation_produces_replayable_scenario() {
        let config = SoakConfig { inject_at: Some(731), ..quick(2_000, 11) };
        let report = run_soak(&config).unwrap();
        let failure = report.failure.expect("injection must be detected");
        assert!(failure.reason.contains("invariant violated"), "{}", failure.reason);
        // Detection happens at the first checkpoint at or after the
        // injection, never before it.
        assert!(failure.op >= 731);
        assert!(report.ops_run < config.ops, "the run stops at the failure");

        let scenario = report.scenario.expect("failure must carry a scenario");
        assert!(scenario.window_lo <= 731 && 731 <= scenario.window_hi);
        let replayed = replay(&scenario).unwrap().expect("scenario must reproduce");
        // Replay checks every op in the window, so it catches the fault at
        // the injection op itself, no later than the soak detection.
        assert_eq!(replayed.op, 731);
    }

    #[test]
    fn shrink_pins_the_first_failing_op() {
        let config = SoakConfig { inject_at: Some(731), ..quick(2_000, 11) };
        let report = run_soak(&config).unwrap();
        let scenario = report.scenario.expect("failure must carry a scenario");
        let outcome = shrink(&scenario).unwrap();
        assert_eq!(outcome.pinned.window_lo, outcome.pinned.window_hi);
        assert_eq!(outcome.pinned.window_hi, 731, "shrink must land on the injection op");
        assert!(outcome.probes >= 2);
        // The pinned one-op scenario still reproduces.
        let confirmed = replay(&outcome.pinned).unwrap().expect("pinned repro");
        assert_eq!(confirmed.op, 731);
        // And it round-trips through its file format.
        let back = SoakScenario::from_json(&outcome.pinned.to_json()).unwrap();
        assert_eq!(back, outcome.pinned);
    }

    #[test]
    fn shrink_rejects_a_scenario_that_does_not_reproduce() {
        let clean = SoakScenario {
            config: quick(500, 11),
            window_lo: 0,
            window_hi: 499,
            reason: "stale".to_owned(),
        };
        let err = shrink(&clean).expect_err("clean runs must not shrink");
        assert!(err.contains("does not reproduce"), "{err}");
    }

    #[test]
    fn soak_emits_checkpoints_and_audits_through_the_recorder() {
        use cubefit_telemetry::VecSink;
        use std::sync::Arc;

        let sink = Arc::new(VecSink::new());
        let recorder = Recorder::with_sink(Arc::clone(&sink));
        let config = quick(600, 3);
        let report = run_soak_with(&config, recorder).unwrap();
        let events = sink.events();
        let checkpoints =
            events.iter().filter(|e| matches!(e, TraceEvent::SoakCheckpoint { .. })).count() as u64;
        let audits = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::AuditCompleted { full: false, .. }))
            .count() as u64;
        let full_audits = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::AuditCompleted { full: true, .. }))
            .count();
        assert_eq!(checkpoints, report.checkpoints);
        assert_eq!(audits, report.audits);
        assert_eq!(full_audits, 1);
    }

    #[test]
    fn soak_report_round_trips_through_json() {
        let report = run_soak(&quick(400, 5)).unwrap();
        let back: SoakReport = serde_json::from_str(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn defrag_and_failures_interleave_without_divergence() {
        let config = SoakConfig {
            defrag_every: 250,
            defrag_budget: MigrationBudget::moves(32),
            ..quick(1_500, 29)
        };
        let report = run_soak(&config).unwrap();
        assert!(report.failure_events > 0, "seed 29 must inject failures");
        assert!(report.defrag_epochs >= 5);
        assert!(report.failure.is_none(), "audited soak must stay clean: {:?}", report.failure);
        assert_eq!(report.final_audit_divergences, Some(0));
    }

    /// Renting under soak: checkpoint-stride reconciliation bills every
    /// op exactly once, stays deterministic, never perturbs the
    /// placement trajectory, and survives the report's JSON round trip.
    #[test]
    fn rent_is_reconciled_at_the_checkpoint_stride() {
        let rent = RentConfig::c4_4xlarge(600_000);
        let config = SoakConfig {
            defrag_every: 250,
            defrag_budget: MigrationBudget::moves(32),
            defrag_objective: DefragObjective::Cost { horizon_ms: rent.horizon_ms },
            rent: Some(rent),
            ..quick(1_500, 29)
        };
        let a = run_soak(&config).unwrap();
        let b = run_soak(&config).unwrap();
        assert_eq!(a, b, "rent accounting must not perturb determinism");
        assert!(a.failure.is_none(), "audited cost-aware soak must stay clean: {:?}", a.failure);
        let cost = a.cost.expect("rent config must produce a cost report");
        assert!(cost.rent_usd > 0.0);
        // Every op is billed exactly once: the final checkpoint lands on
        // the last op, so the ledger clock covers the whole run.
        assert_eq!(cost.sim_ms, a.ops_run * cost.ms_per_op);
        assert!(cost.recovery_migration_usd > 0.0, "failures price their re-replication");
        let back: SoakReport = serde_json::from_str(&a.to_json()).unwrap();
        assert_eq!(back, a);
        // Under the *bins* objective the ledger is a pure observer: the
        // placement trajectory with and without rent is identical. (The
        // cost objective above legitimately steers defrag decisions.)
        let observed =
            run_soak(&SoakConfig { defrag_objective: DefragObjective::Bins, ..config.clone() })
                .unwrap();
        let without =
            run_soak(&SoakConfig { defrag_objective: DefragObjective::Bins, rent: None, ..config })
                .unwrap();
        assert!(without.cost.is_none());
        assert_eq!(without.final_open_bins, observed.final_open_bins);
        assert_eq!(without.defrag_epochs, observed.defrag_epochs);
        assert_eq!(without.arrivals, observed.arrivals);
    }
}
