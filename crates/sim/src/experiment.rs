//! Multi-seed paired comparisons (the Fig. 6 protocol).
//!
//! The paper runs 10 independent simulations of 50,000 tenants per
//! distribution and reports the *relative difference* in servers used,
//! `(RFI − CUBEFIT) / CUBEFIT × 100%`, with 95% confidence intervals.
//! This module generalizes that protocol to any pair of
//! [`AlgorithmSpec`]s: runs are paired by seed (both algorithms see the
//! same sequence), and the CI is computed over the per-seed relative
//! differences.

use crate::runner::{run_sequence, RunResult};
use crate::spec::{AlgorithmSpec, DistributionSpec};
use crate::stats::Summary;
use cubefit_core::Result;
use cubefit_workload::{LoadModel, SequenceBuilder, TenantSequence};

/// Configuration of a paired comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ComparisonConfig {
    /// Tenants per run (the paper uses 50,000).
    pub tenants: usize,
    /// Independent runs (the paper uses 10).
    pub runs: usize,
    /// Base RNG seed; run `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Normalization constant `C` (the paper uses 52).
    pub max_clients: u32,
}

impl ComparisonConfig {
    /// The paper's §V.C protocol: 10 runs × 50,000 tenants, `C = 52`.
    #[must_use]
    pub fn paper(base_seed: u64) -> Self {
        ComparisonConfig { tenants: 50_000, runs: 10, base_seed, max_clients: 52 }
    }

    /// A scaled-down protocol for tests and examples.
    #[must_use]
    pub fn quick(base_seed: u64) -> Self {
        ComparisonConfig { tenants: 2_000, runs: 3, base_seed, max_clients: 52 }
    }
}

/// Outcome of a paired comparison between a `baseline` and a `candidate`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ComparisonResult {
    /// Distribution label.
    pub distribution: String,
    /// Baseline algorithm (e.g. RFI) summary of servers used.
    pub baseline_servers: Summary,
    /// Candidate algorithm (e.g. CubeFit) summary of servers used.
    pub candidate_servers: Summary,
    /// Per-seed relative difference `(baseline − candidate)/candidate`
    /// in percent — the paper's Fig. 6 metric.
    pub relative_difference_pct: Summary,
    /// Mean placement wall time per run, per algorithm (milliseconds).
    pub baseline_wall_ms: Summary,
    /// Candidate placement wall time (milliseconds).
    pub candidate_wall_ms: Summary,
    /// Mean utilization summaries.
    pub baseline_utilization: Summary,
    /// Candidate utilization summary.
    pub candidate_utilization: Summary,
    /// Whether every run of both algorithms passed the robustness check
    /// appropriate to its reserve (informational).
    pub all_runs_recorded: usize,
}

impl ComparisonResult {
    /// Mean number of servers the candidate saves per run.
    #[must_use]
    pub fn servers_saved(&self) -> f64 {
        self.baseline_servers.mean - self.candidate_servers.mean
    }
}

/// Generates the run-`i` sequence for a comparison.
#[must_use]
pub fn sequence_for(
    distribution: &DistributionSpec,
    config: &ComparisonConfig,
    run: usize,
) -> TenantSequence {
    let dist = distribution.build(config.max_clients);
    let model = LoadModel::normalized(config.max_clients);
    SequenceBuilder::new(BoxedDistribution(dist), model)
        .count(config.tenants)
        .seed(config.base_seed + run as u64)
        .build()
}

/// Adapter: `Box<dyn ClientDistribution>` as a `ClientDistribution`.
#[derive(Debug)]
struct BoxedDistribution(Box<dyn cubefit_workload::ClientDistribution>);

impl cubefit_workload::ClientDistribution for BoxedDistribution {
    fn sample_clients(&self, rng: &mut dyn rand::RngCore) -> u32 {
        self.0.sample_clients(rng)
    }

    fn max_clients(&self) -> u32 {
        self.0.max_clients()
    }

    fn label(&self) -> String {
        self.0.label()
    }
}

/// Runs the paired comparison of `baseline` vs `candidate` over
/// `distribution`.
///
/// Runs execute in parallel (one thread per run, capped by available
/// parallelism) since each is independent.
///
/// # Errors
///
/// Propagates the first algorithm error from any run.
pub fn compare(
    baseline: &AlgorithmSpec,
    candidate: &AlgorithmSpec,
    distribution: &DistributionSpec,
    config: &ComparisonConfig,
) -> Result<ComparisonResult> {
    let results: Vec<Result<(RunResult, RunResult)>> = {
        let mut slots: Vec<Option<Result<(RunResult, RunResult)>>> = Vec::new();
        slots.resize_with(config.runs, || None);
        crossbeam::thread::scope(|scope| {
            for (run, slot) in slots.iter_mut().enumerate() {
                scope.spawn(move |_| {
                    let sequence = sequence_for(distribution, config, run);
                    let pair = run_sequence(baseline, &sequence)
                        .and_then(|b| run_sequence(candidate, &sequence).map(|c| (b, c)));
                    *slot = Some(pair);
                });
            }
        })
        .expect("comparison threads do not panic");
        slots.into_iter().map(|s| s.expect("every run filled")).collect()
    };

    let mut baseline_servers = Vec::new();
    let mut candidate_servers = Vec::new();
    let mut relative = Vec::new();
    let mut baseline_wall = Vec::new();
    let mut candidate_wall = Vec::new();
    let mut baseline_util = Vec::new();
    let mut candidate_util = Vec::new();
    for pair in results {
        let (b, c) = pair?;
        relative.push((b.servers as f64 - c.servers as f64) / c.servers as f64 * 100.0);
        baseline_servers.push(b.servers as f64);
        candidate_servers.push(c.servers as f64);
        baseline_wall.push(b.wall.as_secs_f64() * 1e3);
        candidate_wall.push(c.wall.as_secs_f64() * 1e3);
        baseline_util.push(b.utilization);
        candidate_util.push(c.utilization);
    }
    Ok(ComparisonResult {
        distribution: distribution.label(),
        all_runs_recorded: relative.len(),
        baseline_servers: Summary::of(&baseline_servers),
        candidate_servers: Summary::of(&candidate_servers),
        relative_difference_pct: Summary::of(&relative),
        baseline_wall_ms: Summary::of(&baseline_wall),
        candidate_wall_ms: Summary::of(&candidate_wall),
        baseline_utilization: Summary::of(&baseline_util),
        candidate_utilization: Summary::of(&candidate_util),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cubefit_beats_rfi_on_uniform_quick() {
        let result = compare(
            &AlgorithmSpec::Rfi { gamma: 2, mu: 0.85 },
            &AlgorithmSpec::CubeFit { gamma: 2, classes: 10 },
            &DistributionSpec::Uniform { min: 1, max: 15 },
            &ComparisonConfig::quick(7),
        )
        .unwrap();
        assert_eq!(result.all_runs_recorded, 3);
        assert!(
            result.relative_difference_pct.mean > 0.0,
            "relative difference {:?}",
            result.relative_difference_pct
        );
        assert!(result.servers_saved() > 0.0);
        assert!(result.candidate_utilization.mean > result.baseline_utilization.mean);
    }

    #[test]
    fn paired_seeds_are_reproducible() {
        let cfg = ComparisonConfig::quick(9);
        let dist = DistributionSpec::Zipf { exponent: 3.0 };
        let a = compare(
            &AlgorithmSpec::Rfi { gamma: 2, mu: 0.85 },
            &AlgorithmSpec::CubeFit { gamma: 2, classes: 10 },
            &dist,
            &cfg,
        )
        .unwrap();
        let b = compare(
            &AlgorithmSpec::Rfi { gamma: 2, mu: 0.85 },
            &AlgorithmSpec::CubeFit { gamma: 2, classes: 10 },
            &dist,
            &cfg,
        )
        .unwrap();
        assert_eq!(a.baseline_servers, b.baseline_servers);
        assert_eq!(a.candidate_servers, b.candidate_servers);
    }

    #[test]
    fn sequences_differ_across_runs() {
        let cfg = ComparisonConfig::quick(1);
        let dist = DistributionSpec::Uniform { min: 1, max: 15 };
        let s0 = sequence_for(&dist, &cfg, 0);
        let s1 = sequence_for(&dist, &cfg, 1);
        assert_ne!(s0, s1);
        assert_eq!(s0.len(), cfg.tenants);
    }
}
