//! Driving an algorithm over a tenant sequence.

use crate::spec::AlgorithmSpec;
use cubefit_core::{validity, Result};
use cubefit_workload::TenantSequence;
use std::time::{Duration, Instant};

/// Result of one algorithm run over one tenant sequence.
#[derive(Debug, Clone, PartialEq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct RunResult {
    /// Algorithm label (from [`AlgorithmSpec::label`]).
    pub algorithm: String,
    /// Tenants placed.
    pub tenants: usize,
    /// Servers used (bins hosting at least one replica).
    pub servers: usize,
    /// Mean server utilization (`total_load / servers`).
    pub utilization: f64,
    /// Total tenant load placed.
    pub total_load: f64,
    /// Wall-clock time spent inside `place` calls ("time to consolidate",
    /// reported alongside Fig. 6 in §V.C).
    pub wall: Duration,
    /// Whether the final placement satisfies the `γ − 1`-failure
    /// robustness condition.
    pub robust: bool,
}

impl RunResult {
    /// Placement throughput in tenants per second.
    #[must_use]
    pub fn tenants_per_second(&self) -> f64 {
        if self.wall.is_zero() {
            f64::INFINITY
        } else {
            self.tenants as f64 / self.wall.as_secs_f64()
        }
    }
}

/// Runs a fresh instance of `spec` over `sequence`, returning placement
/// statistics.
///
/// # Errors
///
/// Propagates configuration or placement errors from the algorithm.
pub fn run_sequence(spec: &AlgorithmSpec, sequence: &TenantSequence) -> Result<RunResult> {
    let mut algorithm = spec.build()?;
    let start = Instant::now();
    for tenant in sequence.tenants() {
        algorithm.place(tenant)?;
    }
    let wall = start.elapsed();
    let placement = algorithm.placement();
    let stats = placement.stats();
    Ok(RunResult {
        algorithm: spec.label(),
        tenants: stats.tenants,
        servers: stats.open_bins,
        utilization: stats.mean_utilization,
        total_load: stats.total_load,
        wall,
        robust: validity::check(placement).is_robust(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubefit_workload::{LoadModel, SequenceBuilder};

    fn sequence(n: usize, seed: u64) -> TenantSequence {
        let dist = cubefit_workload::UniformClients::new(1, 15);
        SequenceBuilder::new(dist, LoadModel::normalized(52))
            .count(n)
            .seed(seed)
            .build()
    }

    #[test]
    fn cubefit_run_is_robust_and_beats_load_bound() {
        let seq = sequence(500, 1);
        let result =
            run_sequence(&AlgorithmSpec::CubeFit { gamma: 2, classes: 10 }, &seq).unwrap();
        assert!(result.robust);
        assert_eq!(result.tenants, 500);
        assert!(result.servers as f64 >= result.total_load);
        assert!(result.utilization > 0.0 && result.utilization <= 1.0);
        assert!(result.tenants_per_second() > 0.0);
    }

    #[test]
    fn cubefit_uses_fewer_servers_than_rfi() {
        // The headline claim (Fig. 6), at small scale.
        let seq = sequence(2000, 2);
        let cubefit =
            run_sequence(&AlgorithmSpec::CubeFit { gamma: 2, classes: 10 }, &seq).unwrap();
        let rfi = run_sequence(&AlgorithmSpec::Rfi { gamma: 2, mu: 0.85 }, &seq).unwrap();
        assert!(
            cubefit.servers < rfi.servers,
            "cubefit {} vs rfi {}",
            cubefit.servers,
            rfi.servers
        );
    }

    #[test]
    fn identical_seed_identical_result() {
        let seq = sequence(300, 3);
        let a = run_sequence(&AlgorithmSpec::CubeFit { gamma: 2, classes: 10 }, &seq).unwrap();
        let b = run_sequence(&AlgorithmSpec::CubeFit { gamma: 2, classes: 10 }, &seq).unwrap();
        assert_eq!(a.servers, b.servers);
        assert_eq!(a.total_load, b.total_load);
    }
}
