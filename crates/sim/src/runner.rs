//! Driving an algorithm over a tenant sequence.

use crate::spec::AlgorithmSpec;
use cubefit_core::{validity, Result};
use cubefit_telemetry::{MetricsSnapshot, Recorder, TraceEvent};
use cubefit_workload::TenantSequence;
use std::time::{Duration, Instant};

/// Result of one algorithm run over one tenant sequence.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunResult {
    /// Algorithm label (from [`AlgorithmSpec::label`]).
    pub algorithm: String,
    /// Tenants placed.
    pub tenants: usize,
    /// Servers used (bins hosting at least one replica).
    pub servers: usize,
    /// Mean server utilization (`total_load / servers`).
    pub utilization: f64,
    /// Total tenant load placed.
    pub total_load: f64,
    /// Wall-clock time spent inside `place` calls ("time to consolidate",
    /// reported alongside Fig. 6 in §V.C).
    pub wall: Duration,
    /// Whether the final placement satisfies the `γ − 1`-failure
    /// robustness condition.
    pub robust: bool,
    /// Metrics collected during the run (empty unless the run was given an
    /// enabled [`Recorder`], see [`run_sequence_with`]).
    pub metrics: MetricsSnapshot,
}

impl RunResult {
    /// Placement throughput in tenants per second (0 for an empty run whose
    /// wall clock never advanced).
    #[must_use]
    pub fn tenants_per_second(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.tenants as f64 / self.wall.as_secs_f64()
        }
    }
}

/// Runs a fresh instance of `spec` over `sequence`, returning placement
/// statistics. Telemetry stays disabled (one dead branch per decision).
///
/// # Errors
///
/// Propagates configuration or placement errors from the algorithm.
pub fn run_sequence(spec: &AlgorithmSpec, sequence: &TenantSequence) -> Result<RunResult> {
    run_sequence_with(spec, sequence, &Recorder::disabled())
}

/// Runs a fresh instance of `spec` over `sequence`, streaming decision
/// events and metrics into `recorder`.
///
/// Besides what the algorithm itself records, the runner contributes a
/// `place_seconds` latency histogram (per-tenant placement time), the final
/// robustness-check outcome as a [`TraceEvent::RobustnessChecked`] event,
/// and `servers` / `tenants_placed` gauges. [`RunResult::metrics`] holds
/// the recorder's final snapshot.
///
/// # Errors
///
/// Propagates configuration or placement errors from the algorithm.
pub fn run_sequence_with(
    spec: &AlgorithmSpec,
    sequence: &TenantSequence,
    recorder: &Recorder,
) -> Result<RunResult> {
    let mut algorithm = spec.build()?;
    algorithm.set_recorder(recorder.clone());
    let label = spec.label();
    let labels = [("algorithm", label.as_str())];
    let place_seconds = recorder.histogram("place_seconds", &labels);
    let timed = recorder.is_enabled();
    let start = Instant::now();
    for tenant in sequence.tenants() {
        if timed {
            let t0 = Instant::now();
            algorithm.place(tenant)?;
            place_seconds.record(t0.elapsed().as_secs_f64());
        } else {
            algorithm.place(tenant)?;
        }
    }
    let wall = start.elapsed();
    let placement = algorithm.placement();
    let stats = placement.stats();
    let report = validity::check(placement);
    recorder.emit(|| TraceEvent::RobustnessChecked {
        robust: report.is_robust(),
        worst_margin: report.worst_margin,
        violations: report.violations.len(),
    });
    recorder.gauge("servers", &labels).set(stats.open_bins as f64);
    recorder.gauge("tenants_placed", &labels).set(stats.tenants as f64);
    Ok(RunResult {
        algorithm: label,
        tenants: stats.tenants,
        servers: stats.open_bins,
        utilization: stats.mean_utilization,
        total_load: stats.total_load,
        wall,
        robust: report.is_robust(),
        metrics: recorder.snapshot(),
    })
}

/// Runs a fresh instance of `spec` over `sequence` using the sharded
/// backend and the batch placement API: `shards` hash partitions
/// (`0` or `1` keeps the single backend) and `batch` tenants per
/// `place_batch` call (`0` means one batch for the whole sequence).
///
/// The resulting placement is identical to [`run_sequence`]'s — batching
/// and sharding are throughput levers, not decision changes — so the
/// statistics differ only in `wall`. Telemetry stays disabled: the batch
/// fast paths are exactly what per-op recording would defeat.
///
/// # Errors
///
/// Propagates configuration or placement errors from the algorithm.
pub fn run_sequence_batched(
    spec: &AlgorithmSpec,
    sequence: &TenantSequence,
    shards: usize,
    batch: usize,
) -> Result<RunResult> {
    let mut algorithm = spec.build()?;
    if shards > 1 {
        algorithm.set_shards(shards);
    }
    let tenants: Vec<_> = sequence.tenants().collect();
    let chunk = if batch == 0 { tenants.len().max(1) } else { batch };
    let start = Instant::now();
    for slice in tenants.chunks(chunk) {
        algorithm.place_batch(slice.to_vec())?;
    }
    let wall = start.elapsed();
    let placement = algorithm.placement();
    let stats = placement.stats();
    let report = validity::check(placement);
    Ok(RunResult {
        algorithm: spec.label(),
        tenants: stats.tenants,
        servers: stats.open_bins,
        utilization: stats.mean_utilization,
        total_load: stats.total_load,
        wall,
        robust: report.is_robust(),
        metrics: MetricsSnapshot::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubefit_workload::{LoadModel, SequenceBuilder};

    fn sequence(n: usize, seed: u64) -> TenantSequence {
        let dist = cubefit_workload::UniformClients::new(1, 15);
        SequenceBuilder::new(dist, LoadModel::normalized(52)).count(n).seed(seed).build()
    }

    #[test]
    fn cubefit_run_is_robust_and_beats_load_bound() {
        let seq = sequence(500, 1);
        let result = run_sequence(&AlgorithmSpec::CubeFit { gamma: 2, classes: 10 }, &seq).unwrap();
        assert!(result.robust);
        assert_eq!(result.tenants, 500);
        assert!(result.servers as f64 >= result.total_load);
        assert!(result.utilization > 0.0 && result.utilization <= 1.0);
        assert!(result.tenants_per_second() > 0.0);
    }

    #[test]
    fn cubefit_uses_fewer_servers_than_rfi() {
        // The headline claim (Fig. 6), at small scale.
        let seq = sequence(2000, 2);
        let cubefit =
            run_sequence(&AlgorithmSpec::CubeFit { gamma: 2, classes: 10 }, &seq).unwrap();
        let rfi = run_sequence(&AlgorithmSpec::Rfi { gamma: 2, mu: 0.85 }, &seq).unwrap();
        assert!(
            cubefit.servers < rfi.servers,
            "cubefit {} vs rfi {}",
            cubefit.servers,
            rfi.servers
        );
    }

    #[test]
    fn zero_wall_time_yields_zero_throughput() {
        // An empty sequence can finish with a zero-duration wall clock;
        // throughput must be 0, not infinite.
        let seq = sequence(0, 4);
        let mut result =
            run_sequence(&AlgorithmSpec::CubeFit { gamma: 2, classes: 10 }, &seq).unwrap();
        result.wall = Duration::ZERO;
        assert_eq!(result.tenants_per_second(), 0.0);
    }

    #[test]
    fn instrumented_run_collects_metrics_and_trace() {
        use cubefit_telemetry::VecSink;
        use std::sync::Arc;

        let seq = sequence(200, 5);
        let spec = AlgorithmSpec::CubeFit { gamma: 2, classes: 10 };
        let sink = Arc::new(VecSink::new());
        let recorder = Recorder::with_sink(Arc::clone(&sink));
        let result = run_sequence_with(&spec, &seq, &recorder).unwrap();

        // Metrics snapshot travels with the result.
        assert_eq!(
            result.metrics.counter("placements", &[("algorithm", "cubefit")]) as usize,
            result.tenants
        );
        let hist = result
            .metrics
            .histograms
            .iter()
            .find(|h| h.name == "place_seconds")
            .expect("runner records placement latency");
        assert_eq!(hist.histogram.count, result.tenants as u64);

        // The trace ends with the robustness verdict, and its BinOpened
        // count equals the servers the result reports.
        let events = sink.events();
        let opened = events.iter().filter(|e| matches!(e, TraceEvent::BinOpened { .. })).count();
        assert_eq!(opened, result.servers);
        assert!(matches!(
            events.last(),
            Some(TraceEvent::RobustnessChecked { robust, .. }) if *robust == result.robust
        ));

        // The plain entry point stays metric-free.
        let plain = run_sequence(&spec, &seq).unwrap();
        assert_eq!(plain.metrics, MetricsSnapshot::default());
        assert_eq!(plain.servers, result.servers);
    }

    #[test]
    fn batched_sharded_run_matches_sequential_run() {
        let seq = sequence(400, 6);
        for spec in [
            AlgorithmSpec::CubeFit { gamma: 2, classes: 10 },
            AlgorithmSpec::Rfi { gamma: 2, mu: 0.85 },
        ] {
            let sequential = run_sequence(&spec, &seq).unwrap();
            for (shards, batch) in [(1, 64), (4, 64), (8, 0)] {
                let batched = run_sequence_batched(&spec, &seq, shards, batch).unwrap();
                assert_eq!(batched.servers, sequential.servers, "{spec:?} s{shards} b{batch}");
                assert_eq!(batched.tenants, sequential.tenants);
                assert_eq!(batched.robust, sequential.robust);
                assert_eq!(batched.total_load, sequential.total_load);
            }
        }
    }

    #[test]
    fn identical_seed_identical_result() {
        let seq = sequence(300, 3);
        let a = run_sequence(&AlgorithmSpec::CubeFit { gamma: 2, classes: 10 }, &seq).unwrap();
        let b = run_sequence(&AlgorithmSpec::CubeFit { gamma: 2, classes: 10 }, &seq).unwrap();
        assert_eq!(a.servers, b.servers);
        assert_eq!(a.total_load, b.total_load);
    }
}
