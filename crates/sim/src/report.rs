//! Plain-text tables and JSON output for the bench binaries.

use std::fmt::Write as _;

/// A fixed-width plain-text table builder for experiment output.
///
/// ```
/// use cubefit_sim::report::TextTable;
///
/// let mut table = TextTable::new(vec!["algorithm", "servers"]);
/// table.row(vec!["cubefit".into(), "8445".into()]);
/// table.row(vec!["rfi".into(), "10951".into()]);
/// let rendered = table.render();
/// assert!(rendered.contains("cubefit"));
/// assert!(rendered.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a header separator.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            // Trim per-line trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

/// Formats a mean ± CI pair, e.g. `30.1 ± 1.2`.
#[must_use]
pub fn mean_ci(summary: &crate::stats::Summary, decimals: usize) -> String {
    format!("{mean:.prec$} ± {ci:.prec$}", mean = summary.mean, ci = summary.ci95, prec = decimals)
}

/// Formats a dollar amount with thousands separators, e.g. `$18,045,004`.
#[must_use]
pub fn dollars(amount: f64) -> String {
    let rounded = amount.round() as i64;
    let digits = rounded.unsigned_abs().to_string();
    let mut grouped = String::new();
    for (i, ch) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            grouped.push(',');
        }
        grouped.push(ch);
    }
    if rounded < 0 {
        format!("-${grouped}")
    } else {
        format!("${grouped}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;

    #[test]
    fn table_aligns_columns() {
        let mut table = TextTable::new(vec!["a", "metric"]);
        table.row(vec!["x".into(), "1".into()]);
        table.row(vec!["longer".into(), "22".into()]);
        let rendered = table.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("longer"));
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut table = TextTable::new(vec!["a", "b", "c"]);
        table.row(vec!["only".into()]);
        assert!(table.render().contains("only"));
    }

    #[test]
    fn mean_ci_formatting() {
        let s = Summary { n: 10, mean: 30.123, stddev: 2.0, ci95: 1.456 };
        assert_eq!(mean_ci(&s, 1), "30.1 ± 1.5");
        assert_eq!(mean_ci(&s, 0), "30 ± 1");
    }

    #[test]
    fn dollars_formatting() {
        assert_eq!(dollars(18_045_004.4), "$18,045,004");
        assert_eq!(dollars(496.0), "$496");
        assert_eq!(dollars(1_000.0), "$1,000");
        assert_eq!(dollars(-2_500.0), "-$2,500");
        assert_eq!(dollars(0.0), "$0");
    }
}
