//! The EC2 cost model behind Table I.
//!
//! The model itself lives in [`cubefit_economics`] now, where the lease
//! ledger and migration pricing build on it; this module re-exports it so
//! `cubefit_sim::CostModel` and friends keep working.

pub use cubefit_economics::{CostModel, C4_4XLARGE_HOURLY_USD, HOURS_PER_YEAR};

#[cfg(test)]
mod tests {
    use super::*;

    /// The historical `cubefit_sim` paths still resolve and still price
    /// Table I correctly after the move into `cubefit-economics`.
    #[test]
    fn reexported_model_prices_table1_uniform_row() {
        let model = CostModel::c4_4xlarge();
        let savings = model.yearly_savings(10_951, 10_951 - 2_506);
        assert!((savings - 18_045_004.0).abs() < 1_000.0, "savings {savings}");
        assert_eq!(CostModel::with_hourly_usd(1.0).yearly_cost(1), HOURS_PER_YEAR);
        assert!((C4_4XLARGE_HOURLY_USD - 0.822).abs() < f64::EPSILON);
    }
}
