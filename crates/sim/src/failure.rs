//! The cluster failure experiment (Fig. 5 pipeline).
//!
//! §V.B protocol: tenants are added until the placement fills all 69 data
//! servers; `f` servers are failed so as to push the most clients onto a
//! single survivor (the *worst overload case*); the cluster then runs a
//! warm-up and a measurement window and reports the 99th-percentile
//! latency against the 5-second SLA.

use crate::spec::{AlgorithmSpec, DistributionSpec};
use cubefit_cluster::{sim::assignments_from_placement, ClusterSim, QueryMix, SimConfig};
use cubefit_core::{validity, Consolidator, Result, TenantId};
use cubefit_workload::{LoadModel, SequenceBuilder, TenantSpec};
use std::collections::HashMap;

/// Configuration of one failure-experiment cell (one bar of Fig. 5).
#[derive(Debug, Clone)]
pub struct FailureExperimentConfig {
    /// Algorithm under test (the paper runs CubeFit γ=2, CubeFit γ=3 with
    /// `K = 5`, and RFI γ=2 with `μ = 0.85`).
    pub algorithm: AlgorithmSpec,
    /// Client-count distribution (uniform 1–15 or zipf(3), §V.A).
    pub distribution: DistributionSpec,
    /// Data-store servers to fill (the paper's cluster has 69).
    pub servers: usize,
    /// Number of simultaneous worst-case failures to inject.
    pub failures: usize,
    /// SLA in seconds (the paper uses 5.0 at p99).
    pub sla_seconds: f64,
    /// Workload seed.
    pub seed: u64,
    /// Simulation windows.
    pub sim: SimConfig,
}

impl FailureExperimentConfig {
    /// The paper's cell for a given algorithm/distribution/failure count:
    /// 69 servers, 5 s SLA, 5-minute warm-up and measurement.
    #[must_use]
    pub fn paper(
        algorithm: AlgorithmSpec,
        distribution: DistributionSpec,
        failures: usize,
        seed: u64,
    ) -> Self {
        FailureExperimentConfig {
            algorithm,
            distribution,
            servers: 69,
            failures,
            sla_seconds: 5.0,
            seed,
            sim: SimConfig::paper(seed),
        }
    }
}

/// Result of one failure-experiment cell.
#[derive(Debug, Clone)]
pub struct FailureOutcome {
    /// Algorithm label.
    pub algorithm: String,
    /// Distribution label.
    pub distribution: String,
    /// Failures injected.
    pub failures: usize,
    /// Tenants admitted before the placement would exceed the server
    /// budget.
    pub tenants: usize,
    /// Servers actually used by the placement.
    pub servers_used: usize,
    /// Worst per-server p99 latency (seconds) post-failure — the paper's
    /// SLA metric (§IV ties the SLA to each server's capacity).
    pub p99_seconds: f64,
    /// Cluster-wide p99 latency (seconds), for context.
    pub cluster_p99_seconds: f64,
    /// Cluster-wide mean latency (seconds).
    pub mean_seconds: f64,
    /// Whether the SLA guarantee is violated: the worst post-failure
    /// server load exceeds 1.0 (load 1.0 corresponds to the SLA point by
    /// calibration, §IV). The measured [`Self::p99_seconds`] fluctuates a
    /// few percent around `SLA × load`, so the load criterion is the
    /// stable discriminator; Theorem 1 guarantees it holds for CubeFit
    /// with up to `γ−1` failures.
    pub sla_violated: bool,
    /// Clients whose tenant lost every replica.
    pub unavailable_clients: usize,
    /// Worst post-failure *model* load on any server (conservative check
    /// value `level + redirected`, even-split semantics).
    pub worst_model_load: f64,
}

/// Fills a fresh instance of `algorithm` with tenants drawn from
/// `distribution` until all `server_budget` servers are in use — the
/// paper's protocol ("we keep adding tenants until CubeFit fills up all 69
/// data store servers", §V.B). Admission stops the moment the last server
/// opens (or, if a placement would overshoot the budget, just before it),
/// so bins retain the natural slack the paper's measurements reflect.
/// Returns the consolidator and the admitted specs.
///
/// # Errors
///
/// Propagates algorithm construction/placement errors.
pub fn fill_servers(
    algorithm: &AlgorithmSpec,
    distribution: &DistributionSpec,
    server_budget: usize,
    seed: u64,
) -> Result<(Box<dyn Consolidator>, Vec<TenantSpec>)> {
    let model = LoadModel::tpch_xeon();
    // Generous candidate pool; filling 69 servers needs a few hundred
    // tenants at most for the paper's distributions.
    let candidate_count = server_budget * model.max_clients() as usize * 4;
    let sequence = SequenceBuilder::new(
        BoxedClientDistribution(distribution.build(model.max_clients())),
        model,
    )
    .count(candidate_count)
    .seed(seed)
    .build();

    let mut admitted: Vec<TenantSpec> = Vec::new();
    let mut consolidator = algorithm.build()?;
    for spec in sequence.specs() {
        // Near the budget, place on a `clone_box` scratch copy first so an
        // overshooting tenant is simply not admitted — no O(n²) replay of
        // the admitted prefix. A placement opens at most γ bins, so far
        // from the budget the tentative copy is skipped entirely.
        let gamma = consolidator.gamma();
        if consolidator.placement().open_bins() + gamma > server_budget {
            let mut tentative = consolidator.clone_box();
            tentative.place(spec.tenant)?;
            if tentative.placement().open_bins() > server_budget {
                break;
            }
            consolidator = tentative;
        } else {
            consolidator.place(spec.tenant)?;
        }
        admitted.push(*spec);
        if consolidator.placement().open_bins() == server_budget {
            break; // every server is in use: the cluster is "filled up"
        }
    }
    Ok((consolidator, admitted))
}

/// Runs one failure-experiment cell end to end.
///
/// # Errors
///
/// Propagates algorithm construction/placement errors.
pub fn run_failure_experiment(config: &FailureExperimentConfig) -> Result<FailureOutcome> {
    let (consolidator, admitted) =
        fill_servers(&config.algorithm, &config.distribution, config.servers, config.seed)?;
    let placement = consolidator.placement();

    // Worst overload case: the failure set pushing the most load onto a
    // single survivor, under realistic even-split redistribution.
    let failed = validity::worst_failure_set(
        placement,
        config.failures,
        validity::FailoverSemantics::EvenSplit,
    );
    let impact =
        validity::simulate_failures(placement, &failed, validity::FailoverSemantics::EvenSplit);

    let clients: HashMap<TenantId, u32> =
        admitted.iter().map(|s| (s.tenant.id(), s.clients)).collect();
    // Every placed tenant must have a client count; a mismatch between the
    // placement and the admitted specs is a caller bug surfaced as an
    // error, not an opaque panic inside the assignment closure.
    for (id, _, _) in placement.tenants() {
        if !clients.contains_key(&id) {
            return Err(cubefit_core::Error::UnknownTenant { tenant: id });
        }
    }
    let assignments = assignments_from_placement(placement, &|id| clients[&id]);

    let model = LoadModel::tpch_xeon();
    let mix = QueryMix::tpch_like(&model, config.sla_seconds);
    let mut sim = ClusterSim::new(placement.created_bins(), assignments, &mix, &model, config.sim);
    sim.fail_servers(&failed.iter().map(|b| b.index()).collect::<Vec<_>>());
    let unavailable = sim.unavailable_clients();
    let report = sim.run();

    Ok(FailureOutcome {
        algorithm: config.algorithm.label(),
        distribution: config.distribution.label(),
        failures: config.failures,
        tenants: admitted.len(),
        servers_used: placement.open_bins(),
        p99_seconds: report.worst_server_p99(),
        cluster_p99_seconds: report.p99(),
        mean_seconds: report.mean(),
        sla_violated: impact.max_load() > 1.0 + cubefit_core::EPSILON,
        unavailable_clients: unavailable,
        worst_model_load: impact.max_load(),
    })
}

/// Adapter so boxed distributions satisfy the generic sequence builder.
#[derive(Debug)]
struct BoxedClientDistribution(Box<dyn cubefit_workload::ClientDistribution>);

impl cubefit_workload::ClientDistribution for BoxedClientDistribution {
    fn sample_clients(&self, rng: &mut dyn rand::RngCore) -> u32 {
        self.0.sample_clients(rng)
    }

    fn max_clients(&self) -> u32 {
        self.0.max_clients()
    }

    fn label(&self) -> String {
        self.0.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(
        algorithm: AlgorithmSpec,
        failures: usize,
        servers: usize,
    ) -> FailureExperimentConfig {
        FailureExperimentConfig {
            algorithm,
            distribution: DistributionSpec::Uniform { min: 1, max: 15 },
            servers,
            failures,
            sla_seconds: 5.0,
            seed: 11,
            sim: SimConfig::quick(11),
        }
    }

    #[test]
    fn fill_respects_server_budget() {
        let (consolidator, admitted) = fill_servers(
            &AlgorithmSpec::CubeFit { gamma: 2, classes: 5 },
            &DistributionSpec::Uniform { min: 1, max: 15 },
            12,
            3,
        )
        .unwrap();
        assert!(consolidator.placement().open_bins() <= 12);
        assert!(!admitted.is_empty());
        assert_eq!(consolidator.placement().tenant_count(), admitted.len());
    }

    #[test]
    fn cubefit_meets_sla_under_single_failure_small_cluster() {
        let outcome = run_failure_experiment(&quick_config(
            AlgorithmSpec::CubeFit { gamma: 2, classes: 5 },
            1,
            12,
        ))
        .unwrap();
        // Theorem 1 bounds the worst post-failure *model* load by 1.0, and
        // CubeFit can pack right up to that bound, so the worst server can
        // sit exactly at the SLA point; the measured p99 then fluctuates a
        // few percent around the 5 s line while the guarantee itself holds.
        assert!(!outcome.sla_violated);
        assert!(outcome.worst_model_load <= 1.0 + 1e-9);
        assert!(
            outcome.p99_seconds <= 5.0 * 1.05,
            "p99 {} far beyond the boundary",
            outcome.p99_seconds
        );
        assert_eq!(outcome.unavailable_clients, 0);
    }

    #[test]
    fn cubefit_gamma3_meets_sla_under_two_failures_small_cluster() {
        let outcome = run_failure_experiment(&quick_config(
            AlgorithmSpec::CubeFit { gamma: 3, classes: 5 },
            2,
            12,
        ))
        .unwrap();
        assert!(!outcome.sla_violated, "p99 {}", outcome.p99_seconds);
    }

    #[test]
    fn run_is_deterministic_for_a_seed() {
        let run = || {
            run_failure_experiment(&quick_config(
                AlgorithmSpec::CubeFit { gamma: 2, classes: 5 },
                1,
                12,
            ))
            .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.tenants, b.tenants);
        assert_eq!(a.servers_used, b.servers_used);
        assert_eq!(a.unavailable_clients, b.unavailable_clients);
        assert_eq!(a.sla_violated, b.sla_violated);
        assert!((a.p99_seconds - b.p99_seconds).abs() < 1e-12);
        assert!((a.mean_seconds - b.mean_seconds).abs() < 1e-12);
        assert!((a.worst_model_load - b.worst_model_load).abs() < 1e-12);
    }

    #[test]
    fn zero_failures_baseline_is_healthy() {
        let outcome =
            run_failure_experiment(&quick_config(AlgorithmSpec::Rfi { gamma: 2, mu: 0.85 }, 0, 12))
                .unwrap();
        assert!(!outcome.sla_violated, "p99 {}", outcome.p99_seconds);
        assert_eq!(outcome.failures, 0);
    }
}
