//! Mean / standard deviation / confidence-interval helpers.

/// Summary statistics of a sample with a 95% confidence interval on the
/// mean (Student's t for small samples).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator).
    pub stddev: f64,
    /// Half-width of the 95% CI on the mean (0 for n < 2).
    pub ci95: f64,
}

impl Summary {
    /// Computes summary statistics of `samples`.
    #[must_use]
    pub fn of(samples: &[f64]) -> Self {
        let n = samples.len();
        if n == 0 {
            return Summary { n: 0, mean: 0.0, stddev: 0.0, ci95: 0.0 };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return Summary { n, mean, stddev: 0.0, ci95: 0.0 };
        }
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        let stddev = var.sqrt();
        let ci95 = t_value_95(n - 1) * stddev / (n as f64).sqrt();
        Summary { n, mean, stddev, ci95 }
    }

    /// The CI bounds `(low, high)`.
    #[must_use]
    pub fn interval(&self) -> (f64, f64) {
        (self.mean - self.ci95, self.mean + self.ci95)
    }
}

/// Two-sided 95% Student's t critical value for the given degrees of
/// freedom (normal approximation beyond 30).
#[must_use]
pub fn t_value_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        d if d <= 30 => TABLE[d - 1],
        _ => 1.96,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_sample() {
        let s = Summary::of(&[5.0; 10]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.interval(), (5.0, 5.0));
    }

    #[test]
    fn summary_known_values() {
        // Sample 1..=10: mean 5.5, stddev ≈ 3.0277, t(9) = 2.262.
        let samples: Vec<f64> = (1..=10).map(f64::from).collect();
        let s = Summary::of(&samples);
        assert_eq!(s.n, 10);
        assert!((s.mean - 5.5).abs() < 1e-12);
        assert!((s.stddev - 3.02765).abs() < 1e-4);
        let expected_ci = 2.262 * s.stddev / 10f64.sqrt();
        assert!((s.ci95 - expected_ci).abs() < 1e-9);
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(Summary::of(&[]).n, 0);
        let one = Summary::of(&[3.0]);
        assert_eq!(one.mean, 3.0);
        assert_eq!(one.ci95, 0.0);
    }

    #[test]
    fn t_values_decrease_with_df() {
        assert!(t_value_95(1) > t_value_95(5));
        assert!(t_value_95(5) > t_value_95(30));
        assert_eq!(t_value_95(100), 1.96);
        assert!((t_value_95(9) - 2.262).abs() < 1e-9);
        assert!(t_value_95(0).is_infinite());
    }
}
