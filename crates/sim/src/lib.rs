//! # cubefit-sim
//!
//! Experiment harness for the CubeFit reproduction: everything §V of the
//! paper does around the algorithms.
//!
//! * [`runner`] — drive any [`cubefit_core::Consolidator`] over a generated
//!   tenant sequence, timing placement and collecting placement statistics;
//! * [`spec`] — declarative [`spec::AlgorithmSpec`] /
//!   [`spec::DistributionSpec`] descriptions so experiments are data, not
//!   code;
//! * [`experiment`] — multi-seed paired comparisons with 95% confidence
//!   intervals (Fig. 6);
//! * [`failure`] — the cluster failure experiment pipeline: fill 69
//!   servers, select the worst-overload failure set, simulate, report p99
//!   (Fig. 5);
//! * [`churn`] — seeded arrival/departure/failure interleavings with
//!   online re-replication, recovery-cost accounting and the modeled
//!   degraded-window metric;
//! * [`soak`] — the long-horizon variant: million-op steady-state runs
//!   with sampled oracle audits, streaming checkpoints, and failure
//!   scenarios that replay and shrink to pinned regressions;
//! * [`crash`] — deterministic crash-injection for the durability layer:
//!   journaled soak prefixes killed mid-run (clean, torn-tail, or
//!   bit-flipped) whose recovery must be byte-identical and audit-clean;
//! * [`serve`] — the deterministic DES load harness for the placement
//!   service: seeded open/closed-loop clients, burst storms, latency and
//!   shed-rate reporting against the service's SLO;
//! * [`cost`] — the EC2 cost model behind Table I;
//! * [`stats`] — mean/stddev/CI helpers;
//! * [`report`] — plain-text table rendering and JSON output for the bench
//!   binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod churn;
pub mod cost;
pub mod crash;
pub mod experiment;
pub mod failure;
pub mod report;
pub mod runner;
pub mod serve;
pub mod soak;
pub mod spec;
pub mod stats;

pub use churn::{
    run_churn, run_churn_cancellable, run_churn_consolidator, run_churn_journaled, run_churn_with,
    ChurnConfig, ChurnReport, DefragEpoch,
};
pub use cost::CostModel;
pub use crash::{run_crash_plan, CrashFault, CrashOutcome, CrashPlan, CrashVerdict};
pub use cubefit_economics::{CostReport, RentConfig};
pub use experiment::{compare, ComparisonConfig, ComparisonResult};
pub use failure::{run_failure_experiment, FailureExperimentConfig, FailureOutcome};
pub use runner::{run_sequence, run_sequence_batched, run_sequence_with, RunResult};
pub use serve::{
    run_serve, run_serve_journaled, run_serve_with, LatencySummary, ServeConfig, ServeReport,
    ServeRun, ServiceCost, StormProfile,
};
pub use soak::{
    replay, run_soak, run_soak_cancellable, run_soak_crashed, run_soak_journaled, run_soak_with,
    shrink, ShrinkOutcome, SoakConfig, SoakFailure, SoakReport, SoakScenario,
};
pub use spec::{AlgorithmSpec, DistributionSpec};
pub use stats::Summary;
