//! Deterministic crash-injection harness for the durability layer.
//!
//! A [`CrashPlan`] runs a journaled soak for a prefix of its ops and then
//! simulates a crash: the journal is simply *not sealed* (a dead process
//! writes no more bytes), optionally with a fault injected into the log —
//! tearing the final frame mid-write or flipping a bit in acknowledged
//! territory. [`run_crash_plan`] then recovers the journal exactly as
//! `cubefit recover` would and reports whether the recovered placement is
//! bit-identical (as a serialized [`cubefit_core::PlacementDump`]) to the
//! state the live process had acknowledged, and whether it passes the
//! differential audit oracle.
//!
//! Everything is a pure function of the plan: the soak loop is seeded,
//! the journal records decisions (never randomness), and the fault
//! offsets are computed from the log's own framing — no wall clocks, no
//! entropy, so a failing plan is its own repro.

use crate::soak::{run_crash_prefix, SoakConfig};
use cubefit_core::{oracle, Error, PlacementDump, Result};
use cubefit_durability::frame::{self, FrameParse, HEADER_LEN};
use cubefit_durability::{recover, recover_up_to, FsyncPolicy, Journal, WAL_FILE};
use std::fs;
use std::path::Path;

/// The damage a simulated crash inflicts on the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CrashFault {
    /// The process dies between appends: the log is intact but unsealed.
    CleanKill,
    /// The process dies *mid-append*: the final frame is truncated
    /// partway through, the expected torn-tail signature. Recovery must
    /// drop the torn frame with a warning and rewind to the previous one.
    TearTail,
    /// A bit flips inside an already-acknowledged frame (disk rot, a
    /// misdirected write). Recovery must refuse with a typed corruption
    /// error naming the byte offset — never silently replay damaged state.
    FlipBit,
}

/// One deterministic crash experiment.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CrashPlan {
    /// The journaled soak run to crash.
    pub config: SoakConfig,
    /// Ops executed before the simulated kill.
    pub crash_at: u64,
    /// Damage inflicted at the kill point.
    pub fault: CrashFault,
}

/// What recovery produced for one plan.
#[derive(Debug, Clone, PartialEq)]
pub enum CrashOutcome {
    /// Recovery succeeded; the fields grade it against the live run.
    Recovered {
        /// Recovered placement as serialized dump JSON.
        dump_json: String,
        /// Whether the recovered dump is byte-identical to the expected
        /// state (the live placement for [`CrashFault::CleanKill`]; the
        /// last durable prefix for [`CrashFault::TearTail`]).
        identical: bool,
        /// Whether recovery reported a torn tail.
        torn_tail: bool,
        /// Frames replayed on top of the checkpoint.
        frames_replayed: u64,
        /// Highest sequence number folded into the recovered state.
        last_seq: u64,
        /// Whether the differential audit oracle accepts the recovered
        /// placement.
        audit_clean: bool,
    },
    /// Recovery refused the journal with a typed error (the *correct*
    /// outcome for [`CrashFault::FlipBit`]).
    CorruptionDetected {
        /// The error text (includes the byte offset).
        error: String,
    },
}

/// The full result of one crash experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashVerdict {
    /// Ops the journaled prefix actually executed.
    pub ops_run: u64,
    /// The live (pre-crash) placement as serialized dump JSON.
    pub live_dump_json: String,
    /// Sequence number of the last journaled frame before the fault.
    pub journal_seq: u64,
    /// What recovery did.
    pub outcome: CrashOutcome,
}

impl CrashVerdict {
    /// Whether the experiment proved what its fault demands: byte-exact,
    /// audit-clean recovery for kills and tears; typed refusal for
    /// corruption.
    #[must_use]
    pub fn holds(&self) -> bool {
        match &self.outcome {
            CrashOutcome::Recovered { identical, audit_clean, .. } => *identical && *audit_clean,
            CrashOutcome::CorruptionDetected { .. } => true,
        }
    }
}

fn durability_err(detail: impl std::fmt::Display) -> Error {
    Error::Durability { detail: detail.to_string() }
}

/// Byte ranges of every complete frame in the log, in order.
fn frame_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut pos = HEADER_LEN;
    while let FrameParse::Frame { next, .. } = frame::next_frame(bytes, pos) {
        spans.push((pos, next));
        pos = next;
    }
    spans
}

/// Runs one crash experiment in `dir` (created fresh; any previous
/// journal there is discarded).
///
/// # Errors
///
/// Propagates soak/journal errors from the live prefix, I/O errors
/// injecting the fault, and recovery errors *other than* the corruption
/// a [`CrashFault::FlipBit`] plan deliberately provokes.
pub fn run_crash_plan(plan: &CrashPlan, dir: &Path) -> Result<CrashVerdict> {
    // 1. The live prefix: a journaled soak, killed (never sealed) after
    //    `crash_at` ops.
    let journal = Journal::create(dir, plan.config.algorithm.gamma(), FsyncPolicy::Never)?;
    let (report, consolidator) = run_crash_prefix(&plan.config, &journal, plan.crash_at)?;
    let live_dump_json =
        serde_json::to_string(&PlacementDump::from_placement(consolidator.placement()))
            .map_err(durability_err)?;
    let journal_seq = journal.last_seq();
    drop(journal);
    drop(consolidator);

    // 2. Preserve a pristine copy: the torn-tail grader needs the intact
    //    log to reconstruct "the state after the last surviving frame".
    let pristine = dir.join("pristine");
    fs::create_dir_all(&pristine).map_err(durability_err)?;
    for file in [WAL_FILE, cubefit_durability::CHECKPOINT_FILE] {
        let src = dir.join(file);
        if src.exists() {
            fs::copy(&src, pristine.join(file)).map_err(durability_err)?;
        }
    }

    // 3. Inject the fault.
    let wal_path = dir.join(WAL_FILE);
    let bytes = fs::read(&wal_path).map_err(durability_err)?;
    let spans = frame_spans(&bytes);
    match plan.fault {
        CrashFault::CleanKill => {}
        CrashFault::TearTail => {
            // Truncate midway through the final frame. A log with no
            // frames (killed right at a checkpoint) has nothing to tear;
            // that plan degenerates to a clean kill, which is still a
            // valid recovery case.
            if let Some(&(start, end)) = spans.last() {
                let torn_len = start + (end - start) / 2;
                fs::write(&wal_path, &bytes[..torn_len]).map_err(durability_err)?;
            }
        }
        CrashFault::FlipBit => {
            // Flip a payload bit of the FIRST frame: acknowledged
            // territory, well clear of the tail.
            if let Some(&(start, end)) = spans.first() {
                let mut damaged = bytes.clone();
                damaged
                    [start + frame::FRAME_OVERHEAD + (end - start - frame::FRAME_OVERHEAD) / 2] ^=
                    0x10;
                fs::write(&wal_path, &damaged).map_err(durability_err)?;
            }
        }
    }

    // 4. Recover and grade.
    let outcome = match recover(dir) {
        Err(e) => CrashOutcome::CorruptionDetected { error: e.to_string() },
        Ok(state) => {
            let dump_json = serde_json::to_string(&state.dump()).map_err(durability_err)?;
            let expected = match plan.fault {
                // The torn suffix was never durable: the ground truth is
                // the pristine log replayed to the same last seq.
                CrashFault::TearTail => {
                    let prefix = recover_up_to(&pristine, state.last_seq)?;
                    serde_json::to_string(&prefix.dump()).map_err(durability_err)?
                }
                _ => live_dump_json.clone(),
            };
            CrashOutcome::Recovered {
                identical: dump_json == expected,
                torn_tail: state.torn_tail,
                frames_replayed: state.frames_replayed,
                last_seq: state.last_seq,
                audit_clean: oracle::audit(&state.placement).is_ok(),
                dump_json,
            }
        }
    };

    Ok(CrashVerdict { ops_run: report.ops_run, live_dump_json, journal_seq, outcome })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AlgorithmSpec;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cubefit-crash-tests").join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn all_algorithms(gamma: usize) -> Vec<AlgorithmSpec> {
        vec![
            AlgorithmSpec::CubeFit { gamma, classes: 5 },
            AlgorithmSpec::Rfi { gamma, mu: 0.85 },
            AlgorithmSpec::BestFit { gamma },
            AlgorithmSpec::FirstFit { gamma },
            AlgorithmSpec::WorstFit { gamma },
            AlgorithmSpec::NextFit { gamma },
            AlgorithmSpec::RandomFit { gamma, seed: 7 },
        ]
    }

    fn plan(algorithm: AlgorithmSpec, crash_at: u64, fault: CrashFault) -> CrashPlan {
        let config = SoakConfig {
            audit_every: 0, // the harness audits the recovered state itself
            checkpoint_every: 100,
            // Durability is orthogonal to robustness: weaker baselines
            // (e.g. RFI at γ = 3) legitimately trip the Theorem-1 monitor
            // under failure injection, and stopping there would cut the
            // run short of its crash point.
            fail_on_violation: false,
            ..SoakConfig::steady(algorithm, 1_000, 23)
        };
        CrashPlan { config, crash_at, fault }
    }

    #[test]
    fn clean_kill_recovers_bit_identically_for_all_algorithms() {
        for algorithm in all_algorithms(2) {
            let label = algorithm.label();
            let plan = plan(algorithm, 337, CrashFault::CleanKill);
            let verdict = run_crash_plan(&plan, &tmp_dir(&format!("kill-{label}"))).unwrap();
            assert_eq!(verdict.ops_run, 337);
            let CrashOutcome::Recovered { identical, torn_tail, audit_clean, .. } =
                &verdict.outcome
            else {
                panic!("{label}: clean kill must recover, got {:?}", verdict.outcome);
            };
            assert!(identical, "{label}: recovered state must be bit-identical");
            assert!(!torn_tail, "{label}: intact log has no torn tail");
            assert!(audit_clean, "{label}: recovered state must pass the oracle");
            assert!(verdict.holds());
        }
    }

    #[test]
    fn torn_tail_rewinds_to_the_last_durable_frame() {
        for algorithm in all_algorithms(3) {
            let label = algorithm.label();
            let plan = plan(algorithm, 251, CrashFault::TearTail);
            let verdict = run_crash_plan(&plan, &tmp_dir(&format!("tear-{label}"))).unwrap();
            let CrashOutcome::Recovered { identical, torn_tail, last_seq, audit_clean, .. } =
                &verdict.outcome
            else {
                panic!("{label}: a torn tail must still recover, got {:?}", verdict.outcome);
            };
            assert!(torn_tail, "{label}: the tear must be reported");
            assert!(*last_seq < verdict.journal_seq, "{label}: the torn frame is rewound");
            assert!(identical, "{label}: recovery must match the last durable prefix");
            assert!(audit_clean, "{label}: rewound state must pass the oracle");
            assert!(verdict.holds());
        }
    }

    #[test]
    fn flipped_bit_is_refused_with_the_byte_offset() {
        let plan = plan(AlgorithmSpec::CubeFit { gamma: 2, classes: 5 }, 180, CrashFault::FlipBit);
        let verdict = run_crash_plan(&plan, &tmp_dir("flip")).unwrap();
        let CrashOutcome::CorruptionDetected { error } = &verdict.outcome else {
            panic!("mid-log corruption must be refused, got {:?}", verdict.outcome);
        };
        assert!(error.contains("corrupt journal frame at byte"), "{error}");
        assert!(verdict.holds());
    }

    #[test]
    fn crashes_straddling_checkpoints_recover() {
        // Strides of 100 with crashes just before, at, and just after a
        // checkpoint boundary exercise every interleaving of "checkpoint
        // written" × "log truncated".
        for crash_at in [99, 100, 101, 250, 300] {
            let plan = plan(
                AlgorithmSpec::CubeFit { gamma: 2, classes: 5 },
                crash_at,
                CrashFault::CleanKill,
            );
            let verdict = run_crash_plan(&plan, &tmp_dir(&format!("straddle-{crash_at}"))).unwrap();
            assert!(verdict.holds(), "crash at op {crash_at}: {:?}", verdict.outcome);
        }
    }

    #[test]
    fn crash_plans_round_trip_through_json() {
        let plan = plan(AlgorithmSpec::FirstFit { gamma: 2 }, 42, CrashFault::TearTail);
        let json = serde_json::to_string(&plan).unwrap();
        let back: CrashPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
