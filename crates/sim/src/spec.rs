//! Declarative experiment specifications.

use cubefit_baselines::{BestFit, FirstFit, NextFit, RandomFit, Rfi, WorstFit};
use cubefit_core::{Consolidator, CubeFit, CubeFitConfig, Result};
use cubefit_workload::{
    ClientDistribution, ConstantClients, LoadModel, UniformClients, ZipfClients,
};

/// A constructible description of a consolidation algorithm.
///
/// Experiments need to instantiate a *fresh* algorithm per run; a spec is
/// the factory plus a stable label for reports.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum AlgorithmSpec {
    /// CubeFit with `γ` replicas and `K` classes.
    CubeFit {
        /// Replication factor.
        gamma: usize,
        /// Number of size classes.
        classes: usize,
    },
    /// The RFI baseline with `γ` replicas and interleaving parameter `μ`.
    Rfi {
        /// Replication factor.
        gamma: usize,
        /// Interleaving parameter (the paper recommends 0.85).
        mu: f64,
    },
    /// Failover-aware Best Fit.
    BestFit {
        /// Replication factor.
        gamma: usize,
    },
    /// Failover-aware First Fit.
    FirstFit {
        /// Replication factor.
        gamma: usize,
    },
    /// Failover-aware Worst Fit.
    WorstFit {
        /// Replication factor.
        gamma: usize,
    },
    /// Next Fit (bounded space).
    NextFit {
        /// Replication factor.
        gamma: usize,
    },
    /// Random Fit with a probe seed.
    RandomFit {
        /// Replication factor.
        gamma: usize,
        /// RNG seed for probing.
        seed: u64,
    },
}

impl AlgorithmSpec {
    /// Instantiates a fresh consolidator.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors (bad `γ`, `K`, or `μ`).
    pub fn build(&self) -> Result<Box<dyn Consolidator>> {
        Ok(match *self {
            AlgorithmSpec::CubeFit { gamma, classes } => Box::new(CubeFit::new(
                CubeFitConfig::builder().replication(gamma).classes(classes).build()?,
            )),
            AlgorithmSpec::Rfi { gamma, mu } => Box::new(Rfi::new(gamma, mu)?),
            AlgorithmSpec::BestFit { gamma } => Box::new(BestFit::new(gamma)?),
            AlgorithmSpec::FirstFit { gamma } => Box::new(FirstFit::new(gamma)?),
            AlgorithmSpec::WorstFit { gamma } => Box::new(WorstFit::new(gamma)?),
            AlgorithmSpec::NextFit { gamma } => Box::new(NextFit::new(gamma)?),
            AlgorithmSpec::RandomFit { gamma, seed } => Box::new(RandomFit::new(gamma, seed)?),
        })
    }

    /// Replication factor of the spec.
    #[must_use]
    pub fn gamma(&self) -> usize {
        match *self {
            AlgorithmSpec::CubeFit { gamma, .. }
            | AlgorithmSpec::Rfi { gamma, .. }
            | AlgorithmSpec::BestFit { gamma }
            | AlgorithmSpec::FirstFit { gamma }
            | AlgorithmSpec::WorstFit { gamma }
            | AlgorithmSpec::NextFit { gamma }
            | AlgorithmSpec::RandomFit { gamma, .. } => gamma,
        }
    }

    /// Stable label for reports (e.g. `cubefit(γ=2,K=10)`).
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            AlgorithmSpec::CubeFit { gamma, classes } => {
                format!("cubefit(γ={gamma},K={classes})")
            }
            AlgorithmSpec::Rfi { gamma, mu } => format!("rfi(γ={gamma},μ={mu})"),
            AlgorithmSpec::BestFit { gamma } => format!("bestfit(γ={gamma})"),
            AlgorithmSpec::FirstFit { gamma } => format!("firstfit(γ={gamma})"),
            AlgorithmSpec::WorstFit { gamma } => format!("worstfit(γ={gamma})"),
            AlgorithmSpec::NextFit { gamma } => format!("nextfit(γ={gamma})"),
            AlgorithmSpec::RandomFit { gamma, seed } => {
                format!("randomfit(γ={gamma},seed={seed})")
            }
        }
    }
}

/// A constructible description of a tenant-load distribution, always paired
/// with the normalization constant `C` (the paper uses `C = 52`).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum DistributionSpec {
    /// Clients uniform over `min..=max`, loads `c/C` under the normalized
    /// model (or `δ·c+β` when a testbed model is requested).
    Uniform {
        /// Minimum clients.
        min: u32,
        /// Maximum clients.
        max: u32,
    },
    /// Clients zipfian over `1..=C` with the given exponent.
    Zipf {
        /// Zipf exponent.
        exponent: f64,
    },
    /// Constant client count (worked examples).
    Constant {
        /// The fixed client count.
        clients: u32,
    },
}

impl DistributionSpec {
    /// Builds the distribution for normalization constant `c`.
    #[must_use]
    pub fn build(&self, c: u32) -> Box<dyn ClientDistribution> {
        match *self {
            DistributionSpec::Uniform { min, max } => {
                Box::new(UniformClients::new(min, max.min(c)))
            }
            DistributionSpec::Zipf { exponent } => Box::new(ZipfClients::new(exponent, c)),
            DistributionSpec::Constant { clients } => Box::new(ConstantClients::new(clients)),
        }
    }

    /// The normalized load model used by §V.C simulations (`load = c/C`).
    #[must_use]
    pub fn normalized_model(c: u32) -> LoadModel {
        LoadModel::normalized(c)
    }

    /// Stable label for reports.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            DistributionSpec::Uniform { min, max } => format!("uniform({min}-{max})"),
            DistributionSpec::Zipf { exponent } => format!("zipf({exponent})"),
            DistributionSpec::Constant { clients } => format!("constant({clients})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubefit_core::{Load, Tenant};

    #[test]
    fn every_spec_builds_and_places() {
        let specs = [
            AlgorithmSpec::CubeFit { gamma: 2, classes: 5 },
            AlgorithmSpec::Rfi { gamma: 2, mu: 0.85 },
            AlgorithmSpec::BestFit { gamma: 2 },
            AlgorithmSpec::FirstFit { gamma: 2 },
            AlgorithmSpec::WorstFit { gamma: 2 },
            AlgorithmSpec::NextFit { gamma: 2 },
            AlgorithmSpec::RandomFit { gamma: 2, seed: 1 },
        ];
        for spec in &specs {
            let mut algorithm = spec.build().unwrap();
            algorithm.place(Tenant::with_load(Load::new(0.4).unwrap())).unwrap();
            assert_eq!(algorithm.placement().tenant_count(), 1);
            assert_eq!(spec.gamma(), 2);
            assert!(!spec.label().is_empty());
        }
    }

    #[test]
    fn invalid_specs_error() {
        assert!(AlgorithmSpec::CubeFit { gamma: 1, classes: 5 }.build().is_err());
        assert!(AlgorithmSpec::Rfi { gamma: 2, mu: 2.0 }.build().is_err());
    }

    #[test]
    fn distribution_specs_build() {
        let mut rng = rand::thread_rng();
        let u = DistributionSpec::Uniform { min: 1, max: 15 }.build(52);
        assert!(u.sample_clients(&mut rng) <= 15);
        let z = DistributionSpec::Zipf { exponent: 3.0 }.build(52);
        assert!(z.sample_clients(&mut rng) <= 52);
        assert_eq!(DistributionSpec::Uniform { min: 1, max: 15 }.label(), "uniform(1-15)");
        assert_eq!(DistributionSpec::Zipf { exponent: 3.0 }.label(), "zipf(3)");
    }

    #[test]
    fn uniform_is_clamped_to_c() {
        let mut rng = rand::thread_rng();
        let d = DistributionSpec::Uniform { min: 1, max: 100 }.build(52);
        for _ in 0..100 {
            assert!(d.sample_clients(&mut rng) <= 52);
        }
    }

    #[test]
    fn specs_serialize() {
        let spec = AlgorithmSpec::CubeFit { gamma: 2, classes: 10 };
        let json = serde_json::to_string(&spec).unwrap();
        let back: AlgorithmSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}
