//! Deterministic discrete-event load harness for the placement service.
//!
//! Drives a [`PlacementService`] under seeded open-loop (Poisson) and
//! closed-loop client traffic, optionally with a burst storm that
//! multiplies the arrival rate for a window — the overload scenario the
//! admission controller exists for. Everything runs on a simulated clock:
//! service times come from a synthetic [`ServiceCost`] model (never wall
//! clock), interarrivals from a seeded `ChaCha8Rng`, so a run is a pure
//! function of its [`ServeConfig`] and reproduces byte-for-byte on any
//! machine.
//!
//! The harness reports the metrics the service's contract is written in:
//! p50/p99/p999 admitted-request latency, goodput, shed rate, the typed
//! rejection split, degradation-ladder transitions — plus the final
//! placement dump so `cubefit check --audit` can replay every admitted
//! mutation against the oracle after the fact.
//!
//! A [`ShutdownFlag`] is polled between events: when it trips (Ctrl-C in
//! the CLI, or the `interrupt_at_ms` test hook), arrivals stop, the
//! admitted queue drains, and the run returns a partial report flagged
//! `interrupted` instead of dying mid-write.

use crate::spec::{AlgorithmSpec, DistributionSpec};
use cubefit_core::{PlacementDump, Result, Tenant, TenantId};
use cubefit_durability::Journal;
use cubefit_service::{PlacementService, Request, ServiceConfig, ShutdownFlag};
use cubefit_telemetry::Recorder;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// Normalization constant for the client→load model (the paper's C=52).
const LOAD_C: u32 = 52;

/// Synthetic decision-cost model, in simulated milliseconds. Batch
/// service time is
/// `per_batch_ms + ops×per_op_ms + audited_bins×audit_per_bin_ms`,
/// scaled by a seeded jitter factor in `[1−jitter, 1+jitter)`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServiceCost {
    /// Cost per executed mutation.
    pub per_op_ms: f64,
    /// Fixed cost per batch (dispatch overhead).
    pub per_batch_ms: f64,
    /// Cost per open bin walked by an oracle audit — what makes the
    /// full-audit rung expensive as the cluster grows, and the
    /// degradation ladder worth having.
    pub audit_per_bin_ms: f64,
    /// Relative jitter amplitude (0 = deterministic costs).
    pub jitter: f64,
}

impl Default for ServiceCost {
    fn default() -> Self {
        ServiceCost { per_op_ms: 1.0, per_batch_ms: 2.0, audit_per_bin_ms: 0.02, jitter: 0.1 }
    }
}

impl ServiceCost {
    fn batch_ms(&self, ops: usize, audited_bins: usize, rng: &mut ChaCha8Rng) -> f64 {
        let base = self.per_batch_ms
            + ops as f64 * self.per_op_ms
            + audited_bins as f64 * self.audit_per_bin_ms;
        let factor = if self.jitter > 0.0 {
            1.0 + self.jitter * (2.0 * rng.gen_range(0.0..1.0) - 1.0)
        } else {
            1.0
        };
        (base * factor).max(0.01)
    }
}

/// A burst storm: the open-loop arrival rate is multiplied by
/// `rate_multiplier` inside `[start_ms, start_ms + duration_ms)`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StormProfile {
    /// Storm onset, ms into the run.
    pub start_ms: f64,
    /// Storm length, ms.
    pub duration_ms: f64,
    /// Arrival-rate multiplier during the storm.
    pub rate_multiplier: f64,
}

/// Configuration of one service-loop load run — the whole struct is the
/// repro.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServeConfig {
    /// Algorithm behind the service.
    pub algorithm: AlgorithmSpec,
    /// Client-count distribution for arriving tenants.
    pub distribution: DistributionSpec,
    /// Seed driving interarrivals, op mix, loads, and cost jitter.
    pub seed: u64,
    /// Arrivals stop after this much simulated time; the run then drains.
    pub horizon_ms: f64,
    /// Open-loop (Poisson) arrival rate, requests per simulated second.
    pub open_rate_per_sec: f64,
    /// Closed-loop clients, each with one request outstanding.
    pub closed_clients: usize,
    /// Closed-loop think time between a response and the next request.
    pub think_ms: f64,
    /// Optional burst storm on the open-loop rate.
    pub storm: Option<StormProfile>,
    /// Percent of arrivals that remove an existing tenant.
    pub depart_percent: u32,
    /// Percent of arrivals that re-estimate an existing tenant's load.
    pub update_percent: u32,
    /// Synthetic decision-cost model.
    pub cost: ServiceCost,
    /// The service under test.
    pub service: ServiceConfig,
    /// Test hook: trip the shutdown flag at this simulated time, as if
    /// Ctrl-C arrived mid-run.
    pub interrupt_at_ms: Option<f64>,
}

impl ServeConfig {
    /// The standard serve-bench profile: CubeFit (γ=2, K=10) under mixed
    /// open/closed load. With `storm` set, a 4× burst between 5 s and
    /// 10 s pushes offered load past service capacity so the admission
    /// controller must shed to hold the latency SLO.
    #[must_use]
    pub fn bench(seed: u64, storm: bool) -> Self {
        ServeConfig {
            algorithm: AlgorithmSpec::CubeFit { gamma: 2, classes: 10 },
            distribution: DistributionSpec::Uniform { min: 1, max: 15 },
            seed,
            horizon_ms: 20_000.0,
            open_rate_per_sec: 300.0,
            closed_clients: 8,
            think_ms: 50.0,
            storm: storm.then_some(StormProfile {
                start_ms: 5_000.0,
                duration_ms: 5_000.0,
                rate_multiplier: 4.0,
            }),
            depart_percent: 35,
            update_percent: 25,
            cost: ServiceCost::default(),
            service: ServiceConfig {
                limiter: cubefit_service::LimiterSpec::aimd(4, 64),
                ..ServiceConfig::default()
            },
            interrupt_at_ms: None,
        }
    }

    fn validate(&self) -> std::result::Result<(), String> {
        if self.horizon_ms.is_nan() || self.horizon_ms <= 0.0 {
            return Err("horizon must be positive".to_owned());
        }
        if self.open_rate_per_sec < 0.0 {
            return Err("open-loop rate must be >= 0".to_owned());
        }
        if self.open_rate_per_sec == 0.0 && self.closed_clients == 0 {
            return Err("no load: zero open-loop rate and zero closed clients".to_owned());
        }
        if self.depart_percent + self.update_percent > 90 {
            return Err("depart + update percent must leave >= 10% placements".to_owned());
        }
        if let Some(storm) = self.storm {
            if storm.rate_multiplier.is_nan() || storm.rate_multiplier < 1.0 {
                return Err("storm multiplier must be >= 1".to_owned());
            }
            if storm.duration_ms.is_nan() || storm.duration_ms <= 0.0 {
                return Err("storm duration must be positive".to_owned());
            }
        }
        Ok(())
    }
}

/// Latency summary over every completed (admitted) request, exact — not
/// bucketed — since the harness owns all samples.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct LatencySummary {
    /// Median, ms.
    pub p50_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
    /// 99.9th percentile, ms.
    pub p999_ms: f64,
    /// Mean, ms.
    pub mean_ms: f64,
    /// Worst completed request, ms.
    pub max_ms: f64,
}

impl LatencySummary {
    fn from_samples(samples: &mut [f64]) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable_by(f64::total_cmp);
        let rank = |q: f64| -> f64 {
            let idx = ((samples.len() as f64) * q).ceil() as usize;
            samples[idx.clamp(1, samples.len()) - 1]
        };
        LatencySummary {
            p50_ms: rank(0.50),
            p99_ms: rank(0.99),
            p999_ms: rank(0.999),
            mean_ms: samples.iter().sum::<f64>() / samples.len() as f64,
            max_ms: *samples.last().unwrap(),
        }
    }
}

/// Everything one serve run produced.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServeReport {
    /// Algorithm label.
    pub algorithm: String,
    /// Admission-limiter label.
    pub limiter: String,
    /// Seed of the run.
    pub seed: u64,
    /// Whether a storm profile was active.
    pub storm: bool,
    /// Simulated duration actually covered (≥ horizon unless
    /// interrupted).
    pub duration_ms: f64,
    /// Requests offered (admitted or not).
    pub offered: u64,
    /// Admitted requests executed to completion.
    pub completed: u64,
    /// Rejections by the admission limiter.
    pub shed: u64,
    /// Rejections by the queue backstop.
    pub queue_full: u64,
    /// Admitted requests that expired while queued.
    pub deadline_expired: u64,
    /// `shed / offered` (0 when nothing was offered).
    pub shed_rate: f64,
    /// Completed requests per simulated second.
    pub goodput_per_sec: f64,
    /// Latency over completed requests.
    pub latency: LatencySummary,
    /// The service's p99 SLO, for the gate.
    pub slo_p99_ms: f64,
    /// Whether completed-request p99 held the SLO.
    pub p99_within_slo: bool,
    /// Batches executed.
    pub batches: u64,
    /// Oracle audits the degradation ladder ran.
    pub audits: u64,
    /// Divergences those audits found (must be 0).
    pub audit_divergences: u64,
    /// Ladder steps toward less auditing.
    pub ladder_down: u64,
    /// Ladder steps toward more auditing.
    pub ladder_up: u64,
    /// Audit rung at the end of the run.
    pub final_audit_mode: String,
    /// Admission limit at the end of the run.
    pub final_limit: usize,
    /// Tenants placed at the end of the run.
    pub tenants: usize,
    /// Open bins at the end of the run.
    pub bins: usize,
    /// Whether the final placement holds the Theorem-1 reserve.
    pub robust: bool,
    /// True when the run was cut short by the shutdown flag; the report
    /// covers everything admitted before the interrupt.
    pub interrupted: bool,
}

/// A finished run: the report plus the final placement dump, ready for
/// `cubefit check --audit`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServeRun {
    /// Metrics of the run.
    pub report: ServeReport,
    /// Final placement, replayable against the oracle.
    pub dump: PlacementDump,
}

/// Discrete event kinds, ordered by time through [`Event`].
#[derive(Debug, Clone, PartialEq)]
enum EventKind {
    /// Open-loop Poisson arrival.
    OpenArrival,
    /// Closed-loop client issues its next request.
    ClosedArrival { client: usize },
    /// The executing batch finishes.
    BatchDone,
    /// The `interrupt_at_ms` hook fires.
    Interrupt,
}

#[derive(Debug, Clone, PartialEq)]
struct Event {
    at_ms: f64,
    seq: u64,
    kind: EventKind,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops
        // first, with the insertion sequence as a deterministic tiebreak.
        other.at_ms.total_cmp(&self.at_ms).then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Who is waiting on an admitted request, and what it will do.
#[derive(Debug, Clone, Copy)]
struct PendingOp {
    /// `Some` for closed-loop requests: the client to wake on completion.
    client: Option<usize>,
    /// For `Place` requests, the tenant to add to the live pool once the
    /// placement has actually executed.
    places: Option<TenantId>,
}

struct Harness {
    config: ServeConfig,
    rng: ChaCha8Rng,
    events: BinaryHeap<Event>,
    next_seq: u64,
    service: PlacementService,
    pending: HashMap<u64, PendingOp>,
    /// Tenants whose placement completed and who are not yet targeted by
    /// a remove/update — the pool departures and updates draw from.
    pool: Vec<TenantId>,
    next_tenant: u64,
    latencies: Vec<f64>,
    draining: bool,
    interrupted: bool,
    now_ms: f64,
}

impl Harness {
    fn push(&mut self, at_ms: f64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(Event { at_ms, seq, kind });
    }

    fn open_rate_per_ms(&self, at_ms: f64) -> f64 {
        let mut rate = self.config.open_rate_per_sec / 1_000.0;
        if let Some(storm) = self.config.storm {
            if at_ms >= storm.start_ms && at_ms < storm.start_ms + storm.duration_ms {
                rate *= storm.rate_multiplier;
            }
        }
        rate
    }

    fn schedule_next_open_arrival(&mut self, from_ms: f64) {
        let rate = self.open_rate_per_ms(from_ms);
        if rate <= 0.0 {
            return;
        }
        let u: f64 = self.rng.gen_range(0.0..1.0);
        let gap = -(1.0 - u).ln() / rate;
        let at = from_ms + gap;
        if at < self.config.horizon_ms {
            self.push(at, EventKind::OpenArrival);
        }
    }

    /// Draws the next request from the op mix. Removes and updates target
    /// live pool members; an empty pool falls back to placements.
    fn draw_request(&mut self) -> Request {
        let roll = self.rng.gen_range(0..100u32);
        if roll < self.config.depart_percent && !self.pool.is_empty() {
            let idx = self.rng.gen_range(0..self.pool.len());
            // Leave the pool at *offer* time so no later draw targets a
            // tenant with a pending removal.
            return Request::Remove(self.pool.swap_remove(idx));
        }
        if roll < self.config.depart_percent + self.config.update_percent && !self.pool.is_empty() {
            let idx = self.rng.gen_range(0..self.pool.len());
            let tenant = self.pool[idx];
            let load = self.sample_load();
            return Request::UpdateLoad(tenant, load);
        }
        let id = TenantId::new(self.next_tenant);
        self.next_tenant += 1;
        let load = self.sample_load();
        Request::Place(Tenant::new(id, cubefit_core::Load::new(load).expect("model load")))
    }

    fn sample_load(&mut self) -> f64 {
        let distribution = self.config.distribution.build(LOAD_C);
        let model = DistributionSpec::normalized_model(LOAD_C);
        let clients = distribution.sample_clients(&mut self.rng);
        f64::from(model.load(clients))
    }

    /// Offers one request; on admission, records who waits on it.
    fn arrive(&mut self, client: Option<usize>) -> Result<()> {
        let request = self.draw_request();
        let places = match &request {
            Request::Place(tenant) => Some(tenant.id()),
            _ => None,
        };
        match self.service.offer(request, self.now_ms) {
            Ok(id) => {
                self.pending.insert(id, PendingOp { client, places });
            }
            Err(_rejected) => {
                // Typed rejection already accounted inside the service;
                // a closed-loop client backs off one think time.
                if let Some(client) = client {
                    self.push(
                        self.now_ms + self.config.think_ms.max(1.0),
                        EventKind::ClosedArrival { client },
                    );
                }
            }
        }
        self.dispatch()
    }

    /// Starts a batch if the service is idle and has live work, charging
    /// the cost model for its simulated duration.
    fn dispatch(&mut self) -> Result<()> {
        if self.service.busy() {
            return Ok(());
        }
        let work = self.service.start_batch(self.now_ms)?;
        for id in &work.expired {
            if let Some(op) = self.pending.remove(id) {
                if let Some(client) = op.client {
                    self.push(
                        self.now_ms + self.config.think_ms.max(1.0),
                        EventKind::ClosedArrival { client },
                    );
                }
            }
        }
        if work.ops > 0 {
            let cost = self.config.cost;
            let duration = cost.batch_ms(work.ops, work.audited_bins, &mut self.rng);
            self.push(self.now_ms + duration, EventKind::BatchDone);
        }
        Ok(())
    }

    fn batch_done(&mut self) -> Result<()> {
        let completed = self.service.complete_batch(self.now_ms);
        for op in completed {
            self.latencies.push(op.latency_ms);
            if let Some(pending) = self.pending.remove(&op.id) {
                if let Some(tenant) = pending.places {
                    self.pool.push(tenant);
                }
                if let Some(client) = pending.client {
                    if !self.draining {
                        self.push(
                            self.now_ms + self.config.think_ms.max(1.0),
                            EventKind::ClosedArrival { client },
                        );
                    }
                }
            }
        }
        self.dispatch()
    }
}

/// Runs the harness with a disabled recorder and a private shutdown flag.
///
/// # Errors
///
/// Propagates configuration and consolidator errors.
pub fn run_serve(config: ServeConfig) -> Result<ServeRun> {
    run_serve_with(config, Recorder::disabled(), &ShutdownFlag::new())
}

/// Runs the harness with explicit telemetry and shutdown wiring.
///
/// # Errors
///
/// Propagates configuration and consolidator errors.
pub fn run_serve_with(
    config: ServeConfig,
    recorder: Recorder,
    shutdown: &ShutdownFlag,
) -> Result<ServeRun> {
    run_serve_inner(config, recorder, shutdown, None)
}

/// Like [`run_serve_with`], but every mutation the service applies is
/// journaled before acknowledgement and the journal is checkpointed every
/// `checkpoint_every_batches` batches. The journal is sealed when the run
/// finishes — including a cooperative Ctrl-C drain — so an unsealed
/// journal on disk always means the process was killed.
///
/// # Errors
///
/// Propagates configuration, consolidator, and journal I/O errors.
pub fn run_serve_journaled(
    config: ServeConfig,
    recorder: Recorder,
    journal: &Journal,
    checkpoint_every_batches: u64,
    shutdown: &ShutdownFlag,
) -> Result<ServeRun> {
    run_serve_inner(config, recorder, shutdown, Some((journal.clone(), checkpoint_every_batches)))
}

fn run_serve_inner(
    config: ServeConfig,
    recorder: Recorder,
    shutdown: &ShutdownFlag,
    journal: Option<(Journal, u64)>,
) -> Result<ServeRun> {
    config.validate().map_err(cubefit_core::Error::invalid_config)?;
    let consolidator = config.algorithm.build()?;
    let service = match journal {
        Some((journal, stride)) => {
            PlacementService::journaled(consolidator, config.service, recorder, journal, stride)
        }
        None => PlacementService::new(consolidator, config.service, recorder),
    }
    .map_err(cubefit_core::Error::invalid_config)?;

    let mut harness = Harness {
        rng: ChaCha8Rng::seed_from_u64(config.seed),
        events: BinaryHeap::new(),
        next_seq: 0,
        service,
        pending: HashMap::new(),
        pool: Vec::new(),
        next_tenant: 0,
        latencies: Vec::new(),
        draining: false,
        interrupted: false,
        now_ms: 0.0,
        config,
    };

    if let Some(at) = harness.config.interrupt_at_ms {
        harness.push(at, EventKind::Interrupt);
    }
    harness.schedule_next_open_arrival(0.0);
    for client in 0..harness.config.closed_clients {
        // Stagger the first closed-loop wave so clients do not arrive in
        // one burst at t=0.
        let jitter: f64 = harness.rng.gen_range(0.0..harness.config.think_ms.max(1.0));
        harness.push(jitter, EventKind::ClosedArrival { client });
    }

    while let Some(event) = harness.events.pop() {
        harness.now_ms = harness.now_ms.max(event.at_ms);
        if !harness.draining && shutdown.is_set() {
            harness.draining = true;
            harness.interrupted = true;
        }
        match event.kind {
            EventKind::OpenArrival => {
                if !harness.draining {
                    let at = event.at_ms;
                    harness.schedule_next_open_arrival(at);
                    harness.arrive(None)?;
                }
            }
            EventKind::ClosedArrival { client } => {
                if !harness.draining && event.at_ms < harness.config.horizon_ms {
                    harness.arrive(Some(client))?;
                }
            }
            EventKind::BatchDone => {
                harness.batch_done()?;
            }
            EventKind::Interrupt => {
                harness.draining = true;
                harness.interrupted = true;
            }
        }
        // After the horizon or an interrupt, only BatchDone events remain
        // relevant; the heap drains naturally because closed-loop clients
        // stop rescheduling and open arrivals stop being pushed.
    }

    // Drain whatever is still queued: admitted work must either execute
    // or be accounted as expired before the report is written.
    while harness.service.queue_depth() > 0 || harness.service.busy() {
        if harness.service.busy() {
            // Jump the clock to completion: cost-model time for the
            // executing batch is unknowable here, so charge one per-op
            // cost per outstanding op, jitter-free.
            harness.now_ms += harness.config.cost.per_batch_ms
                + harness.config.cost.per_op_ms * harness.config.service.batch_max as f64;
            harness.batch_done()?;
        } else {
            harness.dispatch()?;
            if !harness.service.busy() && harness.service.queue_depth() == 0 {
                break;
            }
        }
    }

    let stats = harness.service.stats();
    debug_assert!(harness.service.accounting_balanced());
    harness.service.seal_journal()?;
    let duration_ms = harness.now_ms.max(harness.config.horizon_ms.min(harness.now_ms + 1.0));
    let latency = LatencySummary::from_samples(&mut harness.latencies);
    let placement = harness.service.consolidator().placement();
    let slo = harness.config.service.slo_p99_ms;
    let report = ServeReport {
        algorithm: harness.config.algorithm.label(),
        limiter: harness.config.service.limiter.label(),
        seed: harness.config.seed,
        storm: harness.config.storm.is_some(),
        duration_ms,
        offered: stats.offered,
        completed: stats.completed,
        shed: stats.shed,
        queue_full: stats.queue_full,
        deadline_expired: stats.deadline_expired,
        shed_rate: if stats.offered == 0 { 0.0 } else { stats.shed as f64 / stats.offered as f64 },
        goodput_per_sec: if duration_ms > 0.0 {
            stats.completed as f64 / (duration_ms / 1_000.0)
        } else {
            0.0
        },
        latency,
        slo_p99_ms: slo,
        p99_within_slo: latency.p99_ms <= slo,
        batches: stats.batches,
        audits: stats.audits,
        audit_divergences: stats.audit_divergences,
        ladder_down: stats.ladder_down,
        ladder_up: stats.ladder_up,
        final_audit_mode: harness.service.audit_mode().label().to_owned(),
        final_limit: harness.service.limit(),
        tenants: placement.tenant_count(),
        bins: placement.open_bins(),
        robust: placement.is_robust(),
        interrupted: harness.interrupted,
    };
    let dump = harness.service.dump();
    Ok(ServeRun { report, dump })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubefit_core::oracle;

    fn quick(seed: u64, storm: bool) -> ServeConfig {
        let mut config = ServeConfig::bench(seed, storm);
        config.horizon_ms = 3_000.0;
        config
    }

    #[test]
    fn baseline_run_is_deterministic_and_auditable() {
        let a = run_serve(quick(7, false)).unwrap();
        let b = run_serve(quick(7, false)).unwrap();
        assert_eq!(a, b, "same config must reproduce byte-for-byte");
        assert!(a.report.completed > 0);
        assert!(!a.report.interrupted);
        assert_eq!(
            a.report.offered,
            a.report.completed + a.report.shed + a.report.queue_full + a.report.deadline_expired,
            "every offered request is accounted after the drain"
        );
        let placement = a.dump.to_placement().unwrap();
        assert!(oracle::audit(&placement).is_ok(), "final dump replays clean");
    }

    #[test]
    fn journaled_serve_matches_and_recovers_even_when_interrupted() {
        let dir = std::env::temp_dir().join("cubefit-serve-journal-tests").join("interrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = quick(7, false);
        // Cooperative Ctrl-C mid-run: the drain must still seal the log.
        config.interrupt_at_ms = Some(1_500.0);
        let plain = run_serve(config.clone()).unwrap();
        assert!(plain.report.interrupted);
        let journal =
            cubefit_durability::Journal::create(&dir, 2, cubefit_durability::FsyncPolicy::Never)
                .unwrap();
        let run =
            run_serve_journaled(config, Recorder::disabled(), &journal, 16, &ShutdownFlag::new())
                .unwrap();
        assert_eq!(run, plain, "journaling must not perturb the run");
        let state = cubefit_durability::recover(&dir).unwrap();
        assert!(state.sealed, "an interrupted drain still seals the journal");
        assert_eq!(
            serde_json::to_string(&state.dump()).unwrap(),
            serde_json::to_string(&run.dump).unwrap(),
            "recovered placement must equal the final dump byte-for-byte"
        );
        assert!(oracle::audit(&state.placement).is_ok());
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run_serve(quick(1, false)).unwrap();
        let b = run_serve(quick(2, false)).unwrap();
        assert_ne!(a.report.offered, b.report.offered);
    }

    #[test]
    fn storm_sheds_while_holding_the_slo() {
        let mut config = ServeConfig::bench(11, true);
        config.horizon_ms = 8_000.0;
        config.storm =
            Some(StormProfile { start_ms: 2_000.0, duration_ms: 4_000.0, rate_multiplier: 6.0 });
        let run = run_serve(config).unwrap();
        assert!(run.report.shed > 0, "overload must shed: {:?}", run.report);
        assert!(
            run.report.p99_within_slo,
            "admitted p99 must hold the SLO: {:?}",
            run.report.latency
        );
        assert_eq!(run.report.audit_divergences, 0);
    }

    #[test]
    fn interrupt_drains_and_flags_the_report() {
        let mut config = quick(3, false);
        config.interrupt_at_ms = Some(1_000.0);
        let run = run_serve(config).unwrap();
        assert!(run.report.interrupted);
        assert!(run.report.duration_ms < 3_000.0, "run stopped early");
        assert!(run.report.completed > 0, "work admitted before the interrupt completed");
        assert_eq!(
            run.report.offered,
            run.report.completed
                + run.report.shed
                + run.report.queue_full
                + run.report.deadline_expired,
            "the drain leaves no request unaccounted"
        );
        let placement = run.dump.to_placement().unwrap();
        assert!(oracle::audit(&placement).is_ok());
    }

    #[test]
    fn rejects_invalid_configs() {
        let mut config = quick(1, false);
        config.horizon_ms = 0.0;
        assert!(run_serve(config).is_err());
        let mut config = quick(1, false);
        config.open_rate_per_sec = 0.0;
        config.closed_clients = 0;
        assert!(run_serve(config).is_err());
        let mut config = quick(1, false);
        config.depart_percent = 60;
        config.update_percent = 40;
        assert!(run_serve(config).is_err());
    }
}
