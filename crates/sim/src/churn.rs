//! Seeded churn-and-recovery chaos harness.
//!
//! Drives a single consolidator through a reproducible interleaving of
//! tenant arrivals, tenant departures and server-failure events (each
//! immediately followed by online re-replication), then reports the
//! aggregate recovery cost and the modeled *degraded window* — the time
//! during which the γ−1-failure guarantee of Theorem 1 is suspended while
//! orphaned replicas are being rebuilt.
//!
//! Every decision is drawn from one seeded RNG, so a run is a pure function
//! of its [`ChurnConfig`]: the same seed replays the same op sequence on
//! every algorithm, which is what makes cross-algorithm churn comparisons
//! (and bug reproduction from a JSON report) meaningful.
//!
//! With [`ChurnConfig::audit`] set, the consolidator runs inside
//! [`AuditedConsolidator`], so every arrival at the audit stride and every
//! departure/recovery is replayed against the quadratic oracle — the chaos
//! harness then doubles as a differential fuzzer.

use crate::spec::{AlgorithmSpec, DistributionSpec};
use cubefit_core::monitor::{classify_with, DEFAULT_AT_RISK_SLACK};
use cubefit_core::oracle::AuditedConsolidator;
use cubefit_core::recovery::{self, RecoveryReport};
use cubefit_core::{BinId, Consolidator, FragmentationStats, Result, Tenant, TenantId};
use cubefit_defrag::{DefragObjective, DefragOutcome, MigrationBudget, MitigationOutcome};
use cubefit_durability::{Journal, JournaledConsolidator};
use cubefit_economics::{CostReport, LeaseLedger, RentConfig};
use cubefit_service::ShutdownFlag;
use cubefit_telemetry::{Recorder, TraceEvent};
use cubefit_workload::{DriftEngine, DriftProfile, LoadModel};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

// The degraded-window constants now live in `cubefit-economics` (the
// migration pricing model is built from them); re-exported here so
// existing `churn::REPLICA_RESTORE_SECONDS` imports keep working.
pub use cubefit_economics::{LOAD_TRANSFER_SECONDS, REPLICA_RESTORE_SECONDS};

/// Deterministic degraded-window model for one failure event: replicas are
/// rebuilt sequentially, each paying a fixed setup cost plus transfer time
/// proportional to its load. Wall-clock-free by design so churn runs are
/// reproducible byte-for-byte.
#[must_use]
pub fn degraded_seconds(recovery: &RecoveryReport) -> f64 {
    recovery.replicas_migrated as f64 * REPLICA_RESTORE_SECONDS
        + recovery.moved_load * LOAD_TRANSFER_SECONDS
}

/// Configuration of one churn run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChurnConfig {
    /// Algorithm under churn.
    pub algorithm: AlgorithmSpec,
    /// Client-count distribution for arriving tenants.
    pub distribution: DistributionSpec,
    /// Total operations (arrivals + departures + failure events).
    pub ops: usize,
    /// Seed driving the op mix, arrival loads, departure and failure picks.
    pub seed: u64,
    /// Percent of ops that are departures (when any tenant is alive).
    pub departure_percent: u32,
    /// Percent of ops that are failure events (when any bin is loaded).
    pub failure_percent: u32,
    /// Servers failed per event, clamped to `0..=γ−1` at run time so every
    /// tenant keeps a live replica; an effective value of 0 (e.g. `γ = 1`,
    /// whose failover reserve is empty) skips failure ops entirely.
    pub max_failures: usize,
    /// Replay placements, departures and recoveries against the quadratic
    /// oracle (panics on divergence — the chaos harness as a fuzzer).
    pub audit: bool,
    /// Run a defragmentation epoch (plan + atomic apply) every N ops;
    /// `0` disables defrag entirely.
    pub defrag_every: usize,
    /// Migration budget for each defrag epoch.
    pub defrag_budget: MigrationBudget,
    /// What defrag epochs optimize for: open bins (the default) or
    /// dollars (requires [`ChurnConfig::rent`]; without a ledger the
    /// cost objective falls back to bin count).
    pub defrag_objective: DefragObjective,
    /// Per-tenant load drift between ops (`None` keeps loads static, the
    /// pre-drift behaviour).
    pub drift: Option<DriftConfig>,
    /// Renting model (`None` keeps servers free to hold open, the
    /// pre-renting behaviour). When set, each op advances simulated time
    /// by `rent.ms_per_op`, the lease ledger bills every open server in
    /// blocks, and the report carries a [`CostReport`].
    pub rent: Option<RentConfig>,
}

/// Load-drift settings for a churn run: how tenant loads evolve, how often
/// a mitigation epoch runs, and under what migration budget.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DriftConfig {
    /// How tracked client counts evolve each op.
    pub profile: DriftProfile,
    /// Run a mitigation epoch (monitor + plan + atomic apply) every N ops;
    /// `0` leaves drift unmitigated (the monitor still records violations).
    pub mitigate_every: usize,
    /// Migration budget for each mitigation epoch.
    pub budget: MigrationBudget,
    /// Margin below which the invariant monitor flags a server as at risk.
    pub at_risk_slack: f64,
}

impl DriftConfig {
    /// A symmetric client-count random walk with no mitigation — the
    /// "watch it break" configuration.
    #[must_use]
    pub fn random_walk(max_step: u32) -> Self {
        DriftConfig {
            profile: DriftProfile::RandomWalk { max_step },
            mitigate_every: 0,
            budget: MigrationBudget::unlimited(),
            at_risk_slack: DEFAULT_AT_RISK_SLACK,
        }
    }

    /// The same walk with a mitigation epoch every `every` ops.
    #[must_use]
    pub fn mitigated(max_step: u32, every: usize, budget: MigrationBudget) -> Self {
        DriftConfig { mitigate_every: every, budget, ..DriftConfig::random_walk(max_step) }
    }
}

impl ChurnConfig {
    /// A balanced default mix: 25% departures, 10% failure events.
    #[must_use]
    pub fn balanced(algorithm: AlgorithmSpec, ops: usize, seed: u64) -> Self {
        ChurnConfig {
            max_failures: algorithm.gamma().saturating_sub(1),
            algorithm,
            distribution: DistributionSpec::Uniform { min: 1, max: 15 },
            ops,
            seed,
            departure_percent: 25,
            failure_percent: 10,
            audit: false,
            defrag_every: 0,
            defrag_budget: MigrationBudget::default(),
            defrag_objective: DefragObjective::Bins,
            drift: None,
            rent: None,
        }
    }
}

/// Mutable renting state threaded through a simulation loop: the live
/// lease ledger plus the migration spend, predicted-vs-realized defrag
/// savings, and demand integrals accumulated so far. Shared between
/// churn and soak.
#[derive(Debug, Clone)]
pub(crate) struct RentState {
    pub(crate) config: RentConfig,
    pub(crate) ledger: LeaseLedger,
    defrag_migration_usd: f64,
    recovery_migration_usd: f64,
    predicted_savings_usd: f64,
    realized_savings_usd: f64,
    load_ms_integral: f64,
    need_ms_integral: f64,
}

impl RentState {
    pub(crate) fn new(config: RentConfig) -> Self {
        RentState {
            ledger: LeaseLedger::new(config.terms),
            config,
            defrag_migration_usd: 0.0,
            recovery_migration_usd: 0.0,
            predicted_savings_usd: 0.0,
            realized_savings_usd: 0.0,
            load_ms_integral: 0.0,
            need_ms_integral: 0.0,
        }
    }

    /// Advances the clock by `ops` operations' worth of simulated time,
    /// accumulates the demand integrals over the elapsed interval, and
    /// reconciles the ledger against the currently open bins, emitting
    /// [`TraceEvent::RentAccrued`] when new blocks were billed.
    pub(crate) fn tick(
        &mut self,
        ops: u64,
        placement: &cubefit_core::Placement,
        recorder: &Recorder,
    ) {
        let dt_ms = ops * self.config.ms_per_op;
        let load = placement.total_load();
        self.load_ms_integral += load * dt_ms as f64;
        self.need_ms_integral += load.ceil() * dt_ms as f64;
        let now = self.ledger.now_ms() + dt_ms;
        let open = placement.bins().filter(|b| b.level() > 0.0).map(|b| b.id());
        let billed = self.ledger.advance(now, open);
        if billed > 0 {
            recorder.emit(|| TraceEvent::RentAccrued {
                now_ms: now,
                blocks: billed,
                open_servers: self.ledger.active_leases(),
                accrued_usd: self.ledger.accrued_usd(),
            });
        }
    }

    /// Prices a recovery's re-replication streaming.
    pub(crate) fn price_recovery(&mut self, recovery: &RecoveryReport) {
        self.recovery_migration_usd +=
            self.config.pricing.migration_usd(recovery.replicas_migrated, recovery.moved_load);
    }

    /// Prices planner-driven (defrag/mitigation) migration streaming.
    pub(crate) fn price_moves(&mut self, replicas: usize, moved_load: f64) {
        self.defrag_migration_usd += self.config.pricing.migration_usd(replicas, moved_load);
    }

    /// Accumulates one epoch's predicted-vs-realized defrag savings.
    pub(crate) fn settle_savings(&mut self, predicted_net_usd: f64, realized_net_usd: f64) {
        self.predicted_savings_usd += predicted_net_usd;
        self.realized_savings_usd += realized_net_usd;
    }

    pub(crate) fn report(&self) -> CostReport {
        CostReport::from_ledger(
            &self.ledger,
            self.config.ms_per_op,
            self.defrag_migration_usd,
            self.recovery_migration_usd,
            self.predicted_savings_usd,
            self.realized_savings_usd,
            self.load_ms_integral,
            self.need_ms_integral,
        )
    }
}

/// One server-failure event and its recovery, as it happened.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FailureEvent {
    /// Zero-based op index at which the failure struck.
    pub at_op: usize,
    /// Bins (servers) failed simultaneously.
    pub failed_bins: Vec<usize>,
    /// Replicas orphaned by the failure.
    pub orphaned: usize,
    /// Cost of re-homing them.
    pub recovery: RecoveryReport,
    /// Modeled repair time ([`degraded_seconds`]).
    pub degraded_seconds: f64,
    /// Whether Theorem 1 held again once recovery completed.
    pub robust_after: bool,
}

/// One defragmentation epoch of a churn run, as it happened.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DefragEpoch {
    /// Zero-based op index after which the epoch ran.
    pub at_op: usize,
    /// Steps the planner scheduled.
    pub planned_steps: usize,
    /// What applying the plan actually did (atomic abort included).
    pub outcome: DefragOutcome,
    /// Open bins before the epoch.
    pub open_bins_before: usize,
    /// Open bins after the epoch.
    pub open_bins_after: usize,
}

/// One invariant-mitigation epoch of a churn run, as it happened. Epochs
/// where the monitor found nothing to repair are not recorded.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MitigationEpoch {
    /// Zero-based op index after which the epoch ran.
    pub at_op: usize,
    /// Servers the monitor flagged (violated + at risk) at planning time.
    pub attention_before: usize,
    /// Servers violated at planning time.
    pub violated_before: usize,
    /// Steps the planner scheduled under the epoch budget.
    pub planned_steps: usize,
    /// What applying the plan actually did, including the honest residue.
    pub outcome: MitigationOutcome,
}

/// Everything a churn run produced, JSON-serializable for reports.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChurnReport {
    /// Algorithm label.
    pub algorithm: String,
    /// Replication factor.
    pub gamma: usize,
    /// Seed that reproduces the run.
    pub seed: u64,
    /// Operations executed.
    pub ops: usize,
    /// Tenant arrivals.
    pub arrivals: usize,
    /// Tenant departures.
    pub departures: usize,
    /// Total load removed by departures.
    pub departed_load: f64,
    /// Each failure event in order.
    pub failure_events: Vec<FailureEvent>,
    /// Each defragmentation epoch in order (empty when defrag is off).
    pub defrag_epochs: Vec<DefragEpoch>,
    /// Servers closed by defragmentation across the whole run.
    pub servers_closed_by_defrag: usize,
    /// Load-drift updates applied through `Consolidator::update_load`.
    pub drift_updates: usize,
    /// Servers the invariant monitor newly caught in violation (each
    /// emitted once as [`TraceEvent::InvariantViolated`]).
    pub drift_violations: usize,
    /// Each mitigation epoch that found work, in order.
    pub mitigation_epochs: Vec<MitigationEpoch>,
    /// Flagged servers restored to safe margins by mitigation, run-wide.
    pub servers_cured_by_mitigation: usize,
    /// Run-level aggregate recovery cost.
    pub recovery: RecoveryReport,
    /// Sum of all degraded windows (modeled seconds).
    pub degraded_seconds_total: f64,
    /// Longest single degraded window (modeled seconds).
    pub degraded_seconds_max: f64,
    /// Tenants alive at the end.
    pub final_tenants: usize,
    /// Servers in use at the end.
    pub final_open_bins: usize,
    /// Total placed load at the end.
    pub final_load: f64,
    /// Fragmentation statistics of the final placement.
    pub fragmentation: FragmentationStats,
    /// Servers violated in the final placement (monitor view).
    pub final_violated: usize,
    /// Servers at risk in the final placement (monitor view).
    pub final_at_risk: usize,
    /// Whether the final placement satisfies Theorem 1.
    pub robust: bool,
    /// True when the run was cut short by a shutdown request; `ops` then
    /// holds the count actually executed and the report covers only them.
    pub interrupted: bool,
    /// Realized renting economics (`None` when [`ChurnConfig::rent`] is
    /// off).
    pub cost: Option<CostReport>,
}

impl ChurnReport {
    /// Pretty JSON rendering for the `cubefit churn` CLI.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_owned())
    }
}

/// Runs a churn experiment with telemetry disabled.
///
/// # Errors
///
/// Propagates algorithm construction and placement/removal/recovery errors.
pub fn run_churn(config: &ChurnConfig) -> Result<ChurnReport> {
    run_churn_with(config, Recorder::disabled())
}

/// Runs a churn experiment, emitting [`TraceEvent::ServersFailed`],
/// [`TraceEvent::RecoveryCompleted`] and the consolidator's own events
/// through `recorder`.
///
/// # Errors
///
/// Propagates algorithm construction and placement/removal/recovery errors.
pub fn run_churn_with(config: &ChurnConfig, recorder: Recorder) -> Result<ChurnReport> {
    run_churn_consolidator(config, recorder).map(|(report, _)| report)
}

/// [`run_churn_with`] with a cooperative shutdown flag polled between
/// ops: when it trips (Ctrl-C in the CLI), the run stops cleanly, the
/// report covers the ops executed so far, and `interrupted` is set.
///
/// # Errors
///
/// Propagates algorithm construction and placement/removal/recovery errors.
pub fn run_churn_cancellable(
    config: &ChurnConfig,
    recorder: Recorder,
    shutdown: &ShutdownFlag,
) -> Result<ChurnReport> {
    churn_loop(config, recorder, Some(shutdown), None).map(|(report, _)| report)
}

/// [`run_churn_cancellable`] with every mutation journaled through
/// `journal`. Churn journals frames only (no intermediate checkpoints —
/// churn runs are short; the soak harness owns checkpointing) and seals
/// the journal on a clean finish *and* on a cooperative shutdown, so an
/// interrupted run recovers exactly to its partial state.
///
/// # Errors
///
/// Propagates algorithm construction, mutation, and journal I/O errors.
pub fn run_churn_journaled(
    config: &ChurnConfig,
    recorder: Recorder,
    journal: &Journal,
    shutdown: Option<&ShutdownFlag>,
) -> Result<ChurnReport> {
    let (report, _) = churn_loop(config, recorder, shutdown, Some(journal))?;
    journal.seal().map_err(cubefit_core::Error::from)?;
    Ok(report)
}

/// [`run_churn_with`], additionally handing back the consolidator in its
/// final state so callers (e.g. `cubefit defrag`) can keep mutating the
/// churned placement the report describes.
///
/// # Errors
///
/// Propagates algorithm construction and placement/removal/recovery errors.
pub fn run_churn_consolidator(
    config: &ChurnConfig,
    recorder: Recorder,
) -> Result<(ChurnReport, Box<dyn Consolidator>)> {
    churn_loop(config, recorder, None, None)
}

fn churn_loop(
    config: &ChurnConfig,
    recorder: Recorder,
    shutdown: Option<&ShutdownFlag>,
    journal: Option<&Journal>,
) -> Result<(ChurnReport, Box<dyn Consolidator>)> {
    let gamma = config.algorithm.gamma();
    let mut consolidator: Box<dyn Consolidator> = if config.audit {
        Box::new(AuditedConsolidator::new(config.algorithm.build()?))
    } else {
        config.algorithm.build()?
    };
    consolidator.set_recorder(recorder.clone());
    if let Some(journal) = journal {
        consolidator = Box::new(JournaledConsolidator::new(consolidator, journal.clone()));
    }

    let model = LoadModel::tpch_xeon();
    let distribution = config.distribution.build(model.max_clients());
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

    let mut alive: Vec<TenantId> = Vec::new();
    let mut next_id: u64 = 0;
    let mut report = ChurnReport {
        algorithm: config.algorithm.label(),
        gamma,
        seed: config.seed,
        ops: config.ops,
        arrivals: 0,
        departures: 0,
        departed_load: 0.0,
        failure_events: Vec::new(),
        defrag_epochs: Vec::new(),
        servers_closed_by_defrag: 0,
        drift_updates: 0,
        drift_violations: 0,
        mitigation_epochs: Vec::new(),
        servers_cured_by_mitigation: 0,
        recovery: RecoveryReport::default(),
        degraded_seconds_total: 0.0,
        degraded_seconds_max: 0.0,
        final_tenants: 0,
        final_open_bins: 0,
        final_load: 0.0,
        fragmentation: FragmentationStats {
            open_bins: 0,
            total_load: 0.0,
            mean_fill: 0.0,
            p10_fill: 0.0,
            fragmentation_ratio: 1.0,
        },
        final_violated: 0,
        final_at_risk: 0,
        robust: false,
        interrupted: false,
        cost: None,
    };
    let mut rent_state = config.rent.map(RentState::new);

    // Drift draws from its own seeded stream so enabling it never perturbs
    // the op mix: a drifted run replays the exact arrival/departure/failure
    // sequence of its static twin.
    let mut drift_engine = config.drift.map(|d| {
        DriftEngine::new(model, d.profile, config.seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    });
    let mut known_violated: Vec<BinId> = Vec::new();

    let depart_band = config.failure_percent + config.departure_percent;
    for op in 0..config.ops {
        if shutdown.is_some_and(ShutdownFlag::is_set) {
            report.interrupted = true;
            report.ops = op;
            break;
        }
        let roll = rng.gen_range(0..100u32);
        let loaded_bins: Vec<BinId> = consolidator
            .placement()
            .bins()
            .filter(|bin| bin.level() > 0.0)
            .map(|bin| bin.id())
            .collect();
        // The reserve covers at most γ−1 simultaneous failures; at γ = 1
        // that is zero, so failure ops are skipped rather than failing
        // servers the model never promised to survive.
        let effective_failures = config.max_failures.min(gamma.saturating_sub(1));
        if roll < config.failure_percent && effective_failures > 0 && !loaded_bins.is_empty() {
            let event = fail_and_recover(
                &mut *consolidator,
                &loaded_bins,
                effective_failures,
                op,
                &mut rng,
                &recorder,
            )?;
            report.recovery.absorb(&event.recovery);
            report.degraded_seconds_total += event.degraded_seconds;
            report.degraded_seconds_max = report.degraded_seconds_max.max(event.degraded_seconds);
            if let Some(state) = rent_state.as_mut() {
                state.price_recovery(&event.recovery);
            }
            report.failure_events.push(event);
        } else if roll < depart_band && !alive.is_empty() {
            let idx = rng.gen_range(0..alive.len());
            let tenant = alive.swap_remove(idx);
            let outcome = consolidator.remove(tenant)?;
            if let Some(engine) = drift_engine.as_mut() {
                engine.forget(tenant);
            }
            report.departures += 1;
            report.departed_load += outcome.load;
        } else {
            let clients = distribution.sample_clients(&mut rng);
            let tenant = Tenant::new(TenantId::new(next_id), model.load(clients));
            next_id += 1;
            consolidator.place(tenant)?;
            if let Some(engine) = drift_engine.as_mut() {
                engine.track(tenant.id(), clients);
            }
            alive.push(tenant.id());
            report.arrivals += 1;
        }
        if let (Some(engine), Some(drift)) = (drift_engine.as_mut(), config.drift) {
            drift_op(
                &mut consolidator,
                engine,
                &drift,
                op,
                &recorder,
                &mut known_violated,
                &mut report,
                rent_state.as_mut(),
            )?;
        }
        if config.defrag_every > 0 && (op + 1) % config.defrag_every == 0 {
            let epoch = defrag_epoch(
                &mut consolidator,
                config.defrag_budget,
                op,
                &recorder,
                config.defrag_objective,
                rent_state.as_mut(),
            )?;
            report.servers_closed_by_defrag += epoch.outcome.servers_closed;
            report.defrag_epochs.push(epoch);
        }
        // The op clock ticks last: leases for bins opened this op start at
        // the end of the op, and bins a defrag epoch closed are billed
        // through it (closing is observed at the next reconcile).
        if let Some(state) = rent_state.as_mut() {
            state.tick(1, consolidator.placement(), &recorder);
        }
    }

    let placement = consolidator.placement();
    report.final_tenants = placement.tenant_count();
    report.final_open_bins = placement.open_bins();
    report.final_load = placement.total_load();
    report.fragmentation = placement.fragmentation();
    let slack = config.drift.map_or(DEFAULT_AT_RISK_SLACK, |d| d.at_risk_slack);
    let monitor = classify_with(placement, slack);
    report.final_violated = monitor.violated.len();
    report.final_at_risk = monitor.at_risk.len();
    report.robust = placement.is_robust();
    report.cost = rent_state.as_ref().map(RentState::report);
    Ok((report, consolidator))
}

/// One post-op drift tick: advance every tracked tenant, replay the load
/// updates through the consolidator (audited under `--audit`), let the
/// monitor flag newly violated servers, and — at the mitigation stride —
/// plan and atomically apply a mitigation epoch.
#[allow(clippy::too_many_arguments)]
fn drift_op(
    consolidator: &mut Box<dyn Consolidator>,
    engine: &mut DriftEngine,
    drift: &DriftConfig,
    op: usize,
    recorder: &Recorder,
    known_violated: &mut Vec<BinId>,
    report: &mut ChurnReport,
    rent: Option<&mut RentState>,
) -> Result<()> {
    for update in engine.step() {
        let outcome = consolidator.update_load(update.tenant, update.load)?;
        recorder.emit(|| TraceEvent::LoadDrifted {
            tenant: update.tenant.get(),
            old_load: outcome.old_load,
            new_load: outcome.new_load,
            at: update.at,
        });
        report.drift_updates += 1;
    }

    // Emit each violated server once, when the monitor first catches it;
    // a server that recovers and relapses is emitted again.
    let monitor = classify_with(consolidator.placement(), drift.at_risk_slack);
    for &(bin, deficit) in &monitor.violated {
        if !known_violated.contains(&bin) {
            recorder.emit(|| TraceEvent::InvariantViolated {
                bin: bin.index(),
                level: consolidator.placement().level(bin),
                deficit,
            });
            report.drift_violations += 1;
        }
    }
    *known_violated = monitor.violated.iter().map(|&(bin, _)| bin).collect();

    if drift.mitigate_every > 0 && (op + 1).is_multiple_of(drift.mitigate_every) {
        let plan = cubefit_defrag::plan_mitigation_with(
            consolidator.placement(),
            drift.budget,
            drift.at_risk_slack,
        );
        if plan.attention_before > 0 {
            let outcome = cubefit_defrag::apply_mitigation(&mut **consolidator, &plan, recorder)?;
            // A cured server that later relapses is a fresh violation.
            *known_violated = outcome.residual.violated.iter().map(|&(bin, _)| bin).collect();
            report.servers_cured_by_mitigation += outcome.cured;
            if let Some(state) = rent {
                state.price_moves(outcome.applied_steps, outcome.moved_load);
            }
            report.mitigation_epochs.push(MitigationEpoch {
                at_op: op,
                attention_before: plan.attention_before,
                violated_before: plan.violated_before,
                planned_steps: plan.steps.len(),
                outcome,
            });
        }
    }
    Ok(())
}

/// Plans and atomically applies one defragmentation pass. Under `--audit`
/// the consolidator is an [`AuditedConsolidator`], so every migration the
/// epoch applies is replayed against the oracle. With the cost objective
/// and a live rent ledger, planning goes through
/// [`cubefit_defrag::plan_economic`] — drains taken only when profitable,
/// predicted-vs-realized savings settled into the rent state; the cost
/// objective without a ledger falls back to bin count.
pub(crate) fn defrag_epoch(
    consolidator: &mut Box<dyn Consolidator>,
    budget: MigrationBudget,
    at_op: usize,
    recorder: &Recorder,
    objective: DefragObjective,
    mut rent: Option<&mut RentState>,
) -> Result<DefragEpoch> {
    let open_bins_before = consolidator.placement().open_bins();
    let (planned_steps, outcome) = if let (DefragObjective::Cost { horizon_ms }, Some(state)) =
        (objective, rent.as_deref_mut())
    {
        let plan = cubefit_defrag::plan_economic(
            consolidator.placement(),
            budget,
            &state.ledger,
            &state.config.pricing,
            horizon_ms,
        );
        let outcome = cubefit_defrag::apply_economic(
            &mut **consolidator,
            &plan,
            &state.ledger,
            &state.config.pricing,
            recorder,
        )?;
        if let (Some(forecast), Some(econ)) = (plan.economics, outcome.economics) {
            state.settle_savings(forecast.net_usd, econ.realized_net_usd);
        }
        (plan.steps.len(), outcome)
    } else {
        let plan = cubefit_defrag::plan(consolidator.placement(), budget);
        let outcome = cubefit_defrag::apply(&mut **consolidator, &plan, recorder)?;
        (plan.steps.len(), outcome)
    };
    if let Some(state) = rent {
        state.price_moves(outcome.applied_steps, outcome.moved_load);
    }
    Ok(DefragEpoch {
        at_op,
        planned_steps,
        outcome,
        open_bins_before,
        open_bins_after: consolidator.placement().open_bins(),
    })
}

/// Fails up to `max_failures` distinct loaded bins and immediately runs
/// online re-replication, emitting the failure/recovery trace events.
pub(crate) fn fail_and_recover(
    consolidator: &mut dyn Consolidator,
    loaded_bins: &[BinId],
    max_failures: usize,
    at_op: usize,
    rng: &mut ChaCha8Rng,
    recorder: &Recorder,
) -> Result<FailureEvent> {
    let count = rng.gen_range(1..=max_failures.min(loaded_bins.len()));
    let mut pool: Vec<BinId> = loaded_bins.to_vec();
    let mut failed: Vec<BinId> = Vec::with_capacity(count);
    for _ in 0..count {
        failed.push(pool.swap_remove(rng.gen_range(0..pool.len())));
    }
    failed.sort_unstable();

    let orphaned = recovery::orphans(consolidator.placement(), &failed).len();
    recorder.emit(|| TraceEvent::ServersFailed {
        bins: failed.iter().map(|b| b.index()).collect(),
        orphaned,
    });
    let recovered = consolidator.recover(&failed)?;
    recorder.emit(|| TraceEvent::RecoveryCompleted {
        replicas_migrated: recovered.replicas_migrated,
        moved_load: recovered.moved_load,
        bins_opened: recovered.bins_opened,
    });
    let window = degraded_seconds(&recovered);
    Ok(FailureEvent {
        at_op,
        failed_bins: failed.iter().map(|b| b.index()).collect(),
        orphaned,
        recovery: recovered,
        degraded_seconds: window,
        robust_after: consolidator.placement().is_robust(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(algorithm: AlgorithmSpec, seed: u64) -> ChurnConfig {
        ChurnConfig { audit: true, ..ChurnConfig::balanced(algorithm, 120, seed) }
    }

    #[test]
    fn tripped_shutdown_flag_stops_churn_with_a_partial_report() {
        let config = quick(AlgorithmSpec::CubeFit { gamma: 2, classes: 5 }, 7);
        let flag = ShutdownFlag::new();
        flag.trigger();
        let report = run_churn_cancellable(&config, Recorder::disabled(), &flag).unwrap();
        assert!(report.interrupted);
        assert_eq!(report.ops, 0, "flag was set before the first op");
        let a = run_churn_cancellable(&config, Recorder::disabled(), &ShutdownFlag::new()).unwrap();
        let b = run_churn(&config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn journaled_churn_matches_and_recovers() {
        let dir = std::env::temp_dir().join("cubefit-churn-tests").join("journaled");
        let _ = std::fs::remove_dir_all(&dir);
        let config = quick(AlgorithmSpec::CubeFit { gamma: 2, classes: 5 }, 7);
        let journal = cubefit_durability::Journal::create(
            &dir,
            config.algorithm.gamma(),
            cubefit_durability::FsyncPolicy::Never,
        )
        .unwrap();
        let journaled = run_churn_journaled(&config, Recorder::disabled(), &journal, None).unwrap();
        // Journaling is an observer: the report is identical...
        assert_eq!(journaled, run_churn(&config).unwrap());
        // ...the journal is sealed, and recovery is bit-identical to the
        // live final placement.
        let (_, consolidator) = run_churn_consolidator(&config, Recorder::disabled()).unwrap();
        let state = cubefit_durability::recover(&dir).unwrap();
        assert!(state.sealed, "a finished churn run must seal its journal");
        let live = serde_json::to_string(&cubefit_core::PlacementDump::from_placement(
            consolidator.placement(),
        ))
        .unwrap();
        let recovered = serde_json::to_string(&state.dump()).unwrap();
        assert_eq!(recovered, live);
    }

    #[test]
    fn churn_is_deterministic_for_a_seed() {
        let config = quick(AlgorithmSpec::CubeFit { gamma: 2, classes: 5 }, 7);
        let a = run_churn(&config).unwrap();
        let b = run_churn(&config).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.arrivals + a.departures + a.failure_events.len(), config.ops);
    }

    /// Regression: seed 9 at γ = 3 used to leave 11 of 96 failure events
    /// non-robust — after a recovery migrated replicas, stage-2 cube-slot
    /// assignments landed on perturbed bins without a feasibility check and
    /// broke Theorem 1 by ~5e-2. Every recovery must now end robust.
    #[test]
    fn stage2_placements_after_recovery_stay_robust() {
        let config =
            ChurnConfig { ops: 800, ..quick(AlgorithmSpec::CubeFit { gamma: 3, classes: 5 }, 9) };
        let report = run_churn(&config).unwrap();
        assert!(!report.failure_events.is_empty());
        for event in &report.failure_events {
            assert!(event.robust_after, "non-robust recovery at op {}", event.at_op);
        }
        assert!(report.robust);
    }

    #[test]
    fn gamma1_defaults_to_zero_failures_and_zero_skips_failure_ops() {
        // Regression: `balanced` used to clamp `max_failures` to `.max(1)`,
        // and the run loop's `clamp(1, gamma - 1)` forced ≥1 failure per
        // event — at γ = 1 that fails a server against an empty reserve.
        let config = ChurnConfig::balanced(AlgorithmSpec::CubeFit { gamma: 1, classes: 5 }, 50, 3);
        assert_eq!(config.max_failures, 0);
        let zero = ChurnConfig {
            max_failures: 0,
            ..quick(AlgorithmSpec::CubeFit { gamma: 2, classes: 5 }, 7)
        };
        let report = run_churn(&zero).unwrap();
        assert!(report.failure_events.is_empty());
        assert_eq!(report.arrivals + report.departures, zero.ops);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run_churn(&quick(AlgorithmSpec::CubeFit { gamma: 2, classes: 5 }, 1)).unwrap();
        let b = run_churn(&quick(AlgorithmSpec::CubeFit { gamma: 2, classes: 5 }, 2)).unwrap();
        assert_ne!(
            (a.arrivals, a.final_open_bins, a.final_tenants),
            (b.arrivals, b.final_open_bins, b.final_tenants),
            "two seeds should not replay the same run"
        );
    }

    #[test]
    fn every_algorithm_survives_audited_churn() {
        let specs = [
            AlgorithmSpec::CubeFit { gamma: 3, classes: 5 },
            AlgorithmSpec::Rfi { gamma: 2, mu: 0.85 },
            AlgorithmSpec::BestFit { gamma: 3 },
            AlgorithmSpec::FirstFit { gamma: 2 },
            AlgorithmSpec::WorstFit { gamma: 2 },
            AlgorithmSpec::NextFit { gamma: 3 },
            AlgorithmSpec::RandomFit { gamma: 2, seed: 9 },
        ];
        for spec in specs {
            let report = run_churn(&quick(spec, 13)).unwrap();
            assert!(report.robust, "{} not robust after churn", report.algorithm);
            for event in &report.failure_events {
                assert!(event.robust_after, "{} degraded after recovery", report.algorithm);
                assert_eq!(event.recovery.replicas_migrated, event.orphaned);
            }
        }
    }

    #[test]
    fn degraded_window_model_is_linear_in_cost() {
        let small = RecoveryReport {
            tenants_affected: 1,
            replicas_migrated: 1,
            moved_load: 0.1,
            bins_opened: 0,
        };
        let mut big = small;
        big.replicas_migrated = 4;
        big.moved_load = 0.4;
        assert!((degraded_seconds(&small) - (30.0 + 60.0)).abs() < 1e-12);
        assert!((degraded_seconds(&big) - 4.0 * degraded_seconds(&small)).abs() < 1e-9);
    }

    #[test]
    fn report_round_trips_through_json() {
        let config = quick(AlgorithmSpec::FirstFit { gamma: 2 }, 21);
        let report = run_churn(&config).unwrap();
        assert!(!report.failure_events.is_empty(), "seed 21 should inject failures");
        let json = report.to_json();
        let back: ChurnReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert!(json.contains("degraded_seconds_total"));
        assert!(json.contains("fragmentation_ratio"), "fragmentation stats belong in the report");
        assert!(json.contains("\"seed\""), "the seed makes reports replayable");
    }

    /// A departure-heavy config that fragments placements: 40% of ops are
    /// departures, no failures (defrag effects stay isolated).
    fn fragmenting(algorithm: AlgorithmSpec, seed: u64) -> ChurnConfig {
        ChurnConfig {
            departure_percent: 40,
            failure_percent: 0,
            audit: true,
            ..ChurnConfig::balanced(algorithm, 300, seed)
        }
    }

    /// Deterministic regression pinning a fragmented seed: with ≥30%
    /// departures, periodic defrag epochs must close at least one server
    /// under a finite migration budget, stay robust, and never increase
    /// the open-bin count.
    #[test]
    fn defrag_epochs_close_servers_in_fragmented_runs() {
        let config = ChurnConfig {
            defrag_every: 50,
            defrag_budget: MigrationBudget { max_moves: Some(64), max_load: Some(4.0) },
            ..fragmenting(AlgorithmSpec::CubeFit { gamma: 2, classes: 5 }, 17)
        };
        let report = run_churn(&config).unwrap();
        assert!(!report.defrag_epochs.is_empty());
        assert!(
            report.servers_closed_by_defrag >= 1,
            "seed 17 must stay a fragmented regression scenario"
        );
        for epoch in &report.defrag_epochs {
            assert!(!epoch.outcome.aborted, "nothing mutates between plan and apply here");
            assert!(epoch.open_bins_after <= epoch.open_bins_before);
            assert_eq!(
                epoch.open_bins_before - epoch.open_bins_after,
                epoch.outcome.servers_closed
            );
        }
        assert!(report.robust);
        // Defrag must strictly improve on the same run without it.
        let without = run_churn(&ChurnConfig { defrag_every: 0, ..config }).unwrap();
        assert!(report.final_open_bins <= without.final_open_bins);
        assert!(
            report.fragmentation.fragmentation_ratio <= without.fragmentation.fragmentation_ratio
        );
    }

    /// Renting economics under churn: the ledger accrues rent
    /// deterministically, the cost report balances, and it survives a
    /// JSON round trip inside the churn report.
    #[test]
    fn rent_accrual_is_deterministic_and_balanced() {
        let config = ChurnConfig {
            defrag_every: 50,
            defrag_budget: MigrationBudget { max_moves: Some(64), max_load: Some(4.0) },
            rent: Some(RentConfig::c4_4xlarge(600_000)),
            ..fragmenting(AlgorithmSpec::CubeFit { gamma: 2, classes: 5 }, 17)
        };
        let a = run_churn(&config).unwrap();
        let b = run_churn(&config).unwrap();
        assert_eq!(a, b, "rent accounting must not perturb determinism");
        let cost = a.cost.expect("rent config must produce a cost report");
        assert!(cost.rent_usd > 0.0, "300 ops of open servers must accrue rent");
        assert!(cost.blocks_billed > 0);
        assert!(cost.leases_opened > 0);
        assert!(cost.peak_servers > 0);
        assert!(
            (cost.total_usd
                - (cost.rent_usd + cost.defrag_migration_usd + cost.recovery_migration_usd))
                .abs()
                < 1e-9,
            "total must be the sum of its parts"
        );
        assert_eq!(cost.sim_ms, config.ops as u64 * cost.ms_per_op);
        assert!(cost.load_ms_integral <= cost.need_ms_integral);
        // No failures in the fragmenting mix, so no recovery streaming.
        assert_eq!(cost.recovery_migration_usd, 0.0);
        // Bins-objective epochs migrate, and migration is priced.
        assert!(cost.defrag_migration_usd > 0.0);
        let back: ChurnReport = serde_json::from_str(&a.to_json()).unwrap();
        assert_eq!(back, a);
        // The same run without rent reports no cost and is otherwise
        // identical: the ledger is an observer, never an actor.
        let without = run_churn(&ChurnConfig { rent: None, ..config }).unwrap();
        assert!(without.cost.is_none());
        assert_eq!(without.final_open_bins, a.final_open_bins);
        assert_eq!(without.arrivals, a.arrivals);
    }

    /// Cost-objective defrag with day-long fully-paid blocks: closing a
    /// server saves no rent inside the horizon, so the economic planner
    /// must refuse every drain the bins planner would have taken.
    #[test]
    fn cost_objective_skips_drains_that_save_no_rent() {
        let base = ChurnConfig {
            defrag_every: 50,
            defrag_budget: MigrationBudget { max_moves: Some(64), max_load: Some(4.0) },
            ..fragmenting(AlgorithmSpec::CubeFit { gamma: 2, classes: 5 }, 17)
        };
        // 300 ops × 1 min/op = 5 h of sim time, all inside one 24 h
        // pre-paid block; the 2 h horizon never reaches the next block.
        let day_block = RentConfig::c4_4xlarge(86_400_000);
        let frugal = ChurnConfig {
            defrag_objective: DefragObjective::Cost { horizon_ms: day_block.horizon_ms },
            rent: Some(day_block),
            ..base.clone()
        };
        let eager = ChurnConfig { rent: Some(day_block), ..base };
        let frugal_report = run_churn(&frugal).unwrap();
        let eager_report = run_churn(&eager).unwrap();
        let frugal_cost = frugal_report.cost.unwrap();
        let eager_cost = eager_report.cost.unwrap();
        assert_eq!(
            frugal_cost.defrag_migration_usd, 0.0,
            "no drain can be profitable inside a paid-up day block"
        );
        assert_eq!(frugal_report.servers_closed_by_defrag, 0);
        assert!(eager_report.servers_closed_by_defrag > 0, "the bins planner still drains");
        assert!(
            frugal_cost.total_usd < eager_cost.total_usd,
            "skipping unprofitable migration must cost less: {} vs {}",
            frugal_cost.total_usd,
            eager_cost.total_usd
        );
        assert_eq!(frugal_cost.predicted_savings_usd, 0.0);
        assert_eq!(frugal_cost.realized_savings_usd, 0.0);
    }

    /// Cost-objective defrag with short cheap blocks behaves like the
    /// bins objective where draining pays, and settles its forecast:
    /// predicted net equals realized net on every clean epoch.
    #[test]
    fn cost_objective_settles_predicted_vs_realized() {
        let rent = RentConfig::c4_4xlarge(60_000);
        let config = ChurnConfig {
            defrag_every: 50,
            defrag_budget: MigrationBudget::unlimited(),
            defrag_objective: DefragObjective::Cost { horizon_ms: rent.horizon_ms },
            rent: Some(rent),
            ..fragmenting(AlgorithmSpec::CubeFit { gamma: 2, classes: 5 }, 17)
        };
        let report = run_churn(&config).unwrap();
        let cost = report.cost.unwrap();
        assert!(
            report.servers_closed_by_defrag > 0,
            "minute-blocks make thin drains profitable on the fragmented seed"
        );
        assert!(cost.predicted_savings_usd > 0.0);
        assert!(
            (cost.predicted_savings_usd - cost.realized_savings_usd).abs() < 1e-9,
            "nothing mutates between plan and apply, so forecasts settle exactly: \
             predicted {} vs realized {}",
            cost.predicted_savings_usd,
            cost.realized_savings_usd
        );
    }

    #[test]
    fn defrag_is_deterministic_and_audited_for_every_algorithm() {
        let specs = [
            AlgorithmSpec::CubeFit { gamma: 2, classes: 5 },
            AlgorithmSpec::Rfi { gamma: 2, mu: 0.85 },
            AlgorithmSpec::BestFit { gamma: 2 },
            AlgorithmSpec::FirstFit { gamma: 2 },
            AlgorithmSpec::WorstFit { gamma: 2 },
            AlgorithmSpec::NextFit { gamma: 2 },
            AlgorithmSpec::RandomFit { gamma: 2, seed: 9 },
        ];
        for spec in specs {
            let config = ChurnConfig {
                ops: 150,
                defrag_every: 30,
                defrag_budget: MigrationBudget::moves(32),
                ..fragmenting(spec, 23)
            };
            let a = run_churn(&config).unwrap();
            let b = run_churn(&config).unwrap();
            assert_eq!(a, b, "{} defrag must be deterministic", a.algorithm);
            assert!(a.robust, "{} not robust after defragged churn", a.algorithm);
        }
    }

    /// Flash-crowd drift: tenants burst well above baseline and decay
    /// back, so packed-tight bins drift into Theorem-1 violations while
    /// total load stays bounded (a curable scenario — unlike an unbounded
    /// random walk, which eventually overloads the cluster globally).
    fn bursty(mitigate_every: usize, budget: MigrationBudget) -> DriftConfig {
        DriftConfig {
            profile: DriftProfile::Burst { magnitude: 20, probability: 0.01 },
            mitigate_every,
            budget,
            at_risk_slack: DEFAULT_AT_RISK_SLACK,
        }
    }

    fn drifting(algorithm: AlgorithmSpec, seed: u64) -> ChurnConfig {
        ChurnConfig {
            departure_percent: 15,
            failure_percent: 0,
            audit: true,
            drift: Some(bursty(0, MigrationBudget::unlimited())),
            ..ChurnConfig::balanced(algorithm, 200, seed)
        }
    }

    /// Pinned regression for the drift acceptance scenario: seed 31 under
    /// unmitigated burst drift must leave the final placement violated
    /// (the monitor caught servers mid-run), and the same run with
    /// sufficient mitigation budget must end with zero violated servers.
    #[test]
    fn unmitigated_drift_violates_and_mitigation_cures() {
        let unmitigated = drifting(AlgorithmSpec::CubeFit { gamma: 2, classes: 5 }, 31);
        let broken = run_churn(&unmitigated).unwrap();
        assert!(broken.drift_updates > 0, "seed 31 must actually drift");
        assert!(
            broken.drift_violations > 0 && broken.final_violated > 0 && !broken.robust,
            "seed 31 must stay a drift-violation regression scenario: {} violations, {} final",
            broken.drift_violations,
            broken.final_violated
        );

        let mitigated =
            ChurnConfig { drift: Some(bursty(10, MigrationBudget::unlimited())), ..unmitigated };
        let cured = run_churn(&mitigated).unwrap();
        assert!(!cured.mitigation_epochs.is_empty());
        assert!(cured.servers_cured_by_mitigation > 0);
        assert_eq!(
            cured.final_violated,
            0,
            "sufficient budget must clear every violation: {:?}",
            cured.mitigation_epochs.last()
        );
        // Same op mix: drift never perturbs the arrival/departure sequence.
        assert_eq!((broken.arrivals, broken.departures), (cured.arrivals, cured.departures));
    }

    #[test]
    fn insufficient_mitigation_budget_degrades_gracefully() {
        let config = ChurnConfig {
            drift: Some(bursty(10, MigrationBudget::moves(1))),
            ..drifting(AlgorithmSpec::CubeFit { gamma: 2, classes: 5 }, 31)
        };
        let report = run_churn(&config).unwrap();
        assert!(!report.mitigation_epochs.is_empty());
        for epoch in &report.mitigation_epochs {
            assert!(epoch.planned_steps <= 1, "budget caps every epoch");
            assert!(!epoch.outcome.aborted, "nothing drifts between plan and apply");
        }
        // The honest residue matches the monitor's view of the run's end.
        let last = report.mitigation_epochs.last().unwrap();
        if last.at_op + 1 == report.ops {
            assert_eq!(last.outcome.residual.violated.len(), report.final_violated);
        }
    }

    #[test]
    fn drift_is_deterministic_and_audited_for_every_algorithm() {
        let specs = [
            AlgorithmSpec::CubeFit { gamma: 2, classes: 5 },
            AlgorithmSpec::Rfi { gamma: 2, mu: 0.85 },
            AlgorithmSpec::BestFit { gamma: 2 },
            AlgorithmSpec::FirstFit { gamma: 2 },
            AlgorithmSpec::WorstFit { gamma: 2 },
            AlgorithmSpec::NextFit { gamma: 2 },
            AlgorithmSpec::RandomFit { gamma: 2, seed: 9 },
        ];
        for spec in specs {
            let config = ChurnConfig {
                ops: 120,
                drift: Some(DriftConfig::mitigated(4, 15, MigrationBudget::moves(16))),
                ..drifting(spec, 37)
            };
            let a = run_churn(&config).unwrap();
            let b = run_churn(&config).unwrap();
            assert_eq!(a, b, "{} drift must be deterministic", a.algorithm);
            assert!(a.drift_updates > 0, "{} saw no drift", a.algorithm);
        }
    }

    #[test]
    fn drift_telemetry_emits_load_and_violation_events() {
        use cubefit_telemetry::VecSink;
        use std::sync::Arc;

        let sink = Arc::new(VecSink::new());
        let recorder = Recorder::with_sink(Arc::clone(&sink));
        let config = ChurnConfig {
            drift: Some(bursty(10, MigrationBudget::unlimited())),
            ..drifting(AlgorithmSpec::CubeFit { gamma: 2, classes: 5 }, 31)
        };
        let report = run_churn_with(&config, recorder).unwrap();
        let events = sink.events();
        let drifted = events.iter().filter(|e| matches!(e, TraceEvent::LoadDrifted { .. })).count();
        let violated =
            events.iter().filter(|e| matches!(e, TraceEvent::InvariantViolated { .. })).count();
        let planned =
            events.iter().filter(|e| matches!(e, TraceEvent::MitigationPlanned { .. })).count();
        assert_eq!(drifted, report.drift_updates);
        assert_eq!(violated, report.drift_violations);
        assert_eq!(planned, report.mitigation_epochs.len());
        assert!(violated > 0 && planned > 0);
    }

    #[test]
    fn telemetry_emits_failure_and_recovery_events() {
        use cubefit_telemetry::VecSink;
        use std::sync::Arc;

        let sink = Arc::new(VecSink::new());
        let recorder = Recorder::with_sink(Arc::clone(&sink));
        let config = quick(AlgorithmSpec::CubeFit { gamma: 2, classes: 5 }, 21);
        let report = run_churn_with(&config, recorder).unwrap();
        let events = sink.events();
        let failures =
            events.iter().filter(|e| matches!(e, TraceEvent::ServersFailed { .. })).count();
        let recoveries =
            events.iter().filter(|e| matches!(e, TraceEvent::RecoveryCompleted { .. })).count();
        assert_eq!(failures, report.failure_events.len());
        assert_eq!(recoveries, report.failure_events.len());
    }
}
