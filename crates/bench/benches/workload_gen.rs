//! Workload-generation throughput: sequence building, zipf sampling, and
//! trace encode/decode.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use cubefit_workload::{trace, LoadModel, SequenceBuilder, UniformClients, ZipfClients, ZipfTable};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload");
    group.throughput(Throughput::Elements(10_000));

    group.bench_function("generate/uniform_10k", |b| {
        b.iter(|| {
            SequenceBuilder::new(UniformClients::new(1, 52), LoadModel::normalized(52))
                .count(10_000)
                .seed(1)
                .build()
                .total_load()
        });
    });

    group.bench_function("generate/zipf3_10k", |b| {
        b.iter(|| {
            SequenceBuilder::new(ZipfClients::new(3.0, 52), LoadModel::normalized(52))
                .count(10_000)
                .seed(1)
                .build()
                .total_load()
        });
    });
    group.finish();

    c.bench_function("zipf/sample", |b| {
        use rand::SeedableRng;
        let table = ZipfTable::new(52, 3.0);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        b.iter(|| table.sample(&mut rng));
    });

    c.bench_function("trace/roundtrip_1k", |b| {
        let sequence = SequenceBuilder::new(UniformClients::new(1, 52), LoadModel::normalized(52))
            .count(1_000)
            .seed(9)
            .build();
        b.iter(|| {
            let encoded = trace::encode(&sequence);
            trace::decode(encoded).expect("roundtrip").len()
        });
    });
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
