//! Placement throughput of every consolidation algorithm — the "amount of
//! time each placement algorithm needs to consolidate tenants onto
//! servers" statistic of §V.C.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cubefit_sim::experiment::sequence_for;
use cubefit_sim::{AlgorithmSpec, ComparisonConfig, DistributionSpec};
use cubefit_workload::TenantSequence;

fn sequences() -> Vec<(&'static str, TenantSequence)> {
    let config = ComparisonConfig { tenants: 5_000, runs: 1, base_seed: 42, max_clients: 52 };
    vec![
        ("uniform(1-15)", sequence_for(&DistributionSpec::Uniform { min: 1, max: 15 }, &config, 0)),
        ("zipf(3)", sequence_for(&DistributionSpec::Zipf { exponent: 3.0 }, &config, 0)),
    ]
}

fn algorithms() -> Vec<AlgorithmSpec> {
    vec![
        AlgorithmSpec::CubeFit { gamma: 2, classes: 10 },
        AlgorithmSpec::CubeFit { gamma: 3, classes: 10 },
        AlgorithmSpec::Rfi { gamma: 2, mu: 0.85 },
        AlgorithmSpec::BestFit { gamma: 2 },
        AlgorithmSpec::FirstFit { gamma: 2 },
        AlgorithmSpec::NextFit { gamma: 2 },
    ]
}

fn bench_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement");
    group.sample_size(10);
    for (dist_label, sequence) in sequences() {
        group.throughput(Throughput::Elements(sequence.len() as u64));
        for spec in algorithms() {
            group.bench_with_input(
                BenchmarkId::new(spec.label(), dist_label),
                &sequence,
                |b, seq| {
                    b.iter(|| {
                        let mut algorithm = spec.build().expect("valid spec");
                        for tenant in seq.tenants() {
                            algorithm.place(tenant).expect("placement succeeds");
                        }
                        algorithm.placement().open_bins()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_placement);
criterion_main!(benches);
