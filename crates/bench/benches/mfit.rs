//! Micro-benchmarks of the placement substrate's hot paths: the m-fit
//! predicate, worst-failover queries, and the robustness checker.

use criterion::{criterion_group, criterion_main, Criterion};
use cubefit_core::{mfit, validity, BinId, Consolidator, CubeFit, CubeFitConfig, Placement};
use cubefit_sim::experiment::sequence_for;
use cubefit_sim::{ComparisonConfig, DistributionSpec};

/// A realistic mid-size placement to query against.
fn build_placement() -> Placement {
    let config = ComparisonConfig { tenants: 2_000, runs: 1, base_seed: 7, max_clients: 52 };
    let sequence = sequence_for(&DistributionSpec::Uniform { min: 1, max: 15 }, &config, 0);
    let mut cubefit =
        CubeFit::new(CubeFitConfig::builder().replication(2).classes(10).build().expect("valid"));
    for tenant in sequence.tenants() {
        cubefit.place(tenant).expect("placement succeeds");
    }
    cubefit.placement().clone()
}

fn bench_queries(c: &mut Criterion) {
    let placement = build_placement();
    let bins: Vec<BinId> = placement.bins().filter(|b| !b.is_empty()).map(|b| b.id()).collect();

    c.bench_function("m_fits/no_siblings", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % bins.len();
            mfit::m_fits(&placement, bins[i], 0.05, &[])
        });
    });

    c.bench_function("m_fits/with_sibling", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 2) % (bins.len() - 1);
            mfit::m_fits(&placement, bins[i], 0.05, &[bins[i + 1]])
        });
    });

    c.bench_function("worst_failover", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % bins.len();
            placement.worst_failover(bins[i])
        });
    });

    c.bench_function("robustness_check/full", |b| {
        b.iter(|| validity::check(&placement).is_robust());
    });

    c.bench_function("simulate_failures/pair", |b| {
        let failed = [bins[0], bins[1]];
        b.iter(|| {
            validity::simulate_failures(&placement, &failed, validity::FailoverSemantics::EvenSplit)
                .max_load()
        });
    });
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
