//! Throughput of the discrete-event cluster simulator: simulated seconds
//! per wall second on a loaded multi-server cluster.

use criterion::{criterion_group, criterion_main, Criterion};
use cubefit_cluster::{ClusterSim, QueryMix, SimConfig, TenantAssignment};
use cubefit_workload::LoadModel;

fn assignments() -> Vec<TenantAssignment> {
    // 8 servers, 12 tenants spread pairwise — a moderately hot cluster.
    (0..12u64)
        .map(|t| {
            let a = (t as usize) % 8;
            let b = (a + 1 + (t as usize) % 6) % 8;
            TenantAssignment::new(t, 12, vec![a, b])
        })
        .collect()
}

fn bench_sim(c: &mut Criterion) {
    let model = LoadModel::tpch_xeon();
    let mix = QueryMix::tpch_like(&model, 5.0);

    c.bench_function("cluster_des/10s_window", |b| {
        b.iter(|| {
            let mut sim = ClusterSim::new(
                8,
                assignments(),
                &mix,
                &model,
                SimConfig { warmup_seconds: 2.0, measure_seconds: 10.0, seed: 3 },
            );
            sim.run().p99()
        });
    });

    c.bench_function("cluster_des/failure_path", |b| {
        b.iter(|| {
            let mut sim = ClusterSim::new(
                8,
                assignments(),
                &mix,
                &model,
                SimConfig { warmup_seconds: 1.0, measure_seconds: 5.0, seed: 4 },
            );
            sim.fail_servers(&[0]);
            sim.run().p99()
        });
    });

    c.bench_function("query_mix/sample", |b| {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        b.iter(|| mix.sample(&mut rng));
    });
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
