//! Extension experiment: residual drift risk vs. mitigation budget.
//!
//! Tenant loads drift after placement, so a packed-tight placement slides
//! out of the Theorem-1 reserve. Mitigation epochs buy the reserve back
//! with budgeted migrations; this sweep quantifies the trade — servers
//! still violated or at risk at the end of an identical drifting churn run
//! as the per-epoch migration budget grows from nothing to unlimited.
//!
//! Run: `cargo run --release -p cubefit-bench --bin drift [-- --quick]`

use cubefit_bench::write_json;
use cubefit_bench::Mode;
use cubefit_defrag::MigrationBudget;
use cubefit_sim::churn::{run_churn, ChurnConfig, DriftConfig};
use cubefit_sim::report::TextTable;
use cubefit_sim::{AlgorithmSpec, DistributionSpec};
use cubefit_workload::DriftProfile;

/// The seeded drift scenario: γ = 2 CubeFit under flash-crowd drift
/// (bursts of +20 clients, decaying back to baseline) with no failures, so
/// residual risk is attributable to drift alone.
fn scenario(ops: usize, budget: Option<MigrationBudget>) -> ChurnConfig {
    ChurnConfig {
        algorithm: AlgorithmSpec::CubeFit { gamma: 2, classes: 5 },
        distribution: DistributionSpec::Uniform { min: 1, max: 15 },
        ops,
        seed: 31,
        departure_percent: 15,
        failure_percent: 0,
        max_failures: 1,
        audit: false,
        defrag_every: 0,
        defrag_budget: MigrationBudget::default(),
        defrag_objective: cubefit_defrag::DefragObjective::Bins,
        rent: None,
        drift: Some(DriftConfig {
            profile: DriftProfile::Burst { magnitude: 20, probability: 0.01 },
            mitigate_every: budget.map_or(0, |_| 10),
            budget: budget.unwrap_or_default(),
            at_risk_slack: cubefit_core::monitor::DEFAULT_AT_RISK_SLACK,
        }),
    }
}

fn main() {
    let mode = Mode::from_args();
    let ops = if mode.is_quick() { 200 } else { 1_000 };
    // None = mitigation off entirely; Some(None) = unlimited budget.
    let budgets: &[Option<Option<usize>>] = if mode.is_quick() {
        &[None, Some(Some(2)), Some(None)]
    } else {
        &[
            None,
            Some(Some(1)),
            Some(Some(2)),
            Some(Some(4)),
            Some(Some(8)),
            Some(Some(16)),
            Some(None),
        ]
    };

    println!(
        "Drift sweep — {ops} ops of burst-drift churn (γ=2, K=5, seed 31), \
         mitigation every 10 ops\n"
    );
    let mut table = TextTable::new(vec![
        "budget (moves/epoch)",
        "drift updates",
        "violations seen",
        "epochs",
        "cured",
        "final violated",
        "final at risk",
        "robust",
    ]);
    let mut json_rows = Vec::new();

    for &budget in budgets {
        let config = scenario(
            ops,
            budget.map(|moves| match moves {
                Some(m) => MigrationBudget::moves(m),
                None => MigrationBudget::unlimited(),
            }),
        );
        let report = run_churn(&config).expect("drift scenario runs");
        let label = match budget {
            None => "off".to_owned(),
            Some(Some(m)) => m.to_string(),
            Some(None) => "unlimited".to_owned(),
        };
        let residual_load = report
            .mitigation_epochs
            .last()
            .map_or(0.0, |epoch| epoch.outcome.residual.residual_load);
        table.row(vec![
            label.clone(),
            report.drift_updates.to_string(),
            report.drift_violations.to_string(),
            report.mitigation_epochs.len().to_string(),
            report.servers_cured_by_mitigation.to_string(),
            report.final_violated.to_string(),
            report.final_at_risk.to_string(),
            report.robust.to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "budget_moves": budget,
            "mitigation": budget.is_some(),
            "drift_updates": report.drift_updates,
            "drift_violations": report.drift_violations,
            "mitigation_epochs": report.mitigation_epochs.len(),
            "servers_cured": report.servers_cured_by_mitigation,
            "final_violated": report.final_violated,
            "final_at_risk": report.final_at_risk,
            "residual_load_last_epoch": residual_load,
            "robust": report.robust,
        }));
    }

    println!("{}", table.render());
    println!("residual violated servers fall monotonically as the budget grows;");
    println!("an unlimited budget restores the full Theorem-1 reserve at every epoch.");
    write_json(
        "BENCH_drift",
        &serde_json::json!({
            "mode": format!("{mode:?}"),
            "scenario_ops": ops,
            "seed": 31,
            "mitigate_every": 10,
            "rows": json_rows,
        }),
    );
}
