//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! * **K sweep** — "as the number of servers is increased, increasing the
//!   number of classes will yield better performance" (§V.A);
//! * **μ sweep** — RFI's interleaving parameter (the paper recommends
//!   0.85);
//! * **tiny-tenant policy** — §V.A's empirical class-(K−1) placement with
//!   stage-1 reuse, vs. the theoretical α_K scheme, vs. no stage-1 reuse;
//! * **stage-1 eligibility** — strictly-smaller-class bins (paper wording)
//!   vs. any mature bin.
//!
//! Run: `cargo run --release -p cubefit-bench --bin ablation [-- --quick]`

use cubefit_bench::{write_json, Mode};
use cubefit_core::{Consolidator, CubeFit, CubeFitConfig, Stage1Eligibility, TinyPolicy};
use cubefit_sim::experiment::sequence_for;
use cubefit_sim::report::TextTable;
use cubefit_sim::runner::run_sequence;
use cubefit_sim::{AlgorithmSpec, ComparisonConfig, DistributionSpec};
use cubefit_workload::TenantSequence;

fn run_config(config: CubeFitConfig, sequence: &TenantSequence) -> (usize, f64, bool) {
    let mut algorithm = CubeFit::new(config);
    for tenant in sequence.tenants() {
        algorithm.place(tenant).expect("placement succeeds");
    }
    let stats = algorithm.placement().stats();
    (stats.open_bins, stats.mean_utilization, algorithm.placement().is_robust())
}

fn main() {
    let mode = Mode::from_args();
    let tenants = if mode.is_quick() { 5_000 } else { 50_000 };
    let config = ComparisonConfig { tenants, runs: 1, base_seed: 11, max_clients: 52 };
    let uniform = sequence_for(&DistributionSpec::Uniform { min: 1, max: 15 }, &config, 0);
    let zipf = sequence_for(&DistributionSpec::Zipf { exponent: 3.0 }, &config, 0);
    let mut json = serde_json::Map::new();

    println!("Ablations — {} tenants per cell, γ=2\n", tenants);

    // --- K sweep -----------------------------------------------------
    let mut table = TextTable::new(vec!["K", "uniform(1-15) servers", "zipf(3) servers"]);
    let mut rows = Vec::new();
    for k in [2usize, 3, 5, 7, 10, 15, 20] {
        let cfg = CubeFitConfig::builder().replication(2).classes(k).build().unwrap();
        let (u_servers, _, u_robust) = run_config(cfg, &uniform);
        let (z_servers, _, z_robust) = run_config(cfg, &zipf);
        assert!(u_robust && z_robust, "ablation configs must stay robust");
        table.row(vec![k.to_string(), u_servers.to_string(), z_servers.to_string()]);
        rows.push(serde_json::json!({ "k": k, "uniform": u_servers, "zipf": z_servers }));
    }
    println!("K sweep (number of size classes):\n{}", table.render());
    json.insert("k_sweep".into(), rows.into());

    // --- μ sweep ------------------------------------------------------
    let mut table = TextTable::new(vec!["μ", "uniform(1-15) servers", "zipf(3) servers"]);
    let mut rows = Vec::new();
    for mu in [0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95, 1.0] {
        let spec = AlgorithmSpec::Rfi { gamma: 2, mu };
        let u = run_sequence(&spec, &uniform).unwrap().servers;
        let z = run_sequence(&spec, &zipf).unwrap().servers;
        table.row(vec![format!("{mu:.2}"), u.to_string(), z.to_string()]);
        rows.push(serde_json::json!({ "mu": mu, "uniform": u, "zipf": z }));
    }
    println!("μ sweep (RFI interleaving cap; paper recommends 0.85):\n{}", table.render());
    json.insert("mu_sweep".into(), rows.into());

    // --- tiny-tenant policy -------------------------------------------
    let mut table = TextTable::new(vec!["policy", "uniform servers", "zipf servers", "zipf util"]);
    let mut rows = Vec::new();
    let policies: [(&str, CubeFitConfig); 3] = [
        (
            "classK-1 + stage1 (paper §V.A, default)",
            CubeFitConfig::builder().replication(2).classes(10).build().unwrap(),
        ),
        (
            "classK-1, no tiny stage1 (Algorithm 1)",
            CubeFitConfig::builder().replication(2).classes(10).tiny_stage1(false).build().unwrap(),
        ),
        (
            "theoretical α_K multis",
            CubeFitConfig::builder()
                .replication(2)
                .classes(10)
                .tiny_policy(TinyPolicy::Theoretical)
                .tiny_stage1(false)
                .build()
                .unwrap(),
        ),
    ];
    for (label, cfg) in policies {
        let (u, _, _) = run_config(cfg, &uniform);
        let (z, z_util, robust) = run_config(cfg, &zipf);
        assert!(robust);
        table.row(vec![label.to_string(), u.to_string(), z.to_string(), format!("{z_util:.3}")]);
        rows.push(serde_json::json!({ "policy": label, "uniform": u, "zipf": z }));
    }
    println!("tiny-tenant policy:\n{}", table.render());
    json.insert("tiny_policy".into(), rows.into());

    // --- stage-1 eligibility -------------------------------------------
    let mut table = TextTable::new(vec!["eligibility", "uniform servers", "zipf servers"]);
    let mut rows = Vec::new();
    for (label, rule) in [
        ("smaller-class bins (paper)", Stage1Eligibility::SmallerClassBins),
        ("any mature bin", Stage1Eligibility::AnyMatureBin),
    ] {
        let cfg = CubeFitConfig::builder()
            .replication(2)
            .classes(10)
            .stage1_eligibility(rule)
            .build()
            .unwrap();
        let (u, _, u_robust) = run_config(cfg, &uniform);
        let (z, _, z_robust) = run_config(cfg, &zipf);
        assert!(u_robust && z_robust);
        table.row(vec![label.to_string(), u.to_string(), z.to_string()]);
        rows.push(serde_json::json!({ "eligibility": label, "uniform": u, "zipf": z }));
    }
    println!("stage-1 eligibility:\n{}", table.render());
    json.insert("stage1_eligibility".into(), rows.into());

    write_json("ablation", &serde_json::Value::Object(json));
}
