//! Reproduces **Theorem 2**: competitive-ratio upper bounds of CubeFit via
//! the weighting-argument integer program, for γ ∈ {2, 3} across `K`.
//!
//! Paper reference: the bounds approach 1.59 (γ=2) and 1.625 (γ=3) for
//! large K. Our solver reproduces 1.598 for γ=2 (the paper rounds to
//! 1.59) and finds the γ=3 optimum's regular-replica weight to be exactly
//! 1 + 1/2 + 1/8 = 1.625, plus a vanishing tiny-fill term.
//!
//! Run: `cargo run --release -p cubefit-bench --bin theorem2`

use cubefit_analysis::{maximize_bin_weight, IpConfig};
use cubefit_bench::write_json;
use cubefit_sim::report::TextTable;

fn main() {
    println!("Theorem 2 — competitive-ratio upper bounds (weighting argument)\n");
    let mut table = TextTable::new(vec![
        "γ",
        "K",
        "ratio bound",
        "regular-weight core",
        "optimal composition (type:count)",
        "nodes",
    ]);
    let mut json_rows = Vec::new();

    for gamma in [2usize, 3] {
        for k in [10usize, 15, 20, 30, 50, 100, 200, 400] {
            if k <= gamma * gamma + gamma {
                continue; // α_K < γ: the weighting is undefined.
            }
            let solution = maximize_bin_weight(&IpConfig::new(gamma, k));
            let composition: Vec<String> = solution
                .counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(idx, &c)| format!("{}:{}", idx + 1, c))
                .collect();
            let regular: f64 = solution
                .counts
                .iter()
                .enumerate()
                .map(|(idx, &c)| c as f64 / (idx + 1) as f64)
                .sum();
            table.row(vec![
                gamma.to_string(),
                k.to_string(),
                format!("{:.4}", solution.objective),
                format!("{regular:.4}"),
                composition.join(" "),
                solution.nodes.to_string(),
            ]);
            json_rows.push(serde_json::json!({
                "gamma": gamma,
                "classes": k,
                "ratio_bound": solution.objective,
                "regular_weight": regular,
                "counts": solution.counts,
                "tiny_size": solution.tiny_size,
            }));
        }
    }

    println!("{}", table.render());
    println!("paper: bounds approach 1.59 (γ=2) and 1.625 (γ=3) for large K;");
    println!("       no online algorithm can beat 1.42 [Daudjee-Kamali-López-Ortiz, SPAA'14]");
    write_json("theorem2", &serde_json::json!({ "rows": json_rows }));
}
