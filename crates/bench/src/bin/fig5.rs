//! Reproduces **Fig. 5**: 99th-percentile latency of CubeFit (γ=2, γ=3,
//! K=5) and RFI (γ=2, μ=0.85) under worst-case 1- and 2-server failures,
//! for uniform(1–15) and zipf(3) client distributions, against the 5 s SLA.
//!
//! Paper reference points: with 1 failure every configuration meets the
//! SLA; with 2 failures only CubeFit γ=3 stays within it (4.27 s uniform,
//! 4.19 s zipfian), while CubeFit γ=2 and RFI violate.
//!
//! Run: `cargo run --release -p cubefit-bench --bin fig5 [-- --quick]`

use cubefit_bench::{write_bench_metrics, write_json, Mode};
use cubefit_cluster::SimConfig;
use cubefit_sim::report::TextTable;
use cubefit_sim::{
    run_failure_experiment, AlgorithmSpec, DistributionSpec, FailureExperimentConfig,
};

fn main() {
    let mode = Mode::from_args();
    let seed = 20170605; // ICDCS'17 session date; any fixed seed works.
    let (servers, sim) =
        if mode.is_quick() { (20, SimConfig::quick(seed)) } else { (69, SimConfig::paper(seed)) };

    let algorithms = [
        AlgorithmSpec::CubeFit { gamma: 2, classes: 5 },
        AlgorithmSpec::CubeFit { gamma: 3, classes: 5 },
        AlgorithmSpec::Rfi { gamma: 2, mu: 0.85 },
    ];
    let distributions =
        [DistributionSpec::Uniform { min: 1, max: 15 }, DistributionSpec::Zipf { exponent: 3.0 }];

    println!("Fig. 5 — p99 latency under worst-case failures (SLA = 5 s)");
    println!(
        "mode: {:?} ({} data servers, {}+{} s sim windows)\n",
        mode, servers, sim.warmup_seconds, sim.measure_seconds
    );

    let mut table = TextTable::new(vec![
        "failures",
        "distribution",
        "algorithm",
        "tenants",
        "servers",
        "p99 (s)",
        "worst load",
        "SLA guarantee",
    ]);
    let mut json_rows = Vec::new();

    for failures in [1usize, 2] {
        for distribution in &distributions {
            for algorithm in &algorithms {
                let config = FailureExperimentConfig {
                    algorithm: algorithm.clone(),
                    distribution: distribution.clone(),
                    servers,
                    failures,
                    sla_seconds: 5.0,
                    seed,
                    sim,
                };
                let outcome = run_failure_experiment(&config)
                    .expect("failure experiment configurations are valid");
                table.row(vec![
                    failures.to_string(),
                    outcome.distribution.clone(),
                    outcome.algorithm.clone(),
                    outcome.tenants.to_string(),
                    outcome.servers_used.to_string(),
                    format!("{:.2}", outcome.p99_seconds),
                    format!("{:.3}", outcome.worst_model_load),
                    if outcome.sla_violated { "VIOLATED" } else { "holds" }.to_string(),
                ]);
                json_rows.push(serde_json::json!({
                    "failures": failures,
                    "distribution": outcome.distribution,
                    "algorithm": outcome.algorithm,
                    "tenants": outcome.tenants,
                    "servers_used": outcome.servers_used,
                    "p99_seconds": outcome.p99_seconds,
                    "mean_seconds": outcome.mean_seconds,
                    "worst_model_load": outcome.worst_model_load,
                    "sla_violated": outcome.sla_violated,
                    "unavailable_clients": outcome.unavailable_clients,
                }));
            }
        }
    }

    println!("{}", table.render());
    println!("SLA guarantee: worst post-failure load ≤ 1.0 (= the calibrated SLA point);");
    println!("measured p99 fluctuates a few percent around 5 s × load.");
    println!("paper: 1 failure → all configurations meet the SLA;");
    println!("       2 failures → only cubefit(γ=3) meets it (4.27 s uniform, 4.19 s zipf)");
    write_json("fig5", &serde_json::json!({ "mode": format!("{mode:?}"), "rows": json_rows }));
    write_bench_metrics(
        "fig5",
        &AlgorithmSpec::CubeFit { gamma: 3, classes: 5 },
        &DistributionSpec::Uniform { min: 1, max: 15 },
        if mode.is_quick() { 2_000 } else { 20_000 },
        seed,
    );
}
