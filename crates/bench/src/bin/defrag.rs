//! Extension experiment: defragmentation yield vs. migration budget.
//!
//! Departure-heavy churn strands low-fill servers; the defrag engine buys
//! them back with Theorem-1-safe migrations. This sweep quantifies the
//! trade: servers closed, replica load streamed, and planner wall time as
//! the migration budget grows, on the same seeded fragmented placement.
//!
//! Run: `cargo run --release -p cubefit-bench --bin defrag [-- --quick]`

use cubefit_bench::write_json;
use cubefit_bench::Mode;
use cubefit_defrag::MigrationBudget;
use cubefit_sim::churn::{run_churn_consolidator, ChurnConfig};
use cubefit_sim::report::TextTable;
use cubefit_sim::{AlgorithmSpec, DistributionSpec};
use cubefit_telemetry::Recorder;

/// Builds the seeded fragmentation scenario: γ = 2 CubeFit under 40%
/// departures and no failures, which strands low-fill servers.
fn scenario(ops: usize) -> ChurnConfig {
    ChurnConfig {
        algorithm: AlgorithmSpec::CubeFit { gamma: 2, classes: 10 },
        distribution: DistributionSpec::Uniform { min: 1, max: 15 },
        ops,
        seed: 17,
        departure_percent: 40,
        failure_percent: 0,
        max_failures: 1,
        audit: false,
        defrag_every: 0,
        defrag_budget: MigrationBudget::default(),
        defrag_objective: cubefit_defrag::DefragObjective::Bins,
        drift: None,
        rent: None,
    }
}

fn main() {
    let mode = Mode::from_args();
    let ops = if mode.is_quick() { 300 } else { 2_000 };
    let budgets: &[Option<usize>] = if mode.is_quick() {
        &[Some(4), Some(16), None]
    } else {
        &[Some(2), Some(4), Some(8), Some(16), Some(32), Some(64), Some(128), None]
    };

    let config = scenario(ops);
    println!(
        "Defrag sweep — {} ops of 40%-departure churn (γ=2, K=10, seed {})\n",
        ops, config.seed
    );
    let mut table = TextTable::new(vec![
        "budget (moves)",
        "planned steps",
        "servers closed",
        "moved load",
        "open bins",
        "frag ratio",
        "plan (µs)",
    ]);
    let mut json_rows = Vec::new();

    for &budget_moves in budgets {
        // Re-run the seeded scenario so every budget sees the identical
        // fragmented placement.
        let (_report, mut consolidator) =
            run_churn_consolidator(&config, Recorder::disabled()).expect("churn scenario runs");
        let budget = match budget_moves {
            Some(moves) => MigrationBudget::moves(moves),
            None => MigrationBudget::unlimited(),
        };
        let started = std::time::Instant::now();
        let plan = cubefit_defrag::plan(consolidator.placement(), budget);
        let plan_micros = started.elapsed().as_secs_f64() * 1e6;
        let outcome = cubefit_defrag::apply(&mut *consolidator, &plan, &Recorder::disabled())
            .expect("fresh plans apply cleanly");
        assert!(!outcome.aborted, "fresh plan must not abort");
        let after = consolidator.placement().fragmentation();

        let label = budget_moves.map_or_else(|| "unlimited".to_owned(), |m| m.to_string());
        table.row(vec![
            label.clone(),
            plan.steps.len().to_string(),
            outcome.servers_closed.to_string(),
            format!("{:.3}", outcome.moved_load),
            format!("{} -> {}", plan.open_bins_before, after.open_bins),
            format!(
                "{:.2} -> {:.2}",
                plan.fragmentation_before.fragmentation_ratio, after.fragmentation_ratio
            ),
            format!("{plan_micros:.0}"),
        ]);
        json_rows.push(serde_json::json!({
            "budget_moves": budget_moves,
            "planned_steps": plan.steps.len(),
            "applied_steps": outcome.applied_steps,
            "servers_closed": outcome.servers_closed,
            "moved_load": outcome.moved_load,
            "open_bins_before": plan.open_bins_before,
            "open_bins_after": after.open_bins,
            "fragmentation_ratio_before": plan.fragmentation_before.fragmentation_ratio,
            "fragmentation_ratio_after": after.fragmentation_ratio,
            "plan_micros": plan_micros,
            "robust_after": consolidator.placement().is_robust(),
        }));
    }

    println!("{}", table.render());
    println!("servers closed saturates once the budget covers every drainable bin;");
    println!("the planner's wall time stays in the microsecond range throughout.");
    write_json(
        "BENCH_defrag",
        &serde_json::json!({
            "mode": format!("{mode:?}"),
            "scenario_ops": ops,
            "seed": config.seed,
            "rows": json_rows,
        }),
    );
}
