//! Serve-bench: the overload-safe service loop under calm and storm load.
//!
//! Runs the deterministic DES harness twice with the same seed — once at
//! the baseline arrival rate, once with a 4× burst storm — and gates the
//! robustness claims of the service loop:
//!
//! 1. the storm run **sheds** (the admission controller engages),
//! 2. completed-request p99 **holds the latency SLO** even mid-storm,
//! 3. storm goodput stays within 15% of baseline goodput (load shedding
//!    protects throughput instead of collapsing it),
//! 4. every admitted mutation stays **oracle-auditable**: zero audit
//!    divergences in both runs and both final placements replay clean.
//!
//! Run: `cargo run --release -p cubefit-bench --bin serve [-- --quick]`

use cubefit_bench::{write_json, Mode};
use cubefit_core::oracle;
use cubefit_sim::report::TextTable;
use cubefit_sim::serve::{run_serve, ServeConfig, ServeReport, ServeRun};
use std::time::Instant;

fn run_profile(label: &str, config: ServeConfig) -> (ServeRun, f64) {
    let started = Instant::now();
    let run = run_serve(config).expect("serve run");
    let wall = started.elapsed().as_secs_f64();
    let report = &run.report;
    assert_eq!(report.audit_divergences, 0, "{label}: admitted mutations must audit clean");
    let placement = run.dump.to_placement().expect("dump rebuilds");
    oracle::audit(&placement).unwrap_or_else(|divergences| {
        panic!("{label}: final placement diverges from the oracle: {divergences:?}")
    });
    (run, wall)
}

fn report_json(report: &ServeReport, wall_seconds: f64) -> serde_json::Value {
    serde_json::json!({
        "wall_seconds": wall_seconds,
        "offered": report.offered,
        "completed": report.completed,
        "shed": report.shed,
        "queue_full": report.queue_full,
        "deadline_expired": report.deadline_expired,
        "shed_rate": report.shed_rate,
        "goodput_per_sec": report.goodput_per_sec,
        "p50_ms": report.latency.p50_ms,
        "p99_ms": report.latency.p99_ms,
        "p999_ms": report.latency.p999_ms,
        "slo_p99_ms": report.slo_p99_ms,
        "p99_within_slo": report.p99_within_slo,
        "batches": report.batches,
        "audits": report.audits,
        "audit_divergences": report.audit_divergences,
        "ladder_down": report.ladder_down,
        "ladder_up": report.ladder_up,
        "final_audit_mode": report.final_audit_mode,
        "final_limit": report.final_limit,
        "tenants": report.tenants,
        "bins": report.bins,
        "robust": report.robust,
    })
}

fn main() {
    let mode = Mode::from_args();
    let seed = 7u64;
    let horizon_ms: f64 = if mode.is_quick() { 4_000.0 } else { 20_000.0 };

    let mut baseline_config = ServeConfig::bench(seed, false);
    baseline_config.horizon_ms = horizon_ms;
    let mut storm_config = ServeConfig::bench(seed, true);
    storm_config.horizon_ms = horizon_ms;
    if let Some(storm) = &mut storm_config.storm {
        storm.start_ms = horizon_ms * 0.25;
        storm.duration_ms = horizon_ms * 0.50;
    }
    let limiter = baseline_config.service.limiter.label();
    let slo = baseline_config.service.slo_p99_ms;

    println!(
        "Serve benchmark — service loop over {horizon_ms:.0}ms simulated \
         (seed {seed}, limiter {limiter}, p99 SLO {slo:.0}ms), baseline vs 4x storm\n"
    );

    let (baseline, baseline_wall) = run_profile("baseline", baseline_config);
    let (storm, storm_wall) = run_profile("storm", storm_config);

    // The robustness gates the CI smoke asserts, checked here too so a
    // local `cargo run` fails loudly on a regression.
    assert!(storm.report.shed > 0, "storm must engage the admission controller");
    assert!(
        storm.report.latency.p99_ms <= slo,
        "storm p99 {:.1}ms breaches the {slo:.0}ms SLO",
        storm.report.latency.p99_ms
    );
    let goodput_drop =
        1.0 - storm.report.goodput_per_sec / baseline.report.goodput_per_sec.max(1e-9);
    assert!(
        goodput_drop <= 0.15,
        "storm goodput {:.1}/s dropped {:.1}% below baseline {:.1}/s (allowed 15%)",
        storm.report.goodput_per_sec,
        goodput_drop * 100.0,
        baseline.report.goodput_per_sec
    );

    let mut table = TextTable::new(vec!["measure", "baseline", "storm"]);
    let row = |t: &mut TextTable, name: &str, f: &dyn Fn(&ServeReport) -> String| {
        t.row(vec![name.into(), f(&baseline.report), f(&storm.report)]);
    };
    row(&mut table, "offered", &|r| r.offered.to_string());
    row(&mut table, "completed", &|r| r.completed.to_string());
    row(&mut table, "shed", &|r| r.shed.to_string());
    row(&mut table, "shed rate", &|r| format!("{:.1}%", r.shed_rate * 100.0));
    row(&mut table, "goodput/s", &|r| format!("{:.1}", r.goodput_per_sec));
    row(&mut table, "p50 (ms)", &|r| format!("{:.1}", r.latency.p50_ms));
    row(&mut table, "p99 (ms)", &|r| format!("{:.1}", r.latency.p99_ms));
    row(&mut table, "p999 (ms)", &|r| format!("{:.1}", r.latency.p999_ms));
    row(&mut table, "audits", &|r| r.audits.to_string());
    row(&mut table, "ladder -/+", &|r| format!("{}/{}", r.ladder_down, r.ladder_up));
    row(&mut table, "final limit", &|r| r.final_limit.to_string());
    row(&mut table, "final audit mode", &|r| r.final_audit_mode.clone());
    println!("{}", table.render());
    println!("storm goodput drop: {:.1}% (allowed 15%)", goodput_drop * 100.0);
    println!("both final placements replay clean against the oracle.");

    write_json(
        "BENCH_serve",
        &serde_json::json!({
            "mode": format!("{mode:?}"),
            "seed": seed,
            "horizon_ms": horizon_ms,
            "limiter": limiter,
            "slo_p99_ms": slo,
            "goodput_drop": goodput_drop,
            "baseline": report_json(&baseline.report, baseline_wall),
            "storm": report_json(&storm.report, storm_wall),
        }),
    );
}
