//! Reproduces **Table I**: yearly cost savings of CubeFit over RFI for
//! 50,000 tenants at $0.822/hour (EC2 c4.4xlarge), continuous operation.
//!
//! Paper reference: uniform — RFI 10,951 servers, 2,506 saved,
//! $18,045,004/yr; zipfian — RFI 2,218 servers, 496 saved, $3,571,557/yr.
//! (Per DESIGN.md the paper's "uniform" matches the 1–15 client range of
//! the cluster experiments: its RFI server count reproduces only there.)
//!
//! Run: `cargo run --release -p cubefit-bench --bin table1 [-- --quick]`

use cubefit_bench::{write_bench_metrics, write_json, Mode};
use cubefit_sim::report::{dollars, TextTable};
use cubefit_sim::{compare, AlgorithmSpec, ComparisonConfig, CostModel, DistributionSpec};

fn main() {
    let mode = Mode::from_args();
    let config = if mode.is_quick() {
        ComparisonConfig { tenants: 5_000, runs: 3, base_seed: 3, max_clients: 52 }
    } else {
        ComparisonConfig::paper(3)
    };
    let cost = CostModel::c4_4xlarge();

    let rows = [
        ("Uniform", DistributionSpec::Uniform { min: 1, max: 15 }, 10_951usize, 2_506usize),
        ("Zipfian", DistributionSpec::Zipf { exponent: 3.0 }, 2_218, 496),
    ];
    let rfi = AlgorithmSpec::Rfi { gamma: 2, mu: 0.85 };
    let cubefit = AlgorithmSpec::CubeFit { gamma: 2, classes: 10 };

    println!("Table I — yearly cost savings of CubeFit over RFI");
    println!(
        "mode: {:?} ({} runs × {} tenants, ${}/h × 8,760 h)\n",
        mode,
        config.runs,
        config.tenants,
        cost.hourly_usd()
    );

    let mut table = TextTable::new(vec![
        "distribution",
        "rfi servers",
        "cubefit servers",
        "saved",
        "dollar savings",
        "paper rfi",
        "paper saved",
        "paper savings",
    ]);
    let mut json_rows = Vec::new();

    for (label, distribution, paper_rfi, paper_saved) in rows {
        let result =
            compare(&rfi, &cubefit, &distribution, &config).expect("comparison specs are valid");
        let rfi_servers = result.baseline_servers.mean.round() as usize;
        let cf_servers = result.candidate_servers.mean.round() as usize;
        let saved = rfi_servers.saturating_sub(cf_servers);
        let savings = cost.yearly_savings(rfi_servers, cf_servers);
        table.row(vec![
            label.to_string(),
            rfi_servers.to_string(),
            cf_servers.to_string(),
            saved.to_string(),
            dollars(savings),
            paper_rfi.to_string(),
            paper_saved.to_string(),
            dollars(cost.yearly_cost(paper_saved)),
        ]);
        json_rows.push(serde_json::json!({
            "distribution": label,
            "rfi_servers": rfi_servers,
            "cubefit_servers": cf_servers,
            "servers_saved": saved,
            "yearly_savings_usd": savings,
            "paper_rfi_servers": paper_rfi,
            "paper_servers_saved": paper_saved,
        }));
    }

    println!("{}", table.render());
    write_json("table1", &serde_json::json!({ "mode": format!("{mode:?}"), "rows": json_rows }));
    write_bench_metrics(
        "table1",
        &cubefit,
        &DistributionSpec::Zipf { exponent: 3.0 },
        if mode.is_quick() { 2_000 } else { 20_000 },
        config.base_seed,
    );
}
