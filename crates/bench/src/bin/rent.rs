//! Extension experiment: server-renting economics across block durations.
//!
//! The same seeded departure-heavy churn scenario runs under three defrag
//! policies — none, bin-minimizing, and cost-aware
//! ([`cubefit_defrag::DefragObjective::Cost`]) — while the lease ledger
//! accrues rent, for a sweep of rental block durations. Short blocks make
//! stranded servers expensive (defrag pays off fast); long pre-paid
//! blocks make migration pure waste (the economic planner must learn to
//! sit still). Every run is audited against the from-scratch oracle, and
//! every policy's realized cost is compared to the clairvoyant renting
//! lower bound (Kamali & López-Ortiz).
//!
//! Run: `cargo run --release -p cubefit-bench --bin rent [-- --quick]`

use cubefit_bench::write_json;
use cubefit_bench::Mode;
use cubefit_defrag::{DefragObjective, MigrationBudget};
use cubefit_economics::{CostReport, RentConfig};
use cubefit_sim::churn::{run_churn, ChurnConfig};
use cubefit_sim::report::TextTable;
use cubefit_sim::{AlgorithmSpec, DistributionSpec};

/// The seeded fragmentation scenario shared by every cell: γ = 2 CubeFit
/// under 40% departures, audited throughout, with the given renting
/// terms and defrag policy.
fn scenario(ops: usize, rent: RentConfig, every: usize, objective: DefragObjective) -> ChurnConfig {
    ChurnConfig {
        algorithm: AlgorithmSpec::CubeFit { gamma: 2, classes: 10 },
        distribution: DistributionSpec::Uniform { min: 1, max: 15 },
        ops,
        seed: 17,
        departure_percent: 40,
        failure_percent: 0,
        max_failures: 1,
        audit: true,
        defrag_every: every,
        defrag_budget: MigrationBudget::moves(64),
        defrag_objective: objective,
        drift: None,
        rent: Some(rent),
    }
}

/// One policy cell: realized cost report plus servers closed by defrag.
fn run_policy(
    ops: usize,
    rent: RentConfig,
    every: usize,
    objective: DefragObjective,
) -> (CostReport, usize) {
    let report = run_churn(&scenario(ops, rent, every, objective)).expect("audited churn runs");
    (report.cost.expect("rent is configured"), report.servers_closed_by_defrag)
}

fn ratio_of(cost: &CostReport) -> f64 {
    cubefit_analysis::renting_ratio(cost).map_or(f64::NAN, |r| r.ratio)
}

fn main() {
    let mode = Mode::from_args();
    let ops = if mode.is_quick() { 300 } else { 2_000 };
    let every = 50;
    let blocks_ms: &[u64] = if mode.is_quick() {
        &[600_000, 3_600_000, 86_400_000]
    } else {
        &[60_000, 600_000, 3_600_000, 21_600_000, 86_400_000]
    };

    println!(
        "Renting sweep — {ops} ops of 40%-departure churn (γ=2, K=10, seed 17), audited;\n\
         defrag every {every} ops under a 64-move budget, c4.4xlarge hourly rate\n"
    );
    let mut table = TextTable::new(vec![
        "block",
        "none total $",
        "bins total $",
        "cost total $",
        "bins closed",
        "cost closed",
        "cost ratio",
        "winner",
    ]);
    let mut json_rows = Vec::new();
    let mut bins_sum = 0.0f64;
    let mut cost_sum = 0.0f64;
    let mut strict_wins = 0usize;

    for &block_ms in blocks_ms {
        let rent = RentConfig::c4_4xlarge(block_ms);
        let (none, _) = run_policy(ops, rent, 0, DefragObjective::Bins);
        let (bins, bins_closed) = run_policy(ops, rent, every, DefragObjective::Bins);
        let (cost, cost_closed) =
            run_policy(ops, rent, every, DefragObjective::Cost { horizon_ms: rent.horizon_ms });

        // Self-gate: the economic planner only migrates when the ledger
        // says it pays, so it must never lose badly to blind
        // bin-minimizing. A small tolerance is allowed because the
        // planner is greedy under a finite horizon: on very short blocks
        // nearly every drain pays off, and a horizon-truncated savings
        // estimate can skip a drain that would have paid off later.
        assert!(
            cost.total_usd <= bins.total_usd * 1.02,
            "cost-aware defrag lost to bins-defrag at block {block_ms} ms: \
             {} vs {}",
            cost.total_usd,
            bins.total_usd
        );
        if cost.total_usd < bins.total_usd - 1e-9 {
            strict_wins += 1;
        }
        let ratio = ratio_of(&cost);
        assert!(ratio.is_finite() && ratio >= 1.0, "competitive ratio must be finite and ≥ 1");
        bins_sum += bins.total_usd;
        cost_sum += cost.total_usd;

        let winner = [("none", none.total_usd), ("bins", bins.total_usd), ("cost", cost.total_usd)]
            .into_iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map_or("-", |(label, _)| label);
        table.row(vec![
            human_block(block_ms),
            format!("{:.2}", none.total_usd),
            format!("{:.2}", bins.total_usd),
            format!("{:.2}", cost.total_usd),
            bins_closed.to_string(),
            cost_closed.to_string(),
            format!("{ratio:.3}"),
            winner.to_owned(),
        ]);
        json_rows.push(serde_json::json!({
            "block_ms": block_ms,
            "none": serde_json::json!({
                "cost": none,
                "competitive_ratio": ratio_of(&none),
            }),
            "bins": serde_json::json!({
                "cost": bins,
                "competitive_ratio": ratio_of(&bins),
                "servers_closed": bins_closed,
            }),
            "cost_aware": serde_json::json!({
                "cost": cost,
                "competitive_ratio": ratio,
                "servers_closed": cost_closed,
            }),
            "audit_divergences": 0usize,
        }));
    }

    assert!(
        strict_wins >= 1,
        "cost-aware defrag must beat bins-defrag outright on at least one block duration"
    );
    // Higher-is-better gate metric for the CI trend comparison: how much
    // cheaper economically-scheduled defrag is than blind defrag across
    // the sweep (1.0 = no advantage).
    let advantage = bins_sum / cost_sum;

    println!("{}", table.render());
    println!(
        "cost-aware defrag won outright on {strict_wins} of {} block durations;",
        blocks_ms.len()
    );
    println!(
        "aggregate bins/cost spend ratio {advantage:.4} (higher favors the economic planner)."
    );
    write_json(
        "BENCH_rent",
        &serde_json::json!({
            "mode": format!("{mode:?}"),
            "scenario_ops": ops,
            "seed": 17,
            "defrag_every": every,
            "rows": json_rows,
            "gate": serde_json::json!({
                "strict_wins": strict_wins,
                "bins_over_cost_advantage": advantage,
            }),
        }),
    );
}

/// Human label for a block duration.
fn human_block(block_ms: u64) -> String {
    match block_ms {
        60_000 => "1 min".to_owned(),
        600_000 => "10 min".to_owned(),
        3_600_000 => "1 h".to_owned(),
        21_600_000 => "6 h".to_owned(),
        86_400_000 => "24 h".to_owned(),
        other => format!("{other} ms"),
    }
}
