//! Soak-harness benchmark: long-horizon throughput, streaming-analyzer
//! rate, and shrink cost.
//!
//! Three measurements back the observability stack's scaling claims:
//!
//! 1. **soak throughput** — ops/second of the steady-state churn loop
//!    with sampled audits and strided checkpoints (the knob that makes
//!    million-op runs affordable);
//! 2. **analyzer throughput** — lines/second of `cubefit analyze`'s
//!    single-pass reader over the trace the soak just wrote, with its
//!    peak tracked state (open servers) recorded to evidence the
//!    O(open-servers) memory bound;
//! 3. **shrink cost** — replay probes the bisection spends pinning an
//!    injected fault to its first failing op.
//!
//! Run: `cargo run --release -p cubefit-bench --bin soak [-- --quick]`

use cubefit_bench::{write_json, Mode};
use cubefit_sim::report::TextTable;
use cubefit_sim::soak::{run_soak_with, shrink, SoakConfig};
use cubefit_sim::AlgorithmSpec;
use cubefit_telemetry::{analyze_reader, AnalyzeConfig, JsonlSink, Recorder};
use std::io::BufReader;
use std::time::Instant;

fn main() {
    let mode = Mode::from_args();
    let ops: u64 = if mode.is_quick() { 20_000 } else { 1_000_000 };
    let audit_every: u64 = if mode.is_quick() { 1_000 } else { 10_000 };
    let algorithm = AlgorithmSpec::CubeFit { gamma: 2, classes: 10 };

    let mut config = SoakConfig::steady(algorithm, ops, 7);
    config.audit_every = audit_every;
    config.defrag_every = 5_000;

    let trace_path = std::env::temp_dir().join("cubefit-bench-soak.jsonl");
    let file = std::fs::File::create(&trace_path).expect("trace file");
    let recorder = Recorder::with_sink(JsonlSink::new(std::io::BufWriter::new(file)));

    println!(
        "Soak benchmark — {ops} steady-state ops (γ=2, K=10, seed 7), \
         audits every {audit_every}, defrag every 5000\n"
    );

    let started = Instant::now();
    let report = run_soak_with(&config, recorder.clone()).expect("soak runs");
    recorder.flush().expect("trace flushes");
    let soak_secs = started.elapsed().as_secs_f64();
    assert!(report.failure.is_none(), "bench soak must stay clean: {:?}", report.failure);
    assert_eq!(report.final_audit_divergences, Some(0));

    let started = Instant::now();
    let file = std::fs::File::open(&trace_path).expect("trace reopens");
    let analysis =
        analyze_reader(BufReader::new(file), AnalyzeConfig::default()).expect("trace analyzes");
    let analyze_secs = started.elapsed().as_secs_f64();
    assert!(analysis.is_clean(), "clean soak must analyze clean");
    let trace_bytes = std::fs::metadata(&trace_path).map(|m| m.len()).unwrap_or(0);

    // Shrink cost: inject a fault two-thirds in, soak until it trips,
    // then bisect the scenario down to the pinned op.
    let mut faulty = SoakConfig::steady(
        AlgorithmSpec::CubeFit { gamma: 2, classes: 10 },
        (ops / 2).max(2_000),
        7,
    );
    faulty.checkpoint_every = 100;
    faulty.inject_at = Some(faulty.ops * 2 / 3);
    let failed = run_soak_with(&faulty, Recorder::disabled()).expect("faulty soak runs");
    let scenario = failed.scenario.expect("injected fault produces a scenario");
    let started = Instant::now();
    let outcome = shrink(&scenario).expect("scenario shrinks");
    let shrink_secs = started.elapsed().as_secs_f64();

    let mut table = TextTable::new(vec!["measure", "value"]);
    table.row(vec!["soak ops/s".into(), format!("{:.0}", ops as f64 / soak_secs)]);
    table.row(vec!["soak wall (s)".into(), format!("{soak_secs:.2}")]);
    table.row(vec!["audits (sampled)".into(), report.audits.to_string()]);
    table.row(vec!["trace lines".into(), analysis.total_lines.to_string()]);
    table.row(vec![
        "analyze lines/s".into(),
        format!("{:.0}", analysis.total_lines as f64 / analyze_secs),
    ]);
    table.row(vec![
        "analyze MB/s".into(),
        format!("{:.1}", trace_bytes as f64 / 1e6 / analyze_secs),
    ]);
    table.row(vec!["max open servers tracked".into(), analysis.max_open_bins.to_string()]);
    table.row(vec!["shrink probes".into(), outcome.probes.to_string()]);
    table.row(vec!["pinned op".into(), outcome.failure.op.to_string()]);
    table.row(vec!["shrink wall (s)".into(), format!("{shrink_secs:.2}")]);
    println!("{}", table.render());
    println!("the analyzer's tracked state is the open-server set, not the trace;");
    println!("shrink cost is O(log window) replays of the scenario prefix.");

    let soak_json = serde_json::json!({
        "wall_seconds": soak_secs,
        "ops_per_second": ops as f64 / soak_secs,
        "arrivals": report.arrivals,
        "departures": report.departures,
        "failure_events": report.failure_events,
        "defrag_epochs": report.defrag_epochs,
        "audits": report.audits,
        "checkpoints": report.checkpoints,
        "final_tenants": report.final_tenants,
        "final_open_bins": report.final_open_bins,
        "final_audit_divergences": report.final_audit_divergences,
    });
    let analyze_json = serde_json::json!({
        "wall_seconds": analyze_secs,
        "trace_lines": analysis.total_lines,
        "trace_bytes": trace_bytes,
        "lines_per_second": analysis.total_lines as f64 / analyze_secs,
        "max_open_bins_tracked": analysis.max_open_bins,
        "clean": analysis.is_clean(),
    });
    let shrink_json = serde_json::json!({
        "window": vec![scenario.window_lo, scenario.window_hi],
        "probes": outcome.probes,
        "pinned_op": outcome.failure.op,
        "wall_seconds": shrink_secs,
    });
    write_json(
        "BENCH_soak",
        &serde_json::json!({
            "mode": format!("{mode:?}"),
            "ops": ops,
            "seed": 7,
            "audit_every": audit_every,
            "soak": soak_json,
            "analyze": analyze_json,
            "shrink": shrink_json,
        }),
    );
    let _ = std::fs::remove_file(&trace_path);
}
