//! Extension experiment: asymptotic scaling (§V.C prose).
//!
//! The paper notes that CubeFit's "asymptotic performance … is
//! significantly better when there is a large number of tenants to
//! consolidate on a large number of servers". Two sweeps quantify that:
//!
//! 1. the comparative sweep — servers used, savings over RFI, and
//!    placement wall time as the tenant count grows from 1,000 to
//!    100,000 (single backend, per-op placement, as in the paper);
//! 2. the sharded throughput sweep — CubeFit on the hash-partitioned
//!    backend with the batch placement API, up to 1,000,000 tenants,
//!    each run cross-checked by the parallel oracle audit. The sweep
//!    pins a placements/second floor; dropping below it fails the run
//!    so a fast-path regression cannot land silently.
//!
//! Run: `cargo run --release -p cubefit-bench --bin scaling [-- --quick]`

use cubefit_bench::{write_json, Mode};
use cubefit_core::oracle;
use cubefit_sim::experiment::sequence_for;
use cubefit_sim::report::TextTable;
use cubefit_sim::runner::run_sequence;
use cubefit_sim::{AlgorithmSpec, ComparisonConfig, DistributionSpec};
use std::time::Instant;

/// Shards for the throughput sweep (and workers for the parallel audit).
const SHARDS: usize = 8;
/// Tenants per `place_batch` call in the throughput sweep.
const BATCH: usize = 4096;
/// Pinned placement-throughput floor for the largest sweep size,
/// placements/second. Release builds on the reference machine sustain
/// well above this; the margin absorbs CI-machine noise while still
/// catching an order-of-magnitude fast-path regression.
const THROUGHPUT_FLOOR: f64 = 20_000.0;

fn main() {
    let mode = Mode::from_args();
    let sizes: &[usize] = if mode.is_quick() {
        &[1_000, 5_000, 10_000]
    } else {
        &[1_000, 5_000, 10_000, 25_000, 50_000, 100_000]
    };
    let distribution = DistributionSpec::Uniform { min: 1, max: 15 };
    let cubefit = AlgorithmSpec::CubeFit { gamma: 2, classes: 10 };
    let rfi = AlgorithmSpec::Rfi { gamma: 2, mu: 0.85 };

    println!("Scaling sweep — {} (γ=2, K=10)\n", distribution.label());
    let mut table = TextTable::new(vec![
        "tenants",
        "cubefit servers",
        "rfi servers",
        "savings %",
        "cubefit util",
        "cf place (ms)",
        "rfi place (ms)",
    ]);
    let mut json_rows = Vec::new();

    for &tenants in sizes {
        let config = ComparisonConfig { tenants, runs: 1, base_seed: 17, max_clients: 52 };
        let sequence = sequence_for(&distribution, &config, 0);
        let cf = run_sequence(&cubefit, &sequence).expect("valid spec");
        let bf = run_sequence(&rfi, &sequence).expect("valid spec");
        let savings = (bf.servers as f64 - cf.servers as f64) / cf.servers as f64 * 100.0;
        table.row(vec![
            tenants.to_string(),
            cf.servers.to_string(),
            bf.servers.to_string(),
            format!("{savings:.1}"),
            format!("{:.3}", cf.utilization),
            format!("{:.1}", cf.wall.as_secs_f64() * 1e3),
            format!("{:.1}", bf.wall.as_secs_f64() * 1e3),
        ]);
        json_rows.push(serde_json::json!({
            "tenants": tenants,
            "cubefit_servers": cf.servers,
            "rfi_servers": bf.servers,
            "savings_pct": savings,
            "cubefit_utilization": cf.utilization,
            "cubefit_wall_ms": cf.wall.as_secs_f64() * 1e3,
            "rfi_wall_ms": bf.wall.as_secs_f64() * 1e3,
        }));
    }

    println!("{}", table.render());
    println!("paper (§V.C): asymptotic performance improves with scale; savings grow");
    println!("with the tenant population while CubeFit's placement cost stays near-linear.");
    write_json("scaling", &serde_json::json!({ "mode": format!("{mode:?}"), "rows": json_rows }));

    // ---- Sharded throughput sweep -------------------------------------
    let sweep_sizes: &[usize] =
        if mode.is_quick() { &[100_000] } else { &[250_000, 500_000, 1_000_000] };
    println!(
        "\nSharded throughput sweep — {SHARDS} shards, batch {BATCH}, \
         parallel oracle audit ({SHARDS} workers)\n"
    );
    let mut sweep_table = TextTable::new(vec![
        "tenants",
        "servers",
        "place (s)",
        "placements/s",
        "audit (s)",
        "robust",
    ]);
    let mut sweep_rows = Vec::new();
    let mut last_throughput = 0.0f64;

    for &tenants in sweep_sizes {
        let config = ComparisonConfig { tenants, runs: 1, base_seed: 23, max_clients: 52 };
        let sequence = sequence_for(&distribution, &config, 0);
        let mut algorithm = cubefit.build().expect("valid spec");
        algorithm.set_shards(SHARDS);
        let stream: Vec<_> = sequence.tenants().collect();
        let start = Instant::now();
        for chunk in stream.chunks(BATCH) {
            algorithm.place_batch(chunk.to_vec()).expect("placement succeeds");
        }
        let wall = start.elapsed();
        let throughput = tenants as f64 / wall.as_secs_f64();
        last_throughput = throughput;

        let audit_start = Instant::now();
        oracle::audit_sharded(algorithm.placement(), SHARDS)
            .unwrap_or_else(|e| panic!("sharded audit at {tenants} tenants: {e}"));
        let audit_wall = audit_start.elapsed();
        let robust = algorithm.placement().is_robust();
        assert!(robust, "sharded CubeFit placement must stay robust at {tenants} tenants");

        sweep_table.row(vec![
            tenants.to_string(),
            algorithm.placement().open_bins().to_string(),
            format!("{:.2}", wall.as_secs_f64()),
            format!("{throughput:.0}"),
            format!("{:.2}", audit_wall.as_secs_f64()),
            robust.to_string(),
        ]);
        sweep_rows.push(serde_json::json!({
            "tenants": tenants,
            "servers": algorithm.placement().open_bins(),
            "shards": SHARDS,
            "batch": BATCH,
            "place_seconds": wall.as_secs_f64(),
            "placements_per_second": throughput,
            "audit_seconds": audit_wall.as_secs_f64(),
            "robust": robust,
        }));
    }

    println!("{}", sweep_table.render());
    let floor_met = last_throughput >= THROUGHPUT_FLOOR;
    println!(
        "throughput floor: {THROUGHPUT_FLOOR:.0} placements/s — measured {last_throughput:.0} \
         at the largest size ({})",
        if floor_met { "PASS" } else { "FAIL" }
    );
    write_json(
        "BENCH_scaling",
        &serde_json::json!({
            "mode": format!("{mode:?}"),
            "shards": SHARDS,
            "batch": BATCH,
            "rows": sweep_rows,
            "placements_per_second": last_throughput,
            "throughput_floor": THROUGHPUT_FLOOR,
            "floor_met": floor_met,
        }),
    );
    if !floor_met {
        eprintln!(
            "FAIL: sharded placement throughput {last_throughput:.0}/s fell below the pinned \
             floor {THROUGHPUT_FLOOR:.0}/s"
        );
        std::process::exit(1);
    }
}
