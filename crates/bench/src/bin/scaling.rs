//! Extension experiment: asymptotic scaling (§V.C prose).
//!
//! The paper notes that CubeFit's "asymptotic performance … is
//! significantly better when there is a large number of tenants to
//! consolidate on a large number of servers". This sweep quantifies that:
//! servers used, savings over RFI, and placement wall time as the tenant
//! count grows from 1,000 to 100,000.
//!
//! Run: `cargo run --release -p cubefit-bench --bin scaling [-- --quick]`

use cubefit_bench::{write_json, Mode};
use cubefit_sim::experiment::sequence_for;
use cubefit_sim::report::TextTable;
use cubefit_sim::runner::run_sequence;
use cubefit_sim::{AlgorithmSpec, ComparisonConfig, DistributionSpec};

fn main() {
    let mode = Mode::from_args();
    let sizes: &[usize] = if mode.is_quick() {
        &[1_000, 5_000, 10_000]
    } else {
        &[1_000, 5_000, 10_000, 25_000, 50_000, 100_000]
    };
    let distribution = DistributionSpec::Uniform { min: 1, max: 15 };
    let cubefit = AlgorithmSpec::CubeFit { gamma: 2, classes: 10 };
    let rfi = AlgorithmSpec::Rfi { gamma: 2, mu: 0.85 };

    println!("Scaling sweep — {} (γ=2, K=10)\n", distribution.label());
    let mut table = TextTable::new(vec![
        "tenants",
        "cubefit servers",
        "rfi servers",
        "savings %",
        "cubefit util",
        "cf place (ms)",
        "rfi place (ms)",
    ]);
    let mut json_rows = Vec::new();

    for &tenants in sizes {
        let config = ComparisonConfig { tenants, runs: 1, base_seed: 17, max_clients: 52 };
        let sequence = sequence_for(&distribution, &config, 0);
        let cf = run_sequence(&cubefit, &sequence).expect("valid spec");
        let bf = run_sequence(&rfi, &sequence).expect("valid spec");
        let savings = (bf.servers as f64 - cf.servers as f64) / cf.servers as f64 * 100.0;
        table.row(vec![
            tenants.to_string(),
            cf.servers.to_string(),
            bf.servers.to_string(),
            format!("{savings:.1}"),
            format!("{:.3}", cf.utilization),
            format!("{:.1}", cf.wall.as_secs_f64() * 1e3),
            format!("{:.1}", bf.wall.as_secs_f64() * 1e3),
        ]);
        json_rows.push(serde_json::json!({
            "tenants": tenants,
            "cubefit_servers": cf.servers,
            "rfi_servers": bf.servers,
            "savings_pct": savings,
            "cubefit_utilization": cf.utilization,
            "cubefit_wall_ms": cf.wall.as_secs_f64() * 1e3,
            "rfi_wall_ms": bf.wall.as_secs_f64() * 1e3,
        }));
    }

    println!("{}", table.render());
    println!("paper (§V.C): asymptotic performance improves with scale; savings grow");
    println!("with the tenant population while CubeFit's placement cost stays near-linear.");
    write_json("scaling", &serde_json::json!({ "mode": format!("{mode:?}"), "rows": json_rows }));
}
