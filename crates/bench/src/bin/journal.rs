//! Journal-overhead benchmark: soak throughput with and without the
//! write-ahead mutation journal, under each fsync policy.
//!
//! The durability layer's headline claim is that journaling every
//! mutation (place/remove/migrate/update_load) before ack costs little:
//! the acceptance bar is **≤15% soak-throughput overhead** for the
//! journaling mechanism — serialize, checksum, and `write(2)` each frame
//! before the op is acknowledged (`fsync never`), which is exactly the
//! process-crash durability the crash harness proves. This binary runs
//! the same steady-state soak four ways — unjournaled baseline, then
//! journaled under `never`, `interval:1024`, and `always` — and records
//! ops/second plus the overhead versus baseline for each policy.
//!
//! The fsync policies are reported but not gated: a policy sync's cost
//! is synchronous writeback of the dirty log — it prices the *disk*
//! (≈10 µs/KB on a cloud block device, nearly free on a desktop NVMe),
//! not the code. A code regression shows up identically in the gated
//! `never` run, and the CI trend gate tracks the interval policy's
//! throughput across runs on like hardware.
//!
//! Configurations run interleaved — one rep of each, [`REPS`] rounds —
//! with a disk `sync` between runs, so page-cache writeback from one
//! configuration cannot bleed into the next and drifting machine load
//! penalizes all configurations alike. Each keeps its fastest wall time,
//! so a one-off scheduler hiccup does not fail the in-binary gate.
//! The ≤15% assert fires only in the full run: at quick scale the
//! baseline loop is cache-resident and a fixed per-append syscall reads
//! as an outsized relative cost. Quick runs print the overhead as
//! advisory and feed the CI trend gate, which compares quick against
//! quick.
//!
//! Run: `cargo run --release -p cubefit-bench --bin journal [-- --quick]`

use cubefit_bench::{write_json, Mode};
use cubefit_durability::{FsyncPolicy, Journal};
use cubefit_sim::report::TextTable;
use cubefit_sim::soak::{run_soak_journaled, run_soak_with, SoakConfig, SoakReport};
use cubefit_sim::AlgorithmSpec;
use cubefit_telemetry::{JsonlSink, Recorder};
use std::time::Instant;

/// Overhead (percent of baseline throughput) the gated policy may cost.
const MAX_OVERHEAD_PERCENT: f64 = 15.0;
/// Runs per configuration; the fastest wall time wins.
const REPS: u32 = 3;

struct Measured {
    report: SoakReport,
    ops: u64,
    secs: f64,
    wal_bytes: u64,
}

impl Measured {
    fn ops_per_second(&self) -> f64 {
        self.ops as f64 / self.secs
    }
}

fn soak_config(ops: u64, audit_every: u64) -> SoakConfig {
    // Exactly the shape BENCH_soak measures — sampled audits, defrag
    // epochs, and the 500-op trace/monitor checkpoint stride included —
    // so "overhead" means overhead on the soak throughput the repo
    // already tracks, not on a stripped-down loop. Only the journal
    // checkpoint stride is set on top: a full-snapshot fsync every 500
    // ops would be checkpoint-bound, so journaled deployments run them
    // orders of magnitude rarer and pay with a longer (still small)
    // replay at recovery.
    let mut config = SoakConfig::steady(AlgorithmSpec::CubeFit { gamma: 2, classes: 10 }, ops, 7);
    config.audit_every = audit_every;
    config.defrag_every = 5_000;
    config.journal_checkpoint_every = Some(25_000);
    config
}

/// A trace recorder streaming to disk, exactly as `BENCH_soak` runs —
/// "soak throughput" is the traced loop, so overhead is measured against
/// the configuration the trend gate already tracks.
fn trace_recorder(tag: &str) -> (Recorder, std::path::PathBuf) {
    let path = std::env::temp_dir().join(format!("cubefit-bench-journal-{tag}.jsonl"));
    let file = std::fs::File::create(&path).expect("trace file");
    (Recorder::with_sink(JsonlSink::new(std::io::BufWriter::new(file))), path)
}

/// Flushes dirty pages so the next run does not inherit this one's
/// writeback debt. Best-effort: a missing `sync` binary just skips it.
fn settle_disks() {
    let _ = std::process::Command::new("sync").status();
}

fn run_baseline_once(ops: u64, audit_every: u64) -> Measured {
    let config = soak_config(ops, audit_every);
    settle_disks();
    let (recorder, trace) = trace_recorder("baseline");
    let started = Instant::now();
    let report = run_soak_with(&config, recorder.clone()).expect("baseline soak runs");
    recorder.flush().expect("trace flushes");
    let secs = started.elapsed().as_secs_f64();
    let _ = std::fs::remove_file(&trace);
    assert!(report.failure.is_none(), "bench soak must stay clean: {:?}", report.failure);
    Measured { report, ops, secs, wal_bytes: 0 }
}

fn run_journaled_once(ops: u64, audit_every: u64, policy: FsyncPolicy, tag: &str) -> Measured {
    let config = soak_config(ops, audit_every);
    let dir = std::env::temp_dir().join(format!("cubefit-bench-journal-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    settle_disks();
    let journal = Journal::create(&dir, 2, policy).expect("journal creates");
    let (recorder, trace) = trace_recorder(tag);
    let started = Instant::now();
    let report =
        run_soak_journaled(&config, recorder.clone(), &journal, None).expect("journaled soak");
    recorder.flush().expect("trace flushes");
    let secs = started.elapsed().as_secs_f64();
    let _ = std::fs::remove_file(&trace);
    assert!(report.failure.is_none(), "bench soak must stay clean: {:?}", report.failure);
    let wal_bytes = journal.appended_bytes();
    let _ = std::fs::remove_dir_all(&dir);
    Measured { report, ops, secs, wal_bytes }
}

/// Keeps the faster of the incumbent and the fresh measurement.
fn keep_best(best: &mut Option<Measured>, fresh: Measured) {
    if best.as_ref().is_none_or(|b| fresh.secs < b.secs) {
        *best = Some(fresh);
    }
}

fn overhead_percent(baseline: &Measured, journaled: &Measured) -> f64 {
    // Throughput loss versus baseline; per-op rates, so runs of different
    // op counts compare fairly.
    (1.0 - journaled.ops_per_second() / baseline.ops_per_second()) * 100.0
}

fn policy_json(baseline: &Measured, m: &Measured) -> serde_json::Value {
    serde_json::json!({
        "ops": m.ops,
        "wall_seconds": m.secs,
        "ops_per_second": m.ops_per_second(),
        "overhead_percent": overhead_percent(baseline, m),
        "wal_bytes": m.wal_bytes,
        "bytes_per_op": m.wal_bytes as f64 / m.ops as f64,
    })
}

fn main() {
    let mode = Mode::from_args();
    let ops: u64 = if mode.is_quick() { 50_000 } else { 1_000_000 };
    let audit_every: u64 = if mode.is_quick() { 1_000 } else { 10_000 };

    println!(
        "Journal-overhead benchmark — {ops} steady-state ops (γ=2, K=10, seed 7), \
         best of {REPS} reps per configuration\n"
    );

    // `always` fsyncs per frame (~100 µs each on commodity disks), so the
    // full run caps its op count: it is context, not the gated policy.
    let always_ops = if mode.is_quick() { ops } else { ops / 20 };

    let (mut b, mut n, mut i, mut a) = (None, None, None, None);
    for round in 0..REPS {
        println!("round {}/{REPS}...", round + 1);
        keep_best(&mut b, run_baseline_once(ops, audit_every));
        keep_best(&mut n, run_journaled_once(ops, audit_every, FsyncPolicy::Never, "never"));
        keep_best(
            &mut i,
            run_journaled_once(ops, audit_every, FsyncPolicy::Interval(1024), "interval"),
        );
        keep_best(
            &mut a,
            run_journaled_once(always_ops, audit_every, FsyncPolicy::Always, "always"),
        );
    }
    let (baseline, never, interval, always) =
        (b.expect("reps"), n.expect("reps"), i.expect("reps"), a.expect("reps"));

    // Journaling is a pure observer: same-length runs must follow the
    // exact trajectory of the unjournaled baseline.
    for (name, m) in [("never", &never), ("interval:1024", &interval)] {
        assert_eq!(
            (m.report.final_tenants, m.report.final_open_bins),
            (baseline.report.final_tenants, baseline.report.final_open_bins),
            "journaled run ({name}) must end in the baseline's state"
        );
    }

    let mut table = TextTable::new(vec!["configuration", "ops/s", "overhead", "WAL bytes/op"]);
    table.row(vec![
        "unjournaled".into(),
        format!("{:.0}", baseline.ops_per_second()),
        "—".into(),
        "—".into(),
    ]);
    for (name, m) in
        [("fsync never", &never), ("fsync interval:1024", &interval), ("fsync always", &always)]
    {
        table.row(vec![
            format!("journal, {name}"),
            format!("{:.0}", m.ops_per_second()),
            format!("{:+.1}%", overhead_percent(&baseline, m)),
            format!("{:.0}", m.wal_bytes as f64 / m.ops as f64),
        ]);
    }
    println!("{}", table.render());
    println!(
        "the gate holds the journaling mechanism (fsync never) to          ≤{MAX_OVERHEAD_PERCENT:.0}% overhead;"
    );
    println!("sync policies are reported for context — their cost is disk writeback, not code.");

    let gated = overhead_percent(&baseline, &never);
    let baseline_json = serde_json::json!({
        "ops": baseline.ops,
        "wall_seconds": baseline.secs,
        "ops_per_second": baseline.ops_per_second(),
    });
    let journaled_json = serde_json::json!({
        "never": policy_json(&baseline, &never),
        "interval": policy_json(&baseline, &interval),
        "always": policy_json(&baseline, &always),
    });
    // `headroom_percent` is the trend-gate metric (higher is better):
    // how far under the overhead ceiling the default policy lands.
    let gate_json = serde_json::json!({
        "policy": "never",
        "overhead_percent": gated,
        "max_overhead_percent": MAX_OVERHEAD_PERCENT,
        "headroom_percent": MAX_OVERHEAD_PERCENT - gated,
    });
    write_json(
        "BENCH_journal",
        &serde_json::json!({
            "mode": format!("{mode:?}"),
            "ops": ops,
            "seed": 7,
            "reps": REPS,
            "baseline": baseline_json,
            "journaled": journaled_json,
            "gate": gate_json,
        }),
    );
    if mode.is_quick() {
        // At quick scale the unjournaled loop runs a few hundred tenants
        // entirely from cache (~4 µs/op), so the fixed per-append syscall
        // reads as a large *relative* overhead. The ≤15% budget is a
        // paper-scale claim — enforced in the full run, where per-op work
        // is real — while quick runs feed the CI trend gate, which
        // catches regressions by comparing like against like.
        println!(
            "\njournal overhead (quick): {gated:.1}% — advisory only; \
             the {MAX_OVERHEAD_PERCENT:.0}% budget is enforced at full scale"
        );
    } else {
        assert!(
            gated <= MAX_OVERHEAD_PERCENT,
            "journaling overhead {gated:.1}% exceeds the {MAX_OVERHEAD_PERCENT:.0}% budget \
             (fsync never policy)"
        );
        println!("\njournal overhead gate: PASS ({gated:.1}% ≤ {MAX_OVERHEAD_PERCENT:.0}%)");
    }
}
