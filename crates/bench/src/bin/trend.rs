//! Benchmark trend gate binary.
//!
//! Compares fresh `BENCH_*.json` records against cached baselines and
//! exits non-zero on a throughput regression beyond the threshold.
//!
//! ```text
//! cargo run --release -p cubefit-bench --bin trend -- \
//!     --compare baseline/BENCH_soak.json results/BENCH_soak.json \
//!         soak.ops_per_second,analyze.lines_per_second \
//!     --compare baseline/BENCH_scaling.json results/BENCH_scaling.json \
//!         placements_per_second \
//!     [--threshold 0.15]
//! ```
//!
//! Each `--compare` takes a baseline path (may not exist yet — first
//! runs pass), a current path (must exist), and a comma-separated list
//! of dotted metric keys. Higher is better for every key.

use cubefit_bench::trend::{self, FileSpec, DEFAULT_THRESHOLD};

fn parse_args(args: &[String]) -> Result<(Vec<FileSpec>, f64), String> {
    let mut specs = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--compare" => {
                let chunk = args
                    .get(i + 1..i + 4)
                    .ok_or("--compare needs BASELINE CURRENT KEY[,KEY...]")?;
                specs.push(FileSpec {
                    baseline: chunk[0].clone(),
                    current: chunk[1].clone(),
                    keys: chunk[2].split(',').map(str::to_string).collect(),
                });
                i += 4;
            }
            "--threshold" => {
                threshold = args
                    .get(i + 1)
                    .and_then(|t| t.parse().ok())
                    .ok_or("--threshold needs a fraction, e.g. 0.15")?;
                i += 2;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if specs.is_empty() {
        return Err("at least one --compare is required".to_string());
    }
    Ok((specs, threshold))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (specs, threshold) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("trend: {e}");
            std::process::exit(2);
        }
    };
    match trend::run(&specs, threshold) {
        Ok((lines, all_pass)) => {
            println!("benchmark trend gate (allowed drop {:.0}%)", threshold * 100.0);
            for line in &lines {
                println!("  {line}");
            }
            if all_pass {
                println!("trend gate: PASS");
            } else {
                eprintln!("trend gate: FAIL — throughput regressed beyond the threshold");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("trend: {e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_compare_specs_and_threshold() {
        let (specs, threshold) =
            parse_args(&strs(&["--compare", "a.json", "b.json", "x.y,z", "--threshold", "0.2"]))
                .unwrap();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].keys, vec!["x.y", "z"]);
        assert!((threshold - 0.2).abs() < 1e-12);
    }

    #[test]
    fn rejects_empty_and_unknown_args() {
        assert!(parse_args(&[]).unwrap_err().contains("--compare"));
        assert!(parse_args(&strs(&["--bogus"])).unwrap_err().contains("unknown"));
        assert!(parse_args(&strs(&["--compare", "a"])).unwrap_err().contains("needs"));
    }
}
