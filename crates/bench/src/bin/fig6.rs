//! Reproduces **Fig. 6**: percentage savings in servers used by CubeFit
//! over RFI — `(RFI − CUBEFIT)/CUBEFIT × 100%` — across uniform and zipfian
//! tenant-load distributions, with 95% confidence intervals over 10
//! independent runs of 50,000 tenants (K = 10, γ = 2, C = 52).
//!
//! The exact x-axis tick values are unreadable in the paper source; per
//! DESIGN.md §3, the sweep uses uniform client ranges 1–13/26/39/52 and
//! zipf exponents 1/2/3 (the paper's headline configurations, uniform 1–15
//! and zipf 3, are included). Paper reference: CubeFit saves ~25–35%
//! across the board, improving as tenants get smaller.
//!
//! Run: `cargo run --release -p cubefit-bench --bin fig6 [-- --quick]`

use cubefit_bench::{write_bench_metrics, write_json, Mode};
use cubefit_sim::report::{mean_ci, TextTable};
use cubefit_sim::{compare, AlgorithmSpec, ComparisonConfig, DistributionSpec};

fn main() {
    let mode = Mode::from_args();
    let config = if mode.is_quick() {
        ComparisonConfig { tenants: 5_000, runs: 3, base_seed: 1, max_clients: 52 }
    } else {
        ComparisonConfig::paper(1)
    };

    let distributions = [
        DistributionSpec::Uniform { min: 1, max: 13 },
        DistributionSpec::Uniform { min: 1, max: 15 },
        DistributionSpec::Uniform { min: 1, max: 26 },
        DistributionSpec::Uniform { min: 1, max: 39 },
        DistributionSpec::Uniform { min: 1, max: 52 },
        DistributionSpec::Zipf { exponent: 1.0 },
        DistributionSpec::Zipf { exponent: 2.0 },
        DistributionSpec::Zipf { exponent: 3.0 },
    ];
    let rfi = AlgorithmSpec::Rfi { gamma: 2, mu: 0.85 };
    let cubefit = AlgorithmSpec::CubeFit { gamma: 2, classes: 10 };

    println!("Fig. 6 — % server savings of CubeFit over RFI (95% CIs)");
    println!(
        "mode: {:?} ({} runs × {} tenants, γ=2, K=10, C={})\n",
        mode, config.runs, config.tenants, config.max_clients
    );

    let mut table = TextTable::new(vec![
        "distribution",
        "rfi servers",
        "cubefit servers",
        "savings %",
        "rfi util",
        "cf util",
        "cf place ms",
        "rfi place ms",
    ]);
    let mut json_rows = Vec::new();

    for distribution in &distributions {
        let result =
            compare(&rfi, &cubefit, distribution, &config).expect("comparison specs are valid");
        table.row(vec![
            result.distribution.clone(),
            mean_ci(&result.baseline_servers, 0),
            mean_ci(&result.candidate_servers, 0),
            mean_ci(&result.relative_difference_pct, 1),
            format!("{:.3}", result.baseline_utilization.mean),
            format!("{:.3}", result.candidate_utilization.mean),
            format!("{:.1}", result.candidate_wall_ms.mean),
            format!("{:.1}", result.baseline_wall_ms.mean),
        ]);
        json_rows.push(serde_json::to_value(&result).expect("serializable"));
    }

    println!("{}", table.render());
    println!("paper: savings ≈ 25–35% across distributions (Fig. 6), growing as");
    println!("       the share of small tenants grows");
    write_json("fig6", &serde_json::json!({ "mode": format!("{mode:?}"), "rows": json_rows }));
    write_bench_metrics(
        "fig6",
        &cubefit,
        &DistributionSpec::Uniform { min: 1, max: 15 },
        if mode.is_quick() { 2_000 } else { 20_000 },
        config.base_seed,
    );
}
