//! # cubefit-bench
//!
//! Benchmark harness reproducing every table and figure of the CubeFit
//! paper's evaluation (§V), plus Criterion micro-benchmarks and ablation
//! studies.
//!
//! Experiment binaries (run with `cargo run --release -p cubefit-bench
//! --bin <name>`; add `-- --quick` for a scaled-down smoke run):
//!
//! | binary     | reproduces |
//! |------------|------------|
//! | `fig5`     | Fig. 5 — p99 latency under worst-case 1- and 2-server failures |
//! | `fig6`     | Fig. 6 — % server savings of CubeFit over RFI with 95% CIs |
//! | `table1`   | Table I — yearly cost savings |
//! | `theorem2` | Theorem 2 — competitive-ratio upper bounds |
//! | `ablation` | design-choice ablations: K, μ, tiny policy, stage-1 rules |
//!
//! Each binary prints a plain-text table mirroring the paper artefact and
//! writes machine-readable JSON next to it under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use cubefit_sim::{AlgorithmSpec, ComparisonConfig, DistributionSpec};
use cubefit_telemetry::Recorder;
use std::path::PathBuf;

pub mod trend;

/// Run-mode for experiment binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// The paper's full protocol.
    Paper,
    /// A scaled-down smoke run (minutes → seconds).
    Quick,
}

impl Mode {
    /// Parses the mode from process arguments (`--quick` selects
    /// [`Mode::Quick`]).
    #[must_use]
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            Mode::Quick
        } else {
            Mode::Paper
        }
    }

    /// Whether this is the scaled-down mode.
    #[must_use]
    pub fn is_quick(self) -> bool {
        self == Mode::Quick
    }
}

/// Location for machine-readable experiment outputs: `results/` under the
/// workspace root (created on demand), or the current directory as a
/// fallback.
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = std::env::var_os("CUBEFIT_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    if std::fs::create_dir_all(&dir).is_err() {
        return PathBuf::from(".");
    }
    dir
}

/// Writes a JSON value to `results/<name>.json`, reporting the path on
/// stdout; failures are reported but not fatal (experiments still print
/// their tables).
pub fn write_json(name: &str, value: &serde_json::Value) {
    let path = results_dir().join(format!("{name}.json"));
    match cubefit_core::write_atomic(
        &path,
        serde_json::to_string_pretty(value).expect("serializable"),
    ) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Runs one instrumented placement pass and writes `BENCH_<name>.json`:
/// wall-clock seconds, tenants/second, and the full decision-counter
/// snapshot. Experiment binaries call this after their main artefact so
/// every figure run leaves a machine-readable telemetry record behind.
pub fn write_bench_metrics(
    name: &str,
    spec: &AlgorithmSpec,
    distribution: &DistributionSpec,
    tenants: usize,
    seed: u64,
) {
    let config = ComparisonConfig { tenants, runs: 1, base_seed: seed, max_clients: 52 };
    let sequence = cubefit_sim::experiment::sequence_for(distribution, &config, 0);
    let recorder = Recorder::enabled();
    match cubefit_sim::run_sequence_with(spec, &sequence, &recorder) {
        Ok(result) => {
            let value = serde_json::json!({
                "algorithm": result.algorithm,
                "distribution": distribution.label(),
                "tenants": result.tenants,
                "servers": result.servers,
                "utilization": result.utilization,
                "robust": result.robust,
                "wall_seconds": result.wall.as_secs_f64(),
                "tenants_per_second": result.tenants_per_second(),
                "metrics": serde_json::to_value(&result.metrics).expect("serializable"),
            });
            write_json(&format!("BENCH_{name}"), &value);
        }
        Err(e) => eprintln!("instrumented bench run for {name} failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_detection_defaults_to_paper() {
        // The test harness passes no --quick flag.
        assert_eq!(Mode::from_args(), Mode::Paper);
        assert!(!Mode::Paper.is_quick());
        assert!(Mode::Quick.is_quick());
    }

    #[test]
    fn results_dir_is_creatable() {
        let dir = results_dir();
        assert!(dir.exists() || dir.as_os_str() == ".");
    }
}
