//! Benchmark trend gate: compare successive `BENCH_*.json` records and
//! fail on throughput regressions.
//!
//! Every experiment binary leaves a machine-readable record under
//! `results/` (e.g. `BENCH_soak.json`, `BENCH_scaling.json`). CI caches
//! the previous run's records and calls the `trend` binary with pairs of
//! (baseline, current) files plus the dotted keys to compare. A tracked
//! metric that drops by more than the allowed fraction (default 15%)
//! fails the gate; higher-is-better semantics are assumed for every key.
//!
//! The comparison is deliberately one-sided: improvements and baseline
//! absences (first run on a fresh cache, a newly added metric) pass, so
//! the gate never blocks the build that *introduces* a benchmark.

use std::fmt;

/// Default allowed fractional drop before the gate fails (15%).
pub const DEFAULT_THRESHOLD: f64 = 0.15;

/// Outcome of one metric comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Metric held (within threshold, improved, or no baseline to hold).
    Pass {
        /// Human-readable detail.
        detail: String,
    },
    /// Metric regressed beyond the threshold.
    Regressed {
        /// Baseline value.
        baseline: f64,
        /// Current value.
        current: f64,
        /// Fractional drop, e.g. `0.2` for a 20% regression.
        drop: f64,
    },
}

impl Verdict {
    /// Whether this verdict passes the gate.
    #[must_use]
    pub fn is_pass(&self) -> bool {
        matches!(self, Verdict::Pass { .. })
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Pass { detail } => write!(f, "PASS ({detail})"),
            Verdict::Regressed { baseline, current, drop } => write!(
                f,
                "FAIL ({current:.1} vs baseline {baseline:.1}: -{:.1}% > allowed)",
                drop * 100.0
            ),
        }
    }
}

/// Looks up a dotted key (e.g. `soak.ops_per_second`) in a parsed JSON
/// value. Array elements are addressed by numeric segments
/// (`rows.2.placements_per_second`). Returns `None` for missing paths or
/// non-numeric leaves.
#[must_use]
pub fn lookup(value: &serde_json::Value, dotted: &str) -> Option<f64> {
    let mut node = value;
    for segment in dotted.split('.') {
        node = match node {
            serde_json::Value::Object(map) => map.get(segment)?,
            serde_json::Value::Array(items) => items.get(segment.parse::<usize>().ok()?)?,
            _ => return None,
        };
    }
    match node {
        serde_json::Value::Number(n) => Some(n.as_f64()),
        _ => None,
    }
}

/// Compares `current` against `baseline` for one dotted key.
///
/// Missing baseline (no file yet, or the key is new) passes — the gate
/// only ever compares like against like. A missing *current* key fails:
/// the metric existed before, so its disappearance is itself a
/// regression signal.
#[must_use]
pub fn compare_metric(
    baseline: Option<&serde_json::Value>,
    current: &serde_json::Value,
    key: &str,
    threshold: f64,
) -> Verdict {
    let Some(old) = baseline.and_then(|b| lookup(b, key)) else {
        return Verdict::Pass { detail: "no baseline".to_string() };
    };
    let Some(new) = lookup(current, key) else {
        return Verdict::Regressed { baseline: old, current: f64::NAN, drop: 1.0 };
    };
    if old <= 0.0 {
        return Verdict::Pass { detail: "baseline not positive".to_string() };
    }
    let drop = (old - new) / old;
    if drop > threshold {
        Verdict::Regressed { baseline: old, current: new, drop }
    } else {
        Verdict::Pass { detail: format!("{new:.1} vs baseline {old:.1}") }
    }
}

/// One (baseline-path, current-path, keys) comparison spec as parsed from
/// the `trend` binary's command line.
#[derive(Debug, Clone)]
pub struct FileSpec {
    /// Path to the cached baseline record (may not exist yet).
    pub baseline: String,
    /// Path to the freshly produced record.
    pub current: String,
    /// Dotted keys to compare between the two.
    pub keys: Vec<String>,
}

/// Runs the gate over `specs`, returning per-key report lines and whether
/// every metric passed.
///
/// # Errors
///
/// Returns a message if a *current* file is missing or unparseable —
/// the benchmark that should have produced it did not run — or if a
/// baseline file exists but cannot be read or parsed: a corrupt cached
/// baseline must be surfaced (naming the file and the keys it gates),
/// not silently treated as "no baseline yet" and waved through.
pub fn run(specs: &[FileSpec], threshold: f64) -> Result<(Vec<String>, bool), String> {
    let mut lines = Vec::new();
    let mut all_pass = true;
    for spec in specs {
        let baseline: Option<serde_json::Value> = match std::fs::read_to_string(&spec.baseline) {
            Ok(text) => Some(serde_json::from_str(&text).map_err(|e| {
                format!(
                    "baseline {} is unreadable as JSON (gates {}): {e}; \
                     delete the cached file to re-baseline",
                    spec.baseline,
                    spec.keys.join(", ")
                )
            })?),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => {
                return Err(format!(
                    "reading baseline {} (gates {}): {e}",
                    spec.baseline,
                    spec.keys.join(", ")
                ))
            }
        };
        let current_text = std::fs::read_to_string(&spec.current)
            .map_err(|e| format!("reading {}: {e}", spec.current))?;
        let current: serde_json::Value = serde_json::from_str(&current_text)
            .map_err(|e| format!("parsing {}: {e}", spec.current))?;
        for key in &spec.keys {
            let verdict = compare_metric(baseline.as_ref(), &current, key, threshold);
            all_pass &= verdict.is_pass();
            lines.push(format!("{}: {key}: {verdict}", spec.current));
        }
    }
    Ok((lines, all_pass))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json(text: &str) -> serde_json::Value {
        serde_json::from_str(text).unwrap()
    }

    #[test]
    fn lookup_walks_objects_and_arrays() {
        let v = json(r#"{"soak":{"ops_per_second":100.0},"rows":[{"x":1.0},{"x":2.5}]}"#);
        assert_eq!(lookup(&v, "soak.ops_per_second"), Some(100.0));
        assert_eq!(lookup(&v, "rows.1.x"), Some(2.5));
        assert_eq!(lookup(&v, "rows.9.x"), None);
        assert_eq!(lookup(&v, "soak.missing"), None);
        assert_eq!(lookup(&v, "soak"), None, "non-numeric leaf is not a metric");
    }

    #[test]
    fn within_threshold_passes_and_beyond_fails() {
        let old = json(r#"{"t":100.0}"#);
        let held = compare_metric(Some(&old), &json(r#"{"t":90.0}"#), "t", 0.15);
        assert!(held.is_pass(), "{held}");
        let regressed = compare_metric(Some(&old), &json(r#"{"t":80.0}"#), "t", 0.15);
        assert!(!regressed.is_pass());
        assert!(regressed.to_string().contains("-20.0%"), "{regressed}");
    }

    #[test]
    fn improvements_always_pass() {
        let old = json(r#"{"t":100.0}"#);
        assert!(compare_metric(Some(&old), &json(r#"{"t":500.0}"#), "t", 0.15).is_pass());
    }

    #[test]
    fn missing_baseline_passes_missing_current_fails() {
        let current = json(r#"{"t":100.0}"#);
        assert!(compare_metric(None, &current, "t", 0.15).is_pass());
        let old = json(r#"{"t":100.0,"gone":5.0}"#);
        assert!(compare_metric(Some(&old), &current, "t", 0.15).is_pass());
        assert!(!compare_metric(Some(&old), &current, "gone", 0.15).is_pass());
    }

    #[test]
    fn run_reads_files_and_aggregates() {
        let dir = std::env::temp_dir().join("cubefit-trend-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let cur = dir.join("cur.json");
        std::fs::write(&base, r#"{"soak":{"ops_per_second":100000.0}}"#).unwrap();
        std::fs::write(&cur, r#"{"soak":{"ops_per_second":95000.0}}"#).unwrap();
        let spec = FileSpec {
            baseline: base.to_string_lossy().into_owned(),
            current: cur.to_string_lossy().into_owned(),
            keys: vec!["soak.ops_per_second".to_string()],
        };
        let (lines, ok) = run(std::slice::from_ref(&spec), DEFAULT_THRESHOLD).unwrap();
        assert!(ok, "{lines:?}");
        assert_eq!(lines.len(), 1);

        std::fs::write(&cur, r#"{"soak":{"ops_per_second":10000.0}}"#).unwrap();
        let (lines, ok) = run(std::slice::from_ref(&spec), DEFAULT_THRESHOLD).unwrap();
        assert!(!ok, "{lines:?}");

        // First run with no cached baseline must pass.
        let fresh =
            FileSpec { baseline: dir.join("nope.json").to_string_lossy().into_owned(), ..spec };
        let (_, ok) = run(&[fresh], DEFAULT_THRESHOLD).unwrap();
        assert!(ok);
    }

    #[test]
    fn run_fails_on_missing_current_file() {
        let spec = FileSpec {
            baseline: "/nonexistent-base.json".to_string(),
            current: "/nonexistent-cur.json".to_string(),
            keys: vec!["t".to_string()],
        };
        assert!(run(&[spec], DEFAULT_THRESHOLD).unwrap_err().contains("reading"));
    }

    /// A baseline that exists but is not valid JSON must produce an error
    /// naming the offending file and the dotted keys it gates — not pass
    /// silently as if no baseline were cached.
    #[test]
    fn run_names_file_and_keys_for_a_corrupt_baseline() {
        let dir = std::env::temp_dir().join("cubefit-trend-tests-corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let cur = dir.join("cur.json");
        std::fs::write(&base, "{not json at all").unwrap();
        std::fs::write(&cur, r#"{"serve":{"goodput_per_sec":800.0}}"#).unwrap();
        let spec = FileSpec {
            baseline: base.to_string_lossy().into_owned(),
            current: cur.to_string_lossy().into_owned(),
            keys: vec!["serve.goodput_per_sec".to_string(), "serve.completed".to_string()],
        };
        let err = run(&[spec], DEFAULT_THRESHOLD).unwrap_err();
        assert!(err.contains("base.json"), "error must name the file: {err}");
        assert!(err.contains("serve.goodput_per_sec"), "error must name the keys: {err}");
        assert!(err.contains("serve.completed"), "error must name every key: {err}");
        assert!(err.contains("re-baseline"), "error should say how to recover: {err}");
    }
}
