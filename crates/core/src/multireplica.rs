//! Multi-replica aggregation for tiny (class-`K`) tenants (paper §III).
//!
//! Replicas smaller than `1/(K+γ−1)` are too small to justify their own
//! slots. CubeFit groups them into **multi-replicas**: at any time there are
//! `γ` active multi-replicas — one per cube group — that contain exactly the
//! same set of tiny replicas and grow in place inside a slot of the target
//! class. When adding a replica would push the multi-replica past its cap,
//! the current one is sealed and a fresh one (holding just the new replica)
//! is started in a newly assigned slot.
//!
//! Because the `γ` copies always hold identical replica sets, a
//! multi-replica behaves exactly like a single replica of the target class
//! with respect to the shared-load structure, so Lemma 1 and Theorem 1
//! extend unchanged.

use crate::bin::BinId;
use crate::cube::{ClassGroups, SlotTarget};
use crate::placement::Placement;

/// Placement decision for one tiny tenant.
#[derive(Debug, Clone)]
pub(crate) struct MultiPlacement {
    /// The `γ` bins hosting the active multi-replica (and thus this tenant).
    pub bins: Vec<BinId>,
    /// Slot assignments, present only when a fresh multi-replica was opened
    /// by this tenant (the caller updates slot-occupancy/maturity from it).
    pub new_slots: Option<Vec<SlotTarget>>,
}

/// State of the active multi-replica for the tiny class.
#[derive(Debug, Clone)]
pub(crate) struct MultiReplicaState {
    /// Maximum total size of one multi-replica (the target-class slot size
    /// under [`crate::TinyPolicy::ClassKMinus1`], `1/α_K` under
    /// [`crate::TinyPolicy::Theoretical`]).
    cap: f64,
    active: Option<ActiveMulti>,
    /// Sealed multi-replicas created so far (for stats and tests).
    sealed: usize,
}

#[derive(Debug, Clone)]
struct ActiveMulti {
    targets: Vec<SlotTarget>,
    size: f64,
    members: usize,
    /// Whether the cell's slot assignments are still unreported: the first
    /// member's [`MultiPlacement`] carries them so the caller can update
    /// slot occupancy and maturity exactly once per cell.
    fresh: bool,
}

impl MultiReplicaState {
    pub(crate) fn new(cap: f64) -> Self {
        assert!(cap > 0.0);
        MultiReplicaState { cap, active: None, sealed: 0 }
    }

    /// Number of multi-replicas sealed (completed) so far.
    pub(crate) fn sealed(&self) -> usize {
        self.sealed
    }

    /// Number of replicas in the active multi-replica (0 if none).
    #[allow(dead_code)] // exercised by unit tests; handy for debugging
    pub(crate) fn active_members(&self) -> usize {
        self.active.as_ref().map_or(0, |a| a.members)
    }

    /// Current size of the active multi-replica (0 if none).
    #[allow(dead_code)] // exercised by unit tests; handy for debugging
    pub(crate) fn active_size(&self) -> f64 {
        self.active.as_ref().map_or(0.0, |a| a.size)
    }

    /// The bins hosting the active multi-replica (empty if none).
    pub(crate) fn active_hosts(&self) -> Vec<BinId> {
        self.active.as_ref().map_or_else(Vec::new, |a| a.targets.iter().map(|t| t.bin).collect())
    }

    /// How much the active multi-replica may still grow.
    pub(crate) fn headroom(&self) -> f64 {
        self.active.as_ref().map_or(0.0, |a| self.cap - a.size)
    }

    /// Maximum total size of one multi-replica.
    pub(crate) fn cap(&self) -> f64 {
        self.cap
    }

    /// Whether adding a replica of `size` would open a fresh multi-replica
    /// (and thus draw a new cube cell).
    pub(crate) fn needs_new(&self, size: f64) -> bool {
        self.active.as_ref().is_none_or(|a| a.size + size > self.cap)
    }

    /// Seals the active multi-replica, if any, without starting a new one.
    /// Used after recovery moves: the sealed copies keep their load, but
    /// the next tiny tenant opens a fresh cell through the caller's
    /// feasibility-checked path.
    pub(crate) fn seal_active(&mut self) {
        if self.active.take().is_some() {
            self.sealed += 1;
        }
    }

    /// Starts a fresh multi-replica in a cell the caller has already
    /// assigned (and feasibility-checked), sealing any active one.
    pub(crate) fn open_with(&mut self, targets: Vec<SlotTarget>) {
        self.seal_active();
        self.active = Some(ActiveMulti { targets, size: 0.0, members: 0, fresh: true });
    }

    /// Chooses the bins for a tiny tenant whose replicas have size `size`,
    /// opening a fresh multi-replica (drawing slots from `groups`) when the
    /// active one would overflow its cap.
    ///
    /// The caller commits the tenant to the returned bins.
    pub(crate) fn assign(
        &mut self,
        size: f64,
        placement: &mut Placement,
        groups: &mut ClassGroups,
    ) -> MultiPlacement {
        let needs_new = match &self.active {
            None => true,
            Some(active) => active.size + size > self.cap,
        };
        if needs_new {
            self.seal_active();
            let targets = groups.assign(placement);
            self.active = Some(ActiveMulti { targets, size: 0.0, members: 0, fresh: true });
        }
        let active = self.active.as_mut().expect("just ensured active exists");
        let report_slots = std::mem::take(&mut active.fresh);
        active.size += size;
        active.members += 1;
        MultiPlacement {
            bins: active.targets.iter().map(|t| t.bin).collect(),
            new_slots: report_slots.then(|| active.targets.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::Load;
    use crate::tenant::{Tenant, TenantId};

    fn place_tiny(
        state: &mut MultiReplicaState,
        groups: &mut ClassGroups,
        placement: &mut Placement,
        id: u64,
        load: f64,
    ) -> MultiPlacement {
        let gamma = placement.gamma();
        let tenant = Tenant::new(TenantId::new(id), Load::new(load).unwrap());
        let decision = state.assign(tenant.replica_size(gamma), placement, groups);
        placement.place_tenant(&tenant, &decision.bins).unwrap();
        decision
    }

    #[test]
    fn tenants_accumulate_into_one_multi_until_cap() {
        let mut placement = Placement::new(2);
        // Target class 4 (K=5, γ=2): cap = slot size 1/5.
        let mut groups = ClassGroups::new(4, 2);
        let mut state = MultiReplicaState::new(0.2);
        // Tiny tenants with replica size 0.06 (load 0.12): three fit
        // (0.18 ≤ 0.2), the fourth overflows and opens a new multi.
        let first = place_tiny(&mut state, &mut groups, &mut placement, 0, 0.12);
        assert!(first.new_slots.is_some());
        for id in 1..3 {
            let d = place_tiny(&mut state, &mut groups, &mut placement, id, 0.12);
            assert!(d.new_slots.is_none());
            assert_eq!(d.bins, first.bins);
        }
        assert_eq!(state.active_members(), 3);
        assert!((state.active_size() - 0.18).abs() < 1e-12);
        let fourth = place_tiny(&mut state, &mut groups, &mut placement, 3, 0.12);
        assert!(fourth.new_slots.is_some());
        assert_eq!(state.sealed(), 1);
        assert_eq!(state.active_members(), 1);
    }

    #[test]
    fn copies_share_identical_members() {
        let mut placement = Placement::new(3);
        let mut groups = ClassGroups::new(2, 3);
        let mut state = MultiReplicaState::new(0.25);
        for id in 0..3 {
            place_tiny(&mut state, &mut groups, &mut placement, id, 0.09);
        }
        // All three tenants sit on the same 3 bins with pairwise shared
        // load equal to the accumulated multi size.
        let bins = placement.tenant_bins(TenantId::new(0)).unwrap().to_vec();
        for id in 1..3 {
            assert_eq!(placement.tenant_bins(TenantId::new(id)).unwrap(), &bins[..]);
        }
        let expected = 3.0 * 0.03;
        assert!((placement.shared_load(bins[0], bins[1]) - expected).abs() < 1e-12);
        assert!((placement.shared_load(bins[1], bins[2]) - expected).abs() < 1e-12);
    }

    #[test]
    fn exact_cap_fill_does_not_seal_early() {
        let mut placement = Placement::new(2);
        let mut groups = ClassGroups::new(4, 2);
        let mut state = MultiReplicaState::new(0.2);
        // Two replicas of exactly 0.1 fill the cap without overflowing.
        place_tiny(&mut state, &mut groups, &mut placement, 0, 0.2);
        let second = place_tiny(&mut state, &mut groups, &mut placement, 1, 0.2);
        assert!(second.new_slots.is_none());
        assert_eq!(state.sealed(), 0);
        assert!((state.active_size() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn sealed_multis_keep_their_load() {
        let mut placement = Placement::new(2);
        let mut groups = ClassGroups::new(4, 2);
        let mut state = MultiReplicaState::new(0.2);
        let first = place_tiny(&mut state, &mut groups, &mut placement, 0, 0.3);
        let second = place_tiny(&mut state, &mut groups, &mut placement, 1, 0.3);
        assert_ne!(
            first.bins, second.bins,
            "0.15-sized replicas overflow a 0.2 cap and open a new multi"
        );
        // The new multi occupies the next cube cell: slot 1 of the same
        // group-1 bin plus a fresh group-2 bin. The sealed multi's load
        // remains in place, so the shared bin carries both.
        assert_eq!(first.bins[0], second.bins[0]);
        assert!((placement.level(first.bins[0]) - 0.3).abs() < 1e-12);
        assert!((placement.level(first.bins[1]) - 0.15).abs() < 1e-12);
    }
}
