//! Replica size classes (paper §III).
//!
//! CubeFit partitions replicas into `K` classes by size. A replica of size
//! `s` (the tenant load divided by `γ`) has class `τ` when
//! `s ∈ (1/(τ+γ), 1/(τ+γ−1)]` for `1 ≤ τ < K`, and class `K` (the *tiny*
//! class) when `s ∈ (0, 1/(K+γ−1)]`.

use crate::EPSILON;
use std::fmt;

/// A replica size class, `1 ..= K`.
///
/// Class `K` is the tiny class whose members are aggregated into
/// multi-replicas (see [`crate::multireplica`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ReplicaClass(usize);

impl ReplicaClass {
    /// Creates a class from its 1-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is zero; class indices start at 1.
    #[must_use]
    pub fn new(index: usize) -> Self {
        assert!(index >= 1, "class indices are 1-based");
        ReplicaClass(index)
    }

    /// The 1-based index `τ` of this class.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ReplicaClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class{}", self.0)
    }
}

/// Maps replica sizes to classes for a fixed `(K, γ)` configuration.
///
/// ```
/// use cubefit_core::Classifier;
///
/// let classifier = Classifier::new(5, 2);
/// // γ = 2: class 1 covers replica sizes (1/3, 1/2].
/// assert_eq!(classifier.classify(0.5).index(), 1);
/// assert_eq!(classifier.classify(0.4).index(), 1);
/// // sizes at most 1/(K+γ−1) = 1/6 are tiny (class K).
/// assert_eq!(classifier.classify(0.1).index(), 5);
/// assert!(classifier.is_tiny(0.1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Classifier {
    classes: usize,
    gamma: usize,
}

impl Classifier {
    /// Creates a classifier for `classes = K` size classes and replication
    /// factor `gamma = γ`.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0` or `gamma < 2`; configurations are validated
    /// upstream by [`crate::CubeFitConfig`].
    #[must_use]
    pub fn new(classes: usize, gamma: usize) -> Self {
        assert!(classes >= 1, "need at least one class");
        assert!(gamma >= 2, "replication factor must be at least 2");
        Classifier { classes, gamma }
    }

    /// Number of classes `K`.
    #[must_use]
    pub fn classes(self) -> usize {
        self.classes
    }

    /// Replication factor `γ`.
    #[must_use]
    pub fn gamma(self) -> usize {
        self.gamma
    }

    /// The class of a replica of size `size`.
    ///
    /// Sizes at the boundary `1/(τ+γ−1)` belong to class `τ` (the intervals
    /// are right-closed); an [`EPSILON`] guard keeps values computed as
    /// `1.0 / m` on the intended boundary despite rounding.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not in `(0, 1/γ]` — replica sizes are bounded by
    /// `1/γ` because tenant loads are at most 1.
    #[must_use]
    pub fn classify(self, size: f64) -> ReplicaClass {
        assert!(
            size > 0.0 && size <= 1.0 / self.gamma as f64 + EPSILON,
            "replica size {size} outside (0, 1/γ]"
        );
        // s ∈ (1/(τ+γ), 1/(τ+γ−1)]  ⟺  τ+γ−1 ≤ 1/s < τ+γ  ⟺
        // τ = floor(1/s) − γ + 1, except exactly at the left-open boundary.
        let inv = 1.0 / size;
        // Snap near-integer values of 1/s down to the integer so that sizes
        // of the form 1/m land in the class whose interval is closed at 1/m.
        let snapped = if (inv - inv.round()).abs() < EPSILON * inv.max(1.0) {
            inv.round()
        } else {
            inv.floor()
        };
        let tau = (snapped as usize).saturating_sub(self.gamma - 1).max(1);
        ReplicaClass(tau.min(self.classes))
    }

    /// The class of a whole tenant with load `load` (its replicas have size
    /// `load/γ`).
    #[must_use]
    pub fn classify_tenant_load(self, load: f64) -> ReplicaClass {
        self.classify(load / self.gamma as f64)
    }

    /// Whether a replica of size `size` belongs to the tiny class `K`.
    #[must_use]
    pub fn is_tiny(self, size: f64) -> bool {
        self.classify(size).index() == self.classes
    }

    /// The half-open size interval `(lo, hi]` covered by class `tau`.
    ///
    /// For the tiny class `K` the interval is `(0, 1/(K+γ−1)]`.
    ///
    /// # Panics
    ///
    /// Panics if `tau` exceeds the configured number of classes.
    #[must_use]
    pub fn size_range(self, tau: ReplicaClass) -> (f64, f64) {
        assert!(tau.index() <= self.classes, "class out of range");
        let t = tau.index();
        let hi = 1.0 / (t + self.gamma - 1) as f64;
        if t == self.classes {
            (0.0, hi)
        } else {
            (1.0 / (t + self.gamma) as f64, hi)
        }
    }

    /// Number of payload slots in a bin of class `tau` (`τ` slots out of
    /// `τ+γ−1`, the remaining `γ−1` being reserved for failover).
    #[must_use]
    pub fn payload_slots(self, tau: ReplicaClass) -> usize {
        tau.index()
    }

    /// Size of each slot in a bin of class `tau`: `1/(τ+γ−1)`.
    #[must_use]
    pub fn slot_size(self, tau: ReplicaClass) -> f64 {
        1.0 / (tau.index() + self.gamma - 1) as f64
    }

    /// The largest integer `α_K` with `α_K² + α_K < K`, used by the
    /// theoretical tiny-tenant policy (paper §III), or `None` when no
    /// positive integer satisfies the inequality (`K ≤ 2`).
    #[must_use]
    pub fn alpha(self) -> Option<usize> {
        let mut alpha = 0usize;
        while (alpha + 1) * (alpha + 1) + (alpha + 1) < self.classes {
            alpha += 1;
        }
        (alpha > 0).then_some(alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_boundaries_gamma2() {
        let c = Classifier::new(10, 2);
        // class τ covers (1/(τ+2), 1/(τ+1)].
        assert_eq!(c.classify(0.5).index(), 1); // boundary 1/2
        assert_eq!(c.classify(1.0 / 3.0 + 1e-6).index(), 1);
        assert_eq!(c.classify(1.0 / 3.0).index(), 2); // boundary 1/3 → class 2
        assert_eq!(c.classify(0.26).index(), 2);
        // 1/4 is the right endpoint of class 3's interval (1/5, 1/4].
        assert_eq!(c.classify(0.25).index(), 3);
    }

    #[test]
    fn boundary_membership_is_right_closed() {
        let c = Classifier::new(10, 2);
        for tau in 1..=9 {
            let (lo, hi) = c.size_range(ReplicaClass::new(tau));
            assert_eq!(c.classify(hi).index(), tau, "right endpoint of class {tau}");
            if tau < 9 {
                // Just above the left-open endpoint is still class τ.
                assert_eq!(c.classify(lo + 1e-9).index(), tau);
            }
        }
    }

    #[test]
    fn tiny_class_threshold() {
        let c = Classifier::new(5, 2);
        // tiny when size ≤ 1/(K+γ−1) = 1/6.
        assert!(c.is_tiny(1.0 / 6.0));
        assert!(!c.is_tiny(1.0 / 6.0 + 1e-6));
        assert_eq!(c.classify(0.0001).index(), 5);
    }

    #[test]
    fn class_boundaries_gamma3() {
        let c = Classifier::new(10, 3);
        // class 1 covers (1/4, 1/3]; replica sizes capped at 1/3.
        assert_eq!(c.classify(1.0 / 3.0).index(), 1);
        assert_eq!(c.classify(0.26).index(), 1);
        assert_eq!(c.classify(0.25).index(), 2);
        // τ = 3 example of Fig. 3: sizes in (1/6, 1/5].
        assert_eq!(c.classify(0.2).index(), 3);
        assert_eq!(c.classify(1.0 / 6.0 + 1e-6).index(), 3);
    }

    #[test]
    fn classify_tenant_load_divides_by_gamma() {
        let c = Classifier::new(10, 2);
        // Tenant load 0.6 → replicas 0.3 ∈ (1/4, 1/3] → class 2.
        assert_eq!(c.classify_tenant_load(0.6).index(), 2);
    }

    #[test]
    fn slot_geometry() {
        let c = Classifier::new(10, 3);
        let tau = ReplicaClass::new(3);
        assert_eq!(c.payload_slots(tau), 3);
        assert!((c.slot_size(tau) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn alpha_values() {
        assert_eq!(Classifier::new(10, 2).alpha(), Some(2)); // 2²+2=6<10, 3²+3=12≥10
        assert_eq!(Classifier::new(13, 3).alpha(), Some(3)); // 3²+3=12<13
        assert_eq!(Classifier::new(21, 2).alpha(), Some(4)); // 4²+4=20<21
        assert_eq!(Classifier::new(2, 2).alpha(), None);
        assert_eq!(Classifier::new(3, 2).alpha(), Some(1)); // 1+1=2<3
    }

    #[test]
    fn size_range_tiny_class() {
        let c = Classifier::new(5, 3);
        let (lo, hi) = c.size_range(ReplicaClass::new(5));
        assert_eq!(lo, 0.0);
        assert!((hi - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn classify_rejects_oversized_replica() {
        let _ = Classifier::new(5, 2).classify(0.6);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ReplicaClass::new(4).to_string(), "class4");
    }
}
